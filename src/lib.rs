//! Workspace facade for the kernel-surface-area reproduction.
//!
//! The full public API lives in [`ksa_core`]; this crate exists to host
//! the repository-level examples and integration tests. See README.md.

pub use ksa_core::*;
