//! End-to-end integration tests spanning all crates: corpus generation →
//! environment construction → barrier-synchronized measurement →
//! statistics, at tiny scale.

use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
use ksa_core::experiments::{self, Scale};
use ksa_core::varbench::{run, RunConfig};
use ksa_core::KernelSurfaceArea;

#[test]
fn corpus_to_measurement_pipeline() {
    let corpus = experiments::default_corpus(Scale::Tiny);
    assert!(corpus.corpus.len() >= 10);
    assert!(corpus.stats.blocks >= 30);

    let machine = Machine {
        cores: 8,
        mem_mib: 4 * 1024,
    };
    let mut res = run(
        &RunConfig {
            env: EnvSpec::new(machine, EnvKind::Native),
            iterations: 3,
            sync: true,
            seed: 1,
            max_events: 0,
            trace: false,
            metrics: false,
            spec: None,
        },
        &corpus.corpus,
    )
    .expect("trial failed");
    assert_eq!(res.sites.len(), corpus.corpus.total_calls());
    // Every site must have cores × iterations samples.
    for s in &res.sites {
        assert_eq!(s.samples.len(), 8 * 3);
    }
    // Latencies are plausible: nothing below the syscall entry cost,
    // nothing above a second.
    let maxes = res.per_site(None, |s| s.max());
    assert!(maxes.iter().all(|&m| (100..1_000_000_000).contains(&m)));
}

#[test]
fn isolation_bounds_the_tail() {
    // The paper's system model: the shared kernel has worse worst-case
    // behaviour than per-core VMs on the same hardware and workload.
    let corpus = experiments::default_corpus(Scale::Tiny);
    let machine = Machine {
        cores: 8,
        mem_mib: 4 * 1024,
    };
    let run_kind = |kind| {
        let mut r = run(
            &RunConfig {
                env: EnvSpec::new(machine, kind),
                iterations: 5,
                sync: true,
                seed: 3,
                max_events: 0,
                trace: false,
                metrics: false,
                spec: None,
            },
            &corpus.corpus,
        )
        .expect("trial failed");
        let mut p99s = r.per_site(None, |s| s.p99());
        p99s.sort_unstable();
        *p99s.last().unwrap()
    };
    let native_worst = run_kind(EnvKind::Native);
    let vm_worst = run_kind(EnvKind::Vm(8));
    assert!(
        vm_worst < native_worst,
        "per-core VMs must bound the worst tail: vm {vm_worst} vs native {native_worst}"
    );
}

#[test]
fn virtualization_costs_at_the_median() {
    // ...and the flip side: the VM's bounded overhead makes the fast
    // calls slower at the median.
    let corpus = experiments::default_corpus(Scale::Tiny);
    let machine = Machine {
        cores: 8,
        mem_mib: 4 * 1024,
    };
    let run_kind = |kind| {
        let mut r = run(
            &RunConfig {
                env: EnvSpec::new(machine, kind),
                iterations: 4,
                sync: true,
                seed: 4,
                max_events: 0,
                trace: false,
                metrics: false,
                spec: None,
            },
            &corpus.corpus,
        )
        .expect("trial failed");
        let mut meds = r.per_site(None, |s| s.median());
        meds.sort_unstable();
        meds[0] // the fastest site's median
    };
    let native_fastest = run_kind(EnvKind::Native);
    let vm_fastest = run_kind(EnvKind::Vm(8));
    assert!(
        vm_fastest > native_fastest,
        "guest fast path must pay the bounded virt overhead: {vm_fastest} vs {native_fastest}"
    );
}

#[test]
fn surface_area_api_is_consistent_with_envs() {
    let machine = Machine::epyc_64();
    let mut last = f64::INFINITY;
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let s = KernelSurfaceArea::of(&EnvSpec::new(machine, EnvKind::Vm(n)));
        assert_eq!(s.cores, 64 / n);
        assert!(s.scalar() < last);
        last = s.scalar();
    }
}

#[test]
fn experiments_table2_runs_at_tiny_scale() {
    let corpus = experiments::default_corpus(Scale::Tiny);
    let t2 = experiments::table2(&corpus.corpus, Scale::Tiny, 5);
    // Cumulative percentages must be monotone within a row.
    for table in [&t2.median, &t2.p99, &t2.max] {
        for row in &table.rows {
            for w in row.below.windows(2) {
                assert!(w[0] <= w[1] + 1e-9, "{}: non-monotone", row.label);
            }
            assert!((row.below[4] + row.above_last - 100.0).abs() < 1e-6);
        }
    }
}

#[test]
fn experiments_fig2_trends_are_negative_where_expected() {
    use ksa_core::analysis::surface_trends;
    use ksa_core::kernel::Category;
    let corpus = experiments::default_corpus(Scale::Tiny);
    let f2 = experiments::fig2(&corpus.corpus, Scale::Tiny, 5);
    let trends = surface_trends(&f2);
    // Filesystem and permissions: the paper's two reliable responders.
    for want in [Category::Filesystem, Category::Permissions] {
        let t = trends.iter().find(|t| t.category == want).unwrap();
        if let Some(c) = t.median_corr {
            assert!(
                c < 0.25,
                "{want:?} median trend should not be clearly positive: {c}"
            );
        }
        assert!(
            t.outlier_reduction > 1.0,
            "{want:?} outliers must shrink with surface area"
        );
    }
}
