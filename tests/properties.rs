//! Cross-crate property-based tests: invariants of the generator, the
//! engine and the statistics layer under random inputs.

use ksa_core::desim::{CoreConfig, Effect, Engine, EngineParams, Process, SimCtx, WakeReason};
use ksa_core::kernel::coverage::CoverageSet;
use ksa_core::kernel::dispatch::dispatch_simple;
use ksa_core::kernel::instance::{InstanceConfig, KernelInstance, TenancyProfile, VirtProfile};
use ksa_core::kernel::params::CostModel;
use ksa_core::kernel::SysNo;
use ksa_core::stats::{quantile_sorted, BucketRow, Samples};
use ksa_core::syzgen::{mutate, ProgramGenerator};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any argument vector to any syscall compiles to a lock-balanced op
    /// sequence (the fuzzer feeds the kernel arbitrary input).
    #[test]
    fn dispatch_never_unbalances_locks(
        call_idx in 0usize..SysNo::ALL.len(),
        args in proptest::collection::vec(any::<u64>(), 0..5),
        seed in any::<u64>(),
    ) {
        let mut eng: Engine<()> = Engine::new((), EngineParams::default(), 1);
        let disk = eng.add_device(ksa_core::desim::DeviceModel::nvme_ssd());
        let cores = vec![eng.add_core(CoreConfig::default())];
        let mut inst = KernelInstance::build(&mut eng, 0, InstanceConfig {
            cores,
            mem_mib: 128,
            virt: VirtProfile::native(),
            tenancy: TenancyProfile::none(),
            cost: CostModel::default(),
            disk,
        });
        let mut rng = SmallRng::seed_from_u64(seed);
        let seq = dispatch_simple(&mut inst, 0, SysNo::ALL[call_idx], &args, &mut rng);
        prop_assert!(seq.locks_balanced());
    }

    /// Generator output and all mutants keep resource references valid.
    #[test]
    fn generated_programs_and_mutants_stay_valid(seed in any::<u64>(), steps in 1usize..20) {
        let mut gen = ProgramGenerator::new(seed);
        let corpus: Vec<_> = (0..4).map(|_| gen.random_program()).collect();
        let mut p = gen.random_program();
        for _ in 0..steps {
            p = mutate::mutate(&mut gen, &p, &corpus);
            prop_assert!(p.refs_valid());
            prop_assert!(!p.is_empty());
        }
    }

    /// Quantiles of sorted data are monotone in q and bounded by the
    /// extremes.
    #[test]
    fn quantiles_are_monotone(mut values in proptest::collection::vec(0u64..10_000_000, 1..200)) {
        values.sort_unstable();
        let mut last = 0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = quantile_sorted(&values, q).unwrap();
            prop_assert!(v >= last);
            prop_assert!(v >= values[0] && v <= *values.last().unwrap());
            last = v;
        }
    }

    /// Bucket rows always account for exactly 100% of the values.
    #[test]
    fn bucket_rows_account_for_everything(values in proptest::collection::vec(0u64..100_000_000, 1..100)) {
        let row = BucketRow::from_values("x", &values);
        prop_assert!((row.below[4] + row.above_last - 100.0).abs() < 1e-6);
        for w in row.below.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
    }

    /// Samples summaries are internally ordered.
    #[test]
    fn summaries_are_ordered(values in proptest::collection::vec(1u64..1_000_000_000, 2..300)) {
        let mut s = Samples::from_values(values);
        let sum = s.summary().unwrap();
        prop_assert!(sum.min <= sum.median);
        prop_assert!(sum.median <= sum.p95);
        prop_assert!(sum.p95 <= sum.p99);
        prop_assert!(sum.p99 <= sum.max);
        prop_assert!(sum.mean >= sum.min as f64 && sum.mean <= sum.max as f64);
    }

    /// The engine clock never runs backwards, whatever mix of delays,
    /// sleeps and lock traffic a process issues.
    #[test]
    fn engine_clock_is_monotone(script in proptest::collection::vec(0u32..4, 1..30), seed in any::<u64>()) {
        struct P {
            script: Vec<u32>,
            at: usize,
            lock: ksa_core::desim::LockId,
            held: bool,
            last: u64,
        }
        impl Process<()> for P {
            fn resume(&mut self, ctx: &mut SimCtx<'_, ()>, _w: WakeReason) -> Effect {
                assert!(ctx.now() >= self.last, "clock went backwards");
                self.last = ctx.now();
                if self.held {
                    ctx.release(self.lock);
                    self.held = false;
                }
                let Some(&op) = self.script.get(self.at) else {
                    return Effect::Done;
                };
                self.at += 1;
                match op {
                    0 => Effect::Delay(100),
                    1 => Effect::Sleep(50),
                    2 => {
                        self.held = true;
                        Effect::Acquire(self.lock, ksa_core::desim::LockMode::Exclusive)
                    }
                    _ => Effect::Delay(1),
                }
            }
        }
        let mut eng: Engine<()> = Engine::new((), EngineParams::default(), seed);
        let core = eng.add_core(CoreConfig::default());
        let lock = eng.add_lock(ksa_core::desim::LockKind::Spin, "prop");
        eng.spawn(core, Box::new(P { script, at: 0, lock, held: false, last: 0 }), 0);
        let res = eng.run().unwrap();
        prop_assert!(res.clock < 1_000_000);
    }
}

/// Coverage merging is idempotent and commutative on random sets.
#[test]
fn coverage_merge_laws() {
    use ksa_core::kernel::coverage::block_bucketed;
    let mk = |ids: &[u32]| {
        let mut s = CoverageSet::new();
        for &i in ids {
            s.insert(block_bucketed("prop.cov", i));
        }
        s
    };
    let a = mk(&[1, 5, 9, 200]);
    let b = mk(&[5, 9, 77]);
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab.len(), ba.len());
    let mut aa = a.clone();
    assert_eq!(aa.merge(&a), 0, "self-merge adds nothing");
}
