//! Cross-crate property-based tests: invariants of the generator, the
//! engine and the statistics layer under random inputs.
//!
//! Cases are driven by a seeded [`SmallRng`] loop rather than a property
//! testing framework (the build environment is offline), so every failure
//! is reproducible from the printed case seed.

use ksa_core::desim::{CoreConfig, Effect, Engine, EngineParams, Process, SimCtx, WakeReason};
use ksa_core::kernel::coverage::CoverageSet;
use ksa_core::kernel::dispatch::dispatch_simple;
use ksa_core::kernel::instance::{InstanceConfig, KernelInstance, TenancyProfile, VirtProfile};
use ksa_core::kernel::params::CostModel;
use ksa_core::kernel::spec::SpecMask;
use ksa_core::kernel::SysNo;
use ksa_core::stats::{quantile_sorted, BucketRow, Samples};
use ksa_core::syzgen::{mutate, ProgramGenerator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// Stable per-test base seed from the test name (FNV-1a).
fn base_seed(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `f` once per case with a distinct, stable seed.
fn for_each_case(test: &str, f: impl Fn(u64, &mut SmallRng)) {
    for case in 0..CASES {
        let seed = base_seed(test) ^ case.wrapping_mul(0x9e3779b97f4a7c15);
        let mut rng = SmallRng::seed_from_u64(seed);
        f(seed, &mut rng);
    }
}

/// Any argument vector to any syscall compiles to a lock-balanced op
/// sequence (the fuzzer feeds the kernel arbitrary input).
#[test]
fn dispatch_never_unbalances_locks() {
    for_each_case("dispatch_never_unbalances_locks", |seed, rng| {
        let call_idx = rng.gen_range(0..SysNo::ALL.len());
        let n_args = rng.gen_range(0usize..5);
        let args: Vec<u64> = (0..n_args).map(|_| rng.gen::<u64>()).collect();

        let mut eng: Engine<()> = Engine::new((), EngineParams::default(), 1);
        let disk = eng.add_device(ksa_core::desim::DeviceModel::nvme_ssd());
        let cores = vec![eng.add_core(CoreConfig::default())];
        let mut inst = KernelInstance::build(
            &mut eng,
            0,
            InstanceConfig {
                cores,
                mem_mib: 128,
                virt: VirtProfile::native(),
                tenancy: TenancyProfile::none(),
                cost: CostModel::default(),
                disk,
                spec: SpecMask::full(),
            },
        );
        let mut call_rng = SmallRng::seed_from_u64(seed);
        let seq = dispatch_simple(&mut inst, 0, SysNo::ALL[call_idx], &args, &mut call_rng);
        assert!(seq.locks_balanced(), "seed {seed:#x} unbalanced locks");
    });
}

/// Generator output and all mutants keep resource references valid.
#[test]
fn generated_programs_and_mutants_stay_valid() {
    for_each_case("generated_programs_and_mutants_stay_valid", |seed, rng| {
        let steps = rng.gen_range(1usize..20);
        let mut gen = ProgramGenerator::new(seed);
        let corpus: Vec<_> = (0..4).map(|_| gen.random_program()).collect();
        let mut p = gen.random_program();
        for _ in 0..steps {
            p = mutate::mutate(&mut gen, &p, &corpus);
            assert!(p.refs_valid(), "seed {seed:#x} broke refs");
            assert!(!p.is_empty(), "seed {seed:#x} emptied the program");
        }
    });
}

/// Quantiles of sorted data are monotone in q and bounded by the extremes.
#[test]
fn quantiles_are_monotone() {
    for_each_case("quantiles_are_monotone", |seed, rng| {
        let n = rng.gen_range(1usize..200);
        let mut values: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..10_000_000)).collect();
        values.sort_unstable();
        let mut last = 0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = quantile_sorted(&values, q).unwrap();
            assert!(v >= last, "seed {seed:#x}: quantile not monotone");
            assert!(v >= values[0] && v <= *values.last().unwrap());
            last = v;
        }
    });
}

/// Bucket rows always account for exactly 100% of the values.
#[test]
fn bucket_rows_account_for_everything() {
    for_each_case("bucket_rows_account_for_everything", |seed, rng| {
        let n = rng.gen_range(1usize..100);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..100_000_000)).collect();
        let row = BucketRow::from_values("x", &values);
        assert!(
            (row.below[4] + row.above_last - 100.0).abs() < 1e-6,
            "seed {seed:#x}: buckets lost mass"
        );
        for w in row.below.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
    });
}

/// Samples summaries are internally ordered.
#[test]
fn summaries_are_ordered() {
    for_each_case("summaries_are_ordered", |seed, rng| {
        let n = rng.gen_range(2usize..300);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(1u64..1_000_000_000)).collect();
        let mut s = Samples::from_values(values);
        let sum = s.summary().unwrap();
        assert!(sum.min <= sum.median, "seed {seed:#x}");
        assert!(sum.median <= sum.p95);
        assert!(sum.p95 <= sum.p99);
        assert!(sum.p99 <= sum.max);
        assert!(sum.mean >= sum.min as f64 && sum.mean <= sum.max as f64);
    });
}

/// The engine clock never runs backwards, whatever mix of delays, sleeps
/// and lock traffic a process issues.
#[test]
fn engine_clock_is_monotone() {
    struct P {
        script: Vec<u32>,
        at: usize,
        lock: ksa_core::desim::LockId,
        held: bool,
        last: u64,
    }
    impl Process<()> for P {
        fn resume(&mut self, ctx: &mut SimCtx<'_, ()>, _w: WakeReason) -> Effect {
            assert!(ctx.now() >= self.last, "clock went backwards");
            self.last = ctx.now();
            if self.held {
                ctx.release(self.lock);
                self.held = false;
            }
            let Some(&op) = self.script.get(self.at) else {
                return Effect::Done;
            };
            self.at += 1;
            match op {
                0 => Effect::Delay(100),
                1 => Effect::Sleep(50),
                2 => {
                    self.held = true;
                    Effect::Acquire(self.lock, ksa_core::desim::LockMode::Exclusive)
                }
                _ => Effect::Delay(1),
            }
        }
    }
    for_each_case("engine_clock_is_monotone", |seed, rng| {
        let len = rng.gen_range(1usize..30);
        let script: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..4)).collect();
        let mut eng: Engine<()> = Engine::new((), EngineParams::default(), seed);
        let core = eng.add_core(CoreConfig::default());
        let lock = eng.add_lock(ksa_core::desim::LockKind::Spin, "prop");
        eng.spawn(
            core,
            Box::new(P {
                script,
                at: 0,
                lock,
                held: false,
                last: 0,
            }),
            0,
        );
        let res = eng.run().unwrap();
        assert!(res.clock < 1_000_000, "seed {seed:#x}: run too long");
    });
}

/// A net-heavy trial replays bit-identically under the same seed: same
/// sites, same sample vectors, same simulated clock. Softirq/NAPI
/// deferral and NIC queue hashing must not introduce nondeterminism.
#[test]
fn net_trial_replays_bit_identically() {
    use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
    use ksa_core::experiments::{net_corpus, Scale};
    use ksa_core::varbench::{run, RunConfig};
    let corpus = net_corpus(Scale::Tiny);
    for seed in [3u64, 0x77, 0xdead_beef] {
        let cfg = RunConfig {
            env: EnvSpec::new(
                Machine {
                    cores: 4,
                    mem_mib: 2 * 1024,
                },
                EnvKind::Vm(2),
            ),
            iterations: 3,
            sync: true,
            seed,
            max_events: 0,
            trace: false,
            metrics: false,
            spec: None,
        };
        let a = run(&cfg, &corpus).expect("net trial failed");
        let b = run(&cfg, &corpus).expect("net replay failed");
        assert_eq!(a.sim_ns, b.sim_ns, "seed {seed:#x}: clocks differ");
        assert_eq!(a.sites.len(), b.sites.len());
        for (sa, sb) in a.sites.iter().zip(b.sites.iter()) {
            assert_eq!(sa.sysno, sb.sysno);
            assert_eq!(
                sa.samples.raw(),
                sb.samples.raw(),
                "seed {seed:#x}: {} samples differ",
                sa.sysno.name()
            );
        }
    }
}

/// Bounded socket buffers push back with EAGAIN and never lose or
/// duplicate payload bytes: at every step,
/// `sent == received + buffered + flushed`.
#[test]
fn socket_buffers_bound_and_conserve_bytes() {
    use ksa_core::desim::DeviceModel;
    use ksa_core::kernel::Errno;
    for_each_case("socket_buffers_bound_and_conserve_bytes", |seed, rng| {
        let mut eng: Engine<()> = Engine::new((), EngineParams::default(), 1);
        let disk = eng.add_device(DeviceModel::nvme_ssd());
        let cores = vec![eng.add_core(CoreConfig::default())];
        let mut inst = KernelInstance::build(
            &mut eng,
            0,
            InstanceConfig {
                cores,
                mem_mib: 256,
                virt: VirtProfile::native(),
                tenancy: TenancyProfile::none(),
                cost: CostModel::default(),
                disk,
                spec: SpecMask::full(),
            },
        );
        let mut call_rng = SmallRng::seed_from_u64(seed);
        let invariant = |inst: &KernelInstance, at: &str| {
            let net = &inst.state.net;
            assert_eq!(
                net.sent_bytes,
                net.recv_bytes + net.buffered_bytes() + net.flushed_bytes,
                "seed {seed:#x}: bytes lost or duplicated ({at})"
            );
        };
        // fd0: receiver socket bound to port 3; fd1: sender socket.
        let port = rng.gen_range(0u64..8);
        for (no, args) in [
            (SysNo::Socket, vec![1u64]),
            (SysNo::Bind, vec![0, port]),
            (SysNo::Socket, vec![1]),
        ] {
            let seq = dispatch_simple(&mut inst, 0, no, &args, &mut call_rng);
            assert!(seq.error.is_none(), "seed {seed:#x}: setup {no:?} failed");
        }
        // Send until backpressure. The ring has 256 descriptors and the
        // receive buffer 256 KiB, and nothing drains either, so EAGAIN
        // must arrive within a bounded number of sends.
        let mut saw_eagain = false;
        for i in 0..300 {
            let len = rng.gen_range(4_096u64..65_536);
            let seq = dispatch_simple(&mut inst, 0, SysNo::Sendto, &[1, len, port], &mut call_rng);
            invariant(&inst, "after send");
            match seq.error {
                None => {}
                Some(Errno::EAGAIN) => {
                    saw_eagain = true;
                    break;
                }
                Some(e) => panic!("seed {seed:#x}: unexpected send error {e:?} at {i}"),
            }
        }
        assert!(saw_eagain, "seed {seed:#x}: full buffers never pushed back");
        assert!(
            inst.state.net.buffered_bytes() <= inst.cost.sock_buf_bytes,
            "seed {seed:#x}: receive buffer exceeded its bound"
        );
        // Drain the receiver; every buffered byte comes back exactly once.
        for _ in 0..300 {
            let seq = dispatch_simple(&mut inst, 0, SysNo::Recvfrom, &[0, 60_000], &mut call_rng);
            invariant(&inst, "after recv");
            if seq.error == Some(Errno::EAGAIN) {
                break;
            }
            assert!(seq.error.is_none(), "seed {seed:#x}: recv failed");
        }
        assert_eq!(
            inst.state.net.buffered_bytes(),
            0,
            "seed {seed:#x}: drain left bytes behind"
        );
        // Shutdown flushes any remainder and keeps the ledger balanced.
        for sel in [0u64, 1] {
            dispatch_simple(&mut inst, 0, SysNo::ShutdownSock, &[sel], &mut call_rng);
        }
        invariant(&inst, "after shutdown");
        assert_eq!(
            inst.state.net.sent_bytes,
            inst.state.net.recv_bytes + inst.state.net.flushed_bytes,
            "seed {seed:#x}: final ledger unbalanced"
        );
    });
}

/// Turning the tracer on is strictly observational: for the same seed,
/// a traced run and an untraced run produce the same clock, the same
/// latency samples, the same contention profile, and the same
/// attribution — across environment kinds.
#[test]
fn tracing_has_zero_observer_effect() {
    use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
    use ksa_core::experiments::{net_corpus, Scale};
    use ksa_core::varbench::{run, RunConfig};
    let corpus = net_corpus(Scale::Tiny);
    let machine = Machine {
        cores: 4,
        mem_mib: 2 * 1024,
    };
    for (seed, kind) in [
        (11u64, EnvKind::Native),
        (12, EnvKind::Vm(2)),
        (13, EnvKind::Container(2)),
    ] {
        let cfg = |trace| RunConfig {
            env: EnvSpec::new(machine, kind),
            iterations: 2,
            sync: true,
            seed,
            max_events: 0,
            trace,
            metrics: false,
            spec: None,
        };
        let off = run(&cfg(false), &corpus).expect("untraced run failed");
        let on = run(&cfg(true), &corpus).expect("traced run failed");
        assert_eq!(off.sim_ns, on.sim_ns, "{kind:?}: tracing moved the clock");
        for (a, b) in off.sites.iter().zip(on.sites.iter()) {
            assert_eq!(a.samples.raw(), b.samples.raw(), "{kind:?}: samples differ");
        }
        assert_eq!(
            off.contention.total_wait_ns(),
            on.contention.total_wait_ns(),
            "{kind:?}: contention differs"
        );
        assert_eq!(off.attrib.calls(), on.attrib.calls());
        assert_eq!(
            off.attrib.grand_total().values(),
            on.attrib.grand_total().values(),
            "{kind:?}: attribution differs"
        );
        assert_eq!(off.trace.total_events(), 0, "untraced run recorded events");
        assert!(on.trace.total_events() > 0, "traced run recorded nothing");
    }
}

/// Two traced runs under the same seed replay the trace bit-identically:
/// the merged event streams (and drop counters) are equal element by
/// element.
#[test]
fn traced_runs_replay_bit_identically() {
    use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
    use ksa_core::experiments::{net_corpus, Scale};
    use ksa_core::varbench::{run, RunConfig};
    let corpus = net_corpus(Scale::Tiny);
    for seed in [5u64, 0xfeed] {
        let cfg = RunConfig {
            env: EnvSpec::new(
                Machine {
                    cores: 4,
                    mem_mib: 2 * 1024,
                },
                EnvKind::Vm(2),
            ),
            iterations: 2,
            sync: true,
            seed,
            max_events: 0,
            trace: true,
            metrics: false,
            spec: None,
        };
        let a = run(&cfg, &corpus).expect("traced run failed");
        let b = run(&cfg, &corpus).expect("traced replay failed");
        assert_eq!(a.trace.total_dropped(), b.trace.total_dropped());
        let ea = a.trace.merged();
        let eb = b.trace.merged();
        assert_eq!(ea.len(), eb.len(), "seed {seed:#x}: event counts differ");
        for (x, y) in ea.iter().zip(eb.iter()) {
            assert_eq!(x, y, "seed {seed:#x}: trace diverged");
        }
    }
}

/// Attribution is exact at every level: each per-syscall row's components
/// sum to its total, the rows sum to the grand total, and the primary-
/// category view re-partitions the same mass.
#[test]
fn attribution_components_sum_exactly() {
    use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
    use ksa_core::experiments::{net_corpus, Scale};
    use ksa_core::varbench::{run, RunConfig};
    let corpus = net_corpus(Scale::Tiny);
    for (seed, kind) in [(21u64, EnvKind::Native), (22, EnvKind::Vm(4))] {
        let res = run(
            &RunConfig {
                env: EnvSpec::new(
                    Machine {
                        cores: 4,
                        mem_mib: 2 * 1024,
                    },
                    kind,
                ),
                iterations: 2,
                sync: true,
                seed,
                max_events: 0,
                trace: false,
                metrics: false,
                spec: None,
            },
            &corpus,
        )
        .expect("attribution run failed");
        let grand = res.attrib.grand_total();
        assert!(grand.is_exact(), "{kind:?}: grand total not exact");
        assert!(grand.total > 0, "{kind:?}: nothing attributed");
        let mut sysno_sum = 0u64;
        for (no, (calls, a)) in res.attrib.by_sysno() {
            assert!(a.is_exact(), "{kind:?}: {} row not exact", no.name());
            assert!(*calls > 0);
            sysno_sum += a.total;
        }
        assert_eq!(sysno_sum, grand.total, "{kind:?}: rows lost mass");
        let cat_sum: u64 = res.attrib.by_category().map(|(_, (_, a))| a.total).sum();
        assert_eq!(cat_sum, grand.total, "{kind:?}: categories lost mass");
    }
}

/// A trace ring under arbitrary pressure keeps the *newest* `cap` events
/// in order, counts every eviction, and never panics — including the
/// zero-capacity ring, which drops everything.
#[test]
fn trace_ring_overflow_drops_oldest() {
    use ksa_core::desim::{CoreId, Pid, TraceEvent, TraceEventKind, TraceRing};
    for_each_case("trace_ring_overflow_drops_oldest", |seed, rng| {
        let cap = rng.gen_range(0usize..50);
        let n = rng.gen_range(0usize..200);
        let mut ring = TraceRing::new(cap);
        for i in 0..n {
            ring.push(TraceEvent {
                t: i as u64,
                pid: Pid(0),
                core: CoreId(0),
                kind: TraceEventKind::Wake { reason: "prop" },
            });
        }
        let kept = n.min(cap);
        assert_eq!(ring.len(), kept, "seed {seed:#x}: wrong retained count");
        assert_eq!(
            ring.dropped,
            (n - kept) as u64,
            "seed {seed:#x}: evictions miscounted"
        );
        // The survivors are exactly the newest `kept` events, oldest first.
        for (offset, ev) in ring.events().enumerate() {
            assert_eq!(
                ev.t,
                (n - kept + offset) as u64,
                "seed {seed:#x}: ring did not drop oldest-first"
            );
        }
    });
}

/// Coverage merging is idempotent and commutative on random sets.
#[test]
fn coverage_merge_laws() {
    use ksa_core::kernel::coverage::block_bucketed;
    let mk = |ids: &[u32]| {
        let mut s = CoverageSet::new();
        for &i in ids {
            s.insert(block_bucketed("prop.cov", i));
        }
        s
    };
    let a = mk(&[1, 5, 9, 200]);
    let b = mk(&[5, 9, 77]);
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab.len(), ba.len());
    let mut aa = a.clone();
    assert_eq!(aa.merge(&a), 0, "self-merge adds nothing");
}

/// The parallel trial runner is an implementation detail: for every
/// environment kind, with tracing on and off, and with fault injection
/// enabled, a campaign run on the worker pool produces results
/// bit-identical to the sequential runner — same simulated clocks, same
/// samples, same attribution, same contention, same trace streams.
#[test]
fn parallel_runner_matches_sequential_bit_identically() {
    use ksa_core::desim::{FaultKind, FaultPlan, FaultSchedule};
    use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
    use ksa_core::experiments::{net_corpus, Scale};
    use ksa_core::varbench::{run_configs_hooked, RunConfig};
    let corpus = net_corpus(Scale::Tiny);
    let machine = Machine {
        cores: 4,
        mem_mib: 2 * 1024,
    };

    // The full grid: env kind x trace x faulted, two seeds each. One
    // flat batch so the pool actually interleaves heterogeneous trials.
    let mut configs = Vec::new();
    let mut faulted = Vec::new();
    for seed in [31u64, 0xbeef] {
        for kind in [EnvKind::Native, EnvKind::Vm(2), EnvKind::Container(4)] {
            for trace in [false, true] {
                for fault in [false, true] {
                    configs.push(RunConfig {
                        env: EnvSpec::new(machine, kind),
                        iterations: 2,
                        sync: true,
                        seed: seed ^ (configs.len() as u64) << 8,
                        max_events: 0,
                        trace,
                        metrics: false,
                        spec: None,
                    });
                    faulted.push(fault);
                }
            }
        }
    }
    let hook =
        |i: usize, engine: &mut ksa_core::desim::Engine<ksa_core::kernel::world::KernelWorld>| {
            if faulted[i] {
                engine.set_fault_plan(
                    FaultPlan::new(0xfa17 ^ i as u64)
                        .site(
                            FaultKind::IoError,
                            "io.submit".to_string(),
                            FaultSchedule::EveryNth(3),
                        )
                        .site(
                            FaultKind::AllocFail,
                            "mm.alloc".to_string(),
                            FaultSchedule::ProbMilli(150),
                        ),
                );
            }
        };

    let seq = run_configs_hooked(&configs, &corpus, 1, &hook);
    for jobs in [4usize, 0] {
        let par = run_configs_hooked(&configs, &corpus, jobs, &hook);
        assert_eq!(seq.len(), par.len());
        for (i, (s, p)) in seq.iter().zip(par.iter()).enumerate() {
            let (s, p) = match (s, p) {
                (Ok(s), Ok(p)) => (s, p),
                other => panic!("slot {i} (jobs {jobs}): outcome mismatch {other:?}"),
            };
            let tag = format!("slot {i} ({:?}, jobs {jobs})", configs[i].env.kind);
            assert_eq!(s.sim_ns, p.sim_ns, "{tag}: clocks differ");
            assert_eq!(s.events, p.events, "{tag}: event counts differ");
            assert_eq!(s.sites.len(), p.sites.len(), "{tag}: site counts differ");
            for (a, b) in s.sites.iter().zip(p.sites.iter()) {
                assert_eq!(a.samples.raw(), b.samples.raw(), "{tag}: samples differ");
            }
            assert_eq!(
                s.attrib.grand_total().values(),
                p.attrib.grand_total().values(),
                "{tag}: attribution differs"
            );
            assert_eq!(
                s.contention.total_wait_ns(),
                p.contention.total_wait_ns(),
                "{tag}: contention differs"
            );
            assert_eq!(
                s.trace.total_events(),
                p.trace.total_events(),
                "{tag}: trace volume differs"
            );
            assert_eq!(s.trace.merged(), p.trace.merged(), "{tag}: trace diverged");
        }
    }
}

/// Specialization with a full-coverage profile is the identity: for
/// every environment kind and pool width, a campaign run with
/// `spec: Some(SpecMask::full())` digests bit-identically to the
/// unspecialized (`spec: None`) campaign — the full mask gates nothing,
/// so lock allocation order, daemon spawns and every dispatch must be
/// untouched.
#[test]
fn full_allowlist_specialization_is_bit_identical() {
    use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
    use ksa_core::experiments::{net_corpus, Scale};
    use ksa_core::varbench::{run_configs_jobs, RunConfig, RunResult};
    let corpus = net_corpus(Scale::Tiny);
    let machine = Machine {
        cores: 4,
        mem_mib: 2 * 1024,
    };

    // FNV-1a over everything the runner reports as simulated outcome.
    let digest = |results: &[Result<RunResult, ksa_core::varbench::RunError>]| -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut fold = |v: u64| h = (h ^ v).wrapping_mul(0x100000001b3);
        for r in results {
            let r = r.as_ref().expect("trial failed");
            fold(r.sim_ns);
            fold(r.events);
            for site in &r.sites {
                fold(site.sysno as u64);
                for &s in site.samples.raw() {
                    fold(s);
                }
            }
            fold(r.attrib.grand_total().total);
            fold(r.contention.total_wait_ns());
        }
        h
    };

    let mk = |spec| -> Vec<RunConfig> {
        let mut configs = Vec::new();
        for seed in [41u64, 0xcafe] {
            for kind in [EnvKind::Native, EnvKind::Vm(2), EnvKind::Container(4)] {
                configs.push(RunConfig {
                    env: EnvSpec::new(machine, kind),
                    iterations: 2,
                    sync: true,
                    seed,
                    max_events: 0,
                    trace: false,
                    metrics: false,
                    spec,
                });
            }
        }
        configs
    };
    let plain = mk(None);
    let full = mk(Some(SpecMask::full()));
    let baseline = digest(&run_configs_jobs(&plain, &corpus, 1));
    for jobs in [1usize, 4, 0] {
        assert_eq!(
            digest(&run_configs_jobs(&plain, &corpus, jobs)),
            baseline,
            "jobs {jobs}: unspecialized campaign not replayable"
        );
        assert_eq!(
            digest(&run_configs_jobs(&full, &corpus, jobs)),
            baseline,
            "jobs {jobs}: full allowlist must gate nothing"
        );
    }
}

/// Backoff schedules are pure functions of their inputs: for random
/// policies, the delay for any (attempt, jitter word) is replayable and
/// never exceeds the cap, whatever the shift or jitter.
#[test]
fn backoff_schedules_are_deterministic_and_capped() {
    use ksa_desim::Backoff;
    for_each_case(
        "backoff_schedules_are_deterministic_and_capped",
        |seed, rng| {
            let base = rng.gen_range(1u64..1_000_000);
            let cap = rng.gen_range(base..base.saturating_mul(1000).max(base + 1));
            let jitter = rng.gen_range(0u32..2000); // clamped at 1000 inside
            let b = Backoff::new(base, cap, jitter);
            for attempt in [0u32, 1, 2, 3, 7, 17, 40, 63, 64, 1000, u32::MAX] {
                let word = rng.gen::<u64>();
                let d = b.delay(attempt, word);
                assert!(
                    d <= cap,
                    "seed {seed:#x}: attempt {attempt} delay {d} exceeds cap {cap}"
                );
                assert_eq!(
                    d,
                    b.delay(attempt, word),
                    "seed {seed:#x}: schedule not replayable"
                );
            }
            // Jitter-free schedules are monotone until the cap.
            let nj = Backoff::new(base, cap, 0);
            let mut last = 0;
            for attempt in 1..=40 {
                let d = nj.delay(attempt, 0);
                assert!(d >= last, "seed {seed:#x}: jitter-free schedule shrank");
                last = d;
            }
            assert_eq!(
                nj.delay(64, 0),
                cap,
                "seed {seed:#x}: deep attempts pin at cap"
            );
        },
    );
}

/// Node-fault cluster trials are bit-identical under replay and across
/// pool widths — the node/link fault domain must not leak scheduling
/// into the simulated results (fabric counters included).
#[test]
fn node_fault_trials_replay_identically_across_pool_widths() {
    use ksa_cluster::{run_cluster_faulted, ClusterConfig, FabricConfig};
    use ksa_desim::NodeFaultPlan;
    use ksa_tailbench::suite;
    let app = &suite()[1];
    let corpus = ksa_core::experiments::noise_corpus(ksa_core::experiments::Scale::Tiny);
    for case in 0..3u64 {
        let seed = base_seed("node_fault_trials") ^ case.wrapping_mul(0x9e3779b97f4a7c15);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cfg = ClusterConfig::quick(false, false, seed);
        let total_guess = 4_000_000u64; // ~quick-cluster runtime
        let mut plan = NodeFaultPlan::new(seed).drop_prob_milli(rng.gen_range(0u32..200));
        for _ in 0..rng.gen_range(1usize..3) {
            let node = rng.gen_range(0..cfg.nodes);
            let at = rng.gen_range(0..total_guess);
            let down = if rng.gen_bool(0.5) {
                0
            } else {
                rng.gen_range(100_000..2_000_000)
            };
            plan = plan.crash(node, at, down);
        }
        if rng.gen_bool(0.7) {
            let a = rng.gen_range(0..total_guess / 2);
            let b = a + rng.gen_range(100_000u64..2_000_000);
            let island: Vec<usize> = (0..rng.gen_range(1..cfg.nodes / 2)).collect();
            plan = plan.partition(a, b, island);
        }
        let fab = FabricConfig::quick();
        cfg.threads = 1;
        let seq = run_cluster_faulted(app, &cfg, &corpus, &plan, &fab);
        let replay = run_cluster_faulted(app, &cfg, &corpus, &plan, &fab);
        assert_eq!(
            seq.iteration_ns, replay.iteration_ns,
            "seed {seed:#x}: replay"
        );
        assert_eq!(seq.fabric, replay.fabric, "seed {seed:#x}: replay counters");
        for jobs in [4usize, 0] {
            cfg.threads = jobs;
            let par = run_cluster_faulted(app, &cfg, &corpus, &plan, &fab);
            assert_eq!(
                seq.iteration_ns, par.iteration_ns,
                "seed {seed:#x}: jobs {jobs} diverged"
            );
            assert_eq!(seq.total_ns, par.total_ns, "seed {seed:#x}: jobs {jobs}");
            assert_eq!(
                seq.fabric, par.fabric,
                "seed {seed:#x}: jobs {jobs} counters"
            );
            assert_eq!(
                seq.coverage.len(),
                par.coverage.len(),
                "seed {seed:#x}: jobs {jobs} coverage"
            );
        }
        cfg.threads = 1;
    }
}

/// Any partition that heals conserves barrier completions exactly: the
/// retransmit + dedup path delivers every expected completion exactly
/// once — none lost, no duplicate counted.
#[test]
fn healed_partitions_conserve_barrier_completions() {
    use ksa_cluster::{run_cluster_faulted, ClusterConfig, FabricConfig};
    use ksa_desim::NodeFaultPlan;
    use ksa_tailbench::suite;
    let app = &suite()[1];
    let corpus = ksa_core::experiments::noise_corpus(ksa_core::experiments::Scale::Tiny);
    for case in 0..4u64 {
        let seed = base_seed("healed_partitions_conserve") ^ case.wrapping_mul(0x9e3779b97f4a7c15);
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = ClusterConfig::quick(false, false, seed);
        // Every window heals (end > start, never 0 = forever), so no
        // completion may be lost whatever the cut.
        let start = rng.gen_range(0u64..2_000_000);
        let end = start + rng.gen_range(100_000u64..2_500_000);
        let island: Vec<usize> = (0..cfg.nodes).filter(|_| rng.gen_bool(0.4)).collect();
        let plan = NodeFaultPlan::new(seed)
            .partition(start, end, island)
            .drop_prob_milli(rng.gen_range(0u32..300));
        let res = run_cluster_faulted(app, &cfg, &corpus, &plan, &FabricConfig::quick());
        let rep = res.fabric.expect("faulted run reports fabric");
        assert!(
            rep.conserved(),
            "seed {seed:#x}: {}/{} completions, {} lost, {} dups dropped",
            rep.completions,
            rep.expected_completions,
            rep.lost_completions,
            rep.dup_completions_dropped
        );
        assert_eq!(
            rep.expected_completions,
            cfg.nodes as u64 * cfg.iterations,
            "seed {seed:#x}: nobody crashed, every node owes every barrier"
        );
    }
}

/// A panicking task on the worker pool never takes siblings down with
/// it: for random task counts, worker counts and panic subsets, every
/// non-panicking slot returns its value and every panicking slot
/// surfaces its own payload, all in input order.
#[test]
fn pool_panics_stay_isolated() {
    use ksa_core::desim::pool::run_tasks;
    for_each_case("pool_panics_stay_isolated", |seed, rng| {
        let n = rng.gen_range(1usize..24);
        let jobs = rng.gen_range(1usize..6);
        let doomed: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.3)).collect();
        let tasks: Vec<_> = (0..n)
            .map(|i| {
                let dies = doomed[i];
                move || {
                    if dies {
                        panic!("task {i} down");
                    }
                    i * i
                }
            })
            .collect();
        let results = run_tasks(jobs, tasks);
        assert_eq!(results.len(), n, "seed {seed:#x}: slot count");
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(v) => {
                    assert!(!doomed[i], "seed {seed:#x}: slot {i} should have panicked");
                    assert_eq!(v, i * i, "seed {seed:#x}: slot {i} wrong value");
                }
                Err(payload) => {
                    assert!(doomed[i], "seed {seed:#x}: slot {i} panicked unexpectedly");
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .unwrap_or_default();
                    assert_eq!(
                        msg,
                        format!("task {i} down"),
                        "seed {seed:#x}: wrong payload"
                    );
                }
            }
        }
    });
}

/// The slab event queue's free-list reuse is invisible to simulation
/// outputs. Two layers:
///
/// 1. **Model check.** Under arbitrary random churn — pushes, pops and
///    cancellations interleaved, so freed slots are constantly recycled
///    and lazily-reclaimed cancelled entries linger in the heap — the
///    queue pops exactly the `(t, seq)` order of a reference model, a
///    second queue driven by the same script pops byte-identically, and
///    the slab never materializes more slots than the peak number of
///    outstanding heap entries (reuse actually happens).
/// 2. **Campaign check.** A full varbench campaign — the workload whose
///    sleep timers, lock queues and IPI fan-outs recycle slab slots
///    millions of times — produces identical FNV digests across pool
///    widths 1/4/auto and across a replay at every width.
#[test]
fn engine_slab_reuse_is_bit_identical() {
    use ksa_core::desim::{EventId, EventQueue};

    for_each_case("engine_slab_reuse_is_bit_identical", |seed, rng| {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut twin: EventQueue<u32> = EventQueue::new();
        // Reference model: the live key set. `seq` assignment is the
        // queue's own, mirrored here by counting pushes.
        let mut model: std::collections::BTreeSet<(u64, u64, u32)> = Default::default();
        let mut live: Vec<(EventId, EventId, (u64, u64, u32))> = Vec::new();
        let mut pushes = 0u64;
        let mut pops = 0u64;
        let mut peak_outstanding = 0usize;
        let mut payload = 0u32;
        for _ in 0..400 {
            match rng.gen_range(0u32..10) {
                // Push (~half the steps, so the queue stays populated).
                0..=4 => {
                    let t = rng.gen_range(0u64..50);
                    payload += 1;
                    let key = (t, pushes, payload);
                    let id = q.push(t, payload);
                    let tid = twin.push(t, payload);
                    pushes += 1;
                    model.insert(key);
                    live.push((id, tid, key));
                }
                // Pop: both queues must yield the model minimum.
                5..=7 => {
                    let got = q.pop();
                    assert_eq!(got, twin.pop(), "seed {seed:#x}: twin diverged");
                    match model.pop_first() {
                        Some((t, s, p)) => {
                            assert_eq!(got, Some((t, s, p)), "seed {seed:#x}: wrong pop");
                            pops += 1;
                            live.retain(|(_, _, key)| *key != (t, s, p));
                        }
                        None => assert_eq!(got, None, "seed {seed:#x}: pop from empty"),
                    }
                }
                // Cancel a random live event (stale ids exercised too:
                // popped entries stay in `live` until the retain above).
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = rng.gen_range(0..live.len());
                    let (id, tid, key) = live.swap_remove(i);
                    assert_eq!(
                        q.cancel(id),
                        twin.cancel(tid),
                        "seed {seed:#x}: cancel outcome diverged"
                    );
                    model.remove(&key);
                }
            }
            // Heap entries never exceed pushes - successful pops (cancels
            // leave their entry in place until it surfaces), so this is
            // an upper bound on the slab the queue may materialize.
            peak_outstanding = peak_outstanding.max((pushes - pops) as usize);
        }
        while let Some(got) = q.pop() {
            assert_eq!(Some(got), twin.pop(), "seed {seed:#x}: drain diverged");
            assert_eq!(
                Some(got),
                model.pop_first(),
                "seed {seed:#x}: drain order wrong"
            );
        }
        assert!(
            model.is_empty(),
            "seed {seed:#x}: model has leftover events"
        );
        assert!(
            q.slab_len() <= peak_outstanding,
            "seed {seed:#x}: slab grew to {} with peak {} outstanding — free list not reused",
            q.slab_len(),
            peak_outstanding
        );
    });

    // Campaign layer: slab recycling at scale must be invisible to the
    // simulated outputs for every pool width, twice.
    use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
    use ksa_core::experiments::{default_corpus, Scale};
    use ksa_core::varbench::{run_configs_jobs, RunConfig, RunResult};
    let corpus = default_corpus(Scale::Tiny).corpus;
    let machine = Machine {
        cores: 4,
        mem_mib: 2 * 1024,
    };
    let digest = |results: &[Result<RunResult, ksa_core::varbench::RunError>]| -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut fold = |v: u64| h = (h ^ v).wrapping_mul(0x100000001b3);
        for r in results {
            let r = r.as_ref().expect("trial failed");
            fold(r.sim_ns);
            fold(r.events);
            for site in &r.sites {
                fold(site.sysno as u64);
                for &s in site.samples.raw() {
                    fold(s);
                }
            }
            fold(r.attrib.grand_total().total);
            fold(r.contention.total_wait_ns());
        }
        h
    };
    let configs: Vec<RunConfig> = [53u64, 0xd00d]
        .into_iter()
        .flat_map(|seed| {
            [EnvKind::Native, EnvKind::Vm(2), EnvKind::Container(4)]
                .into_iter()
                .map(move |kind| RunConfig {
                    env: EnvSpec::new(machine, kind),
                    iterations: 2,
                    sync: true,
                    seed,
                    max_events: 0,
                    trace: false,
                    metrics: false,
                    spec: None,
                })
        })
        .collect();
    let baseline = digest(&run_configs_jobs(&configs, &corpus, 1));
    for jobs in [1usize, 4, 0] {
        assert_eq!(
            digest(&run_configs_jobs(&configs, &corpus, jobs)),
            baseline,
            "jobs {jobs}: slab-backed campaign not bit-identical on replay"
        );
    }
}

/// The fd/socket slot-reuse allocator is invisible to determinism: a
/// churn campaign's record-stream digest is bit-identical across pool
/// widths 1/4/auto and under replay.
#[test]
fn churn_campaign_is_bit_identical_across_jobs() {
    use ksa_core::envsim::EnvKind;
    use ksa_core::tailbench::churn::{run_churn_points, ChurnConfig};

    let configs: Vec<ChurnConfig> = [
        (EnvKind::Container(8), 31u64),
        (EnvKind::Vm(2), 32),
        (EnvKind::Vm(4), 33),
    ]
    .into_iter()
    .map(|(kind, seed)| ChurnConfig::quick(kind, 48, seed))
    .collect();

    let baseline = run_churn_points(&configs, 1);
    for jobs in [1usize, 4, 0] {
        let got = run_churn_points(&configs, jobs);
        for (i, (a, b)) in baseline.iter().zip(&got).enumerate() {
            assert_eq!(
                a.digest, b.digest,
                "point {i} (jobs {jobs}) digest diverged"
            );
            assert_eq!(a.sim_ns, b.sim_ns, "point {i} (jobs {jobs}) clock diverged");
            assert_eq!(
                a.events, b.events,
                "point {i} (jobs {jobs}) events diverged"
            );
        }
    }
}

/// Churn conservation: over random densities and deployment kinds,
/// every admitted tenant exits (arrived == exited + live, live == 0 at
/// the end) and the fd/socket tables end bounded by peak concurrency
/// with nothing still open — the slot-reuse invariant the pre-fix
/// push-only allocator violates on the first close.
#[test]
fn churn_conserves_tenants_and_descriptor_tables() {
    use ksa_core::envsim::EnvKind;
    use ksa_core::tailbench::churn::{run_churn, ChurnConfig};

    let mut rng =
        SmallRng::seed_from_u64(base_seed("churn_conserves_tenants_and_descriptor_tables"));
    for case in 0..6u64 {
        let density = rng.gen_range(8usize..96);
        let kind = match rng.gen_range(0u32..3) {
            0 => EnvKind::Container(rng.gen_range(2usize..9)),
            1 => EnvKind::Vm(2),
            _ => EnvKind::Vm(4),
        };
        let cfg = ChurnConfig::quick(kind, density, 0x5eed ^ case);
        let res = run_churn(&cfg);
        let ctx = format!("case {case} ({kind:?}, density {density})");
        assert_eq!(
            res.arrived, cfg.params.tenants as u64,
            "{ctx}: admissions lost"
        );
        assert_eq!(
            res.arrived, res.exited,
            "{ctx}: tenants leaked past the run"
        );
        assert!(res.requests_completed > 0, "{ctx}: no requests served");
        assert_eq!(res.fd_open_after, 0, "{ctx}: descriptors left open");
        assert_eq!(res.sock_live_after, 0, "{ctx}: sockets left live");
        assert!(
            res.tables_bounded,
            "{ctx}: table exceeded peak concurrency (fds {}/{}, socks {}/{})",
            res.fd_table_len, res.fd_peak, res.sock_table_len, res.sock_peak
        );
    }
}
