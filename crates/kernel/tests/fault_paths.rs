//! Error-path tests: injected faults must take real error paths — errno
//! set, state rolled back, error blocks covered — and never corrupt the
//! op sequences.

use ksa_desim::{
    CoreId, DeviceModel, Engine, EngineParams, FaultKind, FaultPlan, FaultSchedule, FaultState,
};
use ksa_kernel::coverage::{block_name, CoverageSet};
use ksa_kernel::dispatch::dispatch;
use ksa_kernel::instance::{InstanceConfig, KernelInstance, TenancyProfile, VirtProfile};
use ksa_kernel::params::CostModel;
use ksa_kernel::spec::SpecMask;
use ksa_kernel::syscalls::SysNo;
use ksa_kernel::Errno;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct Fixture {
    inst: KernelInstance,
    rng: SmallRng,
    cover: CoverageSet,
    faults: FaultState,
}

impl Fixture {
    fn new(plan: FaultPlan) -> Self {
        let mut eng: Engine<()> = Engine::new((), EngineParams::default(), 3);
        let disk = eng.add_device(DeviceModel::nvme_ssd());
        let cores: Vec<CoreId> = (0..2).map(|_| eng.add_core(Default::default())).collect();
        let inst = KernelInstance::build(
            &mut eng,
            0,
            InstanceConfig {
                cores,
                mem_mib: 256,
                virt: VirtProfile::native(),
                tenancy: TenancyProfile::none(),
                cost: CostModel::default(),
                disk,
                spec: SpecMask::full(),
            },
        );
        Self {
            inst,
            rng: SmallRng::seed_from_u64(17),
            cover: CoverageSet::new(),
            faults: FaultState::new(plan),
        }
    }

    fn call(&mut self, no: SysNo, args: &[u64]) -> ksa_kernel::ops::OpSeq {
        dispatch(
            &mut self.inst,
            0,
            no,
            args,
            &mut self.rng,
            &mut self.cover,
            &mut self.faults,
        )
    }

    fn covered(&self, name: &str) -> bool {
        self.cover.iter().any(|b| block_name(b) == name)
    }
}

#[test]
fn mmap_vma_alloc_failure_returns_enomem_without_vma() {
    let plan = FaultPlan::new(1).site(FaultKind::AllocFail, "mm.mmap.vma", FaultSchedule::Nth(1));
    let mut f = Fixture::new(plan);
    let seq = f.call(SysNo::Mmap, &[64, 1]);
    assert_eq!(seq.error, Some(Errno::ENOMEM));
    assert!(seq.locks_balanced());
    assert!(f.inst.state.slots[0].vmas.is_empty(), "no VMA on failure");
    assert!(f.covered("err.mm.mmap.enomem"));
    assert_eq!(f.faults.injected().len(), 1);

    // The second mmap succeeds: Nth(1) fired once.
    let seq = f.call(SysNo::Mmap, &[64, 1]);
    assert_eq!(seq.error, None);
    assert_eq!(f.inst.state.slots[0].vmas.len(), 1);
}

#[test]
fn read_disk_error_leaves_cache_and_offset_untouched() {
    let plan = FaultPlan::new(2).site(FaultKind::IoError, "io.read.disk", FaultSchedule::Nth(1));
    let mut f = Fixture::new(plan);
    let seq = f.call(SysNo::Open, &[5, 1]);
    let fd = seq.result;
    assert_eq!(seq.error, None);

    let seq = f.call(SysNo::Read, &[fd, 8192]);
    assert_eq!(seq.error, Some(Errno::EIO));
    assert!(seq.locks_balanced());
    assert_eq!(seq.result, 0, "failed read returns no bytes");
    let file_idx = 0;
    assert_eq!(f.inst.state.fs.files[file_idx].cached_pages, 0);
    assert_eq!(f.inst.state.slots[0].fds[fd as usize].offset_pages, 0);
    assert!(f.covered("err.io.read.eio"));

    // Retry hits the device successfully and fills the cache.
    let seq = f.call(SysNo::Read, &[fd, 8192]);
    assert_eq!(seq.error, None);
    assert!(f.inst.state.fs.files[file_idx].cached_pages > 0);
}

#[test]
fn fsync_journal_io_failure_keeps_backlog_and_skips_commit() {
    let plan = FaultPlan::new(3).site(
        FaultKind::IoError,
        "io.fsync.journal_io",
        FaultSchedule::Nth(1),
    );
    let mut f = Fixture::new(plan);
    let seq = f.call(SysNo::Open, &[5, 1]);
    let fd = seq.result;
    f.inst.state.fs.journal_dirty = 100;
    let commits = f.inst.state.fs.commits;

    let seq = f.call(SysNo::Fsync, &[fd, 0]);
    assert_eq!(seq.error, Some(Errno::EIO));
    assert!(seq.locks_balanced());
    assert_eq!(f.inst.state.fs.journal_dirty, 100, "backlog preserved");
    assert_eq!(f.inst.state.fs.commits, commits, "no commit recorded");

    // The next fsync commits the surviving transaction.
    let seq = f.call(SysNo::Fsync, &[fd, 0]);
    assert_eq!(seq.error, None);
    assert_eq!(f.inst.state.fs.journal_dirty, 0);
    assert_eq!(f.inst.state.fs.commits, commits + 1);
}

#[test]
fn clone_alloc_failure_touches_no_task_state() {
    let plan = FaultPlan::new(4).site(
        FaultKind::AllocFail,
        "sched.clone.task",
        FaultSchedule::Nth(1),
    );
    let mut f = Fixture::new(plan);
    let tasks = f.inst.state.sched.nr_tasks;
    let seq = f.call(SysNo::Clone, &[0]);
    assert_eq!(seq.error, Some(Errno::ENOMEM));
    assert_eq!(f.inst.state.sched.nr_tasks, tasks);
    assert_eq!(f.inst.state.slots[0].children_pending, 0);
    assert!(f.covered("err.sched.clone.enomem"));
}

#[test]
fn no_fault_execution_covers_zero_error_blocks() {
    let mut f = Fixture::new(FaultPlan::none());
    for round in 0..20u64 {
        for &no in &SysNo::ALL {
            let args = [round, round * 7 + 1, round % 3, 4096];
            let seq = f.call(no, &args);
            assert!(seq.locks_balanced());
        }
    }
    assert_eq!(
        f.cover.error_blocks(),
        0,
        "error blocks are reachable only through injection"
    );
}

#[test]
fn aggressive_injection_keeps_every_sequence_balanced() {
    let plan = FaultPlan::new(99)
        .kind_default(FaultKind::AllocFail, FaultSchedule::ProbMilli(300))
        .kind_default(FaultKind::IoError, FaultSchedule::ProbMilli(300))
        .kind_default(FaultKind::LockTimeout, FaultSchedule::ProbMilli(300));
    let mut f = Fixture::new(plan);
    for round in 0..30u64 {
        for &no in &SysNo::ALL {
            let args = [round, round * 13 + 5, round % 5, 8192];
            let seq = f.call(no, &args);
            assert!(
                seq.locks_balanced(),
                "{}: unbalanced locks under injection",
                no.name()
            );
        }
    }
    assert!(
        f.cover.error_blocks() > 0,
        "aggressive plan must reach error paths"
    );
    assert!(!f.faults.injected().is_empty());
}

#[test]
fn identical_plans_replay_identically() {
    let plan = FaultPlan::new(7)
        .kind_default(FaultKind::AllocFail, FaultSchedule::ProbMilli(250))
        .kind_default(FaultKind::IoError, FaultSchedule::EveryNth(3))
        .site(
            FaultKind::LockTimeout,
            "fs.rename.mutex",
            FaultSchedule::Nth(2),
        );
    let run = |plan: FaultPlan| {
        let mut f = Fixture::new(plan);
        let mut errors = Vec::new();
        let mut cpu = Vec::new();
        for round in 0..10u64 {
            for &no in &SysNo::ALL {
                let args = [round, round * 7 + 1, round % 3, 4096];
                let seq = f.call(no, &args);
                errors.push(seq.error);
                cpu.push(seq.cpu_ns());
            }
        }
        (errors, cpu, f.faults.injected().to_vec())
    };
    let a = run(plan.clone());
    let b = run(plan);
    assert_eq!(a.0, b.0, "errno stream must be bit-identical");
    assert_eq!(a.1, b.1, "cpu cost stream must be bit-identical");
    assert_eq!(a.2, b.2, "injection log must be bit-identical");
}
