//! Dispatch-level tests: every syscall compiles to a sane op sequence on
//! every environment flavour, and the logical state stays consistent.

use ksa_desim::{CoreId, DeviceModel, Engine, EngineParams, FaultState};
use ksa_kernel::coverage::CoverageSet;
use ksa_kernel::dispatch::dispatch;
use ksa_kernel::instance::{InstanceConfig, KernelInstance, TenancyProfile, VirtProfile};
use ksa_kernel::params::CostModel;
use ksa_kernel::spec::SpecMask;
use ksa_kernel::syscalls::SysNo;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn build(n_cores: usize, virt: VirtProfile, tenancy: TenancyProfile) -> KernelInstance {
    let mut eng: Engine<()> = Engine::new((), EngineParams::default(), 5);
    let disk = eng.add_device(DeviceModel::nvme_ssd());
    let cores: Vec<CoreId> = (0..n_cores)
        .map(|_| eng.add_core(Default::default()))
        .collect();
    KernelInstance::build(
        &mut eng,
        0,
        InstanceConfig {
            cores,
            mem_mib: 512,
            virt,
            tenancy,
            cost: CostModel::default(),
            disk,
            spec: SpecMask::full(),
        },
    )
}

/// Calls every syscall several times with varied args; all op sequences
/// must have balanced locks and the handler must not panic.
fn exercise_all(mut inst: KernelInstance, seed: u64) -> KernelInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut faults = FaultState::default();
    let mut cover = CoverageSet::new();
    for round in 0..30u64 {
        for &no in &SysNo::ALL {
            let args: Vec<u64> = (0..4).map(|i| rng.gen::<u64>() ^ (round + i)).collect();
            let seq = dispatch(&mut inst, 0, no, &args, &mut rng, &mut cover, &mut faults);
            assert!(
                seq.locks_balanced(),
                "{}: unbalanced locks (args {:?})",
                no.name(),
                args
            );
        }
    }
    assert!(!cover.is_empty());
    inst
}

#[test]
fn all_syscalls_compile_native() {
    let inst = exercise_all(build(4, VirtProfile::native(), TenancyProfile::none()), 11);
    assert!(inst.syscalls >= 30 * SysNo::ALL.len() as u64);
}

#[test]
fn all_syscalls_compile_kvm() {
    exercise_all(build(1, VirtProfile::kvm(), TenancyProfile::none()), 12);
}

#[test]
fn all_syscalls_compile_containers() {
    exercise_all(
        build(4, VirtProfile::native(), TenancyProfile::containers(16)),
        13,
    );
}

#[test]
fn coverage_grows_with_argument_diversity() {
    let mut inst = build(2, VirtProfile::native(), TenancyProfile::none());
    let mut rng = SmallRng::seed_from_u64(7);
    let mut faults = FaultState::default();
    let mut c1 = CoverageSet::new();
    // One getpid only covers a couple of blocks.
    dispatch(
        &mut inst,
        0,
        SysNo::Getpid,
        &[0],
        &mut rng,
        &mut c1,
        &mut faults,
    );
    let few = c1.len();
    let mut c2 = CoverageSet::new();
    for i in 0..50 {
        dispatch(
            &mut inst,
            0,
            SysNo::Open,
            &[i, i % 2],
            &mut rng,
            &mut c2,
            &mut faults,
        );
        dispatch(
            &mut inst,
            0,
            SysNo::Write,
            &[i, i * 1000],
            &mut rng,
            &mut c2,
            &mut faults,
        );
        dispatch(
            &mut inst,
            0,
            SysNo::Munmap,
            &[i],
            &mut rng,
            &mut c2,
            &mut faults,
        );
        dispatch(
            &mut inst,
            0,
            SysNo::Mmap,
            &[i * 3, i % 2],
            &mut rng,
            &mut c2,
            &mut faults,
        );
    }
    assert!(
        c2.len() > few + 5,
        "diverse calls should cover many more blocks ({} vs {few})",
        c2.len()
    );
}

#[test]
fn state_effects_are_visible() {
    let mut inst = build(1, VirtProfile::native(), TenancyProfile::none());
    let mut rng = SmallRng::seed_from_u64(9);
    let mut faults = FaultState::default();
    let mut cover = CoverageSet::new();

    // open(O_CREAT) installs an fd.
    let seq = dispatch(
        &mut inst,
        0,
        SysNo::Open,
        &[5, 1],
        &mut rng,
        &mut cover,
        &mut faults,
    );
    let fd = seq.result;
    assert_eq!(inst.state.slots[0].fds.len(), 1);
    assert_eq!(fd, 0);

    // write dirties pages.
    let before = inst.state.mm.dirty_pages;
    dispatch(
        &mut inst,
        0,
        SysNo::Write,
        &[fd, 32_768],
        &mut rng,
        &mut cover,
        &mut faults,
    );
    assert!(inst.state.mm.dirty_pages > before);

    // fsync cleans the journal.
    inst.state.fs.journal_dirty += 100;
    dispatch(
        &mut inst,
        0,
        SysNo::Fsync,
        &[fd, 0],
        &mut rng,
        &mut cover,
        &mut faults,
    );
    assert_eq!(inst.state.fs.journal_dirty, 0);

    // mmap then munmap toggles the vma.
    let seq = dispatch(
        &mut inst,
        0,
        SysNo::Mmap,
        &[64, 1],
        &mut rng,
        &mut cover,
        &mut faults,
    );
    assert!(seq.result >= 1);
    assert!(inst.state.slots[0].vmas[0].mapped);
    dispatch(
        &mut inst,
        0,
        SysNo::Munmap,
        &[0],
        &mut rng,
        &mut cover,
        &mut faults,
    );
    assert!(!inst.state.slots[0].vmas[0].mapped);

    // clone + wait4 round-trips the task counters.
    let tasks = inst.state.sched.nr_tasks;
    dispatch(
        &mut inst,
        0,
        SysNo::Clone,
        &[0],
        &mut rng,
        &mut cover,
        &mut faults,
    );
    assert_eq!(inst.state.sched.nr_tasks, tasks + 1);
    assert_eq!(inst.state.slots[0].children_pending, 1);
    dispatch(
        &mut inst,
        0,
        SysNo::Wait4,
        &[0],
        &mut rng,
        &mut cover,
        &mut faults,
    );
    assert_eq!(inst.state.sched.nr_tasks, tasks);
    assert_eq!(inst.state.slots[0].children_pending, 0);
}

#[test]
fn tlb_ops_absent_on_uniprocessor_runner() {
    use ksa_kernel::exec::OpRunner;
    let mut uni = build(1, VirtProfile::native(), TenancyProfile::none());
    let mut big = build(8, VirtProfile::native(), TenancyProfile::none());
    let mut rng = SmallRng::seed_from_u64(3);
    let mut faults = FaultState::default();
    let mut cover = CoverageSet::new();
    for inst in [&mut uni, &mut big] {
        dispatch(
            inst,
            0,
            SysNo::Mmap,
            &[64, 1],
            &mut rng,
            &mut cover,
            &mut faults,
        );
    }
    let s_uni = dispatch(
        &mut uni,
        0,
        SysNo::Munmap,
        &[0],
        &mut rng,
        &mut cover,
        &mut faults,
    );
    let s_big = dispatch(
        &mut big,
        0,
        SysNo::Munmap,
        &[0],
        &mut rng,
        &mut cover,
        &mut faults,
    );
    let r_uni = OpRunner::new(&s_uni, &uni, uni.cores[0]);
    let r_big = OpRunner::new(&s_big, &big, big.cores[0]);
    assert_eq!(r_uni.ipi_count(), 0);
    assert_eq!(r_big.ipi_count(), 1);
}

#[test]
fn container_tenancy_adds_cgroup_paths() {
    let mut inst = build(2, VirtProfile::native(), TenancyProfile::containers(64));
    let mut rng = SmallRng::seed_from_u64(21);
    let mut faults = FaultState::default();
    let mut cover = CoverageSet::new();
    // Drive enough charges to hit the periodic flush.
    dispatch(
        &mut inst,
        0,
        SysNo::Open,
        &[1, 1],
        &mut rng,
        &mut cover,
        &mut faults,
    );
    for i in 0..200 {
        dispatch(
            &mut inst,
            0,
            SysNo::Write,
            &[0, 4096 + i],
            &mut rng,
            &mut cover,
            &mut faults,
        );
    }
    let names: Vec<&str> = cover.iter().map(ksa_kernel::coverage::block_name).collect();
    assert!(names.contains(&"cgroup.charge"));
    assert!(
        names.contains(&"cgroup.stat_flush"),
        "200 charges must cross the flush threshold"
    );
}

#[test]
fn dispatch_is_deterministic() {
    let run = |seed: u64| {
        let mut inst = build(2, VirtProfile::native(), TenancyProfile::none());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut faults = FaultState::default();
        let mut cover = CoverageSet::new();
        let mut sig = Vec::new();
        for round in 0..10u64 {
            for &no in &SysNo::ALL {
                let args = [round, round * 7 + 1, round % 3, 4096];
                let seq = dispatch(&mut inst, 0, no, &args, &mut rng, &mut cover, &mut faults);
                sig.push(seq.cpu_ns());
            }
        }
        sig
    };
    assert_eq!(run(42), run(42));
}
