//! Per-subsystem behavioural tests: each handler's state effects and the
//! branch structure the coverage blocks promise.

use ksa_desim::{CoreId, DeviceModel, Engine, EngineParams, FaultState};
use ksa_kernel::coverage::{block_name, CoverageSet};
use ksa_kernel::dispatch::dispatch;
use ksa_kernel::instance::{InstanceConfig, KernelInstance, TenancyProfile, VirtProfile};
use ksa_kernel::ops::KOp;
use ksa_kernel::params::CostModel;
use ksa_kernel::spec::SpecMask;
use ksa_kernel::state::FdKind;
use ksa_kernel::syscalls::SysNo;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct Fixture {
    inst: KernelInstance,
    rng: SmallRng,
    cover: CoverageSet,
    faults: FaultState,
}

impl Fixture {
    fn new(cores: usize) -> Self {
        let mut eng: Engine<()> = Engine::new((), EngineParams::default(), 3);
        let disk = eng.add_device(DeviceModel::nvme_ssd());
        let cs: Vec<CoreId> = (0..cores)
            .map(|_| eng.add_core(Default::default()))
            .collect();
        let inst = KernelInstance::build(
            &mut eng,
            0,
            InstanceConfig {
                cores: cs,
                mem_mib: 256,
                virt: VirtProfile::native(),
                tenancy: TenancyProfile::none(),
                cost: CostModel::default(),
                disk,
                spec: SpecMask::full(),
            },
        );
        Self {
            inst,
            rng: SmallRng::seed_from_u64(17),
            cover: CoverageSet::new(),
            faults: FaultState::default(),
        }
    }

    fn call(&mut self, no: SysNo, args: &[u64]) -> ksa_kernel::ops::OpSeq {
        dispatch(
            &mut self.inst,
            0,
            no,
            args,
            &mut self.rng,
            &mut self.cover,
            &mut self.faults,
        )
    }

    fn covered(&self, name: &str) -> bool {
        self.cover.iter().any(|b| block_name(b) == name)
    }
}

// ------------------------------------------------------------ filesystem

#[test]
fn open_existing_vs_create_take_different_paths() {
    let mut f = Fixture::new(2);
    let s1 = f.call(SysNo::Open, &[4, 1]); // create
    assert!(f.covered("fs.create"));
    let fd = s1.result;
    f.call(SysNo::Close, &[fd]);
    f.call(SysNo::Open, &[4, 0]); // reopen same name
    assert!(f.covered("fs.open.existing"));
    // Opening a name that never existed without O_CREAT fails cheaply.
    f.call(SysNo::Open, &[9, 0]);
    assert!(f.covered("fs.lookup.enoent"));
}

#[test]
fn rename_moves_the_name() {
    let mut f = Fixture::new(1);
    f.call(SysNo::Open, &[2, 1]);
    let before = f.inst.state.fs.journal_dirty;
    f.call(SysNo::Rename, &[2, 7]);
    assert!(f.covered("fs.rename"));
    assert!(f.inst.state.fs.journal_dirty > before, "rename journals");
    // The old name is gone; the new name resolves.
    f.call(SysNo::Stat, &[2]);
    assert!(f.covered("fs.lookup.enoent"));
    f.call(SysNo::Stat, &[7]);
    assert!(f.covered("fs.stat"));
}

#[test]
fn unlink_drops_dentries_and_page_cache() {
    let mut f = Fixture::new(1);
    let s = f.call(SysNo::Open, &[3, 1]);
    f.call(SysNo::Write, &[s.result, 50_000]);
    let dentries = f.inst.state.fs.dentries;
    f.call(SysNo::Unlink, &[3]);
    assert!(f.covered("fs.unlink"));
    assert!(f.covered("fs.unlink.invalidate"));
    assert!(f.inst.state.fs.dentries < dentries);
}

// ------------------------------------------------------------ file I/O

#[test]
fn read_hits_after_write_fills_cache() {
    let mut f = Fixture::new(1);
    let fd = f.call(SysNo::Open, &[1, 1]).result;
    f.call(SysNo::Write, &[fd, 60_000]);
    f.call(SysNo::Lseek, &[fd, 0]);
    f.call(SysNo::Read, &[fd, 8_000]);
    assert!(f.covered("io.read.hit"), "cache must be warm after write");
}

#[test]
fn cold_read_goes_to_disk() {
    let mut f = Fixture::new(1);
    let fd = f.call(SysNo::Open, &[1, 1]).result;
    // Fresh file: no cached pages yet.
    let seq = f.call(SysNo::Read, &[fd, 8_000]);
    assert!(f.covered("io.read.miss"));
    assert!(
        seq.ops
            .iter()
            .any(|op| matches!(op, KOp::Io { write: false, .. })),
        "miss must issue device I/O"
    );
}

#[test]
fn fsync_group_commit_skips_when_clean() {
    let mut f = Fixture::new(1);
    let fd = f.call(SysNo::Open, &[1, 1]).result;
    f.call(SysNo::Write, &[fd, 30_000]);
    f.call(SysNo::Fsync, &[fd]);
    assert!(f.covered("io.fsync.commit"));
    assert_eq!(f.inst.state.fs.journal_dirty, 0);
    // Second fsync with nothing dirty: the cheap path.
    f.call(SysNo::Fsync, &[fd]);
    assert!(f.covered("io.fsync.clean"));
}

#[test]
fn write_throttles_past_the_dirty_threshold() {
    let mut f = Fixture::new(1);
    let fd = f.call(SysNo::Open, &[1, 1]).result;
    // Force the instance over its dirty threshold.
    f.inst.state.mm.dirty_pages = f.inst.state.mm.total_pages / 10;
    f.call(SysNo::Write, &[fd, 30_000]);
    assert!(f.covered("io.write.throttled"), "foreground writeback");
}

// ------------------------------------------------------------ memory

#[test]
fn munmap_emits_shootdown_and_frees_populated_pages() {
    let mut f = Fixture::new(4);
    f.call(SysNo::Mmap, &[64, 1]); // populated
    let pcp_before = f.inst.state.slots[0].pcp_pages;
    let seq = f.call(SysNo::Munmap, &[0]);
    assert!(seq.ops.iter().any(|op| matches!(op, KOp::Tlb { .. })));
    let slot = &f.inst.state.slots[0];
    assert!(!slot.vmas[0].mapped);
    assert_eq!(slot.vmas[0].populated, 0);
    // Pages returned to the allocator (pcp or zone).
    assert!(
        slot.pcp_pages >= pcp_before || f.covered("mm.free.zone_spill"),
        "freed pages must go somewhere"
    );
}

#[test]
fn unpopulated_mmap_frees_nothing_on_munmap() {
    let mut f = Fixture::new(2);
    f.call(SysNo::Mmap, &[64, 0]); // no MAP_POPULATE
    assert_eq!(f.inst.state.slots[0].vmas[0].populated, 0);
    let pcp = f.inst.state.slots[0].pcp_pages;
    f.call(SysNo::Munmap, &[0]);
    assert_eq!(f.inst.state.slots[0].pcp_pages, pcp, "nothing to free");
}

#[test]
fn madvise_willneed_then_dontneed_round_trips_population() {
    let mut f = Fixture::new(1);
    f.call(SysNo::Mmap, &[40, 0]);
    f.call(SysNo::Madvise, &[0, 1]); // WILLNEED
    let populated = f.inst.state.slots[0].vmas[0].populated;
    assert!(populated > 0);
    f.call(SysNo::Madvise, &[0, 0]); // DONTNEED
    assert_eq!(f.inst.state.slots[0].vmas[0].populated, 0);
}

#[test]
fn direct_reclaim_fires_under_memory_pressure() {
    let mut f = Fixture::new(1);
    f.inst.state.mm.free_pages = 10; // under the watermark
    f.inst.state.slots[0].pcp_pages = 0;
    f.call(SysNo::Mmap, &[64, 1]);
    assert!(f.covered("mm.alloc.direct_reclaim"));
}

// ------------------------------------------------------------ IPC

#[test]
fn pipe_fds_behave_as_pipes() {
    let mut f = Fixture::new(1);
    let r = f.call(SysNo::Pipe2, &[]).result as usize;
    let slot = &f.inst.state.slots[0];
    assert!(matches!(slot.fds[r].kind, FdKind::Pipe { read_end: true }));
    assert!(matches!(
        slot.fds[r + 1].kind,
        FdKind::Pipe { read_end: false }
    ));
    f.call(SysNo::Read, &[r as u64, 512]);
    assert!(f.covered("io.read.pipe"));
}

#[test]
fn msg_queue_send_then_receive() {
    let mut f = Fixture::new(1);
    let q = f.call(SysNo::Msgget, &[]).result;
    f.call(SysNo::Msgsnd, &[q, 1_000]);
    assert_eq!(f.inst.state.ipc.msgqs[q as usize].msgs, 1);
    f.call(SysNo::Msgrcv, &[q, 1_000]);
    assert!(f.covered("ipc.msgrcv.dequeue"));
    assert_eq!(f.inst.state.ipc.msgqs[q as usize].msgs, 0);
    f.call(SysNo::Msgrcv, &[q, 1_000]);
    assert!(f.covered("ipc.msgrcv.eagain"));
}

#[test]
fn shm_attach_detach_tracks_attaches() {
    let mut f = Fixture::new(2);
    let id = f.call(SysNo::Shmget, &[64]).result;
    f.call(SysNo::Shmat, &[id]);
    assert_eq!(f.inst.state.ipc.shms[id as usize].attaches, 1);
    let seq = f.call(SysNo::Shmdt, &[0]);
    assert_eq!(f.inst.state.ipc.shms[id as usize].attaches, 0);
    assert!(seq.ops.iter().any(|op| matches!(op, KOp::Tlb { .. })));
}

#[test]
fn same_futex_address_hashes_to_same_bucket_lock() {
    // Two dispatches with the same uaddr must serialize on one bucket;
    // different addresses spread. We check via the emitted lock ids.
    let mut f = Fixture::new(2);
    let lock_of = |f: &mut Fixture, addr: u64| {
        let seq = f.call(SysNo::FutexWake, &[addr, 1]);
        seq.ops
            .iter()
            .find_map(|op| match op {
                KOp::Lock(l, _) => Some(*l),
                _ => None,
            })
            .expect("futex takes a bucket lock")
    };
    let a1 = lock_of(&mut f, 5);
    let a2 = lock_of(&mut f, 5);
    let b = lock_of(&mut f, 6);
    assert_eq!(a1, a2, "same address, same bucket");
    assert_ne!(a1, b, "adjacent addresses spread");
}

// ------------------------------------------------------------ perms

#[test]
fn setuid_changes_identity_and_syncs_rcu() {
    let mut f = Fixture::new(4);
    let uid = f.inst.state.slots[0].uid;
    let target = (uid + 1) % 4;
    let seq = f.call(SysNo::Setuid, &[target]);
    assert!(f.covered("perm.setuid.change"));
    assert_eq!(f.inst.state.slots[0].uid, target);
    assert!(
        seq.ops.contains(&KOp::RcuSync),
        "cred publication waits a GP"
    );
    // Setting the same uid again is the cheap branch.
    f.call(SysNo::Setuid, &[target]);
    assert!(f.covered("perm.setuid.same"));
}

#[test]
fn umask_returns_old_value() {
    let mut f = Fixture::new(1);
    let old = f.inst.state.slots[0].umask;
    let seq = f.call(SysNo::Umask, &[0o777]);
    assert_eq!(seq.result, old);
    assert_eq!(f.inst.state.slots[0].umask, 0o777);
}

// ------------------------------------------------------------ sched

#[test]
fn nanosleep_sleeps_off_cpu() {
    let mut f = Fixture::new(1);
    let seq = f.call(SysNo::Nanosleep, &[25_000]);
    assert!(seq.ops.iter().any(|op| matches!(op, KOp::SleepNs(_))));
}

#[test]
fn setaffinity_migration_locks_both_runqueues() {
    let mut f = Fixture::new(4);
    let seq = f.call(SysNo::SchedSetaffinity, &[2]); // slot 0 -> core 2
    assert!(f.covered("sched.setaffinity.migrate"));
    let locks: Vec<_> = seq
        .ops
        .iter()
        .filter(|op| matches!(op, KOp::Lock(..)))
        .collect();
    assert!(locks.len() >= 2, "migration needs both runqueues");
}
