//! Syscall dispatch: compiles one call into micro-ops.
//!
//! [`dispatch`] wraps the subsystem handlers with the costs every call
//! pays (syscall entry/exit) and the per-tenancy extras (container
//! namespace hops, cgroup accounting), then routes by syscall number.
//!
//! Handlers receive an [`HCtx`]: the instance, the calling slot, an RNG, a
//! coverage sink and the op sequence under construction, plus helper
//! methods for the recurring kernel patterns (page allocation with
//! per-CPU magazines and direct reclaim, slab allocation, path walks).

use ksa_desim::{FaultKind, FaultState, LockId, LockMode, Ns};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::category::Category;
use crate::coverage::{
    block, block_bucketed, block_err, cov, cov_bucket, fail, BlockId, CoverageSet,
};
use crate::errno::Errno;
use crate::instance::KernelInstance;
use crate::ops::{KOp, OpSeq};
use crate::state::{Fd, FdKind, NAMES_PER_SLOT};
use crate::subsystems;
use crate::syscalls::SysNo;

/// Handler context: everything a syscall handler needs while compiling a
/// call into micro-ops.
pub struct HCtx<'a> {
    /// The kernel instance serving the call.
    pub k: &'a mut KernelInstance,
    /// Slot (per-core app process) issuing the call.
    pub slot: usize,
    /// Workload RNG (deterministic, owned by the executor).
    pub rng: &'a mut SmallRng,
    /// Coverage sink for this execution.
    pub cover: &'a mut CoverageSet,
    /// Fault-injection state consulted at failable points.
    pub faults: &'a mut FaultState,
    /// The op sequence under construction (caller-held scratch; reused
    /// across calls on the steady-state path).
    pub seq: &'a mut OpSeq,
}

impl<'a> HCtx<'a> {
    /// Records coverage of an already-interned block — the hot sink the
    /// [`crate::coverage::cov!`]-family macros feed with per-call-site
    /// cached ids (no registry lock on the steady-state path).
    #[inline]
    pub fn cover_id(&mut self, id: BlockId) {
        self.cover.insert(id);
        self.k.coverage.insert(id);
    }

    /// Records coverage of a named kernel path. For *dynamic* names only
    /// (a name picked at runtime); literal sites use `cov!`, which caches
    /// the interned id at the call site.
    pub fn cover(&mut self, name: &'static str) {
        self.cover_id(block(name));
    }

    /// Records coverage of a parameterized path (size/depth classes —
    /// the analogue of basic blocks inside size-dependent code). Dynamic
    /// names only; literal sites use `cov_bucket!`.
    pub fn cover_bucket(&mut self, name: &'static str, bucket: u32) {
        self.cover_id(block_bucketed(name, bucket));
    }

    /// Log2 size class helper for bucketed coverage.
    pub fn size_class(v: u64) -> u32 {
        64 - v.max(1).leading_zeros()
    }

    /// Records coverage of an error-path block (interned under the `err.`
    /// prefix; see [`crate::coverage::block_err`]). Dynamic names only;
    /// err-tagged literal sites terminate through `fail!` instead.
    pub fn cover_err(&mut self, name: &'static str) {
        self.cover_id(block_err(name));
    }

    /// Asks the fault plan whether `(kind, site)` fails at this hit.
    pub fn inject(&mut self, kind: FaultKind, site: &'static str) -> bool {
        self.faults.should_fail(kind, site)
    }

    /// Terminates the call on an error path with an already-interned
    /// error block: records it, charges the unwind cost and tags the
    /// sequence with `errno` — the sink behind the `fail!` macro.
    /// Handlers still perform their own state cleanup before returning.
    pub fn fail_id(&mut self, errno: Errno, block: BlockId) {
        self.cover_id(block);
        self.cpu(250);
        self.seq.error = Some(errno);
    }

    /// [`Self::fail_id`] for dynamic block names; literal sites use the
    /// `fail!` macro.
    pub fn fail(&mut self, errno: Errno, block: &'static str) {
        self.fail_id(errno, block_err(block));
    }

    /// Fallible page allocation: consults the fault plan before the real
    /// allocation. A forced failure still pays a truncated direct-reclaim
    /// attempt (the kernel scans before giving up) and returns `false`;
    /// the caller takes its ENOMEM path.
    pub fn try_alloc_pages(&mut self, pages: u64, site: &'static str) -> bool {
        if pages > 0 && self.faults.should_fail(FaultKind::AllocFail, site) {
            let cost = self.cost();
            let scan = (self.k.state.mm.lru_pages / 16).clamp(32, 4_096);
            self.cpu(cost.lru_scan_per_page * scan / 4);
            return false;
        }
        self.alloc_pages(pages);
        true
    }

    /// Fallible slab allocation (see [`Self::try_alloc_pages`]).
    pub fn try_slab_alloc(&mut self, objs: u64, site: &'static str) -> bool {
        if objs > 0 && self.faults.should_fail(FaultKind::AllocFail, site) {
            let cost = self.cost();
            self.cpu(cost.slab_refill / 2);
            return false;
        }
        self.slab_alloc(objs);
        true
    }

    /// Fallible exclusive lock acquire: a forced timeout pays a bounded
    /// backoff spin and returns `false` *without* taking the lock, so
    /// sequences stay balanced; the caller takes its EAGAIN path.
    pub fn try_lock(&mut self, l: LockId, site: &'static str) -> bool {
        if self.faults.should_fail(FaultKind::LockTimeout, site) {
            self.cpu(1_500);
            return false;
        }
        self.lock(l);
        true
    }

    /// Fallible block I/O: the request is issued either way (the error
    /// comes back on completion, so the device round-trip is still paid),
    /// but a forced failure returns `false` and the caller takes its EIO
    /// path instead of completing the transfer.
    pub fn try_io(&mut self, bytes: u64, write: bool, site: &'static str) -> bool {
        if self.faults.should_fail(FaultKind::IoError, site) {
            self.push(KOp::Io {
                bytes: bytes.min(4_096),
                write,
            });
            return false;
        }
        self.push(KOp::Io { bytes, write });
        true
    }

    /// Plain kernel CPU work.
    pub fn cpu(&mut self, ns: Ns) {
        self.seq.cpu(ns);
    }

    /// Memory-touching CPU work (EPT-sensitive under virtualization).
    pub fn mem(&mut self, ns: Ns) {
        self.seq.mem(ns);
    }

    /// Pushes a raw op.
    pub fn push(&mut self, op: KOp) {
        self.seq.push(op);
    }

    /// Exclusive lock acquire.
    pub fn lock(&mut self, l: LockId) {
        self.seq.push(KOp::Lock(l, LockMode::Exclusive));
    }

    /// Shared (reader) lock acquire.
    pub fn rlock(&mut self, l: LockId) {
        self.seq.push(KOp::Lock(l, LockMode::Shared));
    }

    /// Lock release.
    pub fn unlock(&mut self, l: LockId) {
        self.seq.push(KOp::Unlock(l));
    }

    /// Cost-model accessor (copy, so no borrow conflicts).
    pub fn cost(&self) -> crate::params::CostModel {
        self.k.cost
    }

    /// Allocates `pages` pages: per-CPU magazine fast path, zone-locked
    /// refill, and direct reclaim when the instance is under memory
    /// pressure (the paper's surface-scaled allocation stall).
    pub fn alloc_pages(&mut self, pages: u64) {
        let cost = self.cost();
        let slot = self.slot;
        if pages == 0 {
            return;
        }
        // Fast path: per-CPU page lists.
        let pcp = self.k.state.slots[slot].pcp_pages;
        if pages <= pcp {
            cov!(self, "mm.alloc.pcp");
            self.k.state.slots[slot].pcp_pages -= pages;
            self.cpu(40 * pages.min(16));
        } else {
            // Refill from the buddy allocator under the zone lock.
            cov!(self, "mm.alloc.zone_refill");
            let zone = self.k.locks.zone;
            let batch = pages + 128;
            self.lock(zone);
            self.cpu(cost.zone_refill + 25 * pages);
            self.unlock(zone);
            self.k.state.slots[slot].pcp_pages = 128;
            let mm = &mut self.k.state.mm;
            mm.free_pages = mm.free_pages.saturating_sub(batch);
        }
        // Direct reclaim when free memory dips under the watermark.
        let low = self.k.state.mm.low_watermark(cost.min_free_pct);
        if self.k.state.mm.free_pages < low {
            cov!(self, "mm.alloc.direct_reclaim");
            let scan = (self.k.state.mm.lru_pages / 8).clamp(32, 16_384);
            let lru = self.k.locks.lru;
            self.lock(lru);
            self.cpu(cost.lru_scan_per_page * scan);
            self.unlock(lru);
            let mm = &mut self.k.state.mm;
            mm.free_pages += scan / 2;
            mm.lru_pages = mm.lru_pages.saturating_sub(scan / 2);
        }
    }

    /// Returns `pages` pages to the allocator (per-CPU list; spills to the
    /// zone under its lock).
    pub fn free_pages(&mut self, pages: u64) {
        let slot = self.slot;
        self.k.state.slots[slot].pcp_pages += pages;
        if self.k.state.slots[slot].pcp_pages > 512 {
            cov!(self, "mm.free.zone_spill");
            let spill = self.k.state.slots[slot].pcp_pages - 128;
            let zone = self.k.locks.zone;
            let cost = self.cost();
            self.lock(zone);
            self.cpu(cost.zone_refill / 2 + 10 * spill.min(256));
            self.unlock(zone);
            self.k.state.slots[slot].pcp_pages = 128;
            self.k.state.mm.free_pages += spill;
        } else {
            self.cpu(20 * pages.min(16));
        }
    }

    /// Allocates `objs` slab objects (dentries, inodes, cred structs):
    /// per-CPU magazine fast path, depot-locked refill.
    pub fn slab_alloc(&mut self, objs: u64) {
        let cost = self.cost();
        let slot = self.slot;
        let have = self.k.state.slots[slot].slab_objs;
        if objs <= have {
            cov!(self, "mm.slab.fast");
            self.k.state.slots[slot].slab_objs -= objs;
            self.cpu(cost.slab_fast * objs.min(8));
        } else {
            cov!(self, "mm.slab.depot");
            let depot = self.k.locks.slab_depot;
            self.lock(depot);
            self.cpu(cost.slab_refill);
            self.unlock(depot);
            self.k.state.slots[slot].slab_objs = 256;
        }
    }

    /// Walks a path of `depth` components. `cached` says whether the
    /// terminal dentry is resident: the RCU fast path costs per-component
    /// work plus hash-chain pressure from the *shared* dcache; a cold
    /// terminal pays the dcache-locked insert and an inode read. Returns
    /// `false` when the walk fails (dentry allocation or inode read under
    /// fault injection); the error is already recorded on the sequence
    /// and the caller just unwinds its own state.
    #[must_use]
    pub fn path_walk(&mut self, depth: u32, cached: bool) -> bool {
        let cost = self.cost();
        let depth = depth + self.k.tenancy.ns_depth;
        let chain = cost.dentry_chain_per_1k * (self.k.state.fs.dentries / 1000);
        cov!(self, "fs.path_walk");
        self.cpu((cost.dentry_hop + chain) * depth as Ns);
        if !cached {
            cov!(self, "fs.path_walk.cold");
            if !self.try_slab_alloc(2, "fs.path_walk.dentry") {
                // dentry + inode allocation failed: nothing was inserted.
                fail!(self, Errno::ENOMEM, "fs.path_walk.enomem");
                return false;
            }
            let dcache = self.k.locks.dcache;
            self.lock(dcache);
            self.cpu(cost.dentry_insert);
            self.unlock(dcache);
            let sb = self.k.locks.inode_sb;
            self.lock(sb);
            self.cpu(cost.inode_read_cpu);
            self.unlock(sb);
            if !self.try_io(4096, false, "fs.inode_read") {
                // The inode never arrived: the dentry stays negative.
                fail!(self, Errno::EIO, "fs.path_walk.eio");
                return false;
            }
            self.k.state.fs.dentries += 1;
        }
        true
    }

    /// cgroup charge bookkeeping for memory/I/O in containerized
    /// instances: every `cgroup_flush_every` charges, per-CPU stat deltas
    /// flush into the shared hierarchy under the cgroup lock, with cost
    /// proportional to the number of containers (Table 3's mechanism).
    pub fn cgroup_charge(&mut self) {
        if self.k.tenancy.containers == 0 {
            return;
        }
        cov!(self, "cgroup.charge");
        self.cpu(60);
        self.k.state.tenancy.charges_since_flush += 1;
        if self.k.state.tenancy.charges_since_flush >= self.k.tenancy.cgroup_flush_every {
            cov!(self, "cgroup.stat_flush");
            self.k.state.tenancy.charges_since_flush = 0;
            let lock = self.k.locks.cgroup;
            let work = 400 + 90 * self.k.tenancy.containers as Ns;
            self.lock(lock);
            self.cpu(work);
            self.unlock(lock);
        }
    }

    /// Installs a descriptor in the slot's fd table under the fd-table
    /// lock. POSIX lowest-free-fd semantics: the lowest `Closed` slot is
    /// reused before the table grows, so table length stays bounded by
    /// the peak number of concurrently open descriptors (not the total
    /// ever opened — the pre-reuse allocator leaked a slot per open).
    pub fn install_fd(&mut self, kind: FdKind) -> u64 {
        let cost = self.cost();
        let fdt = self.k.locks.fdtable[self.slot];
        self.lock(fdt);
        self.cpu(cost.slab_fast + 150);
        self.unlock(fdt);
        let slot = &mut self.k.state.slots[self.slot];
        slot.open_fds += 1;
        slot.peak_open_fds = slot.peak_open_fds.max(slot.open_fds);
        let entry = Fd {
            kind,
            offset_pages: 0,
        };
        match slot
            .fds
            .iter()
            .position(|f| matches!(f.kind, FdKind::Closed))
        {
            Some(i) => {
                slot.fds[i] = entry;
                i as u64
            }
            None => {
                slot.fds.push(entry);
                (slot.fds.len() - 1) as u64
            }
        }
    }

    /// Marks fd `fd` closed and drops the slot's open-descriptor count.
    /// Callers handle the object behind the descriptor (socket release /
    /// reclaim) themselves.
    pub(crate) fn retire_fd(&mut self, fd: usize) {
        let slot = &mut self.k.state.slots[self.slot];
        debug_assert!(!matches!(slot.fds[fd].kind, FdKind::Closed));
        slot.fds[fd].kind = FdKind::Closed;
        slot.open_fds -= 1;
    }

    /// Resolves an argument to one of this slot's open fds (Syzkaller-
    /// style: arguments are coerced into mostly-valid resources).
    /// Returns `None` when the slot has no usable descriptor.
    pub fn pick_fd(&self, raw: u64) -> Option<usize> {
        let fds = &self.k.state.slots[self.slot].fds;
        if fds.is_empty() {
            return None;
        }
        let start = (raw as usize) % fds.len();
        (0..fds.len())
            .map(|i| (start + i) % fds.len())
            .find(|&i| !matches!(fds[i].kind, crate::state::FdKind::Closed))
    }

    /// Resolves an argument to one of this slot's mapped VMAs.
    pub fn pick_vma(&self, raw: u64) -> Option<usize> {
        let vmas = &self.k.state.slots[self.slot].vmas;
        if vmas.is_empty() {
            return None;
        }
        let start = (raw as usize) % vmas.len();
        (0..vmas.len())
            .map(|i| (start + i) % vmas.len())
            .find(|&i| vmas[i].mapped)
    }

    /// Maps a path selector into this slot's name table index.
    pub fn name_index(&self, raw: u64) -> usize {
        raw as usize % NAMES_PER_SLOT
    }

    /// Uniform random in `[lo, hi)` from the workload RNG.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            self.rng.gen_range(lo..hi)
        }
    }
}

/// Compiles `call` (with pre-resolved `args`) into an op sequence on
/// instance `k`, slot `slot`. Coverage goes to `cover` and cumulatively
/// to the instance.
pub fn dispatch(
    k: &mut KernelInstance,
    slot: usize,
    no: SysNo,
    args: &[u64],
    rng: &mut SmallRng,
    cover: &mut CoverageSet,
    faults: &mut FaultState,
) -> OpSeq {
    let mut seq = OpSeq::new();
    dispatch_into(k, slot, no, args, rng, cover, faults, &mut seq);
    seq
}

/// [`dispatch`] compiling into a caller-held scratch sequence (which is
/// reset first) instead of allocating. The executors call this once per
/// simulated syscall, so the scratch buffer caps steady-state dispatch
/// at zero heap traffic.
#[allow(clippy::too_many_arguments)]
pub fn dispatch_into(
    k: &mut KernelInstance,
    slot: usize,
    no: SysNo,
    args: &[u64],
    rng: &mut SmallRng,
    cover: &mut CoverageSet,
    faults: &mut FaultState,
    seq: &mut OpSeq,
) {
    seq.reset();
    let mut h = HCtx {
        k,
        slot,
        rng,
        cover,
        faults,
        seq,
    };
    let a = |i: usize| args.get(i).copied().unwrap_or(0);

    h.k.syscalls += 1;
    h.cpu(h.cost().syscall_entry);
    // Bounded guest-side overhead every virtualized syscall pays,
    // compiled as a VM-exit op so attribution can separate it from
    // productive kernel work.
    if h.k.virt.syscall_overhead > 0 {
        h.seq
            .push(KOp::VmExit(crate::ops::VmExitKind::GuestSyscall));
    }

    // Specialization: a call outside the instance's allowlist never
    // reaches a handler — the specialized kernel does not carry its
    // code. Entry cost is already paid (the trap happens before the
    // table lookup); the call terminates on a real ENOSYS error path
    // with per-sysno `err.spec.*` coverage.
    if !h.k.spec.allows(no) {
        cov_bucket!(h, "spec.enosys.sysno", no.index() as u32);
        fail!(h, Errno::ENOSYS, "spec.enosys");
        debug_assert!(h.seq.locks_balanced());
        return;
    }

    // Container tenancy: cgroup accounting on resource-consuming classes.
    let cats = no.categories();
    if cats.contains(&Category::Memory) || cats.contains(&Category::FileIo) {
        h.cgroup_charge();
    }

    match no {
        // (a) process management / scheduling
        SysNo::Getpid => subsystems::sched::sys_getpid(&mut h),
        SysNo::SchedYield => subsystems::sched::sys_sched_yield(&mut h),
        SysNo::Clone => subsystems::sched::sys_clone(&mut h, a(0)),
        SysNo::Wait4 => subsystems::sched::sys_wait4(&mut h, a(0)),
        SysNo::Kill => subsystems::sched::sys_kill(&mut h, a(0), a(1)),
        SysNo::SchedSetaffinity => subsystems::sched::sys_sched_setaffinity(&mut h, a(0)),
        SysNo::SchedGetparam => subsystems::sched::sys_sched_getparam(&mut h),
        SysNo::Setpriority => subsystems::sched::sys_setpriority(&mut h, a(0)),
        SysNo::Nanosleep => subsystems::sched::sys_nanosleep(&mut h, a(0)),
        SysNo::Getrusage => subsystems::sched::sys_getrusage(&mut h),

        // (b) memory management
        SysNo::Mmap => subsystems::mm::sys_mmap(&mut h, a(0), a(1)),
        SysNo::Munmap => subsystems::mm::sys_munmap(&mut h, a(0)),
        SysNo::Mprotect => subsystems::mm::sys_mprotect(&mut h, a(0)),
        SysNo::Madvise => subsystems::mm::sys_madvise(&mut h, a(0), a(1)),
        SysNo::Brk => subsystems::mm::sys_brk(&mut h, a(0)),
        SysNo::Mremap => subsystems::mm::sys_mremap(&mut h, a(0), a(1)),
        SysNo::Mlock => subsystems::mm::sys_mlock(&mut h, a(0)),
        SysNo::Munlock => subsystems::mm::sys_munlock(&mut h, a(0)),
        SysNo::Msync => subsystems::mm::sys_msync(&mut h, a(0)),
        SysNo::Mincore => subsystems::mm::sys_mincore(&mut h, a(0)),

        // (c) file I/O
        SysNo::Read => subsystems::fileio::sys_read(&mut h, a(0), a(1), false),
        SysNo::Write => subsystems::fileio::sys_write(&mut h, a(0), a(1), false),
        SysNo::Pread => subsystems::fileio::sys_read(&mut h, a(0), a(1), true),
        SysNo::Pwrite => subsystems::fileio::sys_write(&mut h, a(0), a(1), true),
        SysNo::Lseek => subsystems::fileio::sys_lseek(&mut h, a(0), a(1)),
        SysNo::Fsync => subsystems::fileio::sys_fsync(&mut h, a(0), false),
        SysNo::Fdatasync => subsystems::fileio::sys_fsync(&mut h, a(0), true),
        SysNo::Readv => subsystems::fileio::sys_readv(&mut h, a(0), a(1), a(2)),
        SysNo::Writev => subsystems::fileio::sys_writev(&mut h, a(0), a(1), a(2)),
        SysNo::Fallocate => subsystems::fileio::sys_fallocate(&mut h, a(0), a(1)),

        // (d) filesystem management
        SysNo::Open => subsystems::fs::sys_open(&mut h, a(0), a(1)),
        SysNo::Close => subsystems::fs::sys_close(&mut h, a(0)),
        SysNo::Stat => subsystems::fs::sys_stat(&mut h, a(0)),
        SysNo::Fstat => subsystems::fs::sys_fstat(&mut h, a(0)),
        SysNo::Access => subsystems::fs::sys_access(&mut h, a(0)),
        SysNo::Getdents => subsystems::fs::sys_getdents(&mut h, a(0)),
        SysNo::Mkdir => subsystems::fs::sys_mkdir(&mut h, a(0)),
        SysNo::Rmdir => subsystems::fs::sys_rmdir(&mut h, a(0)),
        SysNo::Unlink => subsystems::fs::sys_unlink(&mut h, a(0)),
        SysNo::Rename => subsystems::fs::sys_rename(&mut h, a(0), a(1)),
        SysNo::Symlink => subsystems::fs::sys_symlink(&mut h, a(0), a(1)),
        SysNo::Readlink => subsystems::fs::sys_readlink(&mut h, a(0)),
        SysNo::Truncate => subsystems::fs::sys_truncate(&mut h, a(0), a(1)),

        // (e) IPC
        SysNo::Pipe2 => subsystems::ipc::sys_pipe2(&mut h),
        SysNo::FutexWait => subsystems::ipc::sys_futex_wait(&mut h, a(0), a(1)),
        SysNo::FutexWake => subsystems::ipc::sys_futex_wake(&mut h, a(0), a(1)),
        SysNo::Msgget => subsystems::ipc::sys_msgget(&mut h),
        SysNo::Msgsnd => subsystems::ipc::sys_msgsnd(&mut h, a(0), a(1)),
        SysNo::Msgrcv => subsystems::ipc::sys_msgrcv(&mut h, a(0), a(1)),
        SysNo::Semget => subsystems::ipc::sys_semget(&mut h, a(0)),
        SysNo::Semop => subsystems::ipc::sys_semop(&mut h, a(0), a(1)),
        SysNo::Shmget => subsystems::ipc::sys_shmget(&mut h, a(0)),
        SysNo::Shmat => subsystems::ipc::sys_shmat(&mut h, a(0)),
        SysNo::Shmdt => subsystems::ipc::sys_shmdt(&mut h, a(0)),
        SysNo::Eventfd => subsystems::ipc::sys_eventfd(&mut h),

        // (f) permissions / capabilities
        SysNo::Chmod => subsystems::perms::sys_chmod(&mut h, a(0), a(1)),
        SysNo::Fchmod => subsystems::perms::sys_fchmod(&mut h, a(0), a(1)),
        SysNo::Chown => subsystems::perms::sys_chown(&mut h, a(0), a(1)),
        SysNo::Setuid => subsystems::perms::sys_setuid(&mut h, a(0)),
        SysNo::Getuid => subsystems::perms::sys_getuid(&mut h),
        SysNo::Capget => subsystems::perms::sys_capget(&mut h),
        SysNo::Capset => subsystems::perms::sys_capset(&mut h, a(0)),
        SysNo::Umask => subsystems::perms::sys_umask(&mut h, a(0)),
        SysNo::Setgroups => subsystems::perms::sys_setgroups(&mut h, a(0)),
        SysNo::Prctl => subsystems::perms::sys_prctl(&mut h, a(0)),

        // (g) networking
        SysNo::Socket => subsystems::net::sys_socket(&mut h, a(0)),
        SysNo::Bind => subsystems::net::sys_bind(&mut h, a(0), a(1)),
        SysNo::Listen => subsystems::net::sys_listen(&mut h, a(0), a(1)),
        SysNo::Accept => subsystems::net::sys_accept(&mut h, a(0)),
        SysNo::Connect => subsystems::net::sys_connect(&mut h, a(0), a(1)),
        SysNo::Sendto => subsystems::net::sys_sendto(&mut h, a(0), a(1), a(2)),
        SysNo::Recvfrom => subsystems::net::sys_recvfrom(&mut h, a(0), a(1)),
        SysNo::ShutdownSock => subsystems::net::sys_shutdown_sock(&mut h, a(0)),
        SysNo::EpollCreate => subsystems::net::sys_epoll_create(&mut h),
        SysNo::EpollWait => subsystems::net::sys_epoll_wait(&mut h, a(0), a(1)),
    }

    debug_assert!(
        h.seq.locks_balanced(),
        "{}: unbalanced locks in op sequence",
        no.name()
    );
}

/// Compiles the kernel half of `exit_group(2)` for `slot` into `seq`:
/// every open descriptor is closed under one fd-table sweep (socket
/// table slots are released and reclaimed), the address space is torn
/// down with a single batched page-table walk and TLB shootdown, the
/// heap resets to its initial break, and unreaped children are reaped.
/// Not a [`SysNo`] — exit is not corpus-reachable and no kernel can be
/// specialized away from supporting it, so it bypasses the allowlist.
///
/// Fd-table entries are marked `Closed`, not removed (fd numbers are
/// table indices), which is exactly why the lowest-free-fd reuse in
/// [`HCtx::install_fd`] matters: without it every tenant lifecycle grows
/// the table permanently.
pub fn dispatch_exit(
    k: &mut KernelInstance,
    slot: usize,
    rng: &mut SmallRng,
    cover: &mut CoverageSet,
    faults: &mut FaultState,
    seq: &mut OpSeq,
) {
    seq.reset();
    let mut h = HCtx {
        k,
        slot,
        rng,
        cover,
        faults,
        seq,
    };
    h.k.syscalls += 1;
    h.cpu(h.cost().syscall_entry);
    if h.k.virt.syscall_overhead > 0 {
        h.seq
            .push(KOp::VmExit(crate::ops::VmExitKind::GuestSyscall));
    }
    cov!(h, "sched.exit");
    let cost = h.cost();

    // Close every open descriptor: one locked fd-table sweep, then the
    // per-object releases (sockets pay their bucket-locked teardown).
    let nopen = h.k.state.slots[slot].open_fds;
    if nopen > 0 {
        cov_bucket!(h, "sched.exit.fds", HCtx::size_class(nopen));
        let fdt = h.k.locks.fdtable[slot];
        h.lock(fdt);
        h.cpu(200 + 120 * nopen);
        h.unlock(fdt);
        h.cpu(cost.slab_fast * nopen.min(16));
        for fd in 0..h.k.state.slots[slot].fds.len() {
            let kind = h.k.state.slots[slot].fds[fd].kind;
            if matches!(kind, FdKind::Closed) {
                continue;
            }
            h.retire_fd(fd);
            if let FdKind::Socket { idx } = kind {
                crate::subsystems::net::drop_sock_ref(&mut h, idx);
            }
        }
    }
    debug_assert_eq!(h.k.state.slots[slot].open_fds, 0);

    // Address-space teardown: one page-table walk and one shootdown for
    // everything still mapped, then the vma table dies with the process.
    let (vpages, vpop, nvmas, shm_idx) = {
        let vmas = &h.k.state.slots[slot].vmas;
        let mut pages = 0;
        let mut pop = 0;
        let mut n = 0u64;
        let mut shm = Vec::new();
        for v in vmas.iter().filter(|v| v.mapped) {
            pages += v.pages;
            pop += v.populated;
            n += 1;
            if let Some(si) = v.shm {
                shm.push(si);
            }
        }
        (pages, pop, n, shm)
    };
    if nvmas > 0 {
        cov_bucket!(h, "sched.exit.vmas", HCtx::size_class(nvmas));
        let mmap_sem = h.k.locks.mmap_sem[slot];
        let ptl = h.k.locks.page_table[slot];
        h.lock(mmap_sem);
        h.lock(ptl);
        h.cpu(cost.pte_per_page * vpages);
        h.unlock(ptl);
        h.push(KOp::Tlb { pages: vpages });
        h.unlock(mmap_sem);
        h.free_pages(vpop);
    }
    for si in shm_idx {
        let seg = &mut h.k.state.ipc.shms[si];
        seg.attaches = seg.attaches.saturating_sub(1);
    }
    h.k.state.slots[slot].vmas.clear();

    // Heap: free everything brk grew past the initial break.
    let brk = h.k.state.slots[slot].brk_pages;
    if brk > 16 {
        let excess = brk - 16;
        let ptl = h.k.locks.page_table[slot];
        h.lock(ptl);
        h.cpu(cost.pte_per_page * excess);
        h.unlock(ptl);
        h.free_pages(excess);
        h.k.state.slots[slot].brk_pages = 16;
    }

    // Reap unreaped children (zombies die with their parent): the
    // per-child costs of wait4's reap path under one tasklist section.
    let children = h.k.state.slots[slot].children_pending as u64;
    if children > 0 {
        cov!(h, "sched.exit.reap");
        let tasklist = h.k.locks.tasklist;
        let pidmap = h.k.locks.pidmap;
        let rq = h.k.locks.runqueue[slot];
        h.push(KOp::Lock(tasklist, LockMode::Exclusive));
        h.cpu(cost.task_reap * children.min(32));
        h.push(KOp::Unlock(tasklist));
        h.lock(pidmap);
        h.cpu(cost.pid_alloc / 2 * children.min(32));
        h.unlock(pidmap);
        h.lock(rq);
        h.cpu(cost.rq_op);
        h.unlock(rq);
        let st = &mut h.k.state;
        st.sched.nr_tasks -= children;
        st.sched.rq_len[slot] = st.sched.rq_len[slot].saturating_sub(children as u32);
        st.slots[slot].children_pending = 0;
    }

    // The task struct itself is put through an RCU grace period.
    h.push(KOp::RcuSync);
    debug_assert!(h.seq.locks_balanced(), "exit: unbalanced locks");
}

/// Convenience wrapper used by tests: dispatch with throwaway coverage
/// and no fault injection.
pub fn dispatch_simple(
    k: &mut KernelInstance,
    slot: usize,
    no: SysNo,
    args: &[u64],
    rng: &mut SmallRng,
) -> OpSeq {
    let mut cover = CoverageSet::new();
    let mut faults = FaultState::default();
    dispatch(k, slot, no, args, rng, &mut cover, &mut faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceConfig, TenancyProfile, VirtProfile};
    use crate::params::CostModel;
    use crate::spec::SpecMask;
    use ksa_desim::{Engine, EngineParams};
    use rand::SeedableRng;

    fn test_instance() -> KernelInstance {
        let mut eng: Engine<()> = Engine::new((), EngineParams::default(), 1);
        let disk = eng.add_device(ksa_desim::DeviceModel::nvme_ssd());
        let cores = vec![eng.add_core(Default::default())];
        KernelInstance::build(
            &mut eng,
            0,
            InstanceConfig {
                cores,
                mem_mib: 256,
                virt: VirtProfile::native(),
                tenancy: TenancyProfile::none(),
                cost: CostModel::default(),
                disk,
                spec: SpecMask::full(),
            },
        )
    }

    fn call(inst: &mut KernelInstance, rng: &mut SmallRng, no: SysNo, args: &[u64]) -> u64 {
        let seq = dispatch_simple(inst, 0, no, args, rng);
        assert_eq!(seq.error, None, "{no:?} {args:?} failed: {:?}", seq.error);
        seq.result
    }

    /// POSIX lowest-free-fd: close + reopen reuses the lowest Closed
    /// slot instead of growing the table.
    #[test]
    fn close_reopen_reuses_lowest_fd() {
        let mut inst = test_instance();
        let mut rng = SmallRng::seed_from_u64(1);
        for (i, path) in [3u64, 4, 5].iter().enumerate() {
            let fd = call(&mut inst, &mut rng, SysNo::Open, &[*path, 1]);
            assert_eq!(fd, i as u64);
        }
        assert_eq!(inst.state.slots[0].fds.len(), 3);

        call(&mut inst, &mut rng, SysNo::Close, &[1]);
        let fd = call(&mut inst, &mut rng, SysNo::Open, &[6, 1]);
        assert_eq!(fd, 1, "reopen must fill the lowest hole");
        assert_eq!(inst.state.slots[0].fds.len(), 3, "table must not grow");

        call(&mut inst, &mut rng, SysNo::Close, &[2]);
        call(&mut inst, &mut rng, SysNo::Close, &[0]);
        assert_eq!(call(&mut inst, &mut rng, SysNo::Open, &[7, 1]), 0);
        assert_eq!(call(&mut inst, &mut rng, SysNo::Open, &[8, 1]), 2);
        let slot = &inst.state.slots[0];
        assert_eq!(slot.open_fds, 3);
        assert_eq!(slot.peak_open_fds, 3);
        assert_eq!(slot.fds.len() as u64, slot.peak_open_fds);
    }

    /// Socket slots return to a lowest-first free list when their fd
    /// dies, so the sock table is bounded by peak concurrency.
    #[test]
    fn sock_slots_reclaim_lowest_first() {
        let mut inst = test_instance();
        let mut rng = SmallRng::seed_from_u64(2);
        for i in 0..3u64 {
            assert_eq!(call(&mut inst, &mut rng, SysNo::Socket, &[0]), i);
        }
        assert_eq!(inst.state.net.socks.len(), 3);
        assert_eq!(inst.state.net.peak_socks, 3);

        call(&mut inst, &mut rng, SysNo::Close, &[1]);
        call(&mut inst, &mut rng, SysNo::Close, &[0]);
        assert_eq!(inst.state.net.live_socks, 1);
        assert_eq!(
            inst.state.net.free_socks,
            vec![1, 0],
            "descending free list"
        );

        // Reuse is lowest-first and never grows the table.
        call(&mut inst, &mut rng, SysNo::Socket, &[0]);
        call(&mut inst, &mut rng, SysNo::Socket, &[0]);
        let net = &inst.state.net;
        assert_eq!(net.socks.len(), 3, "table bounded by peak concurrency");
        assert_eq!(net.live_socks, 3);
        assert_eq!(net.peak_socks, 3);
        assert!(net.free_socks.is_empty());
    }

    /// shutdown(2) releases the socket but defers slot reclaim to the
    /// descriptor's death; close after shutdown reclaims exactly once.
    #[test]
    fn shutdown_then_close_reclaims_once() {
        let mut inst = test_instance();
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(call(&mut inst, &mut rng, SysNo::Socket, &[0]), 0);
        call(&mut inst, &mut rng, SysNo::ShutdownSock, &[0]);
        let net = &inst.state.net;
        assert!(!net.socks[0].open, "shutdown releases the object");
        assert_eq!(net.live_socks, 1, "slot still referenced by the fd");
        assert!(net.free_socks.is_empty(), "reclaim deferred to close");

        call(&mut inst, &mut rng, SysNo::Close, &[0]);
        let net = &inst.state.net;
        assert_eq!(net.live_socks, 0);
        assert_eq!(net.free_socks, vec![0]);
        assert_eq!(call(&mut inst, &mut rng, SysNo::Socket, &[0]), 0);
        assert_eq!(inst.state.net.socks.len(), 1);
    }

    /// Process exit sweeps the whole slot: descriptors, sockets, vmas,
    /// heap and unreaped children — with balanced locks.
    #[test]
    fn dispatch_exit_sweeps_slot() {
        let mut inst = test_instance();
        let mut rng = SmallRng::seed_from_u64(4);
        call(&mut inst, &mut rng, SysNo::Clone, &[0]);
        call(&mut inst, &mut rng, SysNo::Open, &[3, 1]);
        call(&mut inst, &mut rng, SysNo::Open, &[4, 1]);
        call(&mut inst, &mut rng, SysNo::Mmap, &[24, 1]);
        call(&mut inst, &mut rng, SysNo::Socket, &[0]);
        call(&mut inst, &mut rng, SysNo::Brk, &[64]);
        assert!(inst.state.slots[0].open_fds > 0);
        assert_eq!(inst.state.slots[0].children_pending, 1);

        let mut cover = CoverageSet::new();
        let mut faults = FaultState::default();
        let mut seq = OpSeq::new();
        dispatch_exit(&mut inst, 0, &mut rng, &mut cover, &mut faults, &mut seq);
        assert!(seq.locks_balanced(), "exit must balance every lock");

        let slot = &inst.state.slots[0];
        assert_eq!(slot.open_fds, 0);
        assert!(slot.fds_all_closed());
        assert!(slot.fds.len() as u64 <= slot.peak_open_fds);
        assert!(slot.vmas.is_empty());
        assert_eq!(slot.brk_pages, 16);
        assert_eq!(slot.children_pending, 0);
        let net = &inst.state.net;
        assert_eq!(net.live_socks, 0);
        assert!(net.socks.len() as u64 <= net.peak_socks);
    }
}
