//! The cost model: base latencies for kernel micro-operations.
//!
//! All values are nanoseconds of CPU work on one core; queueing, convoys
//! and interference come from the event engine, **not** from these
//! constants. The magnitudes are calibrated to a ~2 GHz server core running
//! a 4.x kernel (syscall entry ≈ 100 ns, dentry hop ≈ 100 ns, page-cache
//! copy ≈ 0.1 ns/byte, TLB shootdown handler ≈ a few µs).

use ksa_desim::{Ns, US};

/// Base costs for the simulated kernel's micro-operations.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Syscall entry + exit (mode switch, dispatch, return).
    pub syscall_entry: Ns,
    /// Userspace glue between consecutive calls in a program.
    pub user_glue: Ns,

    // --- memory management ---
    /// Allocating/initializing one VMA record.
    pub vma_alloc: Ns,
    /// Page-table work per page (map or unmap).
    pub pte_per_page: Ns,
    /// Local TLB flush fixed cost.
    pub tlb_local: Ns,
    /// Remote TLB-shootdown handler cost on each target core (fixed part).
    pub tlb_handler: Ns,
    /// Remote shootdown handler per-page component.
    pub tlb_handler_per_page: Ns,
    /// Zeroing/touching one page (first-touch fault work).
    pub page_touch: Ns,
    /// One buddy-allocator refill of a per-CPU page list (zone lock held).
    pub zone_refill: Ns,
    /// Per-page cost of an LRU scan (direct reclaim / kswapd).
    pub lru_scan_per_page: Ns,
    /// Slab allocation from a per-CPU magazine (no lock).
    pub slab_fast: Ns,
    /// Slab depot refill (depot lock held).
    pub slab_refill: Ns,

    // --- VFS / filesystem ---
    /// Path-walk cost per component on the RCU fast path.
    pub dentry_hop: Ns,
    /// Extra per-component cost per 1k dentries in the cache (hash-chain
    /// pressure from a shared dcache).
    pub dentry_chain_per_1k: Ns,
    /// Allocating and inserting a dentry+inode on a cold lookup.
    pub dentry_insert: Ns,
    /// Reading an on-disk inode block (CPU part; the I/O is separate).
    pub inode_read_cpu: Ns,
    /// Journal: fixed cost of a transaction commit.
    pub journal_commit_base: Ns,
    /// Journal: per dirty metadata block commit cost.
    pub journal_per_block: Ns,
    /// Directory entry insert/remove (mkdir, unlink, rename).
    pub dirent_update: Ns,

    // --- file I/O ---
    /// Page-cache lookup per page.
    pub pagecache_lookup: Ns,
    /// Copy cost per byte between user and kernel (≈ 10 GB/s).
    pub copy_per_byte_milli: u64,
    /// Writeback batch setup cost.
    pub writeback_base: Ns,
    /// Writeback per dirty page (CPU part).
    pub writeback_per_page: Ns,

    // --- scheduling / process management ---
    /// Runqueue lock hold for enqueue/dequeue/yield.
    pub rq_op: Ns,
    /// Creating a task: dup task struct, cgroup attach, etc. (fixed part).
    pub task_create_base: Ns,
    /// Task creation per parent VMA (mm copy).
    pub task_create_per_vma: Ns,
    /// PID allocation under the global pidmap lock.
    pub pid_alloc: Ns,
    /// Reaping a child (wait4 with an exited child).
    pub task_reap: Ns,
    /// Signal delivery bookkeeping.
    pub signal_send: Ns,
    /// Load balancer: per-core scan cost each balancing pass.
    pub lb_scan_per_core: Ns,

    // --- IPC ---
    /// Futex hash-bucket operation (lookup + queue check).
    pub futex_op: Ns,
    /// Pipe buffer management per operation.
    pub pipe_op: Ns,
    /// SysV object lookup in the shared ids table.
    pub ipc_lookup: Ns,
    /// SysV message copy fixed part.
    pub ipc_msg_base: Ns,

    // --- networking ---
    /// Allocating and initializing a socket (sock + file glue).
    pub sock_create: Ns,
    /// sk_buff allocation/setup per packet.
    pub skb_alloc: Ns,
    /// Protocol demux: port-table hash lookup plus header parse.
    pub proto_demux: Ns,
    /// Softirq-side cost per packet drained by a NAPI poll.
    pub napi_pkt: Ns,
    /// Packets one NAPI poll may drain before yielding the core.
    pub napi_budget: u64,
    /// NAPI poller wake period when the rings are idle.
    pub softirq_period: Ns,
    /// Socket receive-buffer bound in bytes; senders hitting it get
    /// `EAGAIN` (SO_RCVBUF-style backpressure).
    pub sock_buf_bytes: u64,

    // --- permissions / capabilities ---
    /// Credential structure update (prepare_creds/commit_creds CPU).
    pub cred_update: Ns,
    /// Audit-record emission under the global audit lock.
    pub audit_emit: Ns,
    /// Capability set computation.
    pub cap_compute: Ns,

    // --- daemons ---
    /// Journal flusher wake period.
    pub flusher_period: Ns,
    /// Load balancer period.
    pub lb_period: Ns,
    /// vmstat / per-CPU counter fold period.
    pub vmstat_period: Ns,
    /// vmstat fold cost per core in the instance.
    pub vmstat_per_core: Ns,

    // --- thresholds ---
    /// Dirty-page ratio (percent of instance memory) that forces
    /// foreground writeback throttling in the write path.
    pub dirty_throttle_pct: u64,
    /// Free-page ratio (percent) under which allocations enter direct
    /// reclaim.
    pub min_free_pct: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            syscall_entry: 100,
            user_glue: 200,

            vma_alloc: 350,
            pte_per_page: 45,
            tlb_local: 180,
            tlb_handler: 2_500,
            tlb_handler_per_page: 15,
            page_touch: 250,
            zone_refill: 900,
            lru_scan_per_page: 60,
            slab_fast: 90,
            slab_refill: 600,

            dentry_hop: 110,
            dentry_chain_per_1k: 35,
            dentry_insert: 500,
            inode_read_cpu: 700,
            journal_commit_base: 12 * US,
            journal_per_block: 900,
            dirent_update: 800,

            pagecache_lookup: 160,
            copy_per_byte_milli: 100, // 0.1 ns per byte
            writeback_base: 8 * US,
            writeback_per_page: 300,

            rq_op: 280,
            task_create_base: 18 * US,
            task_create_per_vma: 400,
            pid_alloc: 500,
            task_reap: 2 * US,
            signal_send: 900,
            lb_scan_per_core: 700,

            futex_op: 320,
            pipe_op: 420,
            ipc_lookup: 380,
            ipc_msg_base: 700,

            sock_create: 900,
            skb_alloc: 300,
            proto_demux: 250,
            napi_pkt: 450,
            napi_budget: 64,
            softirq_period: 1_000_000, // 1 ms
            sock_buf_bytes: 262_144,   // 256 KiB

            cred_update: 600,
            audit_emit: 450,
            cap_compute: 600,

            flusher_period: 12_000_000, // 12 ms
            lb_period: 4_000_000,       // 4 ms
            vmstat_period: 10_000_000,  // 10 ms
            vmstat_per_core: 900,

            dirty_throttle_pct: 8,
            min_free_pct: 10,
        }
    }
}

impl CostModel {
    /// Copy cost for `bytes` bytes.
    pub fn copy(&self, bytes: u64) -> Ns {
        bytes.saturating_mul(self.copy_per_byte_milli) / 1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales_linearly() {
        let cm = CostModel::default();
        assert_eq!(cm.copy(0), 0);
        assert_eq!(cm.copy(10_000), 1_000); // 10KB at 0.1ns/B = 1us
        assert_eq!(cm.copy(20_000), 2 * cm.copy(10_000));
    }

    #[test]
    fn defaults_are_plausible_magnitudes() {
        let cm = CostModel::default();
        assert!(
            cm.syscall_entry < US,
            "syscall entry must be sub-microsecond"
        );
        assert!(cm.tlb_handler > cm.tlb_local, "remote flush dwarfs local");
        assert!(cm.journal_commit_base > cm.dentry_hop * 10);
        assert!(cm.dirty_throttle_pct < 100 && cm.min_free_pct < 100);
        assert!(
            cm.napi_pkt < US,
            "per-packet softirq work is sub-microsecond"
        );
        assert!(cm.softirq_period >= 100 * US, "NAPI idles between polls");
        assert!(
            cm.sock_buf_bytes >= 64 * 1024,
            "rx buffers hold many packets"
        );
    }
}
