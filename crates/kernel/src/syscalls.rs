//! The simulated system-call table.

use crate::category::Category;

/// Every system call the simulated kernel implements, spanning the paper's
/// six categories plus networking. Names match the Linux calls they model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SysNo {
    // (a) process management / scheduling
    Getpid,
    SchedYield,
    Clone,
    Wait4,
    Kill,
    SchedSetaffinity,
    SchedGetparam,
    Setpriority,
    Nanosleep,
    Getrusage,

    // (b) memory management
    Mmap,
    Munmap,
    Mprotect,
    Madvise,
    Brk,
    Mremap,
    Mlock,
    Munlock,
    Msync,
    Mincore,

    // (c) file I/O
    Read,
    Write,
    Pread,
    Pwrite,
    Lseek,
    Fsync,
    Fdatasync,
    Readv,
    Writev,
    Fallocate,

    // (d) filesystem management
    Open,
    Close,
    Stat,
    Fstat,
    Access,
    Getdents,
    Mkdir,
    Rmdir,
    Unlink,
    Rename,
    Symlink,
    Readlink,
    Truncate,

    // (e) inter-process communication
    Pipe2,
    FutexWait,
    FutexWake,
    Msgget,
    Msgsnd,
    Msgrcv,
    Semget,
    Semop,
    Shmget,
    Shmat,
    Shmdt,
    Eventfd,

    // (f) permissions / capabilities
    Chmod,
    Fchmod,
    Chown,
    Setuid,
    Getuid,
    Capget,
    Capset,
    Umask,
    Setgroups,
    Prctl,

    // (g) networking — appended after the first six categories so
    // corpus JSON indices of older calls stay stable.
    Socket,
    Bind,
    Listen,
    Accept,
    Connect,
    Sendto,
    Recvfrom,
    ShutdownSock,
    EpollCreate,
    EpollWait,
}

impl SysNo {
    /// Every implemented call, in a stable order.
    pub const ALL: [SysNo; 75] = [
        SysNo::Getpid,
        SysNo::SchedYield,
        SysNo::Clone,
        SysNo::Wait4,
        SysNo::Kill,
        SysNo::SchedSetaffinity,
        SysNo::SchedGetparam,
        SysNo::Setpriority,
        SysNo::Nanosleep,
        SysNo::Getrusage,
        SysNo::Mmap,
        SysNo::Munmap,
        SysNo::Mprotect,
        SysNo::Madvise,
        SysNo::Brk,
        SysNo::Mremap,
        SysNo::Mlock,
        SysNo::Munlock,
        SysNo::Msync,
        SysNo::Mincore,
        SysNo::Read,
        SysNo::Write,
        SysNo::Pread,
        SysNo::Pwrite,
        SysNo::Lseek,
        SysNo::Fsync,
        SysNo::Fdatasync,
        SysNo::Readv,
        SysNo::Writev,
        SysNo::Fallocate,
        SysNo::Open,
        SysNo::Close,
        SysNo::Stat,
        SysNo::Fstat,
        SysNo::Access,
        SysNo::Getdents,
        SysNo::Mkdir,
        SysNo::Rmdir,
        SysNo::Unlink,
        SysNo::Rename,
        SysNo::Symlink,
        SysNo::Readlink,
        SysNo::Truncate,
        SysNo::Pipe2,
        SysNo::FutexWait,
        SysNo::FutexWake,
        SysNo::Msgget,
        SysNo::Msgsnd,
        SysNo::Msgrcv,
        SysNo::Semget,
        SysNo::Semop,
        SysNo::Shmget,
        SysNo::Shmat,
        SysNo::Shmdt,
        SysNo::Eventfd,
        SysNo::Chmod,
        SysNo::Fchmod,
        SysNo::Chown,
        SysNo::Setuid,
        SysNo::Getuid,
        SysNo::Capget,
        SysNo::Capset,
        SysNo::Umask,
        SysNo::Setgroups,
        SysNo::Prctl,
        SysNo::Socket,
        SysNo::Bind,
        SysNo::Listen,
        SysNo::Accept,
        SysNo::Connect,
        SysNo::Sendto,
        SysNo::Recvfrom,
        SysNo::ShutdownSock,
        SysNo::EpollCreate,
        SysNo::EpollWait,
    ];

    /// The Linux-style name of the call.
    pub fn name(self) -> &'static str {
        match self {
            SysNo::Getpid => "getpid",
            SysNo::SchedYield => "sched_yield",
            SysNo::Clone => "clone",
            SysNo::Wait4 => "wait4",
            SysNo::Kill => "kill",
            SysNo::SchedSetaffinity => "sched_setaffinity",
            SysNo::SchedGetparam => "sched_getparam",
            SysNo::Setpriority => "setpriority",
            SysNo::Nanosleep => "nanosleep",
            SysNo::Getrusage => "getrusage",
            SysNo::Mmap => "mmap",
            SysNo::Munmap => "munmap",
            SysNo::Mprotect => "mprotect",
            SysNo::Madvise => "madvise",
            SysNo::Brk => "brk",
            SysNo::Mremap => "mremap",
            SysNo::Mlock => "mlock",
            SysNo::Munlock => "munlock",
            SysNo::Msync => "msync",
            SysNo::Mincore => "mincore",
            SysNo::Read => "read",
            SysNo::Write => "write",
            SysNo::Pread => "pread64",
            SysNo::Pwrite => "pwrite64",
            SysNo::Lseek => "lseek",
            SysNo::Fsync => "fsync",
            SysNo::Fdatasync => "fdatasync",
            SysNo::Readv => "readv",
            SysNo::Writev => "writev",
            SysNo::Fallocate => "fallocate",
            SysNo::Open => "open",
            SysNo::Close => "close",
            SysNo::Stat => "stat",
            SysNo::Fstat => "fstat",
            SysNo::Access => "access",
            SysNo::Getdents => "getdents64",
            SysNo::Mkdir => "mkdir",
            SysNo::Rmdir => "rmdir",
            SysNo::Unlink => "unlink",
            SysNo::Rename => "rename",
            SysNo::Symlink => "symlink",
            SysNo::Readlink => "readlink",
            SysNo::Truncate => "truncate",
            SysNo::Pipe2 => "pipe2",
            SysNo::FutexWait => "futex(WAIT)",
            SysNo::FutexWake => "futex(WAKE)",
            SysNo::Msgget => "msgget",
            SysNo::Msgsnd => "msgsnd",
            SysNo::Msgrcv => "msgrcv",
            SysNo::Semget => "semget",
            SysNo::Semop => "semop",
            SysNo::Shmget => "shmget",
            SysNo::Shmat => "shmat",
            SysNo::Shmdt => "shmdt",
            SysNo::Eventfd => "eventfd2",
            SysNo::Chmod => "chmod",
            SysNo::Fchmod => "fchmod",
            SysNo::Chown => "chown",
            SysNo::Setuid => "setuid",
            SysNo::Getuid => "getuid",
            SysNo::Capget => "capget",
            SysNo::Capset => "capset",
            SysNo::Umask => "umask",
            SysNo::Setgroups => "setgroups",
            SysNo::Prctl => "prctl",
            SysNo::Socket => "socket",
            SysNo::Bind => "bind",
            SysNo::Listen => "listen",
            SysNo::Accept => "accept4",
            SysNo::Connect => "connect",
            SysNo::Sendto => "sendto",
            SysNo::Recvfrom => "recvfrom",
            SysNo::ShutdownSock => "shutdown",
            SysNo::EpollCreate => "epoll_create1",
            SysNo::EpollWait => "epoll_wait",
        }
    }

    /// Categories this call belongs to (some calls belong to two, like
    /// chmod: filesystem + permissions).
    pub fn categories(self) -> &'static [Category] {
        use Category::*;
        match self {
            SysNo::Getpid
            | SysNo::SchedYield
            | SysNo::Clone
            | SysNo::Wait4
            | SysNo::SchedSetaffinity
            | SysNo::SchedGetparam
            | SysNo::Setpriority
            | SysNo::Nanosleep
            | SysNo::Getrusage => &[ProcessSched],
            SysNo::Kill => &[ProcessSched, Ipc],
            SysNo::Mmap
            | SysNo::Munmap
            | SysNo::Mprotect
            | SysNo::Madvise
            | SysNo::Brk
            | SysNo::Mremap
            | SysNo::Mlock
            | SysNo::Munlock
            | SysNo::Mincore => &[Memory],
            SysNo::Msync => &[Memory, FileIo],
            SysNo::Read
            | SysNo::Write
            | SysNo::Pread
            | SysNo::Pwrite
            | SysNo::Lseek
            | SysNo::Fsync
            | SysNo::Fdatasync
            | SysNo::Readv
            | SysNo::Writev => &[FileIo],
            SysNo::Fallocate => &[FileIo, Filesystem],
            SysNo::Open
            | SysNo::Close
            | SysNo::Stat
            | SysNo::Fstat
            | SysNo::Access
            | SysNo::Getdents
            | SysNo::Mkdir
            | SysNo::Rmdir
            | SysNo::Unlink
            | SysNo::Rename
            | SysNo::Symlink
            | SysNo::Readlink
            | SysNo::Truncate => &[Filesystem],
            SysNo::Pipe2
            | SysNo::FutexWait
            | SysNo::FutexWake
            | SysNo::Msgget
            | SysNo::Msgsnd
            | SysNo::Msgrcv
            | SysNo::Semget
            | SysNo::Semop
            | SysNo::Eventfd => &[Ipc],
            SysNo::Shmget | SysNo::Shmat | SysNo::Shmdt => &[Ipc, Memory],
            SysNo::Chmod | SysNo::Fchmod | SysNo::Chown => &[Filesystem, Permissions],
            SysNo::Setuid
            | SysNo::Getuid
            | SysNo::Capget
            | SysNo::Capset
            | SysNo::Umask
            | SysNo::Setgroups
            | SysNo::Prctl => &[Permissions],
            SysNo::Socket
            | SysNo::Bind
            | SysNo::Listen
            | SysNo::Accept
            | SysNo::Connect
            | SysNo::Sendto
            | SysNo::Recvfrom
            | SysNo::ShutdownSock
            | SysNo::EpollCreate
            | SysNo::EpollWait => &[Network],
        }
    }

    /// The primary category (first listed).
    pub fn primary_category(self) -> Category {
        self.categories()[0]
    }
}

impl std::fmt::Display for SysNo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_list_is_complete_and_unique() {
        let set: HashSet<SysNo> = SysNo::ALL.iter().copied().collect();
        assert_eq!(set.len(), SysNo::ALL.len());
    }

    #[test]
    fn every_call_has_a_name_and_category() {
        for &no in &SysNo::ALL {
            assert!(!no.name().is_empty());
            assert!(!no.categories().is_empty());
        }
    }

    #[test]
    fn every_category_has_several_calls() {
        for cat in Category::ALL {
            let n = SysNo::ALL
                .iter()
                .filter(|no| no.categories().contains(&cat))
                .count();
            assert!(n >= 8, "category {cat} has only {n} calls");
        }
    }

    #[test]
    fn chmod_is_dual_categorized() {
        // The paper's example: chmod is both filesystem and permissions.
        let cats = SysNo::Chmod.categories();
        assert!(cats.contains(&Category::Filesystem));
        assert!(cats.contains(&Category::Permissions));
    }
}
