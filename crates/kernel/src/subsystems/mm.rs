//! Memory-management handlers (category b).
//!
//! The dominant cross-core mechanism is the **TLB shootdown**: any
//! operation that removes or narrows mappings must IPI every other core
//! of the kernel instance. In a 64-core instance, 64 concurrent munmaps
//! create interrupt storms (each core absorbs 63 handlers per round); in
//! a 1-core instance the broadcast disappears entirely — the paper's
//! "drastic reduction in the 64-VM case ... obviated in a uniprocessor
//! system". Allocation-side variability comes from zone-lock refills and
//! direct reclaim whose scan length scales with the instance's LRU size.

use ksa_desim::Ns;

use crate::coverage::{cov, cov_bucket, fail};
use crate::dispatch::HCtx;
use crate::errno::Errno;
use crate::ops::KOp;
use crate::state::Vma;

/// Caps mmap request sizes (pages).
const MAX_MAP_PAGES: u64 = 256;

/// mmap(len_pages, flags): VMA insert under `mmap_sem` write; bit 0 of
/// `flags` requests MAP_POPULATE (prefault).
pub fn sys_mmap(h: &mut HCtx, len_pages: u64, flags: u64) {
    let cost = h.cost();
    let pages = (len_pages % MAX_MAP_PAGES).max(1);
    let mmap_sem = h.k.locks.mmap_sem[h.slot];
    cov!(h, "mm.mmap");
    cov_bucket!(h, "mm.mmap.pages", crate::dispatch::HCtx::size_class(pages));
    if !h.try_slab_alloc(1, "mm.mmap.vma") {
        // No vma struct: nothing to unwind.
        fail!(h, Errno::ENOMEM, "mm.mmap.enomem");
        return;
    }
    if !h.try_lock(mmap_sem, "mm.mmap.mmap_sem") {
        // Return the vma struct to the slab on the way out.
        h.cpu(cost.slab_fast);
        fail!(h, Errno::EAGAIN, "mm.mmap.eagain");
        return;
    }
    h.cpu(cost.vma_alloc);
    h.unlock(mmap_sem);
    let mut populated = 0;
    if flags & 1 != 0 {
        cov!(h, "mm.mmap.populate");
        if !h.try_alloc_pages(pages, "mm.mmap.populate") {
            // Tear the fresh vma back down before reporting ENOMEM.
            h.cpu(cost.slab_fast);
            fail!(h, Errno::ENOMEM, "mm.mmap.populate_enomem");
            return;
        }
        h.mem(cost.page_touch * pages.min(64));
        populated = pages;
    }
    let slots = &mut h.k.state.slots[h.slot];
    slots.vmas.push(Vma {
        pages,
        populated,
        mapped: true,
        locked: false,
        shm: None,
    });
    h.seq.result = slots.vmas.len() as u64; // address handle
}

/// munmap(vma): page-table teardown under the PT lock, then the TLB
/// shootdown broadcast *outside* the spinlock section (as Linux must —
/// waiting for acks with interrupts off deadlocks).
pub fn sys_munmap(h: &mut HCtx, vma_sel: u64) {
    let cost = h.cost();
    let Some(vi) = h.pick_vma(vma_sel) else {
        cov!(h, "mm.munmap.efault");
        h.seq.error = Some(Errno::EFAULT);
        h.cpu(150);
        return;
    };
    let pages = h.k.state.slots[h.slot].vmas[vi].pages;
    cov!(h, "mm.munmap");
    cov_bucket!(
        h,
        "mm.munmap.pages",
        crate::dispatch::HCtx::size_class(pages)
    );
    let mmap_sem = h.k.locks.mmap_sem[h.slot];
    let ptl = h.k.locks.page_table[h.slot];
    h.lock(mmap_sem);
    h.lock(ptl);
    h.cpu(cost.pte_per_page * pages);
    h.unlock(ptl);
    h.push(KOp::Tlb { pages });
    h.unlock(mmap_sem);
    let populated = h.k.state.slots[h.slot].vmas[vi].populated;
    h.free_pages(populated);
    let v = &mut h.k.state.slots[h.slot].vmas[vi];
    v.mapped = false;
    v.populated = 0;
}

/// mprotect(vma): PTE rewrite plus shootdown for permission narrowing.
pub fn sys_mprotect(h: &mut HCtx, vma_sel: u64) {
    let cost = h.cost();
    let Some(vi) = h.pick_vma(vma_sel) else {
        cov!(h, "mm.mprotect.efault");
        h.seq.error = Some(Errno::EFAULT);
        h.cpu(150);
        return;
    };
    let pages = h.k.state.slots[h.slot].vmas[vi].pages;
    cov!(h, "mm.mprotect");
    let mmap_sem = h.k.locks.mmap_sem[h.slot];
    let ptl = h.k.locks.page_table[h.slot];
    h.lock(mmap_sem);
    h.cpu(cost.vma_alloc / 2); // possible vma split
    h.lock(ptl);
    h.cpu(cost.pte_per_page * pages);
    h.unlock(ptl);
    h.push(KOp::Tlb { pages });
    h.unlock(mmap_sem);
}

/// madvise(vma, advice): DONTNEED zaps + flushes; WILLNEED prefaults;
/// everything else is advisory bookkeeping.
pub fn sys_madvise(h: &mut HCtx, vma_sel: u64, advice: u64) {
    let cost = h.cost();
    let Some(vi) = h.pick_vma(vma_sel) else {
        cov!(h, "mm.madvise.efault");
        h.seq.error = Some(Errno::EFAULT);
        h.cpu(120);
        return;
    };
    let pages = h.k.state.slots[h.slot].vmas[vi].pages;
    let mmap_sem = h.k.locks.mmap_sem[h.slot];
    match advice % 3 {
        0 => {
            // MADV_DONTNEED
            cov!(h, "mm.madvise.dontneed");
            let ptl = h.k.locks.page_table[h.slot];
            h.lock(mmap_sem);
            h.lock(ptl);
            h.cpu(cost.pte_per_page * pages);
            h.unlock(ptl);
            h.push(KOp::Tlb { pages });
            h.unlock(mmap_sem);
            let populated = h.k.state.slots[h.slot].vmas[vi].populated;
            h.free_pages(populated);
            h.k.state.slots[h.slot].vmas[vi].populated = 0;
        }
        1 => {
            // MADV_WILLNEED
            cov!(h, "mm.madvise.willneed");
            let v = h.k.state.slots[h.slot].vmas[vi];
            let want = (v.pages - v.populated).min(v.pages / 2 + 1);
            if !h.try_alloc_pages(want, "mm.madvise.willneed") {
                // Prefault failed; the mapping itself is untouched.
                fail!(h, Errno::ENOMEM, "mm.madvise.enomem");
                return;
            }
            h.mem(cost.page_touch * want.min(32));
            h.k.state.slots[h.slot].vmas[vi].populated += want;
        }
        _ => {
            cov!(h, "mm.madvise.advisory");
            h.lock(mmap_sem);
            h.cpu(300);
            h.unlock(mmap_sem);
        }
    }
}

/// brk(delta): grow or shrink the heap.
pub fn sys_brk(h: &mut HCtx, delta: u64) {
    let cost = h.cost();
    let mmap_sem = h.k.locks.mmap_sem[h.slot];
    let grow = delta % 64;
    if delta.is_multiple_of(2) {
        cov!(h, "mm.brk.grow");
        h.lock(mmap_sem);
        h.cpu(cost.vma_alloc / 2);
        h.unlock(mmap_sem);
        if !h.try_alloc_pages(grow.max(1), "mm.brk.grow") {
            // The break stays where it was.
            fail!(h, Errno::ENOMEM, "mm.brk.enomem");
            h.seq.result = h.k.state.slots[h.slot].brk_pages;
            return;
        }
        h.k.state.slots[h.slot].brk_pages += grow.max(1);
    } else {
        let shrink = grow.min(h.k.state.slots[h.slot].brk_pages / 2);
        if shrink > 0 {
            cov!(h, "mm.brk.shrink");
            let ptl = h.k.locks.page_table[h.slot];
            h.lock(mmap_sem);
            h.lock(ptl);
            h.cpu(cost.pte_per_page * shrink);
            h.unlock(ptl);
            h.push(KOp::Tlb { pages: shrink });
            h.unlock(mmap_sem);
            h.free_pages(shrink);
            h.k.state.slots[h.slot].brk_pages -= shrink;
        } else {
            cov!(h, "mm.brk.query");
            h.cpu(100);
        }
    }
    h.seq.result = h.k.state.slots[h.slot].brk_pages;
}

/// mremap(vma, new_len): move the mapping — PTE copy plus a shootdown of
/// the old range.
pub fn sys_mremap(h: &mut HCtx, vma_sel: u64, new_len: u64) {
    let cost = h.cost();
    let Some(vi) = h.pick_vma(vma_sel) else {
        cov!(h, "mm.mremap.efault");
        h.seq.error = Some(Errno::EFAULT);
        h.cpu(150);
        return;
    };
    let old_pages = h.k.state.slots[h.slot].vmas[vi].pages;
    let new_pages = (new_len % MAX_MAP_PAGES).max(1);
    cov!(h, "mm.mremap");
    cov_bucket!(
        h,
        "mm.mremap.pages",
        crate::dispatch::HCtx::size_class(new_pages)
    );
    let mmap_sem = h.k.locks.mmap_sem[h.slot];
    let ptl = h.k.locks.page_table[h.slot];
    h.lock(mmap_sem);
    h.cpu(cost.vma_alloc);
    h.lock(ptl);
    h.cpu(cost.pte_per_page * (old_pages + new_pages));
    h.unlock(ptl);
    h.push(KOp::Tlb { pages: old_pages });
    h.unlock(mmap_sem);
    if new_pages > old_pages {
        if !h.try_alloc_pages(new_pages - old_pages, "mm.mremap.grow") {
            // Growth failed: the mapping keeps its old size.
            fail!(h, Errno::ENOMEM, "mm.mremap.enomem");
            return;
        }
        h.k.state.slots[h.slot].vmas[vi].populated += new_pages - old_pages;
    }
    let v = &mut h.k.state.slots[h.slot].vmas[vi];
    v.pages = new_pages;
    v.populated = v.populated.min(new_pages);
    h.seq.result = vi as u64 + 1;
}

/// mlock(vma): populate + move pages to the unevictable list under the
/// LRU lock.
pub fn sys_mlock(h: &mut HCtx, vma_sel: u64) {
    let cost = h.cost();
    let Some(vi) = h.pick_vma(vma_sel) else {
        cov!(h, "mm.mlock.efault");
        h.seq.error = Some(Errno::EFAULT);
        h.cpu(120);
        return;
    };
    let pages = h.k.state.slots[h.slot].vmas[vi].pages;
    cov!(h, "mm.mlock");
    let mmap_sem = h.k.locks.mmap_sem[h.slot];
    let lru = h.k.locks.lru;
    h.lock(mmap_sem);
    h.cpu(cost.vma_alloc / 2);
    h.unlock(mmap_sem);
    let need = pages - h.k.state.slots[h.slot].vmas[vi].populated;
    if !h.try_alloc_pages(need, "mm.mlock.populate") {
        // Nothing pinned; the vma stays unlocked.
        fail!(h, Errno::ENOMEM, "mm.mlock.enomem");
        return;
    }
    h.lock(lru);
    h.cpu(80 * pages.min(128));
    h.unlock(lru);
    let v = &mut h.k.state.slots[h.slot].vmas[vi];
    v.locked = true;
    v.populated = pages;
}

/// munlock(vma): return pages to the evictable lists.
pub fn sys_munlock(h: &mut HCtx, vma_sel: u64) {
    let Some(vi) = h.pick_vma(vma_sel) else {
        cov!(h, "mm.munlock.efault");
        h.seq.error = Some(Errno::EFAULT);
        h.cpu(120);
        return;
    };
    let pages = h.k.state.slots[h.slot].vmas[vi].pages;
    cov!(h, "mm.munlock");
    let mmap_sem = h.k.locks.mmap_sem[h.slot];
    let lru = h.k.locks.lru;
    h.lock(mmap_sem);
    h.cpu(200);
    h.unlock(mmap_sem);
    h.lock(lru);
    h.cpu(60 * pages.min(128));
    h.unlock(lru);
    h.k.state.slots[h.slot].vmas[vi].locked = false;
    h.k.state.mm.lru_pages += pages / 2;
}

/// msync: flush this slot's share of dirty pages (shared-memory and
/// file-backed mappings).
pub fn sys_msync(h: &mut HCtx, vma_sel: u64) {
    let cost = h.cost();
    let dirty = h.k.state.mm.dirty_pages / (h.k.n_cores() as u64 * 4).max(1);
    if h.pick_vma(vma_sel).is_none() || dirty == 0 {
        cov!(h, "mm.msync.clean");
        h.cpu(250);
        return;
    }
    cov!(h, "mm.msync.flush");
    let pages = dirty.min(64);
    h.cpu(cost.writeback_base / 2 + cost.writeback_per_page * pages);
    h.push(KOp::Io {
        bytes: pages * 4096,
        write: true,
    });
    h.k.state.mm.dirty_pages = h.k.state.mm.dirty_pages.saturating_sub(pages);
}

/// mincore: page-table walk under `mmap_sem` read — a reader that rwsem
/// writers convoy behind.
pub fn sys_mincore(h: &mut HCtx, vma_sel: u64) {
    let Some(vi) = h.pick_vma(vma_sel) else {
        cov!(h, "mm.mincore.efault");
        h.seq.error = Some(Errno::EFAULT);
        h.cpu(120);
        return;
    };
    let pages = h.k.state.slots[h.slot].vmas[vi].pages;
    cov!(h, "mm.mincore");
    let mmap_sem = h.k.locks.mmap_sem[h.slot];
    h.push(KOp::Lock(mmap_sem, ksa_desim::LockMode::Shared));
    h.cpu(30 * pages as Ns + 200);
    h.push(KOp::Unlock(mmap_sem));
}
