//! (g) Networking: sockets, protocol demux, NIC rings and softirq.
//!
//! The structure mirrors the Linux inet path at interference granularity:
//! socket and port lookups hash into per-bucket spinlocks (bucket count
//! scales with the instance's cores — the socket table *is* surface
//! area), the data path allocates sk_buffs from the slab, copies payload
//! across the user boundary, posts descriptors on per-queue NIC rings
//! (virtio doorbell = one VM exit in guests), and raises NET_RX softirq
//! work that a budgeted NAPI poller ([`crate::daemons`]) drains in
//! deferred context, competing with process time. Bounded receive
//! buffers and bounded descriptor rings push back on senders with
//! `EAGAIN`; payload bytes are conserved exactly (sent = received +
//! buffered + flushed), which the property tests pin down.

use crate::coverage::{cov, cov_bucket, fail};
use crate::dispatch::HCtx;
use crate::errno::Errno;
use crate::ops::{KOp, VmExitKind};
use crate::state::{FdKind, NET_PORT_SPACE};
use ksa_desim::FaultKind;

/// Largest payload one sendto/recvfrom moves (matches file I/O's cap).
pub const MAX_MSG_BYTES: u64 = 65_536;

/// Coerces a raw length selector into a payload size.
fn msg_bytes(raw: u64) -> u64 {
    (raw % MAX_MSG_BYTES).max(64)
}

/// Resolves a raw selector to one of this slot's open sockets
/// (Syzkaller-style coercion, like [`HCtx::pick_fd`]).
fn pick_sock(h: &HCtx, raw: u64) -> Option<usize> {
    let fds = &h.k.state.slots[h.slot].fds;
    let socks = &h.k.state.net.socks;
    if fds.is_empty() {
        return None;
    }
    let start = (raw as usize) % fds.len();
    (0..fds.len())
        .map(|i| (start + i) % fds.len())
        .find_map(|i| match fds[i].kind {
            FdKind::Socket { idx } if socks[idx].open => Some(idx),
            _ => None,
        })
}

/// Like [`pick_sock`], but only listening sockets.
fn pick_listener(h: &HCtx, raw: u64) -> Option<usize> {
    let fds = &h.k.state.slots[h.slot].fds;
    let socks = &h.k.state.net.socks;
    if fds.is_empty() {
        return None;
    }
    let start = (raw as usize) % fds.len();
    (0..fds.len())
        .map(|i| (start + i) % fds.len())
        .find_map(|i| match fds[i].kind {
            FdKind::Socket { idx } if socks[idx].open && socks[idx].listening => Some(idx),
            _ => None,
        })
}

fn new_sock(h: &mut HCtx) -> usize {
    h.k.state.net.alloc_sock_slot()
}

/// Tears sock `src` down while its hash-bucket lock is held: port
/// release, buffered-payload flush (accounted, never silently lost),
/// accept-backlog purge and peer unlink. Returns the flushed byte count.
/// Shared by `shutdown(2)`, final `close(2)` and process exit.
pub(crate) fn release_sock_locked(h: &mut HCtx, src: usize) -> u64 {
    let net = &mut h.k.state.net;
    net.ports.retain(|&(_, s)| s != src);
    let flushed = net.socks[src].rx_bytes;
    net.flushed_bytes += flushed;
    let sk = &mut net.socks[src];
    sk.rx_bytes = 0;
    sk.listening = false;
    sk.port = None;
    sk.backlog.clear();
    sk.open = false;
    if let Some(p) = sk.peer.take() {
        net.socks[p].peer = None;
    }
    // Purge the dying socket from every accept backlog: once its table
    // slot is reclaimed, a stale backlog index would alias whichever
    // connection reuses the slot next.
    for other in net.socks.iter_mut() {
        other.backlog.retain(|&c| c != src);
    }
    flushed
}

/// Final-reference drop of sock `idx`, called when the descriptor
/// referencing it dies (close or process exit): release it if still
/// open — `shutdown(2)` may already have — then return its table slot
/// to the free list for reuse.
pub(crate) fn drop_sock_ref(h: &mut HCtx, idx: usize) {
    if h.k.state.net.socks[idx].open {
        let cost = h.cost();
        let nb = h.k.locks.sock_buckets.len();
        let bucket = h.k.locks.sock_buckets[idx % nb];
        h.lock(bucket);
        h.cpu(cost.proto_demux);
        let flushed = release_sock_locked(h, idx);
        h.unlock(bucket);
        if flushed > 0 {
            cov!(h, "net.close.flush");
        }
        h.push(KOp::RcuSync);
    }
    h.k.state.net.reclaim_sock_slot(idx);
}

/// socket(2): allocate a sock + file glue, install an fd.
pub fn sys_socket(h: &mut HCtx, flags: u64) {
    let cost = h.cost();
    cov!(h, "net.socket");
    if !h.try_slab_alloc(2, "net.socket.sock") {
        fail!(h, Errno::ENOMEM, "net.socket.enomem");
        return;
    }
    h.cpu(cost.sock_create);
    if flags & 1 == 0 {
        cov!(h, "net.socket.stream");
    } else {
        cov!(h, "net.socket.dgram");
    }
    let idx = new_sock(h);
    h.seq.result = h.install_fd(FdKind::Socket { idx });
}

/// bind(2): claim a port in the instance-global port table.
pub fn sys_bind(h: &mut HCtx, sock_sel: u64, port_sel: u64) {
    let cost = h.cost();
    cov!(h, "net.bind");
    let Some(src) = pick_sock(h, sock_sel) else {
        cov!(h, "net.bind.ebadf");
        h.cpu(120);
        h.seq.error = Some(Errno::EBADF);
        return;
    };
    let port = port_sel % NET_PORT_SPACE;
    let nb = h.k.locks.sock_buckets.len();
    let bucket = h.k.locks.sock_buckets[port as usize % nb];
    if !h.try_lock(bucket, "net.bind.bucket") {
        fail!(h, Errno::EAGAIN, "net.bind.busy");
        return;
    }
    h.cpu(cost.proto_demux);
    if h.k.state.net.lookup_port(port).is_some() {
        h.unlock(bucket);
        cov!(h, "net.bind.addrinuse");
        h.cpu(120);
        h.seq.error = Some(Errno::EINVAL);
        return;
    }
    let net = &mut h.k.state.net;
    net.ports.push((port, src));
    net.socks[src].port = Some(port);
    let table_len = net.ports.len() as u64;
    h.unlock(bucket);
    cov_bucket!(h, "net.bind.table", HCtx::size_class(table_len));
}

/// listen(2): mark a bound socket as accepting connections.
pub fn sys_listen(h: &mut HCtx, sock_sel: u64, backlog: u64) {
    let cost = h.cost();
    cov!(h, "net.listen");
    let Some(src) = pick_sock(h, sock_sel) else {
        cov!(h, "net.listen.ebadf");
        h.cpu(120);
        h.seq.error = Some(Errno::EBADF);
        return;
    };
    if h.k.state.net.socks[src].port.is_none() {
        cov!(h, "net.listen.einval");
        h.cpu(120);
        h.seq.error = Some(Errno::EINVAL);
        return;
    }
    if !h.try_slab_alloc(1, "net.listen.backlog") {
        fail!(h, Errno::ENOMEM, "net.listen.enomem");
        return;
    }
    h.cpu(cost.sock_create / 2);
    let sk = &mut h.k.state.net.socks[src];
    sk.listening = true;
    sk.backlog_cap = (backlog % 64).max(8);
}

/// connect(2): three-way handshake against a listening port; the SYN
/// rides the NIC like any other packet.
pub fn sys_connect(h: &mut HCtx, sock_sel: u64, port_sel: u64) {
    let cost = h.cost();
    cov!(h, "net.connect");
    let Some(src) = pick_sock(h, sock_sel) else {
        cov!(h, "net.connect.ebadf");
        h.cpu(120);
        h.seq.error = Some(Errno::EBADF);
        return;
    };
    if !h.try_slab_alloc(1, "net.connect.skb") {
        fail!(h, Errno::ENOMEM, "net.connect.enomem");
        return;
    }
    h.cpu(cost.skb_alloc);
    let port = port_sel % NET_PORT_SPACE;
    let nb = h.k.locks.sock_buckets.len();
    let bucket = h.k.locks.sock_buckets[port as usize % nb];
    if !h.try_lock(bucket, "net.connect.bucket") {
        fail!(h, Errno::EAGAIN, "net.connect.busy");
        return;
    }
    h.cpu(cost.proto_demux);
    let listener =
        h.k.state
            .net
            .lookup_port(port)
            .filter(|&l| h.k.state.net.socks[l].listening && h.k.state.net.socks[l].open);
    let Some(l) = listener else {
        h.unlock(bucket);
        cov!(h, "net.connect.refused");
        h.cpu(150);
        h.seq.error = Some(Errno::EINVAL);
        return;
    };
    let sk = &h.k.state.net.socks[l];
    if sk.backlog.len() as u64 >= sk.backlog_cap {
        h.unlock(bucket);
        cov!(h, "net.connect.backlog_full");
        h.cpu(150);
        h.seq.error = Some(Errno::EAGAIN);
        return;
    }
    // The SYN goes out over a NIC queue (virtio doorbell in guests).
    let q =
        h.k.state
            .net
            .nic
            .queue_for(src as u64 ^ port.rotate_left(17));
    let nql = h.k.locks.nic_queue[q % h.k.locks.nic_queue.len()];
    h.lock(nql);
    h.cpu(100);
    let enq = h.k.state.net.nic.try_enqueue(q);
    h.unlock(nql);
    if !enq {
        h.unlock(bucket);
        cov!(h, "net.connect.ring_full");
        h.cpu(150);
        h.seq.error = Some(Errno::EAGAIN);
        return;
    }
    h.push(KOp::VmExit(VmExitKind::IoKick));
    h.k.state.net.socks[l].backlog.push(src);
    h.unlock(bucket);
}

/// accept4(2): pop the accept queue, allocating the connected socket.
pub fn sys_accept(h: &mut HCtx, sock_sel: u64) {
    let cost = h.cost();
    cov!(h, "net.accept");
    let Some(l) = pick_listener(h, sock_sel) else {
        cov!(h, "net.accept.einval");
        h.cpu(120);
        h.seq.error = Some(Errno::EINVAL);
        return;
    };
    if h.k.state.net.socks[l].backlog.is_empty() {
        cov!(h, "net.accept.eagain");
        h.cpu(150);
        h.seq.error = Some(Errno::EAGAIN);
        return;
    }
    if !h.try_slab_alloc(2, "net.accept.sock") {
        fail!(h, Errno::ENOMEM, "net.accept.enomem");
        return;
    }
    h.cpu(cost.sock_create);
    let client = h.k.state.net.socks[l].backlog.remove(0);
    let conn = new_sock(h);
    let net = &mut h.k.state.net;
    net.socks[conn].peer = Some(client);
    net.socks[client].peer = Some(conn);
    h.seq.result = h.install_fd(FdKind::Socket { idx: conn });
}

/// Data-path send shared by `sendto(2)` and `write(2)`-on-a-socket:
/// sk_buff allocation, user→kernel copy, protocol demux under the
/// bucket lock, NIC descriptor post plus doorbell, softirq raise, and
/// bounded-rx-buffer / full-ring backpressure (`EAGAIN`).
pub(crate) fn sock_send(h: &mut HCtx, src: usize, bytes: u64, port_sel: Option<u64>) {
    let cost = h.cost();
    cov_bucket!(h, "net.sendto.size", HCtx::size_class(bytes));
    if !h.try_slab_alloc(1 + bytes / 4_096, "net.sendto.skb") {
        fail!(h, Errno::ENOMEM, "net.sendto.enomem");
        return;
    }
    h.cpu(cost.skb_alloc);
    h.mem(cost.copy(bytes));
    // Route: connected peer first, else the explicit destination port.
    let peer = h.k.state.net.socks[src].peer;
    let (dest, bucket_key) = match (peer, port_sel) {
        (Some(p), _) => (Some(p), p as u64),
        (None, Some(raw)) => {
            let port = raw % NET_PORT_SPACE;
            (h.k.state.net.lookup_port(port), port)
        }
        (None, None) => (None, 0),
    };
    let nb = h.k.locks.sock_buckets.len();
    let bucket = h.k.locks.sock_buckets[bucket_key as usize % nb];
    if !h.try_lock(bucket, "net.sendto.bucket") {
        fail!(h, Errno::EAGAIN, "net.sendto.busy");
        return;
    }
    h.cpu(cost.proto_demux);
    if h.inject(FaultKind::IoError, "net.sendto.nic") {
        h.unlock(bucket);
        fail!(h, Errno::EIO, "net.sendto.eio");
        return;
    }
    // Post a descriptor on the flow's NIC queue; a full ring sheds load.
    // The packet is transmitted whether or not anyone is listening —
    // delivery failures surface *after* the NIC post, as with real
    // datagram sends.
    let q =
        h.k.state
            .net
            .nic
            .queue_for(src as u64 ^ bucket_key.rotate_left(17));
    let nql = h.k.locks.nic_queue[q % h.k.locks.nic_queue.len()];
    h.lock(nql);
    h.cpu(100);
    let enq = h.k.state.net.nic.try_enqueue(q);
    h.unlock(nql);
    if !enq {
        h.unlock(bucket);
        cov!(h, "net.sendto.ring_full");
        h.cpu(150);
        h.seq.error = Some(Errno::EAGAIN);
        return;
    }
    // Virtio doorbell: one VM exit in guests, ~free on bare metal.
    h.push(KOp::VmExit(VmExitKind::IoKick));
    // Raise NET_RX: shared softirq state, serialized instance-wide.
    let softirq = h.k.locks.softirq;
    h.lock(softirq);
    h.cpu(60);
    h.unlock(softirq);
    // Shared-stack extra hops (netfilter/conntrack on container hosts).
    let extra = h.k.state.net.stack_extra_ns;
    if extra > 0 {
        cov!(h, "net.stack.shared");
        h.cpu(extra);
    }
    let dest = dest.filter(|&d| h.k.state.net.socks[d].open);
    let Some(dest) = dest else {
        h.unlock(bucket);
        cov!(h, "net.sendto.noroute");
        h.cpu(120);
        h.seq.error = Some(Errno::EINVAL);
        return;
    };
    // Bounded receive buffer: backpressure instead of loss.
    if h.k.state.net.socks[dest].rx_bytes + bytes > cost.sock_buf_bytes {
        h.unlock(bucket);
        cov!(h, "net.sendto.eagain");
        h.cpu(150);
        h.seq.error = Some(Errno::EAGAIN);
        return;
    }
    let net = &mut h.k.state.net;
    net.socks[dest].rx_bytes += bytes;
    net.sent_bytes += bytes;
    h.unlock(bucket);
    h.seq.result = bytes;
}

/// Data-path receive shared by `recvfrom(2)` and `read(2)`-on-a-socket.
pub(crate) fn sock_recv(h: &mut HCtx, src: usize, want: u64) {
    let cost = h.cost();
    let rx = h.k.state.net.socks[src].rx_bytes;
    if rx == 0 {
        cov!(h, "net.recvfrom.eagain");
        h.cpu(cost.proto_demux / 2);
        h.seq.error = Some(Errno::EAGAIN);
        return;
    }
    let nb = h.k.locks.sock_buckets.len();
    let bucket = h.k.locks.sock_buckets[src % nb];
    if !h.try_lock(bucket, "net.recvfrom.bucket") {
        fail!(h, Errno::EAGAIN, "net.recvfrom.busy");
        return;
    }
    let take = rx.min(want);
    h.cpu(cost.proto_demux);
    h.mem(cost.copy(take));
    let extra = h.k.state.net.stack_extra_ns;
    if extra > 0 {
        h.cpu(extra);
    }
    let net = &mut h.k.state.net;
    net.socks[src].rx_bytes -= take;
    net.recv_bytes += take;
    h.unlock(bucket);
    cov_bucket!(h, "net.recvfrom.size", HCtx::size_class(take));
    h.seq.result = take;
}

/// sendto(2).
pub fn sys_sendto(h: &mut HCtx, sock_sel: u64, len: u64, port_sel: u64) {
    cov!(h, "net.sendto");
    let Some(src) = pick_sock(h, sock_sel) else {
        cov!(h, "net.sendto.ebadf");
        h.cpu(120);
        h.seq.error = Some(Errno::EBADF);
        return;
    };
    sock_send(h, src, msg_bytes(len), Some(port_sel));
}

/// recvfrom(2).
pub fn sys_recvfrom(h: &mut HCtx, sock_sel: u64, len: u64) {
    cov!(h, "net.recvfrom");
    let Some(src) = pick_sock(h, sock_sel) else {
        cov!(h, "net.recvfrom.ebadf");
        h.cpu(120);
        h.seq.error = Some(Errno::EBADF);
        return;
    };
    sock_recv(h, src, msg_bytes(len));
}

/// shutdown(2): release the port, unlink the peer, flush buffered
/// payload (accounted, never silently lost) and retire the sock through
/// an RCU grace period like `sock_put`.
pub fn sys_shutdown_sock(h: &mut HCtx, sock_sel: u64) {
    let cost = h.cost();
    cov!(h, "net.shutdown");
    let Some(src) = pick_sock(h, sock_sel) else {
        cov!(h, "net.shutdown.ebadf");
        h.cpu(120);
        h.seq.error = Some(Errno::EBADF);
        return;
    };
    let nb = h.k.locks.sock_buckets.len();
    let bucket = h.k.locks.sock_buckets[src % nb];
    if !h.try_lock(bucket, "net.shutdown.bucket") {
        fail!(h, Errno::EAGAIN, "net.shutdown.busy");
        return;
    }
    h.cpu(cost.proto_demux);
    let flushed = release_sock_locked(h, src);
    h.unlock(bucket);
    if flushed > 0 {
        cov!(h, "net.shutdown.flush");
    }
    // The fd still references the sock: its table slot is reclaimed only
    // when the descriptor dies (close / process exit).
    h.push(KOp::RcuSync);
}

/// epoll_create1(2).
pub fn sys_epoll_create(h: &mut HCtx) {
    let cost = h.cost();
    cov!(h, "net.epoll_create");
    if !h.try_slab_alloc(1, "net.epoll.ctx") {
        fail!(h, Errno::ENOMEM, "net.epoll_create.enomem");
        return;
    }
    h.cpu(cost.sock_create / 2);
    h.seq.result = h.install_fd(FdKind::Epoll);
}

/// epoll_wait(2): readiness scan over the slot's descriptors (we model
/// the ready-list walk as a bounded scan; cost scales with fd count).
pub fn sys_epoll_wait(h: &mut HCtx, ep_sel: u64, maxev: u64) {
    cov!(h, "net.epoll_wait");
    let fds = &h.k.state.slots[h.slot].fds;
    let has_epoll = !fds.is_empty() && {
        let start = (ep_sel as usize) % fds.len();
        (0..fds.len())
            .map(|i| (start + i) % fds.len())
            .any(|i| matches!(fds[i].kind, FdKind::Epoll))
    };
    if !has_epoll {
        cov!(h, "net.epoll_wait.ebadf");
        h.cpu(120);
        h.seq.error = Some(Errno::EBADF);
        return;
    }
    let maxev = (maxev % 64).max(1);
    let socks = &h.k.state.net.socks;
    let fds = &h.k.state.slots[h.slot].fds;
    let scanned = fds.len() as u64;
    let ready = fds
        .iter()
        .filter(|fd| match fd.kind {
            FdKind::Socket { idx } => socks[idx].open && socks[idx].rx_bytes > 0,
            _ => false,
        })
        .count() as u64;
    let ready = ready.min(maxev);
    h.cpu(80 * scanned.max(1));
    cov_bucket!(h, "net.epoll_wait.ready", HCtx::size_class(ready + 1));
    h.seq.result = ready;
}
