//! The kernel subsystems, one module per syscall category: the paper's
//! six plus networking.
//!
//! Each handler compiles one system call into micro-ops via the
//! [`crate::dispatch::HCtx`] helpers, mutating the instance's logical
//! state as it goes (page-cache fills, dirty counters, fd tables). The
//! *structure* of each handler — which locks it takes, when it IPIs, when
//! it does I/O — mirrors the corresponding Linux path at the granularity
//! relevant to cross-core interference.

pub mod fileio;
pub mod fs;
pub mod ipc;
pub mod mm;
pub mod net;
pub mod perms;
pub mod sched;
