//! Process management and scheduling handlers (category a).
//!
//! The shared structures here are the **tasklist rwlock** (writers on
//! clone/exit serialize against readers on wait/kill/priority changes),
//! the **global PID map lock**, and the **per-core runqueue spinlocks**
//! that the load-balancer daemon also grabs — the paper found this
//! category among the two with the largest extreme-outlier reduction
//! from smaller surface areas.

use ksa_desim::{Ns, US};

use crate::coverage::{cov, cov_bucket, fail};
use crate::dispatch::HCtx;
use crate::errno::Errno;
use crate::ops::{KOp, VmExitKind};

/// getpid: pure fast path, no shared state.
pub fn sys_getpid(h: &mut HCtx) {
    cov!(h, "sched.getpid");
    h.cpu(40);
}

/// sched_yield: own runqueue lock, requeue, pick next.
pub fn sys_sched_yield(h: &mut HCtx) {
    cov!(h, "sched.yield");
    let rq = h.k.locks.runqueue[h.slot];
    let cost = h.cost();
    h.lock(rq);
    h.cpu(cost.rq_op);
    h.unlock(rq);
    // Context-switch path costs an MSR write (swapgs/cr3) which exits on
    // older virtualization hardware.
    h.push(KOp::VmExit(VmExitKind::Msr));
    h.cpu(300);
}

/// clone: tasklist write lock, PID allocation, mm copy proportional to
/// the parent's VMA count, runqueue insert. The child exits immediately
/// and waits to be reaped (wait4).
pub fn sys_clone(h: &mut HCtx, _flags: u64) {
    cov!(h, "sched.clone");
    let cost = h.cost();
    let tasklist = h.k.locks.tasklist;
    let pidmap = h.k.locks.pidmap;
    let rq = h.k.locks.runqueue[h.slot];

    // Task struct + cred + stack allocations.
    if !h.try_slab_alloc(4, "sched.clone.task") {
        // Fork fails before any shared structure is touched.
        fail!(h, Errno::ENOMEM, "sched.clone.enomem");
        return;
    }
    if !h.try_alloc_pages(4, "sched.clone.stack") {
        // Free the task/cred objects; no pid was allocated.
        h.cpu(cost.slab_fast * 4);
        fail!(h, Errno::ENOMEM, "sched.clone.stack_enomem");
        return;
    }

    // Copy mm: cost scales with the address-space size built up so far.
    let vmas = h.k.state.slots[h.slot]
        .vmas
        .iter()
        .filter(|v| v.mapped)
        .count() as Ns;
    if vmas > 8 {
        cov!(h, "sched.clone.large_mm");
    }
    h.mem(cost.task_create_base / 2 + cost.task_create_per_vma * vmas);

    h.lock(pidmap);
    h.cpu(cost.pid_alloc);
    h.unlock(pidmap);

    h.push(KOp::Lock(tasklist, ksa_desim::LockMode::Exclusive));
    h.cpu(cost.task_create_base / 2);
    h.push(KOp::Unlock(tasklist));

    h.lock(rq);
    h.cpu(cost.rq_op);
    h.unlock(rq);

    let st = &mut h.k.state;
    st.sched.nr_tasks += 1;
    st.sched.rq_len[h.slot] += 1;
    st.slots[h.slot].children_pending += 1;
    h.seq.result = 10_000 + st.sched.nr_tasks; // synthetic child pid
}

/// wait4 (WNOHANG): tasklist read lock; reaps one exited child if any.
pub fn sys_wait4(h: &mut HCtx, _pid: u64) {
    let cost = h.cost();
    let tasklist = h.k.locks.tasklist;
    h.push(KOp::Lock(tasklist, ksa_desim::LockMode::Shared));
    h.cpu(400);
    h.push(KOp::Unlock(tasklist));
    if h.k.state.slots[h.slot].children_pending > 0 {
        cov!(h, "sched.wait4.reap");
        // Release the pid and task struct; runqueue dequeue.
        let pidmap = h.k.locks.pidmap;
        let rq = h.k.locks.runqueue[h.slot];
        h.cpu(cost.task_reap);
        h.lock(pidmap);
        h.cpu(cost.pid_alloc / 2);
        h.unlock(pidmap);
        h.lock(rq);
        h.cpu(cost.rq_op);
        h.unlock(rq);
        let st = &mut h.k.state;
        st.slots[h.slot].children_pending -= 1;
        st.sched.nr_tasks -= 1;
        st.sched.rq_len[h.slot] = st.sched.rq_len[h.slot].saturating_sub(1);
    } else {
        cov!(h, "sched.wait4.nochild");
    }
}

/// kill: tasklist read lock for the target lookup, then signal delivery.
pub fn sys_kill(h: &mut HCtx, _pid: u64, sig: u64) {
    let cost = h.cost();
    let tasklist = h.k.locks.tasklist;
    h.push(KOp::Lock(tasklist, ksa_desim::LockMode::Shared));
    h.cpu(350 + 15 * (h.k.state.sched.nr_tasks / 16).min(64));
    h.push(KOp::Unlock(tasklist));
    if sig == 0 {
        cov!(h, "sched.kill.probe");
    } else {
        cov!(h, "sched.kill.deliver");
        h.cpu(cost.signal_send);
        // Cross-core delivery would IPI; we model signal-to-self (the
        // corpus kills its own synthetic children), so no broadcast.
    }
}

/// sched_setaffinity: both source and destination runqueues are locked
/// for the migration.
pub fn sys_sched_setaffinity(h: &mut HCtx, mask: u64) {
    cov!(h, "sched.setaffinity");
    let cost = h.cost();
    let n = h.k.n_cores();
    let target = (mask as usize) % n;
    let (a, b) = if h.slot <= target {
        (h.slot, target)
    } else {
        (target, h.slot)
    };
    let (la, lb) = (h.k.locks.runqueue[a], h.k.locks.runqueue[b]);
    h.lock(la);
    if a != b {
        cov!(h, "sched.setaffinity.migrate");
        h.lock(lb);
        h.cpu(cost.rq_op * 2);
        h.unlock(lb);
    } else {
        h.cpu(cost.rq_op);
    }
    h.unlock(la);
}

/// sched_getparam: own runqueue lock for a consistent snapshot.
pub fn sys_sched_getparam(h: &mut HCtx) {
    cov!(h, "sched.getparam");
    let rq = h.k.locks.runqueue[h.slot];
    h.lock(rq);
    h.cpu(150);
    h.unlock(rq);
}

/// setpriority: tasklist read lock + runqueue reweight.
pub fn sys_setpriority(h: &mut HCtx, _nice: u64) {
    cov!(h, "sched.setpriority");
    let cost = h.cost();
    let tasklist = h.k.locks.tasklist;
    let rq = h.k.locks.runqueue[h.slot];
    h.push(KOp::Lock(tasklist, ksa_desim::LockMode::Shared));
    h.cpu(250);
    h.push(KOp::Unlock(tasklist));
    h.lock(rq);
    h.cpu(cost.rq_op);
    h.unlock(rq);
}

/// nanosleep: bounded sleep (the generator caps durations); dequeue,
/// timer programming (APIC exit under virt), sleep, wakeup (halt exit).
pub fn sys_nanosleep(h: &mut HCtx, ns: u64) {
    cov!(h, "sched.nanosleep");
    let cost = h.cost();
    let rq = h.k.locks.runqueue[h.slot];
    let dur = (ns % (50 * US)).max(1_000); // 1us ..= 50us
    cov_bucket!(
        h,
        "sched.nanosleep.dur",
        crate::dispatch::HCtx::size_class(dur / 1_000)
    );
    h.lock(rq);
    h.cpu(cost.rq_op);
    h.unlock(rq);
    h.push(KOp::VmExit(VmExitKind::Apic)); // program the timer
    h.push(KOp::SleepNs(dur));
    h.push(KOp::VmExit(VmExitKind::Halt)); // wakeup path
    h.lock(rq);
    h.cpu(cost.rq_op);
    h.unlock(rq);
}

/// getrusage: accumulates accounting over the thread group.
pub fn sys_getrusage(h: &mut HCtx) {
    cov!(h, "sched.getrusage");
    let tasklist = h.k.locks.tasklist;
    h.push(KOp::Lock(tasklist, ksa_desim::LockMode::Shared));
    h.cpu(500);
    h.push(KOp::Unlock(tasklist));
}
