//! Inter-process-communication handlers (category e).
//!
//! Contention here is *partial*: futex hash buckets collide across cores
//! (the corpus uses the same uaddr selectors on every core, like threads
//! of one application sharing a futex), and the SysV `ipc_ids` rwlock is
//! global; but pipes and the objects themselves are per-slot. The paper
//! accordingly sees "modest but inconsistent" benefits from smaller
//! surface areas.

use crate::coverage::{cov, cov_bucket, fail};
use crate::dispatch::HCtx;
use crate::errno::Errno;
use crate::instance::FUTEX_BUCKETS;
use crate::ops::KOp;
use crate::state::{FdKind, MsgQueue, ShmSeg, Vma};

/// pipe2: allocate the pipe buffer and two descriptors (read end is the
/// result; the write end is the next fd).
pub fn sys_pipe2(h: &mut HCtx) {
    cov!(h, "ipc.pipe2");
    let cost = h.cost();
    if !h.try_slab_alloc(2, "ipc.pipe2.inode") {
        fail!(h, Errno::ENOMEM, "ipc.pipe2.enomem");
        return;
    }
    if !h.try_alloc_pages(4, "ipc.pipe2.buffer") {
        // Free the two inode objects; no fd was installed.
        h.cpu(cost.slab_fast * 2);
        fail!(h, Errno::ENOMEM, "ipc.pipe2.buffer_enomem");
        return;
    }
    h.cpu(cost.pipe_op);
    let r = h.install_fd(FdKind::Pipe { read_end: true });
    let _w = h.install_fd(FdKind::Pipe { read_end: false });
    h.k.state.ipc.pipes += 1;
    h.seq.result = r;
}

/// futex WAIT with an immediate value mismatch (the generator always
/// produces non-blocking waits, as corpus programs must terminate):
/// bucket lock, user-value load, EAGAIN.
pub fn sys_futex_wait(h: &mut HCtx, uaddr: u64, _val: u64) {
    cov!(h, "ipc.futex.wait_eagain");
    let cost = h.cost();
    // Same uaddr on every core hashes to the same bucket: cross-core
    // bucket-lock contention without any true sharing.
    let bucket = (uaddr as usize) % FUTEX_BUCKETS;
    let lock = h.k.locks.futex[bucket];
    h.lock(lock);
    h.cpu(cost.futex_op);
    h.unlock(lock);
    h.mem(60); // user-memory load
}

/// futex WAKE: bucket lock, empty wait-queue scan.
pub fn sys_futex_wake(h: &mut HCtx, uaddr: u64, nwake: u64) {
    cov!(h, "ipc.futex.wake");
    let cost = h.cost();
    let bucket = (uaddr as usize) % FUTEX_BUCKETS;
    let lock = h.k.locks.futex[bucket];
    h.lock(lock);
    h.cpu(cost.futex_op + 40 * (nwake % 8));
    h.unlock(lock);
}

/// msgget: allocate a queue id under the global ipc_ids write lock.
pub fn sys_msgget(h: &mut HCtx) {
    cov!(h, "ipc.msgget");
    let cost = h.cost();
    if !h.try_slab_alloc(1, "ipc.msgget.queue") {
        fail!(h, Errno::ENOMEM, "ipc.msgget.enomem");
        return;
    }
    let ids = h.k.locks.ipc_ids;
    h.push(KOp::Lock(ids, ksa_desim::LockMode::Exclusive));
    h.cpu(cost.ipc_lookup + 500);
    h.push(KOp::Unlock(ids));
    let qs = &mut h.k.state.ipc.msgqs;
    qs.push(MsgQueue::default());
    h.seq.result = (qs.len() - 1) as u64;
}

/// msgsnd: ids read lock for the lookup, per-slot object lock for the
/// copy-in.
pub fn sys_msgsnd(h: &mut HCtx, qid: u64, bytes: u64) {
    let cost = h.cost();
    let nq = h.k.state.ipc.msgqs.len();
    if nq == 0 {
        cov!(h, "ipc.msgsnd.einval");
        h.cpu(120);
        h.seq.error = Some(Errno::EINVAL);
        return;
    }
    let bytes = (bytes % 8192).max(64);
    cov!(h, "ipc.msgsnd");
    cov_bucket!(
        h,
        "ipc.msgsnd.size",
        crate::dispatch::HCtx::size_class(bytes)
    );
    let ids = h.k.locks.ipc_ids;
    let obj = h.k.locks.ipc_obj[h.slot];
    h.push(KOp::Lock(ids, ksa_desim::LockMode::Shared));
    h.cpu(cost.ipc_lookup);
    h.push(KOp::Unlock(ids));
    if !h.try_slab_alloc(1, "ipc.msgsnd.msg") {
        // No msg_msg buffer: the queue is untouched.
        fail!(h, Errno::ENOMEM, "ipc.msgsnd.enomem");
        return;
    }
    h.lock(obj);
    h.cpu(cost.ipc_msg_base);
    h.mem(cost.copy(bytes));
    h.unlock(obj);
    let q = &mut h.k.state.ipc.msgqs[qid as usize % nq];
    q.msgs += 1;
    q.bytes += bytes;
}

/// msgrcv (IPC_NOWAIT): returns a queued message or EAGAIN.
pub fn sys_msgrcv(h: &mut HCtx, qid: u64, _bytes: u64) {
    let cost = h.cost();
    let nq = h.k.state.ipc.msgqs.len();
    if nq == 0 {
        cov!(h, "ipc.msgrcv.einval");
        h.cpu(120);
        h.seq.error = Some(Errno::EINVAL);
        return;
    }
    let ids = h.k.locks.ipc_ids;
    let obj = h.k.locks.ipc_obj[h.slot];
    h.push(KOp::Lock(ids, ksa_desim::LockMode::Shared));
    h.cpu(cost.ipc_lookup);
    h.push(KOp::Unlock(ids));
    let qi = qid as usize % nq;
    let (msgs, qbytes) = {
        let q = &h.k.state.ipc.msgqs[qi];
        (q.msgs, q.bytes)
    };
    if msgs == 0 {
        cov!(h, "ipc.msgrcv.eagain");
        h.lock(obj);
        h.cpu(cost.ipc_msg_base / 2);
        h.unlock(obj);
        h.seq.error = Some(Errno::EAGAIN);
        return;
    }
    cov!(h, "ipc.msgrcv.dequeue");
    let avg = qbytes / msgs;
    h.lock(obj);
    h.cpu(cost.ipc_msg_base);
    h.mem(cost.copy(avg));
    h.unlock(obj);
    let q = &mut h.k.state.ipc.msgqs[qi];
    q.msgs -= 1;
    q.bytes -= avg;
    h.seq.result = avg;
}

/// semget: allocate a semaphore set under ipc_ids write.
pub fn sys_semget(h: &mut HCtx, nsems: u64) {
    cov!(h, "ipc.semget");
    let cost = h.cost();
    let n = (nsems % 16).max(1) as u32;
    if !h.try_slab_alloc(1, "ipc.semget.set") {
        fail!(h, Errno::ENOMEM, "ipc.semget.enomem");
        return;
    }
    let ids = h.k.locks.ipc_ids;
    h.push(KOp::Lock(ids, ksa_desim::LockMode::Exclusive));
    h.cpu(cost.ipc_lookup + 90 * n as u64 + 400);
    h.push(KOp::Unlock(ids));
    let sems = &mut h.k.state.ipc.sems;
    sems.push(n);
    h.seq.result = (sems.len() - 1) as u64;
}

/// semop (IPC_NOWAIT): ids read lock + per-slot object lock.
pub fn sys_semop(h: &mut HCtx, sid: u64, nops: u64) {
    let cost = h.cost();
    let ns = h.k.state.ipc.sems.len();
    if ns == 0 {
        cov!(h, "ipc.semop.einval");
        h.cpu(120);
        h.seq.error = Some(Errno::EINVAL);
        return;
    }
    cov!(h, "ipc.semop");
    let ids = h.k.locks.ipc_ids;
    let obj = h.k.locks.ipc_obj[h.slot];
    h.push(KOp::Lock(ids, ksa_desim::LockMode::Shared));
    h.cpu(cost.ipc_lookup);
    h.push(KOp::Unlock(ids));
    let sems = h.k.state.ipc.sems[sid as usize % ns] as u64;
    h.lock(obj);
    h.cpu(250 + 100 * (nops % 8).max(1) + 20 * sems);
    h.unlock(obj);
}

/// shmget: segment creation under ipc_ids write.
pub fn sys_shmget(h: &mut HCtx, pages: u64) {
    cov!(h, "ipc.shmget");
    let cost = h.cost();
    let pages = (pages % 128).max(1);
    if !h.try_slab_alloc(2, "ipc.shmget.seg") {
        fail!(h, Errno::ENOMEM, "ipc.shmget.enomem");
        return;
    }
    let ids = h.k.locks.ipc_ids;
    h.push(KOp::Lock(ids, ksa_desim::LockMode::Exclusive));
    h.cpu(cost.ipc_lookup + 700);
    h.push(KOp::Unlock(ids));
    let shms = &mut h.k.state.ipc.shms;
    shms.push(ShmSeg { pages, attaches: 0 });
    h.seq.result = (shms.len() - 1) as u64;
}

/// shmat: attach maps the segment — VMA insert plus page mapping.
pub fn sys_shmat(h: &mut HCtx, shmid: u64) {
    let cost = h.cost();
    let ns = h.k.state.ipc.shms.len();
    if ns == 0 {
        cov!(h, "ipc.shmat.einval");
        h.cpu(120);
        h.seq.error = Some(Errno::EINVAL);
        return;
    }
    cov!(h, "ipc.shmat");
    let si = shmid as usize % ns;
    let pages = h.k.state.ipc.shms[si].pages;
    let ids = h.k.locks.ipc_ids;
    let mmap_sem = h.k.locks.mmap_sem[h.slot];
    h.push(KOp::Lock(ids, ksa_desim::LockMode::Shared));
    h.cpu(cost.ipc_lookup);
    h.push(KOp::Unlock(ids));
    h.lock(mmap_sem);
    h.cpu(cost.vma_alloc);
    h.unlock(mmap_sem);
    if !h.try_alloc_pages(pages.min(32), "ipc.shmat.pages") {
        // The segment exists but could not be mapped; no VMA inserted.
        fail!(h, Errno::ENOMEM, "ipc.shmat.enomem");
        return;
    }
    h.mem(cost.pte_per_page * pages);
    h.k.state.ipc.shms[si].attaches += 1;
    let slot = &mut h.k.state.slots[h.slot];
    slot.vmas.push(Vma {
        pages,
        populated: pages.min(32),
        mapped: true,
        locked: false,
        shm: Some(si),
    });
    h.seq.result = slot.vmas.len() as u64;
}

/// shmdt: detach unmaps — teardown plus a TLB shootdown.
pub fn sys_shmdt(h: &mut HCtx, vma_sel: u64) {
    let cost = h.cost();
    // Find a shm-backed mapped vma.
    let vmas = &h.k.state.slots[h.slot].vmas;
    let pick = (0..vmas.len())
        .map(|i| (vma_sel as usize + i) % vmas.len().max(1))
        .find(|&i| vmas[i].mapped && vmas[i].shm.is_some());
    let Some(vi) = pick else {
        cov!(h, "ipc.shmdt.einval");
        h.cpu(120);
        h.seq.error = Some(Errno::EINVAL);
        return;
    };
    cov!(h, "ipc.shmdt");
    let pages = h.k.state.slots[h.slot].vmas[vi].pages;
    let si = h.k.state.slots[h.slot].vmas[vi].shm.unwrap();
    let mmap_sem = h.k.locks.mmap_sem[h.slot];
    let ptl = h.k.locks.page_table[h.slot];
    h.lock(mmap_sem);
    h.lock(ptl);
    h.cpu(cost.pte_per_page * pages);
    h.unlock(ptl);
    h.push(KOp::Tlb { pages });
    h.unlock(mmap_sem);
    let populated = h.k.state.slots[h.slot].vmas[vi].populated;
    h.free_pages(populated);
    let v = &mut h.k.state.slots[h.slot].vmas[vi];
    v.mapped = false;
    v.populated = 0;
    h.k.state.ipc.shms[si].attaches = h.k.state.ipc.shms[si].attaches.saturating_sub(1);
}

/// eventfd2: lightweight counter fd.
pub fn sys_eventfd(h: &mut HCtx) {
    cov!(h, "ipc.eventfd");
    if !h.try_slab_alloc(1, "ipc.eventfd.ctx") {
        fail!(h, Errno::ENOMEM, "ipc.eventfd.enomem");
        return;
    }
    h.seq.result = h.install_fd(FdKind::EventFd);
}
