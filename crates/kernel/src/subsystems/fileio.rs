//! File I/O handlers (category c).
//!
//! The data path is mostly *private* — per-file page caches, per-slot fd
//! tables — which is why the paper finds no clear surface-area trend for
//! this category. The exceptions are the shared **journal** (fsync,
//! metadata-heavy ops) and **foreground write throttling**: once the
//! instance-wide dirty-page count crosses a threshold proportional to
//! the instance's memory, writers synchronously flush — a stall whose
//! size scales with the surface area.

use ksa_desim::Ns;

use crate::coverage::{cov, cov_bucket, fail};
use crate::dispatch::HCtx;
use crate::errno::Errno;
use crate::ops::{KOp, VmExitKind};
use crate::state::FdKind;

/// Maximum bytes per read/write the generator produces.
pub const MAX_IO_BYTES: u64 = 65_536;

fn io_bytes(raw: u64) -> u64 {
    (raw % MAX_IO_BYTES).max(512)
}

/// Shared read path for read/pread.
pub fn sys_read(h: &mut HCtx, fd_sel: u64, len: u64, positional: bool) {
    let cost = h.cost();
    let bytes = io_bytes(len);
    let Some(fd) = h.pick_fd(fd_sel) else {
        cov!(h, "io.read.ebadf");
        h.cpu(120);
        h.seq.error = Some(Errno::EBADF);
        return;
    };
    match h.k.state.slots[h.slot].fds[fd].kind {
        FdKind::Pipe { .. } => {
            // Nonblocking pipe read; usually empty.
            cov!(h, "io.read.pipe");
            let obj = h.k.locks.ipc_obj[h.slot];
            h.lock(obj);
            h.cpu(cost.pipe_op);
            h.unlock(obj);
        }
        FdKind::EventFd => {
            cov!(h, "io.read.eventfd");
            h.cpu(cost.pipe_op / 2);
        }
        FdKind::Socket { idx } => {
            // read(2) on a socket goes down the same receive path as
            // recvfrom (sock_read_iter → recvmsg in Linux).
            cov!(h, "io.read.socket");
            crate::subsystems::net::sock_recv(h, idx, bytes);
        }
        FdKind::Epoll => {
            cov!(h, "io.read.epoll");
            h.cpu(120);
            h.seq.error = Some(Errno::EINVAL);
        }
        FdKind::Closed => {
            cov!(h, "io.read.ebadf");
            h.cpu(120);
            h.seq.error = Some(Errno::EBADF);
        }
        FdKind::File { idx } => {
            cov_bucket!(h, "io.read.size", crate::dispatch::HCtx::size_class(bytes));
            let pages = bytes.div_ceil(4096);
            let offset = if positional {
                fd_sel % 16
            } else {
                h.k.state.slots[h.slot].fds[fd].offset_pages
            };
            let file = &h.k.state.fs.files[idx];
            let end = (offset + pages).min(file.size_pages.max(1));
            let cached = file.cached_pages;
            h.cpu(cost.pagecache_lookup * pages);
            if end <= cached {
                // Full page-cache hit: lookup + copy.
                cov!(h, "io.read.hit");
                h.mem(cost.copy(bytes));
            } else {
                // Miss: readahead from disk, insert into cache + LRU.
                cov!(h, "io.read.miss");
                let miss_pages = end.saturating_sub(cached.min(end)) + 8; // readahead
                if !h.try_alloc_pages(miss_pages, "io.read.pages") {
                    // No pages for the readahead window.
                    fail!(h, Errno::ENOMEM, "io.read.enomem");
                    return;
                }
                h.push(KOp::VmExit(VmExitKind::IoKick));
                let ok = h.try_io(miss_pages * 4096, false, "io.read.disk");
                h.push(KOp::VmExit(VmExitKind::IoIrq));
                if !ok {
                    // The device errored: drop the speculative pages and
                    // leave the cache and file offset untouched.
                    h.free_pages(miss_pages);
                    fail!(h, Errno::EIO, "io.read.eio");
                    return;
                }
                h.mem(cost.copy(bytes));
                let f = &mut h.k.state.fs.files[idx];
                f.cached_pages = (f.cached_pages + miss_pages).min(f.size_pages);
                h.k.state.mm.lru_pages += miss_pages;
            }
            if !positional {
                let e = &mut h.k.state.slots[h.slot].fds[fd];
                e.offset_pages = end % h.k.state.fs.files[idx].size_pages.max(1);
            }
            h.seq.result = bytes;
        }
    }
}

/// Shared write path for write/pwrite. Dirties pages; crossing the
/// instance dirty threshold triggers foreground writeback under the
/// journal lock (`balance_dirty_pages`).
pub fn sys_write(h: &mut HCtx, fd_sel: u64, len: u64, positional: bool) {
    let cost = h.cost();
    let bytes = io_bytes(len);
    let Some(fd) = h.pick_fd(fd_sel) else {
        cov!(h, "io.write.ebadf");
        h.cpu(120);
        h.seq.error = Some(Errno::EBADF);
        return;
    };
    match h.k.state.slots[h.slot].fds[fd].kind {
        FdKind::Pipe { .. } => {
            cov!(h, "io.write.pipe");
            let obj = h.k.locks.ipc_obj[h.slot];
            h.lock(obj);
            h.cpu(cost.pipe_op);
            h.mem(cost.copy(bytes.min(16 * 4096)));
            h.unlock(obj);
        }
        FdKind::EventFd => {
            cov!(h, "io.write.eventfd");
            h.cpu(cost.pipe_op / 2);
        }
        FdKind::Socket { idx } => {
            // write(2) on a connected socket is the send path without an
            // explicit destination (peer routing only).
            cov!(h, "io.write.socket");
            crate::subsystems::net::sock_send(h, idx, bytes, None);
        }
        FdKind::Epoll => {
            cov!(h, "io.write.epoll");
            h.cpu(120);
            h.seq.error = Some(Errno::EINVAL);
        }
        FdKind::Closed => {
            cov!(h, "io.write.ebadf");
            h.cpu(120);
            h.seq.error = Some(Errno::EBADF);
        }
        FdKind::File { idx } => {
            cov!(h, "io.write.file");
            cov_bucket!(h, "io.write.size", crate::dispatch::HCtx::size_class(bytes));
            let pages = bytes.div_ceil(4096);
            if !h.try_alloc_pages(pages, "io.write.pages") {
                // No pages for the cache-side copy: nothing dirtied yet.
                fail!(h, Errno::ENOMEM, "io.write.enomem");
                return;
            }
            h.mem(cost.copy(bytes));
            {
                let f = &mut h.k.state.fs.files[idx];
                f.dirty_pages += pages;
                f.cached_pages = (f.cached_pages + pages).min(f.size_pages + pages);
                f.size_pages = f.size_pages.max(f.cached_pages);
            }
            h.k.state.mm.dirty_pages += pages;
            // Appends dirty metadata (block allocation) every few pages.
            h.k.state.fs.journal_dirty += pages / 4 + 1;
            if !positional {
                h.k.state.slots[h.slot].fds[fd].offset_pages += pages;
            }

            // Foreground throttling: the instance-wide dirty backlog is
            // everyone's problem in a shared kernel.
            let thresh = h.k.state.mm.dirty_threshold(cost.dirty_throttle_pct);
            if h.k.state.mm.dirty_pages > thresh {
                cov!(h, "io.write.throttled");
                let flush = (h.k.state.mm.dirty_pages / 2).min(4096);
                let journal = h.k.locks.journal;
                if !h.try_lock(journal, "io.write.journal") {
                    // Could not join the flush transaction; the data is in
                    // the cache but the caller must back off and retry.
                    fail!(h, Errno::EAGAIN, "io.write.journal_timeout");
                    return;
                }
                h.cpu(cost.writeback_base + cost.writeback_per_page * flush);
                h.push(KOp::VmExit(VmExitKind::IoKick));
                let ok = h.try_io(flush * 4096, true, "io.write.writeback");
                h.push(KOp::VmExit(VmExitKind::IoIrq));
                h.unlock(journal);
                if !ok {
                    // Writeback failed: pages stay dirty for a later retry.
                    fail!(h, Errno::EIO, "io.write.eio");
                    return;
                }
                h.k.state.mm.dirty_pages -= flush;
            }
            h.seq.result = bytes;
        }
    }
}

/// lseek: fd-table fast path.
pub fn sys_lseek(h: &mut HCtx, fd_sel: u64, off: u64) {
    let Some(fd) = h.pick_fd(fd_sel) else {
        cov!(h, "io.lseek.ebadf");
        h.cpu(100);
        h.seq.error = Some(Errno::EBADF);
        return;
    };
    cov!(h, "io.lseek");
    h.cpu(130);
    if let FdKind::File { idx } = h.k.state.slots[h.slot].fds[fd].kind {
        let size = h.k.state.fs.files[idx].size_pages.max(1);
        h.k.state.slots[h.slot].fds[fd].offset_pages = off % size;
    }
}

/// fsync / fdatasync: journal commit sized by the *shared* dirty
/// metadata backlog, plus the file's own dirty data.
pub fn sys_fsync(h: &mut HCtx, fd_sel: u64, data_only: bool) {
    let cost = h.cost();
    let Some(fd) = h.pick_fd(fd_sel) else {
        cov!(h, "io.fsync.ebadf");
        h.cpu(100);
        h.seq.error = Some(Errno::EBADF);
        return;
    };
    let FdKind::File { idx } = h.k.state.slots[h.slot].fds[fd].kind else {
        cov!(h, "io.fsync.nonfile");
        h.cpu(150);
        h.seq.error = Some(Errno::EINVAL);
        return;
    };
    let file_dirty = h.k.state.fs.files[idx].dirty_pages;
    if file_dirty == 0 && h.k.state.fs.journal_dirty == 0 {
        cov!(h, "io.fsync.clean");
        h.cpu(400);
        return;
    }
    if data_only {
        cov!(h, "io.fdatasync");
    } else {
        cov!(h, "io.fsync.commit");
    }
    // Write back the file's data pages.
    if file_dirty > 0 {
        h.cpu(cost.writeback_base / 2 + cost.writeback_per_page * file_dirty.min(1024));
        h.push(KOp::VmExit(VmExitKind::IoKick));
        let ok = h.try_io(file_dirty.min(1024) * 4096, true, "io.fsync.data");
        h.push(KOp::VmExit(VmExitKind::IoIrq));
        if !ok {
            // Data writeback failed; pages stay dirty, durability not
            // achieved — report it rather than pretending.
            fail!(h, Errno::EIO, "io.fsync.data_eio");
            return;
        }
    }
    // Metadata commit: serialize on the journal with everyone else's
    // metadata. Group commit (jbd2): the first waiter commits the whole
    // running transaction; callers arriving after it find a clean
    // journal and skip the commit entirely.
    if !data_only && h.k.state.fs.journal_dirty > 0 {
        let journal = h.k.locks.journal;
        let blocks = h.k.state.fs.journal_dirty.min(8_192);
        if !h.try_lock(journal, "io.fsync.journal") {
            // Timed out waiting on the running transaction.
            fail!(h, Errno::EAGAIN, "io.fsync.journal_timeout");
            return;
        }
        h.cpu(cost.journal_commit_base + cost.journal_per_block * blocks);
        h.push(KOp::VmExit(VmExitKind::IoKick));
        let ok = h.try_io((blocks + 1) * 4096, true, "io.fsync.journal_io");
        h.push(KOp::VmExit(VmExitKind::IoIrq));
        h.unlock(journal);
        if !ok {
            // Commit record never hit the disk: the transaction stays
            // dirty and will be retried by the next committer.
            fail!(h, Errno::EIO, "io.fsync.eio");
            return;
        }
        h.k.state.fs.journal_dirty = 0;
        h.k.state.fs.commits += 1;
    }
    let delta = {
        let f = &mut h.k.state.fs.files[idx];
        let d = f.dirty_pages;
        f.dirty_pages = 0;
        d
    };
    h.k.state.mm.dirty_pages = h.k.state.mm.dirty_pages.saturating_sub(delta);
}

/// readv: scatter-gather read — per-segment setup plus the read path.
pub fn sys_readv(h: &mut HCtx, fd_sel: u64, len: u64, segs: u64) {
    let segs = (segs % 8).max(1);
    cov!(h, "io.readv");
    h.cpu(90 * segs as Ns);
    sys_read(h, fd_sel, len, false);
}

/// writev: scatter-gather write.
pub fn sys_writev(h: &mut HCtx, fd_sel: u64, len: u64, segs: u64) {
    let segs = (segs % 8).max(1);
    cov!(h, "io.writev");
    h.cpu(90 * segs as Ns);
    sys_write(h, fd_sel, len, false);
}

/// fallocate: block allocation under the journal.
pub fn sys_fallocate(h: &mut HCtx, fd_sel: u64, len: u64) {
    let cost = h.cost();
    let Some(fd) = h.pick_fd(fd_sel) else {
        cov!(h, "io.fallocate.ebadf");
        h.cpu(100);
        h.seq.error = Some(Errno::EBADF);
        return;
    };
    let FdKind::File { idx } = h.k.state.slots[h.slot].fds[fd].kind else {
        cov!(h, "io.fallocate.nonfile");
        h.cpu(120);
        h.seq.error = Some(Errno::EINVAL);
        return;
    };
    cov!(h, "io.fallocate");
    let blocks = (len % 64).max(1);
    let journal = h.k.locks.journal;
    if !h.try_lock(journal, "io.fallocate.journal") {
        // Block allocation needs the journal; no metadata was touched.
        fail!(h, Errno::EAGAIN, "io.fallocate.journal_timeout");
        return;
    }
    h.cpu(cost.journal_per_block * blocks + 2_000);
    h.unlock(journal);
    h.k.state.fs.journal_dirty += blocks / 2 + 1;
    h.k.state.fs.files[idx].size_pages += blocks;
}
