//! Filesystem-management handlers (category d).
//!
//! Metadata operations share the **dcache** and **superblock inode**
//! spinlocks, the filesystem-wide **rename mutex** and the **journal** —
//! all instance-global. The paper finds this category (with process
//! management) shows the greatest extreme-outlier reduction from smaller
//! surface areas: fewer cores per kernel means fewer concurrent
//! journal/dcache writers and smaller hash-chain pressure.

use crate::coverage::{cov, cov_bucket, fail};
use crate::dispatch::HCtx;
use crate::errno::Errno;
use crate::state::{FdKind, FileMeta};

/// Gets or creates the file behind a path selector in this slot's
/// namespace; returns `(file index, created)`.
fn lookup_or_create(h: &mut HCtx, sel: u64, create: bool) -> Option<(usize, bool)> {
    let name = h.name_index(sel);
    let depth = 2 + (sel % 4) as u32;
    cov_bucket!(h, "fs.lookup.depth", depth);
    if let Some(idx) = h.k.state.slots[h.slot].names[name] {
        let cached = h.k.state.fs.files[idx].dentry_cached;
        if !h.path_walk(depth, cached) {
            return None; // walk failed; error already recorded
        }
        h.k.state.fs.files[idx].dentry_cached = true;
        return Some((idx, false));
    }
    if !create {
        cov!(h, "fs.lookup.enoent");
        // Parent components resolve, final misses.
        if !h.path_walk(depth, true) {
            return None;
        }
        h.cpu(200);
        return None;
    }
    // Create: parent walk, dentry insert, journal the new inode.
    cov!(h, "fs.create");
    if !h.path_walk(depth - 1, true) {
        return None;
    }
    if !h.try_slab_alloc(2, "fs.create.inode") {
        // No memory for the dentry + inode pair; nothing inserted yet.
        fail!(h, Errno::ENOMEM, "fs.create.enomem");
        return None;
    }
    let cost = h.cost();
    let dcache = h.k.locks.dcache;
    h.lock(dcache);
    h.cpu(cost.dentry_insert);
    h.unlock(dcache);
    let sb = h.k.locks.inode_sb;
    h.lock(sb);
    h.cpu(400);
    h.unlock(sb);
    let journal = h.k.locks.journal;
    if !h.try_lock(journal, "fs.create.journal") {
        // Could not journal the create: free the speculative dentry and
        // inode and leave the namespace unchanged.
        h.cpu(cost.slab_fast * 2);
        fail!(h, Errno::EAGAIN, "fs.create.journal_timeout");
        return None;
    }
    h.cpu(cost.dirent_update);
    h.unlock(journal);
    h.k.state.fs.journal_dirty += 2;
    h.k.state.fs.dentries += 1;
    let idx = h.k.state.fs.files.len();
    h.k.state.fs.files.push(FileMeta {
        size_pages: 4 + sel % 60,
        cached_pages: 0,
        dirty_pages: 0,
        path_depth: depth,
        dentry_cached: true,
    });
    h.k.state.slots[h.slot].names[name] = Some(idx);
    Some((idx, true))
}

/// open(path, flags): bit 0 of flags = O_CREAT.
pub fn sys_open(h: &mut HCtx, path_sel: u64, flags: u64) {
    let create = flags & 1 != 0;
    let Some((idx, created)) = lookup_or_create(h, path_sel, create) else {
        return;
    };
    if created {
        cov!(h, "fs.open.creat");
    } else {
        cov!(h, "fs.open.existing");
    }
    h.seq.result = h.install_fd(FdKind::File { idx });
}

/// close(fd): fd-table update plus final-reference object release — a
/// socket's table slot is released (if not already shut down) and
/// reclaimed for reuse here, when its last descriptor dies.
pub fn sys_close(h: &mut HCtx, fd_sel: u64) {
    let cost = h.cost();
    let Some(fd) = h.pick_fd(fd_sel) else {
        cov!(h, "fs.close.ebadf");
        h.cpu(90);
        h.seq.error = Some(Errno::EBADF);
        return;
    };
    cov!(h, "fs.close");
    let fdt = h.k.locks.fdtable[h.slot];
    h.lock(fdt);
    h.cpu(200);
    h.unlock(fdt);
    h.cpu(cost.slab_fast);
    let kind = h.k.state.slots[h.slot].fds[fd].kind;
    h.retire_fd(fd);
    if let FdKind::Socket { idx } = kind {
        crate::subsystems::net::drop_sock_ref(h, idx);
    }
}

/// stat(path): path walk + attribute copy.
pub fn sys_stat(h: &mut HCtx, path_sel: u64) {
    if let Some((_idx, _)) = lookup_or_create(h, path_sel, false) {
        cov!(h, "fs.stat");
        h.cpu(300);
    }
}

/// fstat(fd): no walk, inode attribute copy.
pub fn sys_fstat(h: &mut HCtx, fd_sel: u64) {
    if h.pick_fd(fd_sel).is_none() {
        cov!(h, "fs.fstat.ebadf");
        h.cpu(90);
        h.seq.error = Some(Errno::EBADF);
        return;
    }
    cov!(h, "fs.fstat");
    h.cpu(250);
}

/// access(path): walk + permission check against credentials.
pub fn sys_access(h: &mut HCtx, path_sel: u64) {
    if lookup_or_create(h, path_sel, false).is_some() {
        cov!(h, "fs.access");
        h.cpu(350);
    }
}

/// getdents64: directory scan, cost per resident dentry of this slot.
pub fn sys_getdents(h: &mut HCtx, _fd_sel: u64) {
    cov!(h, "fs.getdents");
    let cost = h.cost();
    let entries = h.k.state.slots[h.slot]
        .names
        .iter()
        .filter(|n| n.is_some())
        .count() as u64
        + 2;
    h.cpu(180 * entries);
    h.mem(cost.copy(64 * entries));
}

/// mkdir: create path (directory inode).
pub fn sys_mkdir(h: &mut HCtx, path_sel: u64) {
    cov!(h, "fs.mkdir");
    let _ = lookup_or_create(h, path_sel | 0x8000_0000, true);
}

/// rmdir: remove a directory entry.
pub fn sys_rmdir(h: &mut HCtx, path_sel: u64) {
    unlink_common(h, path_sel | 0x8000_0000, "fs.rmdir");
}

/// unlink: remove a file entry.
pub fn sys_unlink(h: &mut HCtx, path_sel: u64) {
    unlink_common(h, path_sel, "fs.unlink");
}

fn unlink_common(h: &mut HCtx, path_sel: u64, blk: &'static str) {
    let cost = h.cost();
    let name = h.name_index(path_sel);
    let Some(idx) = h.k.state.slots[h.slot].names[name] else {
        cov!(h, "fs.unlink.enoent");
        let _ = h.path_walk(2, true); // cached walk: cannot fail
        return;
    };
    h.cover(blk);
    let cached = h.k.state.fs.files[idx].dentry_cached;
    if !h.path_walk(2 + (path_sel % 4) as u32, cached) {
        return;
    }
    let dcache = h.k.locks.dcache;
    h.lock(dcache);
    h.cpu(cost.dentry_insert / 2);
    h.unlock(dcache);
    let journal = h.k.locks.journal;
    if !h.try_lock(journal, "fs.unlink.journal") {
        // The entry survives: nothing was journaled or removed.
        fail!(h, Errno::EAGAIN, "fs.unlink.journal_timeout");
        return;
    }
    h.cpu(cost.dirent_update);
    h.unlock(journal);
    h.k.state.fs.journal_dirty += 1;
    h.k.state.fs.dentries = h.k.state.fs.dentries.saturating_sub(1);
    h.k.state.slots[h.slot].names[name] = None;
    // Invalidate cached pages of the victim under the LRU lock.
    let pages = h.k.state.fs.files[idx].cached_pages;
    if pages > 0 {
        cov!(h, "fs.unlink.invalidate");
        let lru = h.k.locks.lru;
        h.lock(lru);
        h.cpu(50 * pages.min(256));
        h.unlock(lru);
        h.k.state.fs.files[idx].cached_pages = 0;
        h.k.state.mm.lru_pages = h.k.state.mm.lru_pages.saturating_sub(pages);
    }
}

/// rename: the filesystem-wide rename mutex serializes all renames in
/// the instance — the heaviest metadata convoy in this category.
pub fn sys_rename(h: &mut HCtx, from_sel: u64, to_sel: u64) {
    let cost = h.cost();
    let from = h.name_index(from_sel);
    let Some(idx) = h.k.state.slots[h.slot].names[from] else {
        cov!(h, "fs.rename.enoent");
        let _ = h.path_walk(2, true); // cached walk: cannot fail
        return;
    };
    cov!(h, "fs.rename");
    let rename = h.k.locks.rename;
    let dcache = h.k.locks.dcache;
    let journal = h.k.locks.journal;
    if !h.try_lock(rename, "fs.rename.mutex") {
        // Lost the race for the instance-wide rename mutex.
        fail!(h, Errno::EAGAIN, "fs.rename.timeout");
        return;
    }
    let _ = h.path_walk(2 + (from_sel % 3) as u32, true); // cached: cannot fail
    let _ = h.path_walk(2 + (to_sel % 3) as u32, true);
    h.lock(dcache);
    h.cpu(cost.dentry_insert);
    h.unlock(dcache);
    if !h.try_lock(journal, "fs.rename.journal") {
        // Back out: release the rename mutex, leave both names as-is.
        h.unlock(rename);
        fail!(h, Errno::EAGAIN, "fs.rename.journal_timeout");
        return;
    }
    h.cpu(cost.dirent_update * 2);
    h.unlock(journal);
    h.unlock(rename);
    h.k.state.fs.journal_dirty += 2;
    let to = h.name_index(to_sel);
    h.k.state.slots[h.slot].names[from] = None;
    h.k.state.slots[h.slot].names[to] = Some(idx);
}

/// symlink: create a symlink inode.
pub fn sys_symlink(h: &mut HCtx, _target_sel: u64, link_sel: u64) {
    cov!(h, "fs.symlink");
    let _ = lookup_or_create(h, link_sel ^ 0x55, true);
}

/// readlink: walk + copy the target.
pub fn sys_readlink(h: &mut HCtx, path_sel: u64) {
    if lookup_or_create(h, path_sel, false).is_some() {
        cov!(h, "fs.readlink");
        let cost = h.cost();
        h.mem(cost.copy(64));
        h.cpu(250);
    }
}

/// truncate(path, pages): journal the size change and invalidate the
/// tail of the page cache.
pub fn sys_truncate(h: &mut HCtx, path_sel: u64, new_pages: u64) {
    let cost = h.cost();
    let Some((idx, _)) = lookup_or_create(h, path_sel, false) else {
        return;
    };
    cov!(h, "fs.truncate");
    let new_pages = new_pages % 64;
    let journal = h.k.locks.journal;
    if !h.try_lock(journal, "fs.truncate.journal") {
        // Size change not journaled: the file keeps its old length.
        fail!(h, Errno::EAGAIN, "fs.truncate.journal_timeout");
        return;
    }
    h.cpu(cost.dirent_update + cost.journal_per_block * 2);
    h.unlock(journal);
    h.k.state.fs.journal_dirty += 1;
    let f = &mut h.k.state.fs.files[idx];
    let dropped = f.cached_pages.saturating_sub(new_pages);
    f.size_pages = new_pages.max(1);
    f.cached_pages = f.cached_pages.min(new_pages);
    let fdirty = f.dirty_pages;
    f.dirty_pages = f.dirty_pages.min(new_pages);
    let ddelta = fdirty - f.dirty_pages;
    if dropped > 0 {
        cov!(h, "fs.truncate.invalidate");
        let lru = h.k.locks.lru;
        h.lock(lru);
        h.cpu(50 * dropped.min(256));
        h.unlock(lru);
        h.k.state.mm.lru_pages = h.k.state.mm.lru_pages.saturating_sub(dropped);
    }
    h.k.state.mm.dirty_pages = h.k.state.mm.dirty_pages.saturating_sub(ddelta);
}
