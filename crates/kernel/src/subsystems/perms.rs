//! Permission / capability handlers (category f).
//!
//! Every mutating call funnels through two instance-global structures:
//! the **credential lock** and the **audit log lock**; privilege
//! transitions additionally wait for an **RCU grace period** (credential
//! publication), whose length scales with the instance's core count.
//! Together these give the paper's "modest but consistent" improvement as
//! surface area shrinks — the whole latency mass slides down.

use crate::coverage::cov;
use crate::dispatch::HCtx;
use crate::ops::KOp;

use super::fs::sys_stat;

/// Emits the audit-trail record every security-relevant call pays.
fn audit(h: &mut HCtx, blk: &'static str) {
    h.cover(blk);
    let cost = h.cost();
    let lock = h.k.locks.audit;
    h.slab_alloc(1); // audit buffer
    h.lock(lock);
    h.cpu(cost.audit_emit);
    h.unlock(lock);
}

/// chmod(path, mode): walk + inode mode update + journal + audit.
pub fn sys_chmod(h: &mut HCtx, path_sel: u64, _mode: u64) {
    let cost = h.cost();
    // Reuse the fs walk by doing a stat-like resolution first.
    sys_stat(h, path_sel);
    cov!(h, "perm.chmod");
    let sb = h.k.locks.inode_sb;
    h.lock(sb);
    h.cpu(350);
    h.unlock(sb);
    let journal = h.k.locks.journal;
    h.lock(journal);
    h.cpu(cost.dirent_update / 2);
    h.unlock(journal);
    h.k.state.fs.journal_dirty += 1;
    audit(h, "perm.chmod.audit");
}

/// fchmod(fd, mode): no walk.
pub fn sys_fchmod(h: &mut HCtx, fd_sel: u64, _mode: u64) {
    if h.pick_fd(fd_sel).is_none() {
        cov!(h, "perm.fchmod.ebadf");
        h.cpu(90);
        return;
    }
    cov!(h, "perm.fchmod");
    let cost = h.cost();
    let sb = h.k.locks.inode_sb;
    h.lock(sb);
    h.cpu(300);
    h.unlock(sb);
    h.k.state.fs.journal_dirty += 1;
    let journal = h.k.locks.journal;
    h.lock(journal);
    h.cpu(cost.dirent_update / 2);
    h.unlock(journal);
    audit(h, "perm.fchmod.audit");
}

/// chown(path, uid): like chmod plus quota transfer bookkeeping.
pub fn sys_chown(h: &mut HCtx, path_sel: u64, _uid: u64) {
    let cost = h.cost();
    sys_stat(h, path_sel);
    cov!(h, "perm.chown");
    let sb = h.k.locks.inode_sb;
    h.lock(sb);
    h.cpu(500);
    h.unlock(sb);
    let journal = h.k.locks.journal;
    h.lock(journal);
    h.cpu(cost.dirent_update / 2 + 300);
    h.unlock(journal);
    h.k.state.fs.journal_dirty += 1;
    audit(h, "perm.chown.audit");
}

/// setuid(uid): prepare/commit creds under the cred lock; dropping or
/// changing identity publishes new credentials and waits for readers
/// (RCU grace period ∝ instance cores).
pub fn sys_setuid(h: &mut HCtx, uid: u64) {
    let cost = h.cost();
    let new_uid = uid % 4;
    h.slab_alloc(1); // new cred struct
    let cred = h.k.locks.cred;
    h.lock(cred);
    h.cpu(cost.cred_update);
    h.unlock(cred);
    if new_uid != h.k.state.slots[h.slot].uid {
        cov!(h, "perm.setuid.change");
        h.push(KOp::RcuSync);
        h.k.state.slots[h.slot].uid = new_uid;
    } else {
        cov!(h, "perm.setuid.same");
    }
    audit(h, "perm.setuid.audit");
}

/// getuid: pure fast path.
pub fn sys_getuid(h: &mut HCtx) {
    cov!(h, "perm.getuid");
    h.cpu(40);
    h.seq.result = h.k.state.slots[h.slot].uid;
}

/// capget: capability snapshot of a task (tasklist read).
pub fn sys_capget(h: &mut HCtx) {
    cov!(h, "perm.capget");
    let cost = h.cost();
    let tasklist = h.k.locks.tasklist;
    h.push(KOp::Lock(tasklist, ksa_desim::LockMode::Shared));
    h.cpu(cost.cap_compute);
    h.push(KOp::Unlock(tasklist));
}

/// capset: recompute + publish capability sets.
pub fn sys_capset(h: &mut HCtx, _caps: u64) {
    cov!(h, "perm.capset");
    let cost = h.cost();
    h.slab_alloc(1);
    let cred = h.k.locks.cred;
    h.lock(cred);
    h.cpu(cost.cred_update + cost.cap_compute);
    h.unlock(cred);
    h.push(KOp::RcuSync);
    audit(h, "perm.capset.audit");
}

/// umask: per-process, trivial.
pub fn sys_umask(h: &mut HCtx, mask: u64) {
    cov!(h, "perm.umask");
    h.cpu(60);
    let old = h.k.state.slots[h.slot].umask;
    h.k.state.slots[h.slot].umask = mask & 0o777;
    h.seq.result = old;
}

/// setgroups: allocate and publish a group_info vector.
pub fn sys_setgroups(h: &mut HCtx, ngroups: u64) {
    cov!(h, "perm.setgroups");
    let cost = h.cost();
    let n = (ngroups % 32).max(1);
    h.slab_alloc(1);
    h.mem(cost.copy(8 * n));
    let cred = h.k.locks.cred;
    h.lock(cred);
    h.cpu(cost.cred_update + 30 * n);
    h.unlock(cred);
    audit(h, "perm.setgroups.audit");
}

/// prctl: mixed bag — some subcommands touch creds, some the task.
pub fn sys_prctl(h: &mut HCtx, option: u64) {
    let cost = h.cost();
    match option % 3 {
        0 => {
            cov!(h, "perm.prctl.name");
            let tasklist = h.k.locks.tasklist;
            h.push(KOp::Lock(tasklist, ksa_desim::LockMode::Shared));
            h.cpu(300);
            h.push(KOp::Unlock(tasklist));
        }
        1 => {
            cov!(h, "perm.prctl.seccomp");
            h.slab_alloc(1);
            let cred = h.k.locks.cred;
            h.lock(cred);
            h.cpu(cost.cred_update / 2);
            h.unlock(cred);
            audit(h, "perm.prctl.audit");
        }
        _ => {
            cov!(h, "perm.prctl.simple");
            h.cpu(200);
        }
    }
}
