//! Kernel micro-operations: the compiled form of a system call.
//!
//! A handler turns one call into an [`OpSeq`] — a flat sequence of
//! micro-ops. The sequence is *replayed* on the event engine by
//! [`crate::exec::OpRunner`], where lock queueing, IPI storms and device
//! queueing actually play out in virtual time.

use ksa_desim::{LockId, LockMode, Ns};

/// One micro-operation of a system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KOp {
    /// Plain kernel CPU work on the calling core.
    Cpu(Ns),
    /// Userspace CPU work: guest user code runs at native speed, so this
    /// is never scaled by the virtualization profile.
    UserCpu(Ns),
    /// CPU work that touches guest memory: under hardware virtualization
    /// it is scaled by the nested-paging multiplier.
    MemTouch(Ns),
    /// Acquire a simulated lock (blocking, FIFO).
    Lock(LockId, LockMode),
    /// Release a simulated lock.
    Unlock(LockId),
    /// TLB shootdown covering `pages` pages: local flush plus an IPI
    /// broadcast to every *other* core of the kernel instance. Under
    /// virtualization the sender additionally pays one VM exit per target
    /// (vCPU kick).
    Tlb {
        /// Pages being invalidated.
        pages: u64,
    },
    /// Block-device I/O on the instance's disk.
    Io {
        /// Transfer size in bytes.
        bytes: u64,
        /// Whether this is a write (used for accounting only).
        write: bool,
    },
    /// Wait for an RCU grace period on the instance's domain.
    RcuSync,
    /// Sleep off-CPU for a bounded duration (nanosleep, timeouts). Under
    /// virtualization the wakeup path costs a halt exit.
    SleepNs(Ns),
    /// A virtualization-sensitive operation: costs a VM exit under
    /// hardware virtualization and (nearly) nothing on bare metal.
    VmExit(VmExitKind),
    /// Yield-like no-op used as a preemption point marker.
    Nop,
}

/// Why a VM exit happens; each kind has its own cost in the
/// [`crate::instance::VirtProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmExitKind {
    /// Virtio doorbell / queue kick when submitting I/O.
    IoKick,
    /// Completion interrupt injection for I/O.
    IoIrq,
    /// APIC access (sending an IPI, timer programming).
    Apic,
    /// MSR or control-register access (context switches, cr3 loads on
    /// older hardware).
    Msr,
    /// Halt/idle exit (wakeup path of sleeping syscalls).
    Halt,
    /// Bounded guest-side cost every virtualized syscall pays on kernel
    /// entry (nested-paging walks, polluted TLB/caches from world
    /// switches). Scaled like kernel CPU work; zero on bare metal.
    GuestSyscall,
}

impl VmExitKind {
    /// Stable short tag for trace events and reports.
    pub fn tag(self) -> &'static str {
        match self {
            VmExitKind::IoKick => "io_kick",
            VmExitKind::IoIrq => "io_irq",
            VmExitKind::Apic => "apic",
            VmExitKind::Msr => "msr",
            VmExitKind::Halt => "halt",
            VmExitKind::GuestSyscall => "guest_syscall",
        }
    }
}

/// A compiled system call: micro-ops plus its result value (fd, address,
/// ipc id, ...), which later calls may consume as a resource.
#[derive(Debug, Clone, Default)]
pub struct OpSeq {
    /// The micro-ops, executed in order.
    pub ops: Vec<KOp>,
    /// The syscall's return value (resource produced, or 0).
    pub result: u64,
    /// Error path taken, if any. The ops still replay (the work up to the
    /// failure point was really done); `error` tells the harness the call
    /// did not complete its semantic effect.
    pub error: Option<crate::errno::Errno>,
}

impl OpSeq {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the sequence for reuse, keeping the op buffer's capacity.
    /// The steady-state dispatch path compiles every call into a caller-
    /// held scratch sequence instead of allocating a fresh one.
    #[inline]
    pub fn reset(&mut self) {
        self.ops.clear();
        self.result = 0;
        self.error = None;
    }

    /// Appends an op.
    #[inline]
    pub fn push(&mut self, op: KOp) {
        self.ops.push(op);
    }

    /// Appends CPU work, merging with a trailing `Cpu` op to keep
    /// sequences short.
    #[inline]
    pub fn cpu(&mut self, ns: Ns) {
        if let Some(KOp::Cpu(prev)) = self.ops.last_mut() {
            *prev += ns;
        } else {
            self.ops.push(KOp::Cpu(ns));
        }
    }

    /// Appends memory-touching CPU work (merged like `cpu`).
    #[inline]
    pub fn mem(&mut self, ns: Ns) {
        if let Some(KOp::MemTouch(prev)) = self.ops.last_mut() {
            *prev += ns;
        } else {
            self.ops.push(KOp::MemTouch(ns));
        }
    }

    /// Appends a lock/critical-section/unlock pattern built by `body`.
    pub fn locked(&mut self, lock: LockId, mode: LockMode, body: impl FnOnce(&mut OpSeq)) {
        self.push(KOp::Lock(lock, mode));
        body(self);
        self.push(KOp::Unlock(lock));
    }

    /// Total CPU nanoseconds in plain `Cpu`/`MemTouch` ops (a lower bound
    /// on the call's service time, ignoring queueing).
    pub fn cpu_ns(&self) -> Ns {
        self.ops
            .iter()
            .map(|op| match op {
                KOp::Cpu(n) | KOp::UserCpu(n) | KOp::MemTouch(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// Checks that every `Lock` has a matching later `Unlock` and vice
    /// versa (no leaked or double-released locks) and that lock sections
    /// nest properly. Used by tests and debug assertions.
    pub fn locks_balanced(&self) -> bool {
        let mut stack: Vec<LockId> = Vec::new();
        for op in &self.ops {
            match op {
                KOp::Lock(id, _) => stack.push(*id),
                KOp::Unlock(id) if stack.pop() != Some(*id) => return false,
                _ => {}
            }
        }
        stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lid(n: u32) -> LockId {
        LockId(n)
    }

    #[test]
    fn cpu_ops_merge() {
        let mut s = OpSeq::new();
        s.cpu(100);
        s.cpu(50);
        assert_eq!(s.ops, vec![KOp::Cpu(150)]);
        s.push(KOp::Nop);
        s.cpu(25);
        assert_eq!(s.ops.len(), 3);
        assert_eq!(s.cpu_ns(), 175);
    }

    #[test]
    fn locked_builds_balanced_section() {
        let mut s = OpSeq::new();
        s.locked(lid(3), LockMode::Exclusive, |s| {
            s.cpu(500);
            s.locked(lid(4), LockMode::Exclusive, |s| s.cpu(100));
        });
        assert!(s.locks_balanced());
        assert_eq!(s.cpu_ns(), 600);
    }

    #[test]
    fn unbalanced_locks_detected() {
        let mut s = OpSeq::new();
        s.push(KOp::Lock(lid(1), LockMode::Exclusive));
        assert!(!s.locks_balanced());

        let mut s2 = OpSeq::new();
        s2.push(KOp::Unlock(lid(1)));
        assert!(!s2.locks_balanced());

        // Improper nesting: lock A, lock B, unlock A, unlock B.
        let mut s3 = OpSeq::new();
        s3.push(KOp::Lock(lid(1), LockMode::Exclusive));
        s3.push(KOp::Lock(lid(2), LockMode::Exclusive));
        s3.push(KOp::Unlock(lid(1)));
        s3.push(KOp::Unlock(lid(2)));
        assert!(!s3.locks_balanced());
    }

    #[test]
    fn mem_ops_merge_separately_from_cpu() {
        let mut s = OpSeq::new();
        s.cpu(10);
        s.mem(20);
        s.mem(30);
        assert_eq!(s.ops, vec![KOp::Cpu(10), KOp::MemTouch(50)]);
    }
}
