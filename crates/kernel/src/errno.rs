//! Syscall error codes.
//!
//! A compiled call either succeeds (`error == None`) or terminates on an
//! error path with one of these codes. Error paths are first-class
//! coverage targets: each is tagged with its own basic block (see
//! [`crate::coverage::block_err`]) so the coverage-guided generator can
//! chase them the way Syzkaller chases fault-injection coverage.

/// The subset of errno values the simulated handlers produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Errno {
    /// Out of memory (buddy or slab allocation failure).
    ENOMEM,
    /// Block-device or journal I/O error.
    EIO,
    /// Resource temporarily unavailable (lock timeout, retryable).
    EAGAIN,
    /// Bad file descriptor.
    EBADF,
    /// Bad address / unmapped region selector.
    EFAULT,
    /// Invalid argument.
    EINVAL,
    /// Function not implemented — the syscall is outside a specialized
    /// instance's allowlist (the kernel does not carry its code).
    ENOSYS,
}

impl Errno {
    /// All codes, in a stable order.
    pub const ALL: [Errno; 7] = [
        Errno::ENOMEM,
        Errno::EIO,
        Errno::EAGAIN,
        Errno::EBADF,
        Errno::EFAULT,
        Errno::EINVAL,
        Errno::ENOSYS,
    ];

    /// The conventional Linux numeric code.
    pub fn code(self) -> i32 {
        match self {
            Errno::ENOMEM => 12,
            Errno::EIO => 5,
            Errno::EAGAIN => 11,
            Errno::EBADF => 9,
            Errno::EFAULT => 14,
            Errno::EINVAL => 22,
            Errno::ENOSYS => 38,
        }
    }

    /// Symbolic name.
    pub fn name(self) -> &'static str {
        match self {
            Errno::ENOMEM => "ENOMEM",
            Errno::EIO => "EIO",
            Errno::EAGAIN => "EAGAIN",
            Errno::EBADF => "EBADF",
            Errno::EFAULT => "EFAULT",
            Errno::EINVAL => "EINVAL",
            Errno::ENOSYS => "ENOSYS",
        }
    }
}

impl std::fmt::Display for Errno {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_linux() {
        assert_eq!(Errno::ENOMEM.code(), 12);
        assert_eq!(Errno::EIO.code(), 5);
        assert_eq!(Errno::EAGAIN.code(), 11);
    }

    #[test]
    fn names_roundtrip_display() {
        for e in Errno::ALL {
            assert_eq!(format!("{e}"), e.name());
        }
    }
}
