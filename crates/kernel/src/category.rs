//! System-call categories (Section 5 of the paper).

/// Broad purpose of a system call. The paper assigns each call one or more
/// categories; Figure 2 is organized by these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// (a) Process management and scheduling.
    ProcessSched,
    /// (b) Memory management.
    Memory,
    /// (c) File I/O (data path).
    FileIo,
    /// (d) Filesystem management (metadata path).
    Filesystem,
    /// (e) Inter-process communication.
    Ipc,
    /// (f) Permission / capabilities management.
    Permissions,
    /// (g) Networking (sockets, protocol processing, softirq).
    Network,
}

impl Category {
    /// All categories, in the paper's subfigure order. Networking
    /// extends the paper's six: the system model names virtio-net as a
    /// primary virtualization boundary but Figure 2 never measures it.
    pub const ALL: [Category; 7] = [
        Category::ProcessSched,
        Category::Memory,
        Category::FileIo,
        Category::Filesystem,
        Category::Ipc,
        Category::Permissions,
        Category::Network,
    ];

    /// Position of this category in [`Category::ALL`] — the bit index
    /// specialization masks use.
    pub fn index(self) -> usize {
        match self {
            Category::ProcessSched => 0,
            Category::Memory => 1,
            Category::FileIo => 2,
            Category::Filesystem => 3,
            Category::Ipc => 4,
            Category::Permissions => 5,
            Category::Network => 6,
        }
    }

    /// Subfigure letter in Figure 2.
    pub fn letter(self) -> char {
        match self {
            Category::ProcessSched => 'a',
            Category::Memory => 'b',
            Category::FileIo => 'c',
            Category::Filesystem => 'd',
            Category::Ipc => 'e',
            Category::Permissions => 'f',
            Category::Network => 'g',
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Category::ProcessSched => "process mgmt/scheduling",
            Category::Memory => "memory management",
            Category::FileIo => "file I/O",
            Category::Filesystem => "filesystem management",
            Category::Ipc => "inter-process communication",
            Category::Permissions => "permissions/capabilities",
            Category::Network => "networking",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_have_unique_letters() {
        let letters: std::collections::HashSet<char> =
            Category::ALL.iter().map(|c| c.letter()).collect();
        assert_eq!(letters.len(), Category::ALL.len());
        assert_eq!(Category::ALL.len(), 7);
    }
}
