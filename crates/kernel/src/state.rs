//! Logical subsystem state: the counters and small tables handler costs
//! are derived from.
//!
//! State here is *numerical*, not structural: a page cache is a per-file
//! count of cached pages, the dentry cache is a count plus per-file flags,
//! the journal is a dirty-block counter. This is the level of detail the
//! cost model needs — hash-chain pressure, commit sizes, reclaim scan
//! lengths — without simulating the actual data structures.

/// A file descriptor entry in a slot's fd table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdKind {
    /// Regular file backed by `FsState::files[idx]`.
    File {
        /// Index into the instance file table.
        idx: usize,
    },
    /// One end of a pipe.
    Pipe {
        /// True for the read end.
        read_end: bool,
    },
    /// An eventfd counter.
    EventFd,
    /// A socket backed by `NetState::socks[idx]`.
    Socket {
        /// Index into the instance socket table.
        idx: usize,
    },
    /// An epoll instance (readiness polling over the slot's fds).
    Epoll,
    /// Closed / free slot.
    Closed,
}

/// One open descriptor.
#[derive(Debug, Clone, Copy)]
pub struct Fd {
    /// What the descriptor refers to.
    pub kind: FdKind,
    /// Sequential file offset in pages.
    pub offset_pages: u64,
}

/// One virtual memory area of a slot.
#[derive(Debug, Clone, Copy)]
pub struct Vma {
    /// Size in pages.
    pub pages: u64,
    /// Pages actually faulted in (freed back on unmap/zap).
    pub populated: u64,
    /// Still mapped (false after munmap).
    pub mapped: bool,
    /// mlock'ed.
    pub locked: bool,
    /// Index into the shm table when this is a shared-memory attach.
    pub shm: Option<usize>,
}

/// Per-slot (per simulated application process) state. One slot per core
/// of the instance.
#[derive(Debug, Clone, Default)]
pub struct SlotState {
    /// Open descriptors; index = fd number.
    pub fds: Vec<Fd>,
    /// VMAs; index+1 = the "address" handle returned by mmap.
    pub vmas: Vec<Vma>,
    /// Heap size in pages (brk).
    pub brk_pages: u64,
    /// Effective uid.
    pub uid: u64,
    /// Current umask.
    pub umask: u64,
    /// Forked children that have not been reaped by wait4 yet.
    pub children_pending: u32,
    /// Per-CPU page-allocator magazine (free pages cached locally).
    pub pcp_pages: u64,
    /// Per-CPU slab magazine (free objects cached locally).
    pub slab_objs: u64,
    /// Name table: path selector → file index (this slot's private
    /// namespace; entries materialize on first create).
    pub names: Vec<Option<usize>>,
    /// Descriptors currently open (non-`Closed` entries of `fds`).
    pub open_fds: u64,
    /// High-water mark of `open_fds`. With lowest-free-fd reuse,
    /// `fds.len() <= peak_open_fds` holds after any amount of churn.
    pub peak_open_fds: u64,
}

impl SlotState {
    /// True when every fd-table entry is `Closed` (post-exit state).
    pub fn fds_all_closed(&self) -> bool {
        self.fds.iter().all(|f| matches!(f.kind, FdKind::Closed))
    }
}

/// Number of distinct path names each slot's namespace can address.
pub const NAMES_PER_SLOT: usize = 32;

/// Metadata of one simulated file.
#[derive(Debug, Clone, Copy)]
pub struct FileMeta {
    /// Size in pages.
    pub size_pages: u64,
    /// Pages present in the page cache (sequential-fill model: page `i`
    /// is cached iff `i < cached_pages`).
    pub cached_pages: u64,
    /// Dirty data pages awaiting writeback.
    pub dirty_pages: u64,
    /// Path depth (directory components).
    pub path_depth: u32,
    /// Whether the dentry/inode are in the caches (cold first lookup
    /// pays the miss path).
    pub dentry_cached: bool,
}

/// Filesystem / VFS state.
#[derive(Debug, Clone, Default)]
pub struct FsState {
    /// All files ever created in this instance.
    pub files: Vec<FileMeta>,
    /// Total dentries resident (drives hash-chain pressure).
    pub dentries: u64,
    /// Dirty journal metadata blocks awaiting commit.
    pub journal_dirty: u64,
    /// Monotone commit counter (diagnostics).
    pub commits: u64,
}

/// Memory-management state.
#[derive(Debug, Clone, Default)]
pub struct MmState {
    /// Total pages managed by this instance (its memory surface area).
    pub total_pages: u64,
    /// Free pages in the buddy allocator.
    pub free_pages: u64,
    /// File/anon pages on the LRU lists (reclaim scan length).
    pub lru_pages: u64,
    /// Dirty data pages (writeback backlog).
    pub dirty_pages: u64,
}

impl MmState {
    /// Pages under which allocations enter direct reclaim.
    pub fn low_watermark(&self, min_free_pct: u64) -> u64 {
        self.total_pages * min_free_pct / 100
    }

    /// Dirty-page count that triggers foreground write throttling.
    pub fn dirty_threshold(&self, dirty_pct: u64) -> u64 {
        self.total_pages * dirty_pct / 100
    }
}

/// Scheduler state.
#[derive(Debug, Clone, Default)]
pub struct SchedState {
    /// Runnable tasks per slot/core.
    pub rq_len: Vec<u32>,
    /// Total tasks in the instance.
    pub nr_tasks: u64,
}

/// One SysV message queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct MsgQueue {
    /// Messages currently queued.
    pub msgs: u64,
    /// Bytes currently queued.
    pub bytes: u64,
}

/// One SysV shared-memory segment.
#[derive(Debug, Clone, Copy)]
pub struct ShmSeg {
    /// Size in pages.
    pub pages: u64,
    /// Number of active attaches.
    pub attaches: u32,
}

/// IPC state (ids are instance-global, like the kernel's `ipc_ids`).
#[derive(Debug, Clone, Default)]
pub struct IpcState {
    /// Message queues.
    pub msgqs: Vec<MsgQueue>,
    /// Semaphore sets (value = semaphore count in the set).
    pub sems: Vec<u32>,
    /// Shared-memory segments.
    pub shms: Vec<ShmSeg>,
    /// Pipes created (count; per-slot locks bound the contention).
    pub pipes: u64,
}

/// One simulated socket.
#[derive(Debug, Clone, Default)]
pub struct SockState {
    /// Bound local port, if any.
    pub port: Option<u64>,
    /// Listening socket (accepts connections).
    pub listening: bool,
    /// Accept-queue capacity once listening.
    pub backlog_cap: u64,
    /// Pending connections: socket indices awaiting `accept`.
    pub backlog: Vec<usize>,
    /// Connected peer socket index.
    pub peer: Option<usize>,
    /// Bytes buffered for `recvfrom`, bounded by the cost model's
    /// `sock_buf_bytes` (backpressure → `EAGAIN` on the sender).
    pub rx_bytes: u64,
    /// Still usable (false after `shutdown`).
    pub open: bool,
}

/// Networking state (socket/port tables plus the NIC rings).
#[derive(Debug, Clone)]
pub struct NetState {
    /// Socket table; length bounded by the peak number of *concurrent*
    /// sockets (slots are reclaimed on final close and reused).
    pub socks: Vec<SockState>,
    /// Reclaimed `socks` indices awaiting reuse, kept sorted descending
    /// so allocation pops the lowest free slot.
    pub free_socks: Vec<usize>,
    /// Sockets currently allocated (not on the free list).
    pub live_socks: u64,
    /// High-water mark of `live_socks`; `socks.len() <= peak_socks`.
    pub peak_socks: u64,
    /// Port table: `(port, socket index)`, instance-global.
    pub ports: Vec<(u64, usize)>,
    /// The instance NIC (virtio-net in VMs, the shared host NIC
    /// otherwise).
    pub nic: ksa_desim::NicState,
    /// Extra per-packet stack cost (netfilter/conntrack chains); grows
    /// with tenant count on shared container hosts.
    pub stack_extra_ns: u64,
    /// Payload bytes accepted by `sendto` (delivered into an rx buffer).
    pub sent_bytes: u64,
    /// Payload bytes returned by `recvfrom`.
    pub recv_bytes: u64,
    /// Payload bytes discarded by `shutdown` while still buffered.
    pub flushed_bytes: u64,
}

/// Number of distinct port values the simulated port space can address.
pub const NET_PORT_SPACE: u64 = 512;

impl NetState {
    /// Creates networking state for an instance with `n_slots` cores:
    /// the NIC gets `min(8, n_slots)` queue pairs, so a wide shared
    /// kernel funnels many cores through few rings while small VM
    /// instances see proportionally private ones.
    pub fn init(n_slots: usize) -> Self {
        let queues = n_slots.clamp(1, 8) as u32;
        Self {
            socks: Vec::new(),
            free_socks: Vec::new(),
            live_socks: 0,
            peak_socks: 0,
            ports: Vec::new(),
            nic: ksa_desim::NicState::new(ksa_desim::NicModel::virtio(queues)),
            stack_extra_ns: 0,
            sent_bytes: 0,
            recv_bytes: 0,
            flushed_bytes: 0,
        }
    }

    /// Allocates a socket-table slot, reusing the lowest reclaimed index
    /// before growing the table. The returned slot is open and zeroed.
    pub fn alloc_sock_slot(&mut self) -> usize {
        self.live_socks += 1;
        self.peak_socks = self.peak_socks.max(self.live_socks);
        let sk = SockState {
            open: true,
            ..Default::default()
        };
        match self.free_socks.pop() {
            Some(idx) => {
                self.socks[idx] = sk;
                idx
            }
            None => {
                self.socks.push(sk);
                self.socks.len() - 1
            }
        }
    }

    /// Returns a (released, `open == false`) socket's table slot to the
    /// free list. Called when the last descriptor referencing the socket
    /// dies — reclaiming at `shutdown` would let a still-installed fd
    /// alias whatever tenant reuses the slot next.
    pub fn reclaim_sock_slot(&mut self, idx: usize) {
        debug_assert!(!self.socks[idx].open, "reclaiming an open socket");
        debug_assert!(!self.free_socks.contains(&idx), "double reclaim");
        self.socks[idx] = SockState::default();
        self.live_socks -= 1;
        // Keep descending order so `pop` yields the lowest free index.
        let pos = self.free_socks.partition_point(|&i| i > idx);
        self.free_socks.insert(pos, idx);
    }

    /// Socket index bound to `port`, if any.
    pub fn lookup_port(&self, port: u64) -> Option<usize> {
        self.ports
            .iter()
            .find(|&&(p, _)| p == port)
            .map(|&(_, s)| s)
    }

    /// Payload bytes still sitting in socket receive buffers.
    pub fn buffered_bytes(&self) -> u64 {
        self.socks.iter().map(|s| s.rx_bytes).sum()
    }
}

impl Default for NetState {
    fn default() -> Self {
        Self::init(1)
    }
}

/// Cross-cutting tenancy counters.
#[derive(Debug, Clone, Default)]
pub struct TenancyState {
    /// cgroup charge operations since the last stat flush.
    pub charges_since_flush: u64,
}

/// All logical state of a kernel instance.
#[derive(Debug, Clone, Default)]
pub struct SubsysState {
    /// Memory management.
    pub mm: MmState,
    /// Filesystem / VFS.
    pub fs: FsState,
    /// Scheduler.
    pub sched: SchedState,
    /// IPC.
    pub ipc: IpcState,
    /// Networking.
    pub net: NetState,
    /// Tenancy counters.
    pub tenancy: TenancyState,
    /// Per-core-slot application process state.
    pub slots: Vec<SlotState>,
}

impl SubsysState {
    /// Initializes state for an instance with `n_slots` cores and
    /// `total_pages` pages of memory.
    pub fn init(n_slots: usize, total_pages: u64) -> Self {
        let mut s = SubsysState {
            mm: MmState {
                total_pages,
                // Boot-time kernel/static memory takes a slice.
                free_pages: total_pages * 85 / 100,
                lru_pages: total_pages / 50,
                dirty_pages: 0,
            },
            ..Default::default()
        };
        s.sched.rq_len = vec![1; n_slots];
        s.sched.nr_tasks = n_slots as u64 + 16; // app procs + kthreads
        s.fs.dentries = 1_000 + 64 * n_slots as u64; // boot filesystem
        s.net = NetState::init(n_slots);
        for _ in 0..n_slots {
            s.slots.push(SlotState {
                fds: Vec::new(),
                vmas: Vec::new(),
                brk_pages: 16,
                uid: 1000,
                umask: 0o022,
                children_pending: 0,
                pcp_pages: 128,
                slab_objs: 256,
                names: vec![None; NAMES_PER_SLOT],
                open_fds: 0,
                peak_open_fds: 0,
            });
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_sizes_match() {
        let s = SubsysState::init(4, 1_000_000);
        assert_eq!(s.slots.len(), 4);
        assert_eq!(s.sched.rq_len.len(), 4);
        assert_eq!(s.mm.total_pages, 1_000_000);
        assert!(s.mm.free_pages < s.mm.total_pages);
        assert!(s.mm.free_pages > s.mm.total_pages / 2);
    }

    #[test]
    fn net_nic_queues_scale_with_cores() {
        assert_eq!(SubsysState::init(2, 1_000).net.nic.pending.len(), 2);
        assert_eq!(SubsysState::init(64, 1_000).net.nic.pending.len(), 8);
        let s = SubsysState::init(4, 1_000);
        assert!(s.net.socks.is_empty());
        assert_eq!(s.net.lookup_port(80), None);
    }

    #[test]
    fn watermarks_scale_with_memory() {
        let small = MmState {
            total_pages: 1000,
            ..Default::default()
        };
        let big = MmState {
            total_pages: 100_000,
            ..Default::default()
        };
        assert!(big.low_watermark(10) > small.low_watermark(10));
        assert_eq!(small.dirty_threshold(8), 80);
    }
}
