//! # ksa-kernel — a simulated monolithic OS kernel
//!
//! This crate models the software structure of a Linux-like kernel at the
//! granularity that matters for the paper's question: *which shared
//! structures turn concurrent system calls into latency variability, and
//! how does that depend on the kernel surface area?*
//!
//! ## Model
//!
//! A [`KernelInstance`] manages a **surface area** — a set of cores and an
//! amount of memory. Bare metal is one instance managing everything; a
//! k-VM environment is k instances each managing 1/k of the resources.
//! Each instance owns:
//!
//! * simulated locks for the structures Linux shares kernel-wide
//!   (tasklist and pid maps, zone/LRU/slab locks, dcache/inode/rename
//!   locks, a journal mutex, futex hash buckets, IPC ids, cred/audit
//!   locks, cgroup locks) plus per-process locks (`mmap_sem`, page-table
//!   and fd-table locks — one simulated app process per core),
//! * *logical* subsystem state — counters and small tables (dirty pages,
//!   LRU size, dentry counts, per-file page-cache fill, runqueue lengths)
//!   from which handler costs are derived,
//! * an RCU domain sized to the instance's core count, and a block device.
//!
//! Each system call handler compiles a call (`SysNo` + resolved args) into
//! a sequence of micro-ops ([`KOp`]): CPU sections, lock acquire/release
//! pairs, TLB shootdowns, device I/O, RCU grace periods and
//! virtualization-sensitive operations. The [`exec::OpRunner`] replays the
//! sequence on the discrete-event engine, where queueing, convoys and
//! shootdown storms emerge. Handlers also emit **coverage blocks**
//! (stable ids per code path), the signal the coverage-guided generator in
//! `ksa-syzgen` uses.
//!
//! Background daemons (journal flusher, kswapd, load balancer, vmstat
//! worker) run as engine processes per instance; their critical-section
//! lengths scale with the instance's surface area, which is the paper's
//! "rare but unbounded software interference".

pub mod category;
pub mod coverage;
pub mod daemons;
pub mod dispatch;
pub mod errno;
pub mod exec;
pub mod instance;
pub mod latency;
pub mod ops;
pub mod params;
pub mod prog;
pub mod spec;
pub mod state;
pub mod subsystems;
pub mod syscalls;
pub mod telemetry;
pub mod world;

pub use category::Category;
pub use coverage::{BlockId, CoverageSet};
pub use dispatch::dispatch;
pub use errno::Errno;
pub use exec::OpRunner;
pub use instance::{InstanceConfig, KernelInstance, TenancyProfile, VirtProfile};
pub use latency::{Attribution, AttributionTable, RawCall};
pub use ops::{KOp, OpSeq, VmExitKind};
pub use params::CostModel;
pub use prog::{Arg, Call, Program};
pub use spec::SpecMask;
pub use syscalls::SysNo;
pub use telemetry::{attribution_frames, KernelTelemetry};
pub use world::{HasKernel, KernelWorld};
