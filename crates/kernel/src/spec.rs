//! Kernel specialization masks: the reachability axis of surface area.
//!
//! The paper shrinks surface area by *hardware partition*; KASR and
//! MultiK shrink it by *code reachability* — unloading kernel code the
//! workload never touches. A [`SpecMask`] is the kernel-side contract of
//! that axis: a syscall allowlist plus the set of reachable subsystem
//! [`Category`]s. An instance built from a mask
//!
//! * never spawns the background daemons of unreached subsystems
//!   (`daemons.rs` consults [`SpecMask::wants_daemon`]),
//! * never allocates the instance locks of unreached subsystems
//!   (`instance.rs` consults [`SpecMask::wants_group`]; gated groups
//!   alias one stub lock so every `LockId` stays valid), and
//! * terminates disallowed syscalls on a real `ENOSYS` errno path with
//!   `err.spec.*` coverage blocks (`dispatch.rs`).
//!
//! [`SpecMask::full`] is the unspecialized kernel: construction and
//! dispatch are bit-identical to a build without specialization, which
//! the property suite gates on.
//!
//! Profile *derivation* (corpus coverage → mask) and serde live in the
//! `ksa-spec` crate; this module only carries what the kernel itself
//! needs, keeping the dependency direction kernel ← spec.

use crate::category::Category;
use crate::syscalls::SysNo;

/// Words in the syscall bitmap (75 sysnos, rounded up).
const SYS_WORDS: usize = SysNo::ALL.len().div_ceil(64);

/// A syscall allowlist plus reachable-category set, as a `Copy` bitmask
/// small enough to live inside every config struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecMask {
    /// Allowed syscalls, bit-indexed by [`SysNo::index`].
    sys: [u64; SYS_WORDS],
    /// Reachable categories, bit-indexed by [`Category::index`].
    cats: u8,
}

impl SpecMask {
    /// The empty mask: nothing allowed, nothing reachable.
    pub fn empty() -> Self {
        Self {
            sys: [0; SYS_WORDS],
            cats: 0,
        }
    }

    /// The full mask: every syscall allowed, every category reachable —
    /// the unspecialized kernel.
    pub fn full() -> Self {
        let mut m = Self::empty();
        for &no in &SysNo::ALL {
            m.insert(no);
        }
        m
    }

    /// Allows `no` and marks *all* of its categories reachable (a call
    /// with a secondary category drags that subsystem's code in too).
    pub fn insert(&mut self, no: SysNo) {
        let i = no.index();
        self.sys[i / 64] |= 1 << (i % 64);
        for &c in no.categories() {
            self.cats |= 1 << c.index();
        }
    }

    /// Builder form of [`Self::insert`].
    pub fn allow(mut self, no: SysNo) -> Self {
        self.insert(no);
        self
    }

    /// Marks a category reachable without allowing any syscall (used
    /// when coverage proves a subsystem is entered indirectly).
    pub fn insert_cat(&mut self, cat: Category) {
        self.cats |= 1 << cat.index();
    }

    /// Whether `no` is inside the allowlist.
    pub fn allows(&self, no: SysNo) -> bool {
        let i = no.index();
        self.sys[i / 64] & (1 << (i % 64)) != 0
    }

    /// Whether `cat`'s subsystem is reachable.
    pub fn allows_cat(&self, cat: Category) -> bool {
        self.cats & (1 << cat.index()) != 0
    }

    /// Number of allowed syscalls.
    pub fn allowed_count(&self) -> usize {
        self.sys.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether this is the unspecialized (full) mask.
    pub fn is_full(&self) -> bool {
        *self == Self::full()
    }

    /// Allowed syscalls in stable [`SysNo::ALL`] order.
    pub fn allowed(&self) -> impl Iterator<Item = SysNo> + '_ {
        SysNo::ALL.iter().copied().filter(|&no| self.allows(no))
    }

    /// Reachable categories in stable [`Category::ALL`] order.
    pub fn categories(&self) -> impl Iterator<Item = Category> + '_ {
        Category::ALL
            .iter()
            .copied()
            .filter(|&c| self.allows_cat(c))
    }

    /// Whether the instance must allocate lock group `group` (a name
    /// from [`FOOTPRINT`] / [`INFRA_LOCK_GROUPS`]): infrastructure
    /// groups always, subsystem groups when any owning category is
    /// reachable.
    pub fn wants_group(&self, group: &str) -> bool {
        if INFRA_LOCK_GROUPS.contains(&group) {
            return true;
        }
        FOOTPRINT
            .iter()
            .any(|f| self.allows_cat(f.cat) && f.lock_groups.contains(&group))
    }

    /// Whether the instance must spawn daemon `daemon` (a
    /// `Process::label` name from [`FOOTPRINT`]).
    pub fn wants_daemon(&self, daemon: &str) -> bool {
        FOOTPRINT
            .iter()
            .any(|f| self.allows_cat(f.cat) && f.daemons.contains(&daemon))
    }
}

impl Default for SpecMask {
    /// Defaults to the unspecialized kernel.
    fn default() -> Self {
        Self::full()
    }
}

/// The construction-time footprint one category drags into an instance:
/// the daemons that service its subsystem and the instance lock groups
/// its handlers touch. Group names match the allocation sites in
/// `instance.rs`; daemon names match `Process::label` in `daemons.rs`.
#[derive(Debug, Clone, Copy)]
pub struct CatFootprint {
    /// The category this entry describes.
    pub cat: Category,
    /// Daemons that exist only to service this subsystem.
    pub daemons: &'static [&'static str],
    /// Instance lock groups this subsystem's handlers acquire.
    pub lock_groups: &'static [&'static str],
}

/// Lock groups every instance allocates regardless of specialization:
/// the allocator core (`zone`/`lru`/`slab_depot`) backs every handler
/// through the page/slab helpers, and `cgroup` backs tenancy accounting
/// on any resource-consuming call.
pub const INFRA_LOCK_GROUPS: [&str; 4] = ["zone", "lru", "slab_depot", "cgroup"];

/// Per-category footprint registry. One entry per [`Category::ALL`]
/// element, in the same order — the exhaustiveness test pins both, so an
/// eighth category cannot silently dodge specialization.
pub const FOOTPRINT: [CatFootprint; 7] = [
    CatFootprint {
        cat: Category::ProcessSched,
        daemons: &["load_balancer"],
        lock_groups: &["runqueue", "tasklist", "pidmap"],
    },
    CatFootprint {
        cat: Category::Memory,
        daemons: &["kswapd", "vmstat"],
        lock_groups: &["mmap_sem", "page_table"],
    },
    CatFootprint {
        cat: Category::FileIo,
        daemons: &["flusher"],
        lock_groups: &["journal", "ipc_obj"],
    },
    CatFootprint {
        cat: Category::Filesystem,
        daemons: &["flusher"],
        lock_groups: &["fdtable", "dcache", "inode_sb", "rename", "journal"],
    },
    CatFootprint {
        cat: Category::Ipc,
        daemons: &[],
        lock_groups: &[
            "mmap_sem",
            "page_table",
            "fdtable",
            "futex",
            "ipc_ids",
            "ipc_obj",
        ],
    },
    CatFootprint {
        cat: Category::Permissions,
        daemons: &[],
        lock_groups: &["tasklist", "inode_sb", "journal", "cred", "audit"],
    },
    CatFootprint {
        cat: Category::Network,
        daemons: &["napi"],
        lock_groups: &["fdtable", "sock_buckets", "nic_queue", "softirq"],
    },
];

/// Every gated lock group an instance allocates, in allocation order
/// (`KernelInstance::build`). The exhaustiveness test checks each is
/// owned by at least one category.
pub const GATED_LOCK_GROUPS: [&str; 18] = [
    "runqueue",
    "tasklist",
    "pidmap",
    "mmap_sem",
    "page_table",
    "fdtable",
    "dcache",
    "inode_sb",
    "rename",
    "journal",
    "futex",
    "ipc_ids",
    "ipc_obj",
    "cred",
    "audit",
    "sock_buckets",
    "nic_queue",
    "softirq",
];

/// Every daemon `spawn_daemons` knows, in spawn order.
pub const ALL_DAEMONS: [&str; 5] = ["flusher", "kswapd", "load_balancer", "vmstat", "napi"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mask_allows_everything() {
        let m = SpecMask::full();
        assert!(m.is_full());
        assert_eq!(m.allowed_count(), SysNo::ALL.len());
        for &no in &SysNo::ALL {
            assert!(m.allows(no));
        }
        for &c in &Category::ALL {
            assert!(m.allows_cat(c));
        }
        for g in GATED_LOCK_GROUPS {
            assert!(m.wants_group(g), "{g} gated out of the full mask");
        }
        for d in ALL_DAEMONS {
            assert!(m.wants_daemon(d), "{d} gated out of the full mask");
        }
    }

    #[test]
    fn empty_mask_keeps_only_infrastructure() {
        let m = SpecMask::empty();
        assert_eq!(m.allowed_count(), 0);
        for g in GATED_LOCK_GROUPS {
            assert!(!m.wants_group(g), "{g} survived the empty mask");
        }
        for g in INFRA_LOCK_GROUPS {
            assert!(m.wants_group(g), "{g} is infrastructure");
        }
        for d in ALL_DAEMONS {
            assert!(!m.wants_daemon(d), "{d} survived the empty mask");
        }
    }

    #[test]
    fn inserting_a_call_pulls_its_categories() {
        let m = SpecMask::empty().allow(SysNo::Shmat);
        assert!(m.allows(SysNo::Shmat));
        assert!(!m.allows(SysNo::Shmdt));
        // Shmat is Ipc with a Memory secondary: both subsystems come in.
        assert!(m.allows_cat(Category::Ipc));
        assert!(m.allows_cat(Category::Memory));
        assert!(!m.allows_cat(Category::Network));
        assert!(m.wants_daemon("kswapd"));
        assert!(!m.wants_daemon("napi"));
        assert!(m.wants_group("futex"));
        assert!(!m.wants_group("sock_buckets"));
    }
}
