//! Background kernel daemons.
//!
//! Each kernel instance runs the housekeeping threads a monolithic kernel
//! runs: the journal flusher, kswapd, the scheduler load balancer, the
//! vmstat worker and the NAPI softirq poller. Their critical-section
//! lengths scale with the
//! instance's **surface area** (dirty backlog ∝ memory, scan lengths ∝
//! LRU size, balancing work ∝ core count), so a big shared kernel
//! periodically holds global locks for a long time while small kernels
//! barely register — the paper's "rare but potentially unbounded software
//! interference".

use ksa_desim::{Effect, Ns, Process, SimCtx, WakeReason, MS, US};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coverage::cov_block;
use crate::world::HasKernel;

/// The periodic journal / dirty-page flusher (like `kworker` writeback).
pub struct Flusher {
    instance: usize,
    rng: SmallRng,
    phase: FlusherPhase,
    pages: u64,
}

enum FlusherPhase {
    Sleeping,
    JournalHeld,
    IoDone,
}

impl Flusher {
    /// Creates the flusher for `instance`.
    pub fn new(instance: usize, seed: u64) -> Self {
        Self {
            instance,
            rng: SmallRng::seed_from_u64(seed ^ 0xf1a5),
            phase: FlusherPhase::Sleeping,
            pages: 0,
        }
    }
}

impl<W: HasKernel> Process<W> for Flusher {
    fn resume(&mut self, ctx: &mut SimCtx<'_, W>, _wake: WakeReason) -> Effect {
        match self.phase {
            FlusherPhase::Sleeping => {
                let k = &ctx.world.kernel().instances[self.instance];
                let dirty = k.state.mm.dirty_pages + k.state.fs.journal_dirty;
                let period = k.cost.flusher_period;
                if dirty < 64 {
                    // Nothing to do: sleep a jittered period.
                    let jitter = self.rng.gen_range(0..period / 4);
                    return Effect::Sleep(period + jitter);
                }
                self.phase = FlusherPhase::JournalHeld;
                Effect::Acquire(k.locks.journal, ksa_desim::LockMode::Exclusive)
            }
            FlusherPhase::JournalHeld => {
                // Journal granted: size the writeback batch from the
                // instance-wide backlog and do the CPU part while holding
                // the journal (jbd2 commit behaviour).
                let k = &mut ctx.world.kernel_mut().instances[self.instance];
                let backlog = k.state.mm.dirty_pages + k.state.fs.journal_dirty;
                // Batch cap scales with the memory the instance manages:
                // big kernels accumulate big backlogs and flush them in
                // correspondingly long journal-holding bursts.
                let cap = (k.mem_pages / 64).clamp(4_096, 131_072);
                self.pages = (backlog / 2).clamp(32, cap);
                let cpu = k.cost.writeback_base + k.cost.writeback_per_page * self.pages;
                k.state.fs.commits += 1;
                k.cover(cov_block!("daemon.flusher.commit"));
                self.phase = FlusherPhase::IoDone;
                Effect::Delay(cpu)
            }
            FlusherPhase::IoDone => {
                // CPU part done: issue the I/O, then release and sleep.
                let (journal, disk, period) = {
                    let k = &ctx.world.kernel().instances[self.instance];
                    (k.locks.journal, k.disk, k.cost.flusher_period)
                };
                match _wake {
                    WakeReason::Timer => {
                        // Delay finished -> submit I/O (still holding).
                        Effect::Io {
                            dev: disk,
                            bytes: self.pages * 4096,
                        }
                    }
                    _ => {
                        // I/O finished: clean state, release, sleep.
                        let k = &mut ctx.world.kernel_mut().instances[self.instance];
                        let meta = k.state.fs.journal_dirty.min(self.pages / 2);
                        k.state.fs.journal_dirty -= meta;
                        let data = self.pages - meta;
                        k.state.mm.dirty_pages = k.state.mm.dirty_pages.saturating_sub(data);
                        ctx.release(journal);
                        self.phase = FlusherPhase::Sleeping;
                        let jitter = self.rng.gen_range(0..period / 4);
                        Effect::Sleep(period + jitter)
                    }
                }
            }
        }
    }

    fn is_daemon(&self) -> bool {
        true
    }

    fn label(&self) -> &str {
        "flusher"
    }
}

/// kswapd: reclaims memory when the instance dips under its watermark;
/// scan length scales with the LRU size (∝ memory surface).
pub struct Kswapd {
    instance: usize,
    rng: SmallRng,
    holding_lru: bool,
}

impl Kswapd {
    /// Creates kswapd for `instance`.
    pub fn new(instance: usize, seed: u64) -> Self {
        Self {
            instance,
            rng: SmallRng::seed_from_u64(seed ^ 0x5afd),
            holding_lru: false,
        }
    }
}

impl<W: HasKernel> Process<W> for Kswapd {
    fn resume(&mut self, ctx: &mut SimCtx<'_, W>, wake: WakeReason) -> Effect {
        if self.holding_lru {
            // Scan finished: reclaim and release.
            let k = &mut ctx.world.kernel_mut().instances[self.instance];
            let scanned = (k.state.mm.lru_pages / 4).clamp(64, 32_768);
            k.state.mm.free_pages += scanned / 2;
            k.state.mm.lru_pages = k.state.mm.lru_pages.saturating_sub(scanned / 2);
            k.cover(cov_block!("daemon.kswapd.reclaim"));
            let lru = k.locks.lru;
            ctx.release(lru);
            self.holding_lru = false;
            return Effect::Sleep(5 * MS + self.rng.gen_range(0..MS));
        }
        match wake {
            WakeReason::LockGranted(_) => {
                // LRU granted: scan (even if pressure eased meanwhile —
                // we hold the lock and must do the work before release).
                self.holding_lru = true;
                let k = &ctx.world.kernel().instances[self.instance];
                let scan = (k.state.mm.lru_pages / 4).clamp(64, 32_768);
                Effect::Delay(k.cost.lru_scan_per_page * scan)
            }
            _ => {
                let k = &ctx.world.kernel().instances[self.instance];
                let low = k.state.mm.low_watermark(k.cost.min_free_pct + 2);
                if k.state.mm.free_pages >= low {
                    Effect::Sleep(5 * MS + self.rng.gen_range(0..MS))
                } else {
                    Effect::Acquire(k.locks.lru, ksa_desim::LockMode::Exclusive)
                }
            }
        }
    }

    fn is_daemon(&self) -> bool {
        true
    }

    fn label(&self) -> &str {
        "kswapd"
    }
}

/// The scheduler load balancer: periodically locks runqueue pairs and
/// scans; work scales with the instance's core count.
pub struct LoadBalancer {
    instance: usize,
    rng: SmallRng,
    cursor: usize,
    phase: LbPhase,
}

enum LbPhase {
    Sleeping,
    FirstHeld,
    SecondHeld,
}

impl LoadBalancer {
    /// Creates the balancer for `instance`.
    pub fn new(instance: usize, seed: u64) -> Self {
        Self {
            instance,
            rng: SmallRng::seed_from_u64(seed ^ 0xb417),
            cursor: 0,
            phase: LbPhase::Sleeping,
        }
    }

    fn pair(&self, n: usize) -> (usize, usize) {
        let a = self.cursor % n;
        let b = (self.cursor / n + a + 1) % n;
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

impl<W: HasKernel> Process<W> for LoadBalancer {
    fn resume(&mut self, ctx: &mut SimCtx<'_, W>, _wake: WakeReason) -> Effect {
        let k = &ctx.world.kernel().instances[self.instance];
        let n = k.n_cores();
        if n < 2 {
            // Uniprocessor: nothing to balance, ever.
            return Effect::Sleep(1_000 * MS);
        }
        let (a, b) = self.pair(n);
        match self.phase {
            LbPhase::Sleeping => {
                self.phase = LbPhase::FirstHeld;
                Effect::Acquire(k.locks.runqueue[a], ksa_desim::LockMode::Exclusive)
            }
            LbPhase::FirstHeld => {
                if a == b {
                    // Degenerate pair; skip the second lock.
                    let rq = k.locks.runqueue[a];
                    ctx.release(rq);
                    self.phase = LbPhase::Sleeping;
                    self.cursor += 1;
                    return Effect::Sleep(self.sleep_len(ctx));
                }
                self.phase = LbPhase::SecondHeld;
                Effect::Acquire(k.locks.runqueue[b], ksa_desim::LockMode::Exclusive)
            }
            LbPhase::SecondHeld => {
                match _wake {
                    WakeReason::LockGranted(_) => {
                        // Both held: scan cost ∝ cores in the domain.
                        let scan = k.cost.lb_scan_per_core * n as Ns;
                        Effect::Delay(scan)
                    }
                    _ => {
                        // Scan done: release both, sleep.
                        let (la, lb) = (k.locks.runqueue[a], k.locks.runqueue[b]);
                        ctx.release(lb);
                        ctx.release(la);
                        ctx.world.kernel_mut().instances[self.instance]
                            .cover(cov_block!("daemon.lb.pass"));
                        self.phase = LbPhase::Sleeping;
                        self.cursor += 1;
                        Effect::Sleep(self.sleep_len(ctx))
                    }
                }
            }
        }
    }

    fn is_daemon(&self) -> bool {
        true
    }

    fn label(&self) -> &str {
        "load_balancer"
    }
}

impl LoadBalancer {
    fn sleep_len<W: HasKernel>(&mut self, ctx: &SimCtx<'_, W>) -> Ns {
        let k = &ctx.world.kernel().instances[self.instance];
        let base = k.cost.lb_period;
        base + self.rng.gen_range(0..base / 2)
    }
}

/// vmstat worker: periodically folds per-CPU counters into global ones
/// under the zone lock; cost ∝ instance core count.
pub struct VmstatWorker {
    instance: usize,
    rng: SmallRng,
    holding: bool,
}

impl VmstatWorker {
    /// Creates the worker for `instance`.
    pub fn new(instance: usize, seed: u64) -> Self {
        Self {
            instance,
            rng: SmallRng::seed_from_u64(seed ^ 0x7574),
            holding: false,
        }
    }
}

impl<W: HasKernel> Process<W> for VmstatWorker {
    fn resume(&mut self, ctx: &mut SimCtx<'_, W>, wake: WakeReason) -> Effect {
        if self.holding {
            let (zone, period) = {
                let k = &ctx.world.kernel().instances[self.instance];
                (k.locks.zone, k.cost.vmstat_period)
            };
            ctx.release(zone);
            self.holding = false;
            ctx.world.kernel_mut().instances[self.instance].cover(cov_block!("daemon.vmstat.fold"));
            return Effect::Sleep(period + self.rng.gen_range(0..period / 4));
        }
        let k = &ctx.world.kernel().instances[self.instance];
        match wake {
            WakeReason::LockGranted(_) => {
                self.holding = true;
                Effect::Delay(k.cost.vmstat_per_core * k.n_cores() as Ns + 2 * US)
            }
            _ => Effect::Acquire(k.locks.zone, ksa_desim::LockMode::Exclusive),
        }
    }

    fn is_daemon(&self) -> bool {
        true
    }

    fn label(&self) -> &str {
        "vmstat"
    }
}

/// NET_RX softirq / NAPI poller: drains the NIC descriptor rings in
/// budgeted bursts under the instance's shared softirq lock. Deferred
/// RX processing competes with process time on the core it runs on, and
/// its burst length scales with the backlog the instance's senders
/// built up — the networking face of "rare but potentially unbounded
/// software interference". In guests each poll additionally pays the
/// RX-completion interrupt injection (virtio-net exit cost).
pub struct NapiPoller {
    instance: usize,
    rng: SmallRng,
    holding: bool,
}

impl NapiPoller {
    /// Creates the poller for `instance`.
    pub fn new(instance: usize, seed: u64) -> Self {
        Self {
            instance,
            rng: SmallRng::seed_from_u64(seed ^ 0x4a91),
            holding: false,
        }
    }
}

impl<W: HasKernel> Process<W> for NapiPoller {
    fn resume(&mut self, ctx: &mut SimCtx<'_, W>, wake: WakeReason) -> Effect {
        if self.holding {
            let (softirq, period, backlog) = {
                let k = &ctx.world.kernel().instances[self.instance];
                (
                    k.locks.softirq,
                    k.cost.softirq_period,
                    k.state.net.nic.pending_total(),
                )
            };
            ctx.release(softirq);
            self.holding = false;
            return if backlog > 0 {
                // Budget exhausted with work left: ksoftirqd-style
                // prompt reschedule instead of a full idle period.
                Effect::Sleep(period / 8 + self.rng.gen_range(0..(period / 16).max(1)))
            } else {
                Effect::Sleep(period + self.rng.gen_range(0..period / 4))
            };
        }
        match wake {
            WakeReason::LockGranted(_) => {
                self.holding = true;
                let k = &mut ctx.world.kernel_mut().instances[self.instance];
                let drained = k.state.net.nic.poll(k.cost.napi_budget);
                k.cover(cov_block!("daemon.napi.poll"));
                let mut cost = US + k.cost.napi_pkt * drained;
                if k.virt.enabled {
                    // One injected RX-completion interrupt per poll.
                    cost += k.virt.exit_io_irq;
                }
                Effect::Delay(cost)
            }
            _ => {
                let k = &ctx.world.kernel().instances[self.instance];
                if k.state.net.nic.pending_total() == 0 {
                    let period = k.cost.softirq_period;
                    Effect::Sleep(period + self.rng.gen_range(0..period / 4))
                } else {
                    Effect::Acquire(k.locks.softirq, ksa_desim::LockMode::Exclusive)
                }
            }
        }
    }

    fn is_daemon(&self) -> bool {
        true
    }

    fn label(&self) -> &str {
        "napi"
    }

    fn kind(&self) -> ksa_desim::ProcKind {
        // Softirq-context work: queueing behind the poller is reported
        // as softirq interference, not generic daemon wait.
        ksa_desim::ProcKind::Softirq
    }
}

/// Spawns the standard daemon set for instance `idx` of `world`,
/// distributing them round-robin over the instance's cores. A
/// specialized instance skips the daemons of unreached subsystems
/// entirely ([`crate::spec::SpecMask::wants_daemon`]); each daemon
/// keeps its fixed core slot and start offset, so gating one cannot
/// shift another's schedule.
pub fn spawn_daemons<W: HasKernel + 'static>(
    engine: &mut ksa_desim::Engine<W>,
    idx: usize,
    seed: u64,
) {
    let (cores, spec) = {
        let k = &engine.world().kernel().instances[idx];
        (k.cores.clone(), k.spec)
    };
    // Housekeeping threads spread from the *end* of the core list (they
    // are unpinned in real systems; applications conventionally pin to
    // the low core numbers).
    let n = cores.len();
    let pick = |i: usize| cores[(n - 1).saturating_sub(i % n)];
    let mut spawned = 0u32;
    if spec.wants_daemon("flusher") {
        engine.spawn(pick(0), Box::new(Flusher::new(idx, seed)), 1_000);
        spawned += 1;
    }
    if spec.wants_daemon("kswapd") {
        engine.spawn(pick(1), Box::new(Kswapd::new(idx, seed)), 2_000);
        spawned += 1;
    }
    if spec.wants_daemon("load_balancer") {
        engine.spawn(pick(2), Box::new(LoadBalancer::new(idx, seed)), 3_000);
        spawned += 1;
    }
    if spec.wants_daemon("vmstat") {
        engine.spawn(pick(3), Box::new(VmstatWorker::new(idx, seed)), 4_000);
        spawned += 1;
    }
    if spec.wants_daemon("napi") {
        engine.spawn(pick(4), Box::new(NapiPoller::new(idx, seed)), 5_000);
        spawned += 1;
    }
    engine.world_mut().kernel_mut().instances[idx].daemons_spawned = spawned;
}
