//! Program representation: sequences of system calls with resource
//! dependencies.
//!
//! This is the exchange format between the coverage-guided generator
//! (`ksa-syzgen`), the measurement harness (`ksa-varbench`) and the kernel
//! dispatcher: a [`Program`] is a list of [`Call`]s whose arguments are
//! either constants or references to the *results* of earlier calls in the
//! same program (file descriptors, mapping addresses, IPC ids) — exactly
//! how Syzkaller programs thread resources.

use serde::{Deserialize, Serialize};

use crate::syscalls::SysNo;

/// One argument of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arg {
    /// A literal value.
    Const(u64),
    /// The result of the `usize`-th call in the same program.
    Ref(usize),
}

impl Arg {
    /// Resolves the argument against the per-execution result table.
    pub fn resolve(self, results: &[u64]) -> u64 {
        match self {
            Arg::Const(v) => v,
            Arg::Ref(i) => results.get(i).copied().unwrap_or(0),
        }
    }
}

/// One system call with its arguments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Call {
    /// Which call.
    pub no: SysNo,
    /// Arguments; meaning is per-syscall (see `dispatch`).
    pub args: Vec<Arg>,
}

impl Call {
    /// Convenience constructor.
    pub fn new(no: SysNo, args: Vec<Arg>) -> Self {
        Self { no, args }
    }

    /// The indices of earlier calls this call depends on.
    pub fn deps(&self) -> impl Iterator<Item = usize> + '_ {
        self.args.iter().filter_map(|a| match a {
            Arg::Ref(i) => Some(*i),
            Arg::Const(_) => None,
        })
    }
}

/// A program: an ordered list of calls, executed back to back.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// The calls, in execution order.
    pub calls: Vec<Call>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// True when the program has no calls.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Validates resource references: every `Ref(i)` must point to an
    /// earlier call.
    pub fn refs_valid(&self) -> bool {
        self.calls
            .iter()
            .enumerate()
            .all(|(idx, c)| c.deps().all(|d| d < idx))
    }

    /// Removes the call at `idx`, dropping or rewiring later references:
    /// references to `idx` become `Const(0)`; references beyond shift
    /// down. Used by the corpus minimizer.
    pub fn remove_call(&self, idx: usize) -> Program {
        let mut out = Program::new();
        for (i, call) in self.calls.iter().enumerate() {
            if i == idx {
                continue;
            }
            let args = call
                .args
                .iter()
                .map(|a| match *a {
                    Arg::Ref(r) if r == idx => Arg::Const(0),
                    Arg::Ref(r) if r > idx => Arg::Ref(r - 1),
                    other => other,
                })
                .collect();
            out.calls.push(Call::new(call.no, args));
        }
        out
    }

    /// A short human-readable rendering (one call per line).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (i, c) in self.calls.iter().enumerate() {
            s.push_str(&format!("r{i} = {}(", c.no.name()));
            for (j, a) in c.args.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                match a {
                    Arg::Const(v) => s.push_str(&format!("{v:#x}")),
                    Arg::Ref(r) => s.push_str(&format!("r{r}")),
                }
            }
            s.push_str(")\n");
        }
        s
    }
}

/// A corpus: programs plus bookkeeping produced by the generator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    /// The programs, in generation order.
    pub programs: Vec<Program>,
}

impl Corpus {
    /// Total number of calls across all programs (the paper reports
    /// 27,408 for its Syzkaller corpus).
    pub fn total_calls(&self) -> usize {
        self.programs.iter().map(|p| p.len()).sum()
    }

    /// Number of programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// True when the corpus has no programs.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        Program {
            calls: vec![
                Call::new(SysNo::Open, vec![Arg::Const(3), Arg::Const(0)]),
                Call::new(SysNo::Read, vec![Arg::Ref(0), Arg::Const(4096)]),
                Call::new(SysNo::Close, vec![Arg::Ref(0)]),
            ],
        }
    }

    #[test]
    fn resolve_consts_and_refs() {
        let results = [7u64, 8, 9];
        assert_eq!(Arg::Const(42).resolve(&results), 42);
        assert_eq!(Arg::Ref(1).resolve(&results), 8);
        assert_eq!(Arg::Ref(10).resolve(&results), 0, "missing ref defaults to 0");
    }

    #[test]
    fn refs_valid_accepts_forward_only() {
        assert!(sample_program().refs_valid());
        let bad = Program {
            calls: vec![Call::new(SysNo::Read, vec![Arg::Ref(0)])],
        };
        assert!(!bad.refs_valid(), "self-reference must be rejected");
    }

    #[test]
    fn remove_call_rewires_refs() {
        let p = sample_program();
        // Remove the open; reads/closes of its fd fall back to Const(0).
        let q = p.remove_call(0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.calls[0].args[0], Arg::Const(0));
        assert!(q.refs_valid());

        // Remove the middle call; the close's ref shifts from 0 to 0.
        let r = p.remove_call(1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.calls[1].args[0], Arg::Ref(0));
        assert!(r.refs_valid());
    }

    #[test]
    fn corpus_counts_calls() {
        let c = Corpus {
            programs: vec![sample_program(), sample_program()],
        };
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_calls(), 6);
    }

    #[test]
    fn render_shows_resources() {
        let s = sample_program().render();
        assert!(s.contains("r0 = open("));
        assert!(s.contains("read(r0"));
    }

    #[test]
    fn serde_roundtrip() {
        let p = sample_program();
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
