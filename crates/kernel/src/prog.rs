//! Program representation: sequences of system calls with resource
//! dependencies.
//!
//! This is the exchange format between the coverage-guided generator
//! (`ksa-syzgen`), the measurement harness (`ksa-varbench`) and the kernel
//! dispatcher: a [`Program`] is a list of [`Call`]s whose arguments are
//! either constants or references to the *results* of earlier calls in the
//! same program (file descriptors, mapping addresses, IPC ids) — exactly
//! how Syzkaller programs thread resources.

use crate::syscalls::SysNo;

/// One argument of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arg {
    /// A literal value.
    Const(u64),
    /// The result of the `usize`-th call in the same program.
    Ref(usize),
}

impl Arg {
    /// Resolves the argument against the per-execution result table.
    pub fn resolve(self, results: &[u64]) -> u64 {
        match self {
            Arg::Const(v) => v,
            Arg::Ref(i) => results.get(i).copied().unwrap_or(0),
        }
    }
}

/// One system call with its arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Which call.
    pub no: SysNo,
    /// Arguments; meaning is per-syscall (see `dispatch`).
    pub args: Vec<Arg>,
}

impl Call {
    /// Convenience constructor.
    pub fn new(no: SysNo, args: Vec<Arg>) -> Self {
        Self { no, args }
    }

    /// The indices of earlier calls this call depends on.
    pub fn deps(&self) -> impl Iterator<Item = usize> + '_ {
        self.args.iter().filter_map(|a| match a {
            Arg::Ref(i) => Some(*i),
            Arg::Const(_) => None,
        })
    }
}

/// A program: an ordered list of calls, executed back to back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The calls, in execution order.
    pub calls: Vec<Call>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// True when the program has no calls.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Validates resource references: every `Ref(i)` must point to an
    /// earlier call.
    pub fn refs_valid(&self) -> bool {
        self.calls
            .iter()
            .enumerate()
            .all(|(idx, c)| c.deps().all(|d| d < idx))
    }

    /// Removes the call at `idx`, dropping or rewiring later references:
    /// references to `idx` become `Const(0)`; references beyond shift
    /// down. Used by the corpus minimizer.
    pub fn remove_call(&self, idx: usize) -> Program {
        let mut out = Program::new();
        for (i, call) in self.calls.iter().enumerate() {
            if i == idx {
                continue;
            }
            let args = call
                .args
                .iter()
                .map(|a| match *a {
                    Arg::Ref(r) if r == idx => Arg::Const(0),
                    Arg::Ref(r) if r > idx => Arg::Ref(r - 1),
                    other => other,
                })
                .collect();
            out.calls.push(Call::new(call.no, args));
        }
        out
    }

    /// A short human-readable rendering (one call per line).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (i, c) in self.calls.iter().enumerate() {
            s.push_str(&format!("r{i} = {}(", c.no.name()));
            for (j, a) in c.args.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                match a {
                    Arg::Const(v) => s.push_str(&format!("{v:#x}")),
                    Arg::Ref(r) => s.push_str(&format!("r{r}")),
                }
            }
            s.push_str(")\n");
        }
        s
    }
}

// ---- JSON codec ----------------------------------------------------------
//
// Programs are the exchange format between the generator, the harness and
// persisted corpora, so they need a stable serialized form. Arguments
// encode as one-key objects (`{"c": n}` / `{"r": i}`), calls carry the
// syscall's stable index in [`SysNo::ALL`], and programs are plain arrays
// of calls.

use ksa_json::Value;

impl Arg {
    /// JSON encoding of the argument.
    pub fn to_value(self) -> Value {
        match self {
            Arg::Const(v) => Value::object([("c", Value::from(v))]),
            Arg::Ref(i) => Value::object([("r", Value::from(i))]),
        }
    }

    /// Decodes an argument.
    pub fn from_value(v: &Value) -> Result<Arg, ksa_json::Error> {
        if let Some(c) = v.opt("c") {
            Ok(Arg::Const(c.as_u64()?))
        } else if let Some(r) = v.opt("r") {
            Ok(Arg::Ref(r.as_usize()?))
        } else {
            Err(ksa_json::Error::shape("argument needs `c` or `r`"))
        }
    }
}

impl SysNo {
    /// Stable index of the call in [`SysNo::ALL`] (serialization id).
    /// `ALL` lists the variants in declaration order, so the index is
    /// the discriminant — pinned by `sysno_all_is_declaration_order`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`SysNo::index`].
    pub fn from_index(idx: usize) -> Result<SysNo, ksa_json::Error> {
        SysNo::ALL
            .get(idx)
            .copied()
            .ok_or_else(|| ksa_json::Error::shape(format!("syscall index {idx} out of range")))
    }
}

impl Call {
    /// JSON encoding of the call.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("no", Value::from(self.no.index())),
            ("args", Value::array(self.args.iter().map(|a| a.to_value()))),
        ])
    }

    /// Decodes a call.
    pub fn from_value(v: &Value) -> Result<Call, ksa_json::Error> {
        let no = SysNo::from_index(v.get("no")?.as_usize()?)?;
        let args = v
            .get("args")?
            .as_array()?
            .iter()
            .map(Arg::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Call { no, args })
    }
}

impl Program {
    /// JSON encoding of the program.
    pub fn to_value(&self) -> Value {
        Value::array(self.calls.iter().map(|c| c.to_value()))
    }

    /// Decodes a program.
    pub fn from_value(v: &Value) -> Result<Program, ksa_json::Error> {
        let calls = v
            .as_array()?
            .iter()
            .map(Call::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program { calls })
    }
}

impl Corpus {
    /// JSON encoding of the corpus.
    pub fn to_value(&self) -> Value {
        Value::object([(
            "programs",
            Value::array(self.programs.iter().map(|p| p.to_value())),
        )])
    }

    /// Decodes a corpus.
    pub fn from_value(v: &Value) -> Result<Corpus, ksa_json::Error> {
        let programs = v
            .get("programs")?
            .as_array()?
            .iter()
            .map(Program::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Corpus { programs })
    }
}

/// A corpus: programs plus bookkeeping produced by the generator.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// The programs, in generation order.
    pub programs: Vec<Program>,
}

impl Corpus {
    /// Total number of calls across all programs (the paper reports
    /// 27,408 for its Syzkaller corpus).
    pub fn total_calls(&self) -> usize {
        self.programs.iter().map(|p| p.len()).sum()
    }

    /// Number of programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// True when the corpus has no programs.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        Program {
            calls: vec![
                Call::new(SysNo::Open, vec![Arg::Const(3), Arg::Const(0)]),
                Call::new(SysNo::Read, vec![Arg::Ref(0), Arg::Const(4096)]),
                Call::new(SysNo::Close, vec![Arg::Ref(0)]),
            ],
        }
    }

    /// `SysNo::index` casts the discriminant, which is only correct while
    /// `SysNo::ALL` lists the variants in declaration order. Pin that.
    #[test]
    fn sysno_all_is_declaration_order() {
        for (i, &no) in SysNo::ALL.iter().enumerate() {
            assert_eq!(no as usize, i, "SysNo::ALL[{i}] = {no:?} out of order");
            assert_eq!(no.index(), i);
            assert_eq!(SysNo::from_index(i).ok(), Some(no));
        }
    }

    #[test]
    fn resolve_consts_and_refs() {
        let results = [7u64, 8, 9];
        assert_eq!(Arg::Const(42).resolve(&results), 42);
        assert_eq!(Arg::Ref(1).resolve(&results), 8);
        assert_eq!(
            Arg::Ref(10).resolve(&results),
            0,
            "missing ref defaults to 0"
        );
    }

    #[test]
    fn refs_valid_accepts_forward_only() {
        assert!(sample_program().refs_valid());
        let bad = Program {
            calls: vec![Call::new(SysNo::Read, vec![Arg::Ref(0)])],
        };
        assert!(!bad.refs_valid(), "self-reference must be rejected");
    }

    #[test]
    fn remove_call_rewires_refs() {
        let p = sample_program();
        // Remove the open; reads/closes of its fd fall back to Const(0).
        let q = p.remove_call(0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.calls[0].args[0], Arg::Const(0));
        assert!(q.refs_valid());

        // Remove the middle call; the close's ref shifts from 0 to 0.
        let r = p.remove_call(1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.calls[1].args[0], Arg::Ref(0));
        assert!(r.refs_valid());
    }

    #[test]
    fn corpus_counts_calls() {
        let c = Corpus {
            programs: vec![sample_program(), sample_program()],
        };
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_calls(), 6);
    }

    #[test]
    fn render_shows_resources() {
        let s = sample_program().render();
        assert!(s.contains("r0 = open("));
        assert!(s.contains("read(r0"));
    }

    #[test]
    fn json_roundtrip() {
        let p = sample_program();
        let json = p.to_value().render();
        let back = Program::from_value(&ksa_json::parse(&json).unwrap()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn sysno_index_roundtrip() {
        for &no in &SysNo::ALL {
            assert_eq!(SysNo::from_index(no.index()).unwrap(), no);
        }
        assert!(SysNo::from_index(SysNo::ALL.len()).is_err());
    }
}
