//! The kernel world: every kernel instance in the environment plus the
//! core → instance mapping.

use ksa_desim::{CoreId, LatSnapshot, Ns};

use crate::instance::KernelInstance;
use crate::latency::{Attribution, AttributionTable};
use crate::syscalls::SysNo;
use crate::telemetry::KernelTelemetry;

/// All kernel instances in one simulated machine.
#[derive(Debug, Default)]
pub struct KernelWorld {
    /// The instances (native: one; k VMs: k).
    pub instances: Vec<KernelInstance>,
    /// `core_owner[core.index()]` = index of the owning instance.
    pub core_owner: Vec<usize>,
    /// Per-syscall latency attribution accumulated by the executors;
    /// the harness drains it (`std::mem::take`) after the run.
    pub attrib: AttributionTable,
    /// Kernel telemetry (inert by default); the harness installs an
    /// enabled facade before the run and drains it afterwards.
    pub metrics: KernelTelemetry,
}

impl KernelWorld {
    /// Creates an empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an instance, recording core ownership.
    pub fn push_instance(&mut self, inst: KernelInstance) {
        let idx = self.instances.len();
        for core in &inst.cores {
            let i = core.index();
            if i >= self.core_owner.len() {
                self.core_owner.resize(i + 1, usize::MAX);
            }
            assert_eq!(
                self.core_owner[i],
                usize::MAX,
                "core {i} already owned by another instance"
            );
            self.core_owner[i] = idx;
        }
        self.instances.push(inst);
    }

    /// The instance owning `core`.
    pub fn instance_of(&self, core: CoreId) -> usize {
        self.core_owner[core.index()]
    }

    /// `(instance index, slot within instance)` for a core.
    pub fn locate(&self, core: CoreId) -> (usize, usize) {
        let idx = self.instance_of(core);
        let slot = self.instances[idx]
            .slot_of(core)
            .expect("core owner mapping out of sync");
        (idx, slot)
    }

    /// Total syscalls dispatched across all instances.
    pub fn total_syscalls(&self) -> u64 {
        self.instances.iter().map(|i| i.syscalls).sum()
    }

    /// Records one completed syscall in both the attribution table and
    /// the telemetry counters, and takes a coalesced gauge sample when
    /// one is due. The single entry point keeps the two views in exact
    /// agreement: telemetry per-category sums equal the table's because
    /// both see the same [`Attribution`] under the same category rule.
    pub fn observe_syscall(
        &mut self,
        no: SysNo,
        before: &LatSnapshot,
        after: &LatSnapshot,
        vm_exit: Ns,
        now: Ns,
    ) -> Attribution {
        let attrib = self.attrib.record(no, before, after, vm_exit);
        if self.metrics.enabled() {
            self.metrics.observe_call(no, &attrib);
            if self.metrics.due(now) {
                self.metrics.sample(now, &self.instances);
            }
        }
        attrib
    }
}

/// Worlds that embed a [`KernelWorld`] (e.g. the tailbench world adds
/// request queues next to it). The syscall executor is generic over this.
pub trait HasKernel {
    /// Immutable kernel access.
    fn kernel(&self) -> &KernelWorld;
    /// Mutable kernel access.
    fn kernel_mut(&mut self) -> &mut KernelWorld;
}

impl HasKernel for KernelWorld {
    fn kernel(&self) -> &KernelWorld {
        self
    }
    fn kernel_mut(&mut self) -> &mut KernelWorld {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceConfig, TenancyProfile, VirtProfile};
    use crate::params::CostModel;
    use crate::spec::SpecMask;
    use ksa_desim::{DeviceModel, Engine, EngineParams};

    fn build_world(splits: &[usize]) -> KernelWorld {
        let mut eng: Engine<()> = Engine::new((), EngineParams::default(), 1);
        let disk = eng.add_device(DeviceModel::nvme_ssd());
        let mut world = KernelWorld::new();
        for (i, &n) in splits.iter().enumerate() {
            let cores: Vec<_> = (0..n).map(|_| eng.add_core(Default::default())).collect();
            let inst = KernelInstance::build(
                &mut eng,
                i,
                InstanceConfig {
                    cores,
                    mem_mib: 256,
                    virt: VirtProfile::native(),
                    tenancy: TenancyProfile::none(),
                    cost: CostModel::default(),
                    disk,
                    spec: SpecMask::full(),
                },
            );
            world.push_instance(inst);
        }
        world
    }

    #[test]
    fn locate_maps_cores_to_slots() {
        let w = build_world(&[2, 3]);
        assert_eq!(w.locate(CoreId(0)), (0, 0));
        assert_eq!(w.locate(CoreId(1)), (0, 1));
        assert_eq!(w.locate(CoreId(2)), (1, 0));
        assert_eq!(w.locate(CoreId(4)), (1, 2));
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn double_ownership_panics() {
        let mut eng: Engine<()> = Engine::new((), EngineParams::default(), 1);
        let disk = eng.add_device(DeviceModel::nvme_ssd());
        let core = eng.add_core(Default::default());
        let mk = |eng: &mut Engine<()>, idx| {
            KernelInstance::build(
                eng,
                idx,
                InstanceConfig {
                    cores: vec![core],
                    mem_mib: 64,
                    virt: VirtProfile::native(),
                    tenancy: TenancyProfile::none(),
                    cost: CostModel::default(),
                    disk,
                    spec: SpecMask::full(),
                },
            )
        };
        let a = mk(&mut eng, 0);
        let b = mk(&mut eng, 1);
        let mut w = KernelWorld::new();
        w.push_instance(a);
        w.push_instance(b);
    }
}
