//! Replaying compiled op sequences on the event engine.
//!
//! [`OpRunner`] lowers an [`OpSeq`] into engine effects, applying the
//! instance's virtualization profile: CPU work is scaled by the
//! nested-paging multipliers, `VmExit` ops become bounded delays (zero on
//! bare metal), and `Tlb` ops expand into a local flush, per-target exit
//! costs (vCPU kicks) and an IPI broadcast to the instance's *other*
//! cores.

use ksa_desim::{CoreId, Effect, LockId, Ns, SimCtx};

use crate::instance::KernelInstance;
use crate::ops::{KOp, OpSeq, VmExitKind};

/// One lowered step.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RunStep {
    /// Block on an effect.
    Block(Effect),
    /// Release a lock (non-blocking), then continue.
    Release(LockId),
}

/// Replays one compiled syscall on the engine.
#[derive(Debug)]
pub struct OpRunner {
    steps: Vec<RunStep>,
    at: usize,
    /// Virtualization exit overhead folded into the lowered delays,
    /// known statically at lowering time. The attribution layer
    /// subtracts this from the engine's on-CPU delta so "VM exit" is a
    /// first-class latency component despite delay merging.
    exit_ns: Ns,
    /// Per-exit `(kind tag, cost)` marks, emitted to the trace when the
    /// runner starts (exit costs are merged into delays, so individual
    /// exits have no timestamps of their own).
    exits: Vec<(&'static str, Ns)>,
}

impl OpRunner {
    /// Creates a finished runner with no steps. Executors hold one of
    /// these persistently and [`OpRunner::relower`] each call into it,
    /// reusing the step buffers.
    pub fn empty() -> Self {
        Self {
            steps: Vec::new(),
            at: 0,
            exit_ns: 0,
            exits: Vec::new(),
        }
    }

    /// Lowers `seq` for execution on `self_core` of `inst`.
    pub fn new(seq: &OpSeq, inst: &KernelInstance, self_core: CoreId) -> Self {
        let mut r = Self::empty();
        r.relower(seq, inst, self_core);
        r
    }

    /// Re-lowers this runner onto `seq`, reusing the step and exit
    /// buffers' capacity (no allocation once warm).
    pub fn relower(&mut self, seq: &OpSeq, inst: &KernelInstance, self_core: CoreId) {
        self.steps.clear();
        self.exits.clear();
        self.at = 0;
        self.exit_ns = 0;
        let steps = &mut self.steps;
        let exits = &mut self.exits;
        let mut exit_ns: Ns = 0;
        let virt = inst.virt;
        fn delay(steps: &mut Vec<RunStep>, ns: Ns) {
            if ns == 0 {
                return;
            }
            if let Some(RunStep::Block(Effect::Delay(prev))) = steps.last_mut() {
                *prev += ns;
            } else {
                steps.push(RunStep::Block(Effect::Delay(ns)));
            }
        }
        for op in &seq.ops {
            match *op {
                KOp::Cpu(ns) => delay(steps, virt.scale_cpu(ns)),
                KOp::UserCpu(ns) => delay(steps, ns),
                KOp::MemTouch(ns) => delay(steps, virt.scale_mem(ns)),
                KOp::Lock(l, m) => steps.push(RunStep::Block(Effect::Acquire(l, m))),
                KOp::Unlock(l) => steps.push(RunStep::Release(l)),
                KOp::Tlb { pages } => {
                    delay(steps, virt.scale_cpu(inst.cost.tlb_local));
                    let targets: Vec<CoreId> = inst
                        .cores
                        .iter()
                        .copied()
                        .filter(|&c| c != self_core)
                        .collect();
                    if targets.is_empty() {
                        continue;
                    }
                    // Each remote kick is an APIC access: a VM exit per
                    // target under virtualization.
                    let kick_ns = virt.exit_apic.saturating_mul(targets.len() as Ns);
                    if kick_ns > 0 {
                        exit_ns += kick_ns;
                        exits.push((VmExitKind::Apic.tag(), kick_ns));
                    }
                    delay(steps, kick_ns);
                    let handler_ns = virt.scale_cpu(
                        inst.cost.tlb_handler + inst.cost.tlb_handler_per_page * pages.min(512),
                    );
                    steps.push(RunStep::Block(Effect::Ipi {
                        targets,
                        handler_ns,
                    }));
                }
                KOp::Io { bytes, .. } => {
                    steps.push(RunStep::Block(Effect::Io {
                        dev: inst.disk,
                        bytes,
                    }));
                }
                KOp::RcuSync => steps.push(RunStep::Block(Effect::RcuSync(inst.rcu))),
                KOp::SleepNs(ns) => steps.push(RunStep::Block(Effect::Sleep(ns))),
                KOp::VmExit(kind) => {
                    let cost = match kind {
                        VmExitKind::IoKick => virt.exit_io_kick,
                        VmExitKind::IoIrq => virt.exit_io_irq,
                        VmExitKind::Apic => virt.exit_apic,
                        VmExitKind::Msr => virt.exit_msr,
                        VmExitKind::Halt => virt.exit_halt,
                        // Scaled like the kernel CPU work it displaces.
                        VmExitKind::GuestSyscall => virt.scale_cpu(virt.syscall_overhead),
                    };
                    if cost > 0 {
                        exit_ns += cost;
                        exits.push((kind.tag(), cost));
                    }
                    delay(steps, cost);
                }
                KOp::Nop => {}
            }
        }
        self.exit_ns = exit_ns;
    }

    /// Total virtualization-exit nanoseconds folded into this call's
    /// delays (zero on bare metal). Exact: delays always run to
    /// completion, so a finished call paid exactly this much.
    pub fn vm_exit_ns(&self) -> Ns {
        self.exit_ns
    }

    /// Emits one trace mark per VM exit in this call (timestamped at the
    /// current clock, since exit costs are merged into compute delays).
    /// No-op when tracing is disabled.
    pub fn trace_exits<W>(&self, ctx: &mut SimCtx<'_, W>) {
        if !ctx.trace_enabled() {
            return;
        }
        for &(kind, cost_ns) in &self.exits {
            ctx.trace_mark(ksa_desim::TraceEventKind::VmExit { kind, cost_ns });
        }
    }

    /// Advances the runner: performs pending non-blocking steps and
    /// returns the next blocking effect, or `None` when the sequence is
    /// complete. (Generic over any world — the instance context was baked
    /// in at lowering time.)
    pub fn step<W>(&mut self, ctx: &mut SimCtx<'_, W>) -> Option<Effect> {
        while self.at < self.steps.len() {
            let step = &mut self.steps[self.at];
            self.at += 1;
            match step {
                // Each step is issued at most once (`at` never rewinds),
                // so the broadcast target list can be moved out instead
                // of cloned — the variant stays in place for the
                // diagnostic accessors.
                RunStep::Block(Effect::Ipi {
                    targets,
                    handler_ns,
                }) => {
                    return Some(Effect::Ipi {
                        targets: std::mem::take(targets),
                        handler_ns: *handler_ns,
                    })
                }
                RunStep::Block(e) => return Some(e.clone()),
                RunStep::Release(l) => {
                    let l = *l;
                    ctx.release(l)
                }
            }
        }
        None
    }

    /// True once every step has been issued.
    pub fn finished(&self) -> bool {
        self.at >= self.steps.len()
    }

    /// Number of lowered steps (diagnostics).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the sequence lowered to nothing.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Lower bound on CPU time in the lowered steps (tests/diagnostics).
    pub fn total_delay(&self) -> Ns {
        self.steps
            .iter()
            .map(|s| match s {
                RunStep::Block(Effect::Delay(n)) => *n,
                _ => 0,
            })
            .sum()
    }

    /// Count of IPI broadcasts in the lowered steps.
    pub fn ipi_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, RunStep::Block(Effect::Ipi { .. })))
            .count()
    }
}

/// Lowered-effect check helpers shared by tests.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceConfig, TenancyProfile, VirtProfile};
    use crate::params::CostModel;
    use crate::spec::SpecMask;
    use ksa_desim::{DeviceModel, Engine, EngineParams};

    fn build(n_cores: usize, virt: VirtProfile) -> (Engine<()>, KernelInstance, Vec<CoreId>) {
        let mut eng: Engine<()> = Engine::new((), EngineParams::default(), 3);
        let disk = eng.add_device(DeviceModel::nvme_ssd());
        let cores: Vec<CoreId> = (0..n_cores)
            .map(|_| eng.add_core(Default::default()))
            .collect();
        let inst = KernelInstance::build(
            &mut eng,
            0,
            InstanceConfig {
                cores: cores.clone(),
                mem_mib: 256,
                virt,
                tenancy: TenancyProfile::none(),
                cost: CostModel::default(),
                disk,
                spec: SpecMask::full(),
            },
        );
        (eng, inst, cores)
    }

    #[test]
    fn cpu_ops_merge_into_single_delay() {
        let (_e, inst, cores) = build(2, VirtProfile::native());
        let mut seq = OpSeq::new();
        seq.cpu(100);
        seq.push(KOp::MemTouch(50));
        let r = OpRunner::new(&seq, &inst, cores[0]);
        assert_eq!(r.len(), 1, "adjacent delays merge");
        assert_eq!(r.total_delay(), 150);
    }

    #[test]
    fn virt_scales_cpu_and_exits() {
        let (_e, native, cores) = build(2, VirtProfile::native());
        let (_e2, kvm, kcores) = build(2, VirtProfile::kvm());
        let mut seq = OpSeq::new();
        seq.cpu(1000);
        seq.push(KOp::MemTouch(1000));
        seq.push(KOp::VmExit(VmExitKind::IoKick));
        let rn = OpRunner::new(&seq, &native, cores[0]);
        let rk = OpRunner::new(&seq, &kvm, kcores[0]);
        assert_eq!(rn.total_delay(), 2000);
        let kvm_profile = VirtProfile::kvm();
        let expected =
            kvm_profile.scale_cpu(1000) + kvm_profile.scale_mem(1000) + kvm_profile.exit_io_kick;
        assert_eq!(rk.total_delay(), expected);
        assert!(rk.total_delay() > rn.total_delay());
    }

    #[test]
    fn tlb_targets_exclude_self_and_scale_with_instance() {
        let mut seq = OpSeq::new();
        seq.push(KOp::Tlb { pages: 16 });

        let (_e, uni, ucores) = build(1, VirtProfile::native());
        let r1 = OpRunner::new(&seq, &uni, ucores[0]);
        assert_eq!(r1.ipi_count(), 0, "uniprocessor: no broadcast");

        let (_e2, big, bcores) = build(8, VirtProfile::native());
        let r8 = OpRunner::new(&seq, &big, bcores[3]);
        assert_eq!(r8.ipi_count(), 1);
    }

    #[test]
    fn unlock_is_nonblocking() {
        let (mut eng, inst, cores) = build(1, VirtProfile::native());
        let mut seq = OpSeq::new();
        seq.locked(inst.locks.zone, ksa_desim::LockMode::Exclusive, |s| {
            s.cpu(100)
        });

        struct Runner {
            r: OpRunner,
        }
        impl ksa_desim::Process<()> for Runner {
            fn resume(&mut self, ctx: &mut SimCtx<'_, ()>, _w: ksa_desim::WakeReason) -> Effect {
                self.r.step(ctx).unwrap_or(Effect::Done)
            }
        }
        let r = OpRunner::new(&seq, &inst, cores[0]);
        eng.spawn(cores[0], Box::new(Runner { r }), 0);
        let res = eng.run().unwrap();
        assert!(res.clock >= 100);
    }
}
