//! Basic-block coverage instrumentation.
//!
//! Handlers tag every distinct code path with a static string (e.g.
//! `"mmap.anon"` or `"write.throttled"`). Strings are interned once into
//! dense [`BlockId`]s through a global registry, and each execution records
//! the blocks it traversed into a [`CoverageSet`]. The coverage-guided
//! generator keeps a program only if it reaches blocks no earlier program
//! reached — the same feedback signal Syzkaller extracts from KCOV.
//!
//! # Hot path
//!
//! Interning must be cheap and crash-isolated: every syscall handler hits
//! it on every call, from every worker of the parallel trial pool at once.
//! Three layers keep the steady state lock-free and the cold path safe:
//!
//! 1. **Per-call-site caches.** The [`cov!`]/[`cov_bucket!`]/[`fail!`]
//!    macros plant a `static` [`SiteCache`] (one relaxed
//!    `AtomicU32`) at each instrumentation site. After the first hit the
//!    site's [`BlockId`] is read straight from the atomic — no lock, no
//!    hashing, no allocation.
//! 2. **A read-optimized registry.** The cold path (first hit of a site,
//!    or a dynamic name) takes an `RwLock` read lock for lookup and only
//!    escalates to the write lock to intern a genuinely new name.
//!    [`block_bucketed`] and [`block_err`] look up with *borrowed* keys
//!    (`(name, bucket)` / the unprefixed name), so repeated calls never
//!    build a fresh `String` — the name is formatted and leaked exactly
//!    once, when it is genuinely new.
//! 3. **Poison recovery.** Every lock acquisition goes through
//!    [`read_reg`]/[`write_reg`], which recover a poisoned lock with
//!    `unwrap_or_else(|e| e.into_inner())` instead of panicking. A trial
//!    that panics mid-coverage therefore cannot cascade into sibling
//!    trials on the pool: write sections are short, straight-line and
//!    touch no user code, so a recovered registry is always consistent.
//!    (`registry_recovers_from_poison` pins this; the pool-level
//!    regression lives in `crates/varbench/tests/coverage_poison.rs`.)
//!
//! Error-path blocks are flagged in a **bitset at intern time** (any name
//! with the `err.` prefix, however it was interned), so
//! [`is_error_block`] and [`CoverageSet::error_blocks`] are O(1)/O(words)
//! bitmap operations instead of per-id string scans under the lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Dense id of one instrumented kernel code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Sentinel for "this call site has not interned its block yet".
/// (A real id would need four billion distinct blocks to collide.)
const UNINTERNED: u32 = u32::MAX;

struct Registry {
    /// Full interned name → id (the authoritative map).
    by_name: HashMap<&'static str, BlockId>,
    /// Borrowed-key cache for [`block_bucketed`]: `(base name, bucket)` →
    /// id, so the hit path never formats `"name#bucket"`.
    bucketed: HashMap<(&'static str, u32), BlockId>,
    /// Borrowed-key cache for [`block_err`]: unprefixed name → id, so the
    /// hit path never formats `"err.name"`.
    err_by_base: HashMap<&'static str, BlockId>,
    /// Reverse lookup, indexed by id.
    names: Vec<&'static str>,
    /// Bit `i` set ⇔ block `i` is an error-path block (`err.` prefix),
    /// recorded at intern time.
    err_bits: Vec<u64>,
}

impl Registry {
    /// Interns a full (already prefixed / formatted) name. The body is
    /// straight-line and panic-free so a recovered write lock can never
    /// expose a half-updated registry.
    fn intern(&mut self, name: &'static str) -> BlockId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = BlockId(self.names.len() as u32);
        self.names.push(name);
        if name.starts_with("err.") {
            let (word, bit) = (id.0 as usize / 64, id.0 as usize % 64);
            if word >= self.err_bits.len() {
                self.err_bits.resize(word + 1, 0);
            }
            self.err_bits[word] |= 1 << bit;
        }
        self.by_name.insert(name, id);
        id
    }
}

fn registry() -> &'static RwLock<Registry> {
    static REG: OnceLock<RwLock<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        RwLock::new(Registry {
            by_name: HashMap::new(),
            bucketed: HashMap::new(),
            err_by_base: HashMap::new(),
            names: Vec::new(),
            err_bits: Vec::new(),
        })
    })
}

/// Read access with poison recovery: a panicked sibling trial must never
/// turn coverage lookups into a process-wide cascade panic.
fn read_reg() -> RwLockReadGuard<'static, Registry> {
    registry().read().unwrap_or_else(|e| e.into_inner())
}

/// Write access with poison recovery (see [`read_reg`]; write sections
/// are panic-free, so recovery always observes a consistent registry).
fn write_reg() -> RwLockWriteGuard<'static, Registry> {
    registry().write().unwrap_or_else(|e| e.into_inner())
}

/// Interns a block name; the same name always maps to the same id within
/// a process.
pub fn block(name: &'static str) -> BlockId {
    if let Some(&id) = read_reg().by_name.get(name) {
        return id;
    }
    write_reg().intern(name)
}

/// Interns a parameterized block, e.g. `("io.read.size", 3)` →
/// `io.read.size#3`. Handlers use this for argument-dependent paths
/// (size classes, depth classes), giving the generator a finer coverage
/// signal — the analogue of distinct basic blocks inside `switch`es and
/// size-dependent loops. The composite name is formatted and leaked once
/// per distinct pair; the hit path looks up with a borrowed
/// `(name, bucket)` key and allocates nothing.
pub fn block_bucketed(name: &'static str, bucket: u32) -> BlockId {
    if let Some(&id) = read_reg().bucketed.get(&(name, bucket)) {
        return id;
    }
    // Cold: format outside the write section, then double-check (another
    // thread may have interned the pair between the two locks).
    let full = format!("{name}#{bucket}");
    let mut reg = write_reg();
    if let Some(&id) = reg.bucketed.get(&(name, bucket)) {
        return id;
    }
    let id = match reg.by_name.get(full.as_str()) {
        Some(&id) => id,
        None => {
            let leaked: &'static str = Box::leak(full.into_boxed_str());
            reg.intern(leaked)
        }
    };
    reg.bucketed.insert((name, bucket), id);
    id
}

/// Interns an **error-path** block: the name is prefixed with `err.` so
/// error blocks are distinguishable from happy-path blocks when counting
/// coverage (e.g. `block_err("io.fsync.eio")` → `err.io.fsync.eio`).
/// Handlers reach these only when a fault plan forces a failure, which is
/// what makes fault-injection corpora measurably *new* coverage. The
/// prefixed name is formatted and leaked once; the hit path looks up the
/// unprefixed name and allocates nothing.
pub fn block_err(name: &'static str) -> BlockId {
    if let Some(&id) = read_reg().err_by_base.get(name) {
        return id;
    }
    let full = format!("err.{name}");
    let mut reg = write_reg();
    if let Some(&id) = reg.err_by_base.get(name) {
        return id;
    }
    let id = match reg.by_name.get(full.as_str()) {
        Some(&id) => id,
        None => {
            let leaked: &'static str = Box::leak(full.into_boxed_str());
            reg.intern(leaked)
        }
    };
    reg.err_by_base.insert(name, id);
    id
}

/// Reverse lookup for diagnostics. Total: an id that was never interned
/// (e.g. a corrupted value surfaced in a crash report) maps to a
/// placeholder instead of panicking while the registry lock is held —
/// the exact slip that used to poison the registry for every sibling
/// trial on the pool.
pub fn block_name(id: BlockId) -> &'static str {
    read_reg()
        .names
        .get(id.0 as usize)
        .copied()
        .unwrap_or("<unknown block>")
}

/// True when `id` names an error-path block (an `err.`-prefixed name,
/// whether it was interned through [`block_err`] or directly). A bitset
/// probe — no string comparison, no allocation.
pub fn is_error_block(id: BlockId) -> bool {
    let (word, bit) = (id.0 as usize / 64, id.0 as usize % 64);
    read_reg()
        .err_bits
        .get(word)
        .is_some_and(|w| w & (1 << bit) != 0)
}

/// Number of distinct blocks interned so far.
pub fn block_universe() -> usize {
    read_reg().names.len()
}

/// One instrumentation site's interned-id cache: a relaxed `AtomicU32`
/// planted as a `static` by the [`cov!`]-family macros. The first hit
/// interns through the registry; every later hit is a single atomic load.
/// Racing first hits are benign — interning is idempotent, so both
/// threads store the same id.
pub struct SiteCache(AtomicU32);

impl SiteCache {
    /// A cache holding no id yet.
    pub const fn new() -> Self {
        Self(AtomicU32::new(UNINTERNED))
    }

    /// The site's id, interning `name` on first use.
    #[inline]
    pub fn get(&self, name: &'static str) -> BlockId {
        let v = self.0.load(Ordering::Relaxed);
        if v != UNINTERNED {
            return BlockId(v);
        }
        let id = block(name);
        self.0.store(id.0, Ordering::Relaxed);
        id
    }

    /// The site's error-path id (`err.`-prefixed), interning on first use.
    #[inline]
    pub fn get_err(&self, name: &'static str) -> BlockId {
        let v = self.0.load(Ordering::Relaxed);
        if v != UNINTERNED {
            return BlockId(v);
        }
        let id = block_err(name);
        self.0.store(id.0, Ordering::Relaxed);
        id
    }
}

impl Default for SiteCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-call-site cache for bucketed blocks: one atomic slot per bucket
/// value (size/depth classes are log2, so 65 slots cover every `u64`
/// size class). Out-of-range buckets fall back to the registry's
/// borrowed-key path, which is still allocation-free on hits.
pub struct BucketSiteCache {
    slots: [AtomicU32; Self::SLOTS],
}

impl BucketSiteCache {
    const SLOTS: usize = 65;

    /// A cache holding no ids yet.
    pub const fn new() -> Self {
        Self {
            slots: [const { AtomicU32::new(UNINTERNED) }; Self::SLOTS],
        }
    }

    /// The site's id for `bucket`, interning `name#bucket` on first use.
    #[inline]
    pub fn get(&self, name: &'static str, bucket: u32) -> BlockId {
        match self.slots.get(bucket as usize) {
            Some(slot) => {
                let v = slot.load(Ordering::Relaxed);
                if v != UNINTERNED {
                    return BlockId(v);
                }
                let id = block_bucketed(name, bucket);
                slot.store(id.0, Ordering::Relaxed);
                id
            }
            None => block_bucketed(name, bucket),
        }
    }
}

impl Default for BucketSiteCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Records coverage of a named kernel path with a per-call-site cached
/// id: `cov!(h, "mm.alloc.pcp")`. The name must be a literal — each
/// expansion owns one `static` cache, so a runtime name would pin the
/// first value it saw. Use [`crate::dispatch::HCtx::cover`] for dynamic
/// names.
macro_rules! cov {
    ($h:expr, $name:literal) => {{
        static SITE: $crate::coverage::SiteCache = $crate::coverage::SiteCache::new();
        $h.cover_id(SITE.get($name));
    }};
}
pub(crate) use cov;

/// Records coverage of a parameterized path with per-call-site cached
/// ids, one per bucket: `cov_bucket!(h, "io.read.size", class)`.
macro_rules! cov_bucket {
    ($h:expr, $name:literal, $bucket:expr) => {{
        static SITE: $crate::coverage::BucketSiteCache = $crate::coverage::BucketSiteCache::new();
        $h.cover_id(SITE.get($name, $bucket));
    }};
}
pub(crate) use cov_bucket;

/// Terminates the call on an error path with a per-call-site cached
/// error block: `fail!(h, Errno::ENOMEM, "mm.mmap.enomem")`. Equivalent
/// to [`crate::dispatch::HCtx::fail`] minus the registry round-trip.
macro_rules! fail {
    ($h:expr, $errno:expr, $name:literal) => {{
        static SITE: $crate::coverage::SiteCache = $crate::coverage::SiteCache::new();
        $h.fail_id($errno, SITE.get_err($name));
    }};
}
pub(crate) use fail;

/// Interns (once) and returns a cached [`BlockId`] for a literal name —
/// the id-valued form of [`cov!`] for code that records into a
/// [`CoverageSet`] directly (daemons, tests).
macro_rules! cov_block {
    ($name:literal) => {{
        static SITE: $crate::coverage::SiteCache = $crate::coverage::SiteCache::new();
        SITE.get($name)
    }};
}
pub(crate) use cov_block;

/// A set of covered blocks, implemented as a growable bitmap.
#[derive(Debug, Clone, Default)]
pub struct CoverageSet {
    bits: Vec<u64>,
    count: usize,
}

impl CoverageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a block; returns `true` when it was new.
    pub fn insert(&mut self, id: BlockId) -> bool {
        let (word, bit) = (id.0 as usize / 64, id.0 as usize % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        self.count += 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, id: BlockId) -> bool {
        let (word, bit) = (id.0 as usize / 64, id.0 as usize % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of covered blocks.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Counts blocks in `other` not present in `self`.
    pub fn new_blocks(&self, other: &CoverageSet) -> usize {
        let mut n = 0;
        for (i, &w) in other.bits.iter().enumerate() {
            let mine = self.bits.get(i).copied().unwrap_or(0);
            n += (w & !mine).count_ones() as usize;
        }
        n
    }

    /// Merges `other` into `self`; returns how many blocks were new.
    pub fn merge(&mut self, other: &CoverageSet) -> usize {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        let mut added = 0;
        for (i, &w) in other.bits.iter().enumerate() {
            let newbits = w & !self.bits[i];
            added += newbits.count_ones() as usize;
            self.bits[i] |= w;
        }
        self.count += added;
        added
    }

    /// Iterates over covered block ids.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.bits.iter().enumerate().flat_map(|(i, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| BlockId((i * 64 + b) as u32))
        })
    }

    /// Number of covered **error-path** blocks (those with an `err.`
    /// prefix). A no-fault execution covers zero of these; any positive
    /// count is coverage only fault injection can reach. A word-wise
    /// intersection with the registry's intern-time error bitset — the
    /// read lock is held for an O(words) bitmap walk, not a per-id
    /// string scan.
    pub fn error_blocks(&self) -> usize {
        let reg = read_reg();
        self.bits
            .iter()
            .enumerate()
            .map(|(i, &w)| (w & reg.err_bits.get(i).copied().unwrap_or(0)).count_ones() as usize)
            .sum()
    }

    /// Removes all blocks.
    pub fn clear(&mut self) {
        self.bits.clear();
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = block("cov.test.alpha");
        let b = block("cov.test.beta");
        assert_ne!(a, b);
        assert_eq!(block("cov.test.alpha"), a);
        assert_eq!(block_name(a), "cov.test.alpha");
    }

    #[test]
    fn insert_and_contains() {
        let mut s = CoverageSet::new();
        let a = block("cov.test.i1");
        assert!(!s.contains(a));
        assert!(s.insert(a));
        assert!(!s.insert(a), "second insert is not new");
        assert!(s.contains(a));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_counts_new_blocks() {
        let a = block("cov.test.m1");
        let b = block("cov.test.m2");
        let c = block("cov.test.m3");
        let mut base = CoverageSet::new();
        base.insert(a);
        let mut other = CoverageSet::new();
        other.insert(a);
        other.insert(b);
        other.insert(c);
        assert_eq!(base.new_blocks(&other), 2);
        assert_eq!(base.merge(&other), 2);
        assert_eq!(base.len(), 3);
        assert_eq!(base.new_blocks(&other), 0);
    }

    #[test]
    fn iter_roundtrips() {
        let ids = [
            block("cov.test.r1"),
            block("cov.test.r2"),
            block("cov.test.r3"),
        ];
        let mut s = CoverageSet::new();
        for &i in &ids {
            s.insert(i);
        }
        let got: Vec<BlockId> = s.iter().collect();
        assert_eq!(got.len(), 3);
        for &i in &ids {
            assert!(got.contains(&i));
        }
    }

    #[test]
    fn error_blocks_are_counted_separately() {
        let ok = block("cov.test.happy");
        let bad = block_err("cov.test.sad");
        assert!(!is_error_block(ok));
        assert!(is_error_block(bad));
        assert_eq!(block_name(bad), "err.cov.test.sad");
        assert_eq!(block_err("cov.test.sad"), bad, "interning is stable");
        let mut s = CoverageSet::new();
        s.insert(ok);
        assert_eq!(s.error_blocks(), 0);
        s.insert(bad);
        assert_eq!(s.error_blocks(), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn err_prefix_interned_directly_is_still_an_error_block() {
        // The bitset is keyed on the name, not the entry point: a block
        // interned through `block("err.x")` and one through
        // `block_err("x")` are the same id and both flagged.
        let via_block = block("err.cov.test.direct");
        assert!(is_error_block(via_block));
        assert_eq!(block_err("cov.test.direct"), via_block);
    }

    #[test]
    fn clear_empties() {
        let mut s = CoverageSet::new();
        s.insert(block("cov.test.c1"));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn bucketed_interning_is_stable_and_does_not_grow_the_universe() {
        // Re-hitting an interned bucketed block must neither re-leak the
        // composite name nor mint a new id: the universe stays flat.
        let id = block_bucketed("cov.test.bucket.stable", 7);
        let before = block_universe();
        for _ in 0..1_000 {
            assert_eq!(block_bucketed("cov.test.bucket.stable", 7), id);
        }
        assert_eq!(block_universe(), before, "repeated hits must not re-intern");
        // A different bucket is a different block.
        let other = block_bucketed("cov.test.bucket.stable", 8);
        assert_ne!(other, id);
        assert_eq!(block_name(id), "cov.test.bucket.stable#7");
    }

    #[test]
    fn err_interning_is_stable_and_does_not_grow_the_universe() {
        let id = block_err("cov.test.err.stable");
        let before = block_universe();
        for _ in 0..1_000 {
            assert_eq!(block_err("cov.test.err.stable"), id);
        }
        assert_eq!(block_universe(), before);
    }

    #[test]
    fn site_caches_return_registry_ids() {
        let cached = cov_block!("cov.test.site_cache");
        assert_eq!(block("cov.test.site_cache"), cached);
        // Second expansion hit goes through the atomic; same id.
        assert_eq!(cov_block!("cov.test.site_cache"), cached);

        let site = SiteCache::new();
        let e = site.get_err("cov.test.site_cache.err");
        assert_eq!(block_err("cov.test.site_cache.err"), e);
        assert!(is_error_block(e));

        let bsite = BucketSiteCache::new();
        let b3 = bsite.get("cov.test.site_cache.bkt", 3);
        assert_eq!(block_bucketed("cov.test.site_cache.bkt", 3), b3);
        assert_eq!(bsite.get("cov.test.site_cache.bkt", 3), b3);
        // Out-of-cache-range buckets still intern correctly.
        let big = bsite.get("cov.test.site_cache.bkt", 1_000);
        assert_eq!(block_bucketed("cov.test.site_cache.bkt", 1_000), big);
    }

    #[test]
    fn unknown_id_has_a_placeholder_name() {
        assert_eq!(block_name(BlockId(u32::MAX - 1)), "<unknown block>");
        assert!(!is_error_block(BlockId(u32::MAX - 1)));
    }

    #[test]
    fn registry_recovers_from_poison() {
        let before = block("cov.test.poison.before");
        // Poison the write lock: a thread panics while holding it (the
        // guard is acquired and dropped mid-unwind without mutating, so
        // the registry stays consistent).
        let _ = std::thread::spawn(|| {
            let _guard = super::registry().write().unwrap_or_else(|e| e.into_inner());
            panic!("deliberately poison the coverage registry");
        })
        .join();
        // Every accessor must recover instead of cascading the panic.
        assert_eq!(block("cov.test.poison.before"), before);
        let after = block("cov.test.poison.after");
        assert_ne!(after, before);
        assert_eq!(block_name(after), "cov.test.poison.after");
        assert!(is_error_block(block_err("cov.test.poison.err")));
        assert!(block_universe() > 0);
        let mut s = CoverageSet::new();
        s.insert(block_err("cov.test.poison.err"));
        assert_eq!(s.error_blocks(), 1);
    }

    #[test]
    fn no_bare_lock_unwrap_on_the_registry() {
        // Source lint, enforced by `cargo test` everywhere (CI repeats it
        // as a grep in the lint job): the registry must only be touched
        // through the poison-recovering accessors. The needle is split so
        // this test's own source doesn't match it.
        let src = include_str!("coverage.rs");
        for method in ["read", "write", "lock"] {
            let needle = format!(".{method}().unwrap{}", "()");
            assert!(
                !src.contains(&needle),
                "coverage.rs must not call {needle} on the registry — \
                 use read_reg()/write_reg() (poison recovery)"
            );
        }
    }
}
