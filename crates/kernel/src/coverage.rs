//! Basic-block coverage instrumentation.
//!
//! Handlers tag every distinct code path with a static string (e.g.
//! `"mmap.anon"` or `"write.throttled"`). Strings are interned once into
//! dense [`BlockId`]s through a global registry, and each execution records
//! the blocks it traversed into a [`CoverageSet`]. The coverage-guided
//! generator keeps a program only if it reaches blocks no earlier program
//! reached — the same feedback signal Syzkaller extracts from KCOV.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Dense id of one instrumented kernel code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

struct Registry {
    by_name: HashMap<&'static str, BlockId>,
    names: Vec<&'static str>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(Registry {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Interns a block name; the same name always maps to the same id within
/// a process.
pub fn block(name: &'static str) -> BlockId {
    let mut reg = registry().lock().unwrap();
    if let Some(&id) = reg.by_name.get(name) {
        return id;
    }
    let id = BlockId(reg.names.len() as u32);
    reg.names.push(name);
    reg.by_name.insert(name, id);
    id
}

/// Reverse lookup for diagnostics.
pub fn block_name(id: BlockId) -> &'static str {
    registry().lock().unwrap().names[id.0 as usize]
}

/// Interns a parameterized block, e.g. `("io.read.size", 3)` →
/// `io.read.size#3`. Handlers use this for argument-dependent paths
/// (size classes, depth classes), giving the generator a finer coverage
/// signal — the analogue of distinct basic blocks inside `switch`es and
/// size-dependent loops. Names are leaked once per distinct pair.
pub fn block_bucketed(name: &'static str, bucket: u32) -> BlockId {
    let mut reg = registry().lock().unwrap();
    let key = format!("{name}#{bucket}");
    if let Some(&id) = reg.by_name.get(key.as_str()) {
        return id;
    }
    let leaked: &'static str = Box::leak(key.into_boxed_str());
    let id = BlockId(reg.names.len() as u32);
    reg.names.push(leaked);
    reg.by_name.insert(leaked, id);
    id
}

/// Interns an **error-path** block: the name is prefixed with `err.` so
/// error blocks are distinguishable from happy-path blocks when counting
/// coverage (e.g. `block_err("io.fsync.eio")` → `err.io.fsync.eio`).
/// Handlers reach these only when a fault plan forces a failure, which is
/// what makes fault-injection corpora measurably *new* coverage.
pub fn block_err(name: &'static str) -> BlockId {
    let mut reg = registry().lock().unwrap();
    let key = format!("err.{name}");
    if let Some(&id) = reg.by_name.get(key.as_str()) {
        return id;
    }
    let leaked: &'static str = Box::leak(key.into_boxed_str());
    let id = BlockId(reg.names.len() as u32);
    reg.names.push(leaked);
    reg.by_name.insert(leaked, id);
    id
}

/// True when `id` was interned through [`block_err`].
pub fn is_error_block(id: BlockId) -> bool {
    registry()
        .lock()
        .unwrap()
        .names
        .get(id.0 as usize)
        .is_some_and(|n| n.starts_with("err."))
}

/// Number of distinct blocks interned so far.
pub fn block_universe() -> usize {
    registry().lock().unwrap().names.len()
}

/// A set of covered blocks, implemented as a growable bitmap.
#[derive(Debug, Clone, Default)]
pub struct CoverageSet {
    bits: Vec<u64>,
    count: usize,
}

impl CoverageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a block; returns `true` when it was new.
    pub fn insert(&mut self, id: BlockId) -> bool {
        let (word, bit) = (id.0 as usize / 64, id.0 as usize % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        self.count += 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, id: BlockId) -> bool {
        let (word, bit) = (id.0 as usize / 64, id.0 as usize % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of covered blocks.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Counts blocks in `other` not present in `self`.
    pub fn new_blocks(&self, other: &CoverageSet) -> usize {
        let mut n = 0;
        for (i, &w) in other.bits.iter().enumerate() {
            let mine = self.bits.get(i).copied().unwrap_or(0);
            n += (w & !mine).count_ones() as usize;
        }
        n
    }

    /// Merges `other` into `self`; returns how many blocks were new.
    pub fn merge(&mut self, other: &CoverageSet) -> usize {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        let mut added = 0;
        for (i, &w) in other.bits.iter().enumerate() {
            let newbits = w & !self.bits[i];
            added += newbits.count_ones() as usize;
            self.bits[i] |= w;
        }
        self.count += added;
        added
    }

    /// Iterates over covered block ids.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.bits.iter().enumerate().flat_map(|(i, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| BlockId((i * 64 + b) as u32))
        })
    }

    /// Number of covered **error-path** blocks (those interned through
    /// [`block_err`]). A no-fault execution covers zero of these; any
    /// positive count is coverage only fault injection can reach.
    pub fn error_blocks(&self) -> usize {
        let reg = registry().lock().unwrap();
        self.iter()
            .filter(|id| {
                reg.names
                    .get(id.0 as usize)
                    .is_some_and(|n| n.starts_with("err."))
            })
            .count()
    }

    /// Removes all blocks.
    pub fn clear(&mut self) {
        self.bits.clear();
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = block("cov.test.alpha");
        let b = block("cov.test.beta");
        assert_ne!(a, b);
        assert_eq!(block("cov.test.alpha"), a);
        assert_eq!(block_name(a), "cov.test.alpha");
    }

    #[test]
    fn insert_and_contains() {
        let mut s = CoverageSet::new();
        let a = block("cov.test.i1");
        assert!(!s.contains(a));
        assert!(s.insert(a));
        assert!(!s.insert(a), "second insert is not new");
        assert!(s.contains(a));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_counts_new_blocks() {
        let a = block("cov.test.m1");
        let b = block("cov.test.m2");
        let c = block("cov.test.m3");
        let mut base = CoverageSet::new();
        base.insert(a);
        let mut other = CoverageSet::new();
        other.insert(a);
        other.insert(b);
        other.insert(c);
        assert_eq!(base.new_blocks(&other), 2);
        assert_eq!(base.merge(&other), 2);
        assert_eq!(base.len(), 3);
        assert_eq!(base.new_blocks(&other), 0);
    }

    #[test]
    fn iter_roundtrips() {
        let ids = [
            block("cov.test.r1"),
            block("cov.test.r2"),
            block("cov.test.r3"),
        ];
        let mut s = CoverageSet::new();
        for &i in &ids {
            s.insert(i);
        }
        let got: Vec<BlockId> = s.iter().collect();
        assert_eq!(got.len(), 3);
        for &i in &ids {
            assert!(got.contains(&i));
        }
    }

    #[test]
    fn error_blocks_are_counted_separately() {
        let ok = block("cov.test.happy");
        let bad = block_err("cov.test.sad");
        assert!(!is_error_block(ok));
        assert!(is_error_block(bad));
        assert_eq!(block_name(bad), "err.cov.test.sad");
        assert_eq!(block_err("cov.test.sad"), bad, "interning is stable");
        let mut s = CoverageSet::new();
        s.insert(ok);
        assert_eq!(s.error_blocks(), 0);
        s.insert(bad);
        assert_eq!(s.error_blocks(), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut s = CoverageSet::new();
        s.insert(block("cov.test.c1"));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
