//! Per-syscall latency attribution: the lockstat + perf analogue.
//!
//! The engine's always-on [`LatBreakdown`] accounting tiles every
//! process's timeline with latency components. This module turns two
//! snapshots bracketing one syscall into an [`Attribution`] — the
//! call's total nanoseconds decomposed into on-CPU work, VM-exit
//! overhead, lock wait, run-queue wait split by occupant class,
//! softirq interference, I/O, IPI and RCU waits — with the invariant
//! that **components sum exactly to the total**. [`AttributionTable`]
//! aggregates per syscall, per category and per lock label across a
//! run; the harness (varbench/tailbench) drains it after the engine
//! finishes.

use std::collections::BTreeMap;

use ksa_desim::{LatBreakdown, LatComp, LatSnapshot, Ns};

use crate::category::Category;
use crate::syscalls::SysNo;

/// One syscall's (or aggregate's) latency decomposition. All values in
/// virtual nanoseconds; `total` always equals the sum of the other
/// fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Attribution {
    /// Wall (virtual) time of the call, entry to exit.
    pub total: Ns,
    /// Productive kernel + user CPU work, VM exits excluded.
    pub on_cpu: Ns,
    /// Virtualization exit overhead (doorbells, APIC, MSR, halt, and
    /// per-syscall guest entry cost).
    pub vm_exit: Ns,
    /// Timer-interrupt overhead charged while computing.
    pub tick_irq: Ns,
    /// Blocked acquiring locks (all labels; see the per-label table).
    pub lock_wait: Ns,
    /// Core-occupancy wait behind other application work.
    pub runq_wait: Ns,
    /// Core-occupancy wait behind softirq (NAPI) polling.
    pub softirq_wait: Ns,
    /// Core-occupancy wait behind housekeeping daemons.
    pub daemon_wait: Ns,
    /// Core-occupancy wait behind stolen interrupt-handler time.
    pub irq_wait: Ns,
    /// Blocked on device I/O.
    pub io_wait: Ns,
    /// Blocked broadcasting IPIs (TLB shootdowns).
    pub ipi_wait: Ns,
    /// Blocked in RCU grace periods.
    pub rcu_wait: Ns,
    /// Voluntary sleep (nanosleep, timeouts).
    pub sleep: Ns,
    /// Barrier and wait-queue blocking (futex/IPC rendezvous).
    pub other_wait: Ns,
}

impl Attribution {
    /// Field names in render order (kept in sync with [`Self::values`]).
    pub const COMPONENTS: [&'static str; 13] = [
        "on_cpu",
        "vm_exit",
        "tick_irq",
        "lock_wait",
        "runq_wait",
        "softirq_wait",
        "daemon_wait",
        "irq_wait",
        "io_wait",
        "ipi_wait",
        "rcu_wait",
        "sleep",
        "other_wait",
    ];

    /// Component values in [`Self::COMPONENTS`] order.
    pub fn values(&self) -> [Ns; 13] {
        [
            self.on_cpu,
            self.vm_exit,
            self.tick_irq,
            self.lock_wait,
            self.runq_wait,
            self.softirq_wait,
            self.daemon_wait,
            self.irq_wait,
            self.io_wait,
            self.ipi_wait,
            self.rcu_wait,
            self.sleep,
            self.other_wait,
        ]
    }

    /// Builds an attribution from an engine component delta, carving
    /// `vm_exit` nanoseconds out of the on-CPU component (the engine
    /// charges exit costs as compute; the op runner knows statically how
    /// much of a call's compute was exit overhead).
    pub fn from_delta(delta: &LatBreakdown, vm_exit: Ns) -> Self {
        let on_cpu_raw = delta.get(LatComp::OnCpu);
        debug_assert!(
            vm_exit <= on_cpu_raw,
            "vm exit overhead ({vm_exit}ns) exceeds on-cpu delta ({on_cpu_raw}ns)"
        );
        let vm_exit = vm_exit.min(on_cpu_raw);
        Self {
            total: delta.total(),
            on_cpu: on_cpu_raw - vm_exit,
            vm_exit,
            tick_irq: delta.get(LatComp::TickIrq),
            lock_wait: delta.get(LatComp::LockWait),
            runq_wait: delta.get(LatComp::RunqWait),
            softirq_wait: delta.get(LatComp::SoftirqWait),
            daemon_wait: delta.get(LatComp::DaemonWait),
            irq_wait: delta.get(LatComp::IrqWait),
            io_wait: delta.get(LatComp::IoWait),
            ipi_wait: delta.get(LatComp::IpiWait),
            rcu_wait: delta.get(LatComp::RcuWait),
            sleep: delta.get(LatComp::Sleep),
            other_wait: delta.get(LatComp::BarrierWait) + delta.get(LatComp::QueueWait),
        }
    }

    /// Sum of all components (must equal `total`).
    pub fn component_sum(&self) -> Ns {
        self.values().iter().sum()
    }

    /// The sum-to-total invariant.
    pub fn is_exact(&self) -> bool {
        self.component_sum() == self.total
    }

    /// Accumulates another attribution (aggregation across calls).
    pub fn add(&mut self, other: &Attribution) {
        self.total += other.total;
        self.on_cpu += other.on_cpu;
        self.vm_exit += other.vm_exit;
        self.tick_irq += other.tick_irq;
        self.lock_wait += other.lock_wait;
        self.runq_wait += other.runq_wait;
        self.softirq_wait += other.softirq_wait;
        self.daemon_wait += other.daemon_wait;
        self.irq_wait += other.irq_wait;
        self.io_wait += other.io_wait;
        self.ipi_wait += other.ipi_wait;
        self.rcu_wait += other.rcu_wait;
        self.sleep += other.sleep;
        self.other_wait += other.other_wait;
    }
}

/// One completed call's raw attribution, kept when
/// [`AttributionTable::keep_raw`] is set (tail analysis needs the
/// per-call distribution, not just aggregates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawCall {
    /// The syscall.
    pub no: SysNo,
    /// Its decomposition.
    pub attrib: Attribution,
}

/// Aggregated per-run attribution, living in the kernel world so the
/// executor can feed it and the harness can drain it after the run.
///
/// The per-sysno and per-category aggregates are dense arrays indexed
/// by [`SysNo::index`]/[`Category::index`] — `record` runs once per
/// simulated syscall, and the map lookups it used to do were a
/// measurable slice of the engine's per-event budget. The
/// [`AttributionTable::by_sysno`]/[`AttributionTable::by_category`]
/// iterators present the same touched-entries-in-declaration-order
/// view the old sorted maps gave.
#[derive(Debug, Clone)]
pub struct AttributionTable {
    /// `(calls, summed attribution)` per syscall, indexed by
    /// [`SysNo::index`].
    sysno: Vec<(u64, Attribution)>,
    /// `(calls, summed attribution)` per primary category (the first
    /// category of the syscall, so category rows partition the calls),
    /// indexed by [`Category::index`].
    category: [(u64, Attribution); Category::ALL.len()],
    /// Total lock wait per lock label, across all calls.
    pub lock_wait_by_label: BTreeMap<&'static str, Ns>,
    /// When true, every call's raw attribution is retained in `raw`.
    pub keep_raw: bool,
    /// Raw per-call records (empty unless `keep_raw`).
    pub raw: Vec<RawCall>,
}

impl Default for AttributionTable {
    fn default() -> Self {
        Self {
            sysno: vec![Default::default(); SysNo::ALL.len()],
            category: [Default::default(); Category::ALL.len()],
            lock_wait_by_label: BTreeMap::new(),
            keep_raw: false,
            raw: Vec::new(),
        }
    }
}

impl AttributionTable {
    /// `(sysno, (calls, summed attribution))` for every syscall with at
    /// least one recorded call, in [`SysNo::ALL`] order.
    pub fn by_sysno(&self) -> impl Iterator<Item = (SysNo, &(u64, Attribution))> {
        SysNo::ALL
            .iter()
            .zip(&self.sysno)
            .filter(|(_, e)| e.0 > 0)
            .map(|(&no, e)| (no, e))
    }

    /// `(category, (calls, summed attribution))` for every category
    /// with at least one recorded call, in [`Category::ALL`] order.
    pub fn by_category(&self) -> impl Iterator<Item = (Category, &(u64, Attribution))> {
        Category::ALL
            .iter()
            .zip(&self.category)
            .filter(|(_, e)| e.0 > 0)
            .map(|(&cat, e)| (cat, e))
    }

    /// Records one completed call from the snapshots bracketing it.
    /// `vm_exit` is the op runner's statically-known exit overhead.
    /// Returns the call's attribution.
    pub fn record(
        &mut self,
        no: SysNo,
        before: &LatSnapshot,
        after: &LatSnapshot,
        vm_exit: Ns,
    ) -> Attribution {
        let delta = after.comps.since(&before.comps);
        let attrib = Attribution::from_delta(&delta, vm_exit);
        let entry = &mut self.sysno[no.index()];
        entry.0 += 1;
        entry.1.add(&attrib);
        let cat = no
            .categories()
            .first()
            .copied()
            .unwrap_or(Category::ProcessSched);
        let centry = &mut self.category[cat.index()];
        centry.0 += 1;
        centry.1.add(&attrib);
        after.for_each_lock_wait_since(before, |label, ns| {
            *self.lock_wait_by_label.entry(label).or_default() += ns;
        });
        if self.keep_raw {
            self.raw.push(RawCall { no, attrib });
        }
        attrib
    }

    /// Merges another table into this one (cross-engine aggregation).
    pub fn merge(&mut self, other: &AttributionTable) {
        for (entry, (calls, attrib)) in self.sysno.iter_mut().zip(&other.sysno) {
            entry.0 += calls;
            entry.1.add(attrib);
        }
        for (entry, (calls, attrib)) in self.category.iter_mut().zip(&other.category) {
            entry.0 += calls;
            entry.1.add(attrib);
        }
        for (label, ns) in &other.lock_wait_by_label {
            *self.lock_wait_by_label.entry(label).or_default() += ns;
        }
        if self.keep_raw {
            self.raw.extend(other.raw.iter().copied());
        }
    }

    /// Total calls recorded.
    pub fn calls(&self) -> u64 {
        self.sysno.iter().map(|(n, _)| n).sum()
    }

    /// Grand-total attribution across all calls.
    pub fn grand_total(&self) -> Attribution {
        let mut out = Attribution::default();
        for (_, attrib) in &self.sysno {
            out.add(attrib);
        }
        out
    }

    /// Renders a per-category attribution table (percent of total per
    /// component, dropping all-zero components) — the paste-ready form
    /// for experiment reports.
    pub fn render_by_category(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let grand = self.grand_total();
        let live: Vec<usize> = (0..Attribution::COMPONENTS.len())
            .filter(|&i| grand.values()[i] > 0)
            .collect();
        let _ = write!(out, "{:<28} {:>8} {:>12}", "category", "calls", "total_ns");
        for &i in &live {
            let _ = write!(out, " {:>12}", Attribution::COMPONENTS[i]);
        }
        out.push('\n');
        for (cat, &(calls, attrib)) in self.by_category() {
            let _ = write!(out, "{:<28} {:>8} {:>12}", cat.name(), calls, attrib.total);
            let vals = attrib.values();
            for &i in &live {
                let pct = if attrib.total == 0 {
                    0.0
                } else {
                    100.0 * vals[i] as f64 / attrib.total as f64
                };
                let _ = write!(out, " {:>11.1}%", pct);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(on_cpu: Ns, lock: Ns, zone: Ns) -> LatSnapshot {
        let mut comps = LatBreakdown::default();
        comps.add(LatComp::OnCpu, on_cpu);
        comps.add(LatComp::LockWait, lock);
        LatSnapshot {
            comps,
            lock_waits: if zone > 0 {
                vec![("zone", zone)]
            } else {
                vec![]
            },
        }
    }

    #[test]
    fn attribution_carves_vm_exit_out_of_on_cpu() {
        let before = snap(100, 0, 0);
        let after = snap(600, 40, 40);
        let delta = after.comps.since(&before.comps);
        let a = Attribution::from_delta(&delta, 200);
        assert_eq!(a.total, 540);
        assert_eq!(a.on_cpu, 300);
        assert_eq!(a.vm_exit, 200);
        assert_eq!(a.lock_wait, 40);
        assert!(a.is_exact());
    }

    #[test]
    fn table_records_and_aggregates() {
        let mut t = AttributionTable {
            keep_raw: true,
            ..Default::default()
        };
        let a1 = t.record(SysNo::Getpid, &snap(0, 0, 0), &snap(500, 0, 0), 100);
        assert!(a1.is_exact());
        t.record(SysNo::Getpid, &snap(500, 0, 0), &snap(900, 50, 50), 0);
        let (calls, agg) = t.sysno[SysNo::Getpid.index()];
        assert_eq!(calls, 2);
        assert_eq!(agg.total, 950);
        assert_eq!(agg.vm_exit, 100);
        assert_eq!(agg.lock_wait, 50);
        assert!(agg.is_exact());
        assert_eq!(t.lock_wait_by_label["zone"], 50);
        assert_eq!(t.raw.len(), 2);
        assert_eq!(t.calls(), 2);
        assert_eq!(t.grand_total().total, 950);
    }

    #[test]
    fn merge_combines_tables() {
        let mut a = AttributionTable::default();
        a.record(SysNo::Getpid, &snap(0, 0, 0), &snap(100, 0, 0), 0);
        let mut b = AttributionTable::default();
        b.record(SysNo::Getpid, &snap(0, 0, 0), &snap(200, 30, 30), 0);
        a.merge(&b);
        let (calls, agg) = a.sysno[SysNo::Getpid.index()];
        assert_eq!(calls, 2);
        assert_eq!(agg.total, 330);
        assert_eq!(a.lock_wait_by_label["zone"], 30);
    }

    #[test]
    fn render_contains_category_rows() {
        let mut t = AttributionTable::default();
        t.record(SysNo::Getpid, &snap(0, 0, 0), &snap(100, 20, 20), 10);
        let r = t.render_by_category();
        assert!(r.contains("category"), "{r}");
        assert!(r.contains("on_cpu"), "{r}");
        assert!(r.contains("lock_wait"), "{r}");
    }
}
