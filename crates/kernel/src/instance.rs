//! Kernel instances: one per independent kernel in the environment.
//!
//! A bare-metal deployment is a single instance managing every core and
//! all memory; a k-VM deployment is k instances each managing a slice.
//! The instance's **surface area** — its core and page counts — scales
//! everything the paper ties to variability: lock sharing degree, daemon
//! work, shootdown fan-out, RCU grace periods and cache sizes.

use ksa_desim::{CoreId, DevId, Engine, LockId, LockKind, Ns, RcuId};

use crate::coverage::CoverageSet;
use crate::params::CostModel;
use crate::spec::SpecMask;
use crate::state::SubsysState;

/// Number of futex hash buckets per instance (Linux scales this with CPU
/// count; we keep it fixed so bucket collisions across cores are
/// realistic for same-address futexes).
pub const FUTEX_BUCKETS: usize = 16;

/// Hardware-virtualization overhead profile. All costs are per event;
/// bare metal uses [`VirtProfile::native`] (all zero, multipliers = 1).
#[derive(Debug, Clone, Copy)]
pub struct VirtProfile {
    /// True for a hardware VM.
    pub enabled: bool,
    /// VM exit: virtio doorbell kick on I/O submit.
    pub exit_io_kick: Ns,
    /// VM exit: completion interrupt injection.
    pub exit_io_irq: Ns,
    /// VM exit: APIC access (IPI send, timer programming).
    pub exit_apic: Ns,
    /// VM exit: MSR access.
    pub exit_msr: Ns,
    /// VM exit: halt / wakeup path.
    pub exit_halt: Ns,
    /// Multiplier (milli-units, 1000 = 1.0×) on all kernel CPU work:
    /// nested-paging TLB pressure, guest/host cache sharing.
    pub cpu_mult_milli: u64,
    /// Multiplier (milli-units) on memory-touching work (EPT walks).
    pub mem_mult_milli: u64,
    /// Fixed per-syscall overhead inside a guest: nested-paging walks on
    /// kernel entry, polluted TLB/caches from world switches. Bounded,
    /// paid by every call.
    pub syscall_overhead: Ns,
}

impl VirtProfile {
    /// Bare metal: no exits, no multipliers.
    pub fn native() -> Self {
        Self {
            enabled: false,
            exit_io_kick: 0,
            exit_io_irq: 0,
            exit_apic: 0,
            exit_msr: 0,
            exit_halt: 0,
            cpu_mult_milli: 1000,
            mem_mult_milli: 1000,
            syscall_overhead: 0,
        }
    }

    /// KVM-class hardware virtualization (EPT, APICv absent — 2019-era
    /// EPYC/Haswell hosts as in the paper).
    pub fn kvm() -> Self {
        Self {
            enabled: true,
            exit_io_kick: 3_000,
            exit_io_irq: 2_500,
            exit_apic: 1_600,
            exit_msr: 1_200,
            exit_halt: 2_000,
            cpu_mult_milli: 1_150,
            mem_mult_milli: 1_300,
            syscall_overhead: 900,
        }
    }

    /// Applies the plain-CPU multiplier.
    pub fn scale_cpu(&self, ns: Ns) -> Ns {
        ns * self.cpu_mult_milli / 1000
    }

    /// Applies the memory-touch multiplier.
    pub fn scale_mem(&self, ns: Ns) -> Ns {
        ns * self.mem_mult_milli / 1000
    }
}

/// Container (namespace + cgroup) overhead profile for instances hosting
/// Docker-style tenants. VMs and native get [`TenancyProfile::none`].
#[derive(Debug, Clone, Copy)]
pub struct TenancyProfile {
    /// Number of containers sharing this kernel instance.
    pub containers: u32,
    /// Extra path components from mount-namespace indirection.
    pub ns_depth: u32,
    /// Every N cgroup charges, per-CPU stat caches flush to the shared
    /// hierarchy (cost scales with container count).
    pub cgroup_flush_every: u64,
}

impl TenancyProfile {
    /// No containers: native process or VM guest.
    pub fn none() -> Self {
        Self {
            containers: 0,
            ns_depth: 0,
            cgroup_flush_every: u64::MAX,
        }
    }

    /// `n` Docker-style containers on this kernel.
    pub fn containers(n: u32) -> Self {
        Self {
            containers: n,
            ns_depth: 2,
            cgroup_flush_every: 64,
        }
    }
}

/// All simulated locks of one instance.
#[derive(Debug, Clone)]
pub struct InstanceLocks {
    /// Per-core runqueue spinlocks.
    pub runqueue: Vec<LockId>,
    /// Global tasklist rwlock (clone/exit write; wait/kill read).
    pub tasklist: LockId,
    /// Global PID-map spinlock.
    pub pidmap: LockId,
    /// Per-process (= per slot) mmap semaphore (rwsem).
    pub mmap_sem: Vec<LockId>,
    /// Per-process page-table spinlock.
    pub page_table: Vec<LockId>,
    /// Per-process fd-table spinlock.
    pub fdtable: Vec<LockId>,
    /// Buddy-allocator zone spinlock (global).
    pub zone: LockId,
    /// LRU list spinlock (global).
    pub lru: LockId,
    /// Slab depot spinlock (global).
    pub slab_depot: LockId,
    /// Dentry hash / LRU spinlock (global).
    pub dcache: LockId,
    /// Superblock inode-list spinlock (global).
    pub inode_sb: LockId,
    /// Filesystem-wide rename mutex.
    pub rename: LockId,
    /// Journal commit mutex (jbd2-style).
    pub journal: LockId,
    /// Futex hash-bucket spinlocks.
    pub futex: Vec<LockId>,
    /// SysV IPC ids rwlock.
    pub ipc_ids: LockId,
    /// Per-slot IPC object mutex (pipe/message-queue locks).
    pub ipc_obj: Vec<LockId>,
    /// Credential-update spinlock (global).
    pub cred: LockId,
    /// Audit-log spinlock (global).
    pub audit: LockId,
    /// cgroup stat-flush spinlock (global).
    pub cgroup: LockId,
    /// Socket/port hash-bucket spinlocks; one per core, so the socket
    /// table's sharing degree scales with the instance surface.
    pub sock_buckets: Vec<LockId>,
    /// NIC queue (descriptor-ring) spinlocks; at most 8 queues, so wide
    /// shared kernels funnel many cores through few rings.
    pub nic_queue: Vec<LockId>,
    /// NET_RX softirq serialization (NAPI poll vs. syscall-path
    /// enqueue), instance-global.
    pub softirq: LockId,
}

/// Static configuration for building an instance.
#[derive(Debug, Clone)]
pub struct InstanceConfig {
    /// Cores this kernel manages.
    pub cores: Vec<CoreId>,
    /// Memory surface in MiB.
    pub mem_mib: u64,
    /// Virtualization profile.
    pub virt: VirtProfile,
    /// Container profile.
    pub tenancy: TenancyProfile,
    /// Base cost model.
    pub cost: CostModel,
    /// The backing block device. Instances on one machine share the
    /// host's disk: a virtio front-end does not conjure new spindles.
    pub disk: DevId,
    /// Specialization mask. [`SpecMask::full`] is the unspecialized
    /// kernel; a narrower mask skips the daemons and instance locks of
    /// unreached subsystems at construction time.
    pub spec: SpecMask,
}

/// Specialization-gated lock allocator: groups owned only by unreached
/// categories alias one lazily-created stub lock, so every `LockId`
/// stays valid (a missed cross-subsystem edge degrades to harmless
/// extra sharing instead of an index panic) while the engine never
/// learns about the gated groups. Under [`SpecMask::full`] every call
/// forwards straight to `Engine::add_lock`, keeping the allocation
/// sequence bit-identical to an unspecialized build.
struct SpecAlloc {
    spec: SpecMask,
    stub: Option<LockId>,
    allocated: u32,
}

impl SpecAlloc {
    fn lock<W>(
        &mut self,
        engine: &mut Engine<W>,
        group: &'static str,
        kind: LockKind,
        label: &'static str,
    ) -> LockId {
        if self.spec.wants_group(group) {
            self.allocated += 1;
            return engine.add_lock(kind, label);
        }
        if let Some(stub) = self.stub {
            return stub;
        }
        self.allocated += 1;
        let stub = engine.add_lock(LockKind::Spin, "spec.stub");
        self.stub = Some(stub);
        stub
    }
}

/// One simulated kernel.
#[derive(Debug)]
pub struct KernelInstance {
    /// Index within the world.
    pub idx: usize,
    /// Cores managed by this kernel.
    pub cores: Vec<CoreId>,
    /// Memory surface in pages (4 KiB).
    pub mem_pages: u64,
    /// Virtualization profile.
    pub virt: VirtProfile,
    /// Container profile.
    pub tenancy: TenancyProfile,
    /// Base cost model.
    pub cost: CostModel,
    /// Lock handles.
    pub locks: InstanceLocks,
    /// RCU domain spanning this instance's cores.
    pub rcu: RcuId,
    /// The instance's block device.
    pub disk: DevId,
    /// Logical subsystem state.
    pub state: SubsysState,
    /// Cumulative coverage observed on this instance.
    pub coverage: CoverageSet,
    /// Total syscalls dispatched (diagnostics).
    pub syscalls: u64,
    /// Specialization mask this instance was built from.
    pub spec: SpecMask,
    /// Engine locks actually allocated at construction (footprint
    /// metric: specialization must strictly shrink this).
    pub locks_allocated: u32,
    /// Daemons actually spawned (set by `spawn_daemons`).
    pub daemons_spawned: u32,
}

impl KernelInstance {
    /// Builds an instance, allocating its locks/RCU/disk on `engine`.
    pub fn build<W>(engine: &mut Engine<W>, idx: usize, cfg: InstanceConfig) -> Self {
        let n = cfg.cores.len();
        let mem_pages = cfg.mem_mib * 256; // 4 KiB pages
        let mut ga = SpecAlloc {
            spec: cfg.spec,
            stub: None,
            allocated: 0,
        };
        let locks = InstanceLocks {
            runqueue: (0..n)
                .map(|_| ga.lock(engine, "runqueue", LockKind::Spin, "runqueue"))
                .collect(),
            tasklist: ga.lock(engine, "tasklist", LockKind::RwLock, "tasklist"),
            pidmap: ga.lock(engine, "pidmap", LockKind::Spin, "pidmap"),
            mmap_sem: (0..n)
                .map(|_| ga.lock(engine, "mmap_sem", LockKind::RwLock, "mmap_sem"))
                .collect(),
            page_table: (0..n)
                .map(|_| ga.lock(engine, "page_table", LockKind::Spin, "page_table"))
                .collect(),
            fdtable: (0..n)
                .map(|_| ga.lock(engine, "fdtable", LockKind::Spin, "fdtable"))
                .collect(),
            zone: ga.lock(engine, "zone", LockKind::Spin, "zone"),
            lru: ga.lock(engine, "lru", LockKind::Spin, "lru"),
            slab_depot: ga.lock(engine, "slab_depot", LockKind::Spin, "slab_depot"),
            dcache: ga.lock(engine, "dcache", LockKind::Spin, "dcache"),
            inode_sb: ga.lock(engine, "inode_sb", LockKind::Spin, "inode_sb"),
            rename: ga.lock(engine, "rename", LockKind::Mutex, "rename"),
            journal: ga.lock(engine, "journal", LockKind::Mutex, "journal"),
            futex: (0..FUTEX_BUCKETS)
                .map(|_| ga.lock(engine, "futex", LockKind::Spin, "futex_bucket"))
                .collect(),
            ipc_ids: ga.lock(engine, "ipc_ids", LockKind::RwLock, "ipc_ids"),
            ipc_obj: (0..n)
                .map(|_| ga.lock(engine, "ipc_obj", LockKind::Mutex, "ipc_obj"))
                .collect(),
            cred: ga.lock(engine, "cred", LockKind::Spin, "cred"),
            audit: ga.lock(engine, "audit", LockKind::Spin, "audit"),
            cgroup: ga.lock(engine, "cgroup", LockKind::Spin, "cgroup"),
            sock_buckets: (0..n.max(1))
                .map(|_| ga.lock(engine, "sock_buckets", LockKind::Spin, "sock_bucket"))
                .collect(),
            nic_queue: (0..n.clamp(1, 8))
                .map(|_| ga.lock(engine, "nic_queue", LockKind::Spin, "nic_queue"))
                .collect(),
            softirq: ga.lock(engine, "softirq", LockKind::Spin, "softirq"),
        };
        let rcu = engine.add_rcu_domain(n as u32);
        KernelInstance {
            idx,
            mem_pages,
            virt: cfg.virt,
            tenancy: cfg.tenancy,
            cost: cfg.cost,
            locks,
            rcu,
            disk: cfg.disk,
            state: SubsysState::init(n, mem_pages),
            coverage: CoverageSet::new(),
            syscalls: 0,
            spec: cfg.spec,
            locks_allocated: ga.allocated,
            daemons_spawned: 0,
            cores: cfg.cores,
        }
    }

    /// Number of cores (the core dimension of the surface area).
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Records an already-interned block in the instance's cumulative
    /// coverage — the sink daemons feed with `cov_block!`-cached ids
    /// (they have no per-execution [`CoverageSet`] of their own).
    pub fn cover(&mut self, id: crate::coverage::BlockId) {
        self.coverage.insert(id);
    }

    /// The slot index of a global core id, if this instance owns it.
    pub fn slot_of(&self, core: CoreId) -> Option<usize> {
        self.cores.iter().position(|&c| c == core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_desim::EngineParams;

    #[test]
    fn build_allocates_per_slot_locks() {
        let mut eng: Engine<()> = Engine::new((), EngineParams::default(), 1);
        let disk = eng.add_device(ksa_desim::DeviceModel::nvme_ssd());
        let cores: Vec<CoreId> = (0..4).map(|_| eng.add_core(Default::default())).collect();
        let inst = KernelInstance::build(
            &mut eng,
            0,
            InstanceConfig {
                cores: cores.clone(),
                mem_mib: 512,
                virt: VirtProfile::native(),
                tenancy: TenancyProfile::none(),
                cost: CostModel::default(),
                disk,
                spec: SpecMask::full(),
            },
        );
        assert_eq!(inst.n_cores(), 4);
        assert_eq!(inst.locks.runqueue.len(), 4);
        assert_eq!(inst.locks.mmap_sem.len(), 4);
        assert_eq!(inst.locks.sock_buckets.len(), 4);
        assert_eq!(inst.locks.nic_queue.len(), 4);
        assert_eq!(inst.mem_pages, 512 * 256);
        assert_eq!(inst.state.slots.len(), 4);
        assert_eq!(inst.slot_of(cores[2]), Some(2));
        let other = CoreId(99);
        assert_eq!(inst.slot_of(other), None);
    }

    #[test]
    fn specialized_build_gates_locks_but_keeps_ids_valid() {
        use crate::syscalls::SysNo;
        let build = |spec: SpecMask| {
            let mut eng: Engine<()> = Engine::new((), EngineParams::default(), 1);
            let disk = eng.add_device(ksa_desim::DeviceModel::nvme_ssd());
            let cores: Vec<CoreId> = (0..4).map(|_| eng.add_core(Default::default())).collect();
            KernelInstance::build(
                &mut eng,
                0,
                InstanceConfig {
                    cores,
                    mem_mib: 512,
                    virt: VirtProfile::native(),
                    tenancy: TenancyProfile::none(),
                    cost: CostModel::default(),
                    disk,
                    spec,
                },
            )
        };
        let full = build(SpecMask::full());
        // A network-only kernel: sched/mm/fs/ipc/perm locks collapse
        // onto the stub, networking and infrastructure stay real.
        let net = build(
            SpecMask::empty()
                .allow(SysNo::Socket)
                .allow(SysNo::Sendto)
                .allow(SysNo::Recvfrom),
        );
        assert!(net.locks_allocated < full.locks_allocated);
        // Gated groups alias one lock; real groups stay distinct.
        assert_eq!(net.locks.runqueue[0], net.locks.tasklist);
        assert_eq!(net.locks.journal, net.locks.futex[0]);
        assert_ne!(net.locks.sock_buckets[0], net.locks.softirq);
        assert_ne!(net.locks.zone, net.locks.runqueue[0]);
        // The full mask allocates every group for real.
        assert_ne!(full.locks.runqueue[0], full.locks.tasklist);
    }

    #[test]
    fn virt_profiles_scale() {
        let native = VirtProfile::native();
        let kvm = VirtProfile::kvm();
        assert_eq!(native.scale_cpu(1000), 1000);
        assert_eq!(native.scale_mem(1000), 1000);
        assert!(kvm.scale_cpu(1000) > 1000);
        assert!(kvm.scale_mem(1000) > kvm.scale_cpu(1000));
        assert!(!native.enabled && kvm.enabled);
    }

    #[test]
    fn tenancy_profiles() {
        let none = TenancyProfile::none();
        assert_eq!(none.containers, 0);
        let d = TenancyProfile::containers(64);
        assert_eq!(d.containers, 64);
        assert!(d.ns_depth > 0);
        assert!(d.cgroup_flush_every < u64::MAX);
    }
}
