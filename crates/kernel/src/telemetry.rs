//! Kernel-level telemetry: per-category syscall counters that mirror
//! [`AttributionTable`](crate::latency::AttributionTable) exactly, plus
//! subsystem gauges sampled on coalesced sim-time ticks.
//!
//! The counters use the same primary-category rule as the attribution
//! table (`no.categories().first()`, defaulting to process/sched), so a
//! run's `syscall_ns{category=…}` totals must equal the table's
//! per-category sums to the nanosecond — `ablation_obs` gates on it.
//! Gauges (run-queue depth, NIC ring and softirq backlog, socket buffer
//! bytes, free/dirty/LRU pages, journal backlog, dentry count, spec-gated
//! footprint) are read from [`SubsysState`](crate::state::SubsysState) on
//! the registry's coalesced ticks; like everything in `ksa-telemetry`
//! they are purely observational and leave simulated results
//! bit-identical.

use ksa_desim::Ns;
use ksa_telemetry::{MetricId, Registry, TelemetryConfig};

use crate::category::Category;
use crate::instance::KernelInstance;
use crate::latency::{Attribution, AttributionTable};
use crate::syscalls::SysNo;

/// Folds an attribution table into flamegraph frames: one
/// `category;component` stack per non-zero cell of the per-category
/// 13-component latency taxonomy, weighted in nanoseconds. Feed the
/// result to [`ksa_telemetry::export::collapsed`] or
/// [`ksa_telemetry::export::speedscope_json`].
pub fn attribution_frames(table: &AttributionTable) -> Vec<ksa_telemetry::export::Frame> {
    let mut frames = Vec::new();
    for (cat, &(_calls, agg)) in table.by_category() {
        for (comp, ns) in Attribution::COMPONENTS.iter().zip(agg.values()) {
            if ns > 0 {
                frames.push((vec![cat.name().to_string(), comp.to_string()], ns));
            }
        }
    }
    frames
}

const N_CAT: usize = Category::ALL.len();

/// Cached ids for one syscall category's counters.
#[derive(Debug, Clone, Copy)]
struct CatIds {
    calls: MetricId,
    total_ns: MetricId,
    latency: MetricId,
}

impl CatIds {
    const NONE: CatIds = CatIds {
        calls: MetricId::NONE,
        total_ns: MetricId::NONE,
        latency: MetricId::NONE,
    };
}

/// Cached ids for one instance's subsystem gauges.
#[derive(Debug, Clone, Copy)]
struct InstIds {
    run_queue: MetricId,
    nic_ring: MetricId,
    nic_dropped: MetricId,
    sock_buffer_bytes: MetricId,
    free_pages: MetricId,
    dirty_pages: MetricId,
    lru_pages: MetricId,
    journal_dirty: MetricId,
    dentries: MetricId,
    syscalls: MetricId,
    locks_allocated: MetricId,
    daemons_spawned: MetricId,
}

/// Cached ids for one tenant's request-level series (tailbench).
#[derive(Debug, Clone, Copy)]
struct TenantIds {
    requests: MetricId,
    sojourn_ns: MetricId,
    queue_ns: MetricId,
    sojourn_hist: MetricId,
}

/// The kernel world's metrics facade: a [`Registry`] plus cached metric
/// ids so the syscall hot path never does a name lookup.
#[derive(Debug, Clone, Default)]
pub struct KernelTelemetry {
    reg: Registry,
    cats: [CatIds; N_CAT],
    insts: Vec<InstIds>,
    tenants: Vec<TenantIds>,
}

impl Default for CatIds {
    fn default() -> Self {
        CatIds::NONE
    }
}

impl KernelTelemetry {
    /// Creates the facade; with `cfg` disabled every call is a
    /// single-branch no-op.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let mut reg = Registry::new(cfg);
        let mut cats = [CatIds::NONE; N_CAT];
        if cfg.enabled {
            for cat in Category::ALL {
                let label = [("category", cat.name().to_string())];
                cats[cat.index()] = CatIds {
                    calls: reg.counter("syscall_calls", &label),
                    total_ns: reg.counter("syscall_ns", &label),
                    latency: reg.histogram("syscall_latency_ns", &label),
                };
            }
        }
        KernelTelemetry {
            reg,
            cats,
            insts: Vec::new(),
            tenants: Vec::new(),
        }
    }

    /// A disabled (inert) facade.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether updates are recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.reg.enabled()
    }

    /// The underlying registry (for export).
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Mutable registry access (harness-side enrichment, e.g. folding
    /// engine lock-wait stats in after the run).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.reg
    }

    /// Refreshes every gauge, flushes a final ring sample at `now`, and
    /// takes the registry, leaving the facade disabled.
    pub fn finish(&mut self, now: Ns, instances: &[KernelInstance]) -> Registry {
        if self.reg.enabled() {
            self.sample(now, instances);
        }
        self.insts.clear();
        self.tenants.clear();
        self.cats = [CatIds::NONE; N_CAT];
        std::mem::take(&mut self.reg)
    }

    /// The primary category of a syscall — the exact rule
    /// [`AttributionTable::record`](crate::latency::AttributionTable::record)
    /// uses, so telemetry sums match the table.
    pub fn primary_category(no: SysNo) -> Category {
        no.categories()
            .first()
            .copied()
            .unwrap_or(Category::ProcessSched)
    }

    /// Records one completed syscall's attribution under its primary
    /// category.
    #[inline]
    pub fn observe_call(&mut self, no: SysNo, attrib: &Attribution) {
        if !self.reg.enabled() {
            return;
        }
        let ids = self.cats[Self::primary_category(no).index()];
        self.reg.add(ids.calls, 1);
        self.reg.add(ids.total_ns, attrib.total);
        self.reg.observe(ids.latency, attrib.total);
    }

    /// Records one completed request for `tenant` (tailbench server
    /// loops). Tenant ids index a lazily-grown label set.
    pub fn observe_request(&mut self, tenant: usize, sojourn: Ns, queue_ns: Ns) {
        if !self.reg.enabled() {
            return;
        }
        while self.tenants.len() <= tenant {
            let label = [("tenant", self.tenants.len().to_string())];
            let ids = TenantIds {
                requests: self.reg.counter("tenant_requests", &label),
                sojourn_ns: self.reg.counter("tenant_sojourn_ns", &label),
                queue_ns: self.reg.counter("tenant_queue_ns", &label),
                sojourn_hist: self.reg.histogram("tenant_sojourn_hist_ns", &label),
            };
            self.tenants.push(ids);
        }
        let ids = self.tenants[tenant];
        self.reg.add(ids.requests, 1);
        self.reg.add(ids.sojourn_ns, sojourn);
        self.reg.add(ids.queue_ns, queue_ns);
        self.reg.observe(ids.sojourn_hist, sojourn);
    }

    /// Whether the coalesced sample tick is due at `now`.
    #[inline]
    pub fn due(&self, now: Ns) -> bool {
        self.reg.due(now)
    }

    /// Reads every instance's subsystem gauges and takes a ring sample.
    /// Call when [`due`](Self::due) says so — gauge reads between ticks
    /// would be wasted work (their values are only persisted at ticks).
    pub fn sample(&mut self, now: Ns, instances: &[KernelInstance]) {
        if !self.reg.enabled() {
            return;
        }
        while self.insts.len() < instances.len() {
            let label = [("instance", self.insts.len().to_string())];
            let reg = &mut self.reg;
            let ids = InstIds {
                run_queue: reg.gauge("kernel_run_queue_depth", &label),
                nic_ring: reg.gauge("kernel_nic_ring_occupancy", &label),
                nic_dropped: reg.gauge("kernel_nic_dropped", &label),
                sock_buffer_bytes: reg.gauge("kernel_sock_buffer_bytes", &label),
                free_pages: reg.gauge("kernel_free_pages", &label),
                dirty_pages: reg.gauge("kernel_dirty_pages", &label),
                lru_pages: reg.gauge("kernel_lru_pages", &label),
                journal_dirty: reg.gauge("kernel_journal_dirty_blocks", &label),
                dentries: reg.gauge("kernel_dentries", &label),
                syscalls: reg.gauge("kernel_syscalls_dispatched", &label),
                locks_allocated: reg.gauge("kernel_locks_allocated", &label),
                daemons_spawned: reg.gauge("kernel_daemons_spawned", &label),
            };
            self.insts.push(ids);
        }
        for (inst, ids) in instances.iter().zip(self.insts.iter()) {
            let s = &inst.state;
            let rq: u64 = s.sched.rq_len.iter().map(|&n| n as u64).sum();
            self.reg.set(ids.run_queue, rq);
            self.reg.set(ids.nic_ring, s.net.nic.pending_total());
            self.reg.set(ids.nic_dropped, s.net.nic.dropped);
            self.reg.set(ids.sock_buffer_bytes, s.net.buffered_bytes());
            self.reg.set(ids.free_pages, s.mm.free_pages);
            self.reg.set(ids.dirty_pages, s.mm.dirty_pages);
            self.reg.set(ids.lru_pages, s.mm.lru_pages);
            self.reg.set(ids.journal_dirty, s.fs.journal_dirty);
            self.reg.set(ids.dentries, s.fs.dentries);
            self.reg.set(ids.syscalls, inst.syscalls);
            self.reg
                .set(ids.locks_allocated, inst.locks_allocated as u64);
            self.reg
                .set(ids.daemons_spawned, inst.daemons_spawned as u64);
        }
        self.reg.sample_tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_facade_is_inert() {
        let mut t = KernelTelemetry::disabled();
        assert!(!t.enabled());
        t.observe_call(SysNo::Getpid, &Attribution::default());
        t.observe_request(3, 100, 10);
        t.sample(1_000, &[]);
        assert_eq!(t.registry().metrics().len(), 0);
        assert_eq!(t.registry().digest(), Registry::disabled().digest());
    }

    #[test]
    fn category_counters_mirror_the_attribution_rule() {
        let mut t = KernelTelemetry::new(TelemetryConfig::enabled());
        let a = Attribution {
            total: 700,
            on_cpu: 700,
            ..Default::default()
        };
        t.observe_call(SysNo::Getpid, &a);
        t.observe_call(SysNo::Getpid, &a);
        let cat = KernelTelemetry::primary_category(SysNo::Getpid).name();
        let label = [("category", cat)];
        assert_eq!(t.registry().value_of("syscall_calls", &label), Some(2));
        assert_eq!(t.registry().value_of("syscall_ns", &label), Some(1_400));
        assert_eq!(t.registry().total("syscall_ns"), 1_400);
    }

    #[test]
    fn tenant_series_grow_on_demand() {
        let mut t = KernelTelemetry::new(TelemetryConfig::enabled());
        t.observe_request(2, 900, 100);
        t.observe_request(0, 400, 0);
        let l2 = [("tenant", "2")];
        assert_eq!(t.registry().value_of("tenant_requests", &l2), Some(1));
        assert_eq!(t.registry().value_of("tenant_sojourn_ns", &l2), Some(900));
        assert_eq!(t.registry().total("tenant_requests"), 2);
    }

    #[test]
    fn finish_flushes_and_resets() {
        let mut t = KernelTelemetry::new(TelemetryConfig::enabled());
        t.observe_call(SysNo::Getpid, &Attribution::default());
        let reg = t.finish(5_000, &[]);
        assert!(reg.samples_taken >= 1);
        assert!(!t.enabled(), "facade is inert after finish");
    }
}
