//! Surface-area ↔ variability analysis.

use ksa_kernel::Category;
use ksa_stats::spearman;

use crate::experiments::Fig2Result;

/// How one category's tail responds to surface area across a VM sweep.
#[derive(Debug, Clone)]
pub struct CategoryTrend {
    /// The category.
    pub category: Category,
    /// Spearman correlation between VM count (smaller surface, left to
    /// right) and the median of per-site p99s. Strongly negative =
    /// shrinking the surface reliably shrinks the tail.
    pub median_corr: Option<f64>,
    /// Spearman correlation between VM count and the violin maxima
    /// (extreme outliers).
    pub max_corr: Option<f64>,
    /// Ratio of the 1-VM violin max to the largest-VM-count violin max:
    /// the extreme-outlier reduction factor.
    pub outlier_reduction: f64,
}

/// Computes per-category trends from a Figure 2 result.
pub fn surface_trends(fig2: &Fig2Result) -> Vec<CategoryTrend> {
    let xs: Vec<f64> = fig2.vm_counts.iter().map(|&c| c as f64).collect();
    fig2.categories
        .iter()
        .map(|cat| {
            let meds: Vec<f64> = cat.violins.iter().map(|v| v.median as f64).collect();
            let maxes: Vec<f64> = cat.violins.iter().map(|v| v.max as f64).collect();
            let n = meds.len().min(xs.len());
            let outlier_reduction = if n >= 2 && maxes[n - 1] > 0.0 {
                maxes[0] / maxes[n - 1]
            } else {
                1.0
            };
            CategoryTrend {
                category: cat.category,
                median_corr: spearman(&xs[..n], &meds[..n]),
                max_corr: spearman(&xs[..n], &maxes[..n]),
                outlier_reduction,
            }
        })
        .collect()
}

/// Renders trends as an aligned text table.
pub fn render_trends(trends: &[CategoryTrend]) -> String {
    let mut out = String::from(
        "category                       corr(VMs, med-p99)  corr(VMs, max)  outlier-reduction\n",
    );
    for t in trends {
        out.push_str(&format!(
            "({}) {:<28} {:>15} {:>15} {:>14.2}x\n",
            t.category.letter(),
            t.category.name(),
            fmt_corr(t.median_corr),
            fmt_corr(t.max_corr),
            t.outlier_reduction
        ));
    }
    out
}

fn fmt_corr(c: Option<f64>) -> String {
    match c {
        Some(v) => format!("{v:+.2}"),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Fig2Category;
    use ksa_stats::ViolinSummary;

    fn violin(label: &str, values: &[u64]) -> ViolinSummary {
        ViolinSummary::from_values(label, values, 8).unwrap()
    }

    #[test]
    fn decreasing_tails_give_negative_correlation() {
        let fig2 = Fig2Result {
            vm_counts: vec![1, 2, 4, 8],
            categories: vec![Fig2Category {
                category: Category::Memory,
                violins: vec![
                    violin("1", &[1_000_000, 9_000_000, 80_000_000]),
                    violin("2", &[900_000, 5_000_000, 30_000_000]),
                    violin("4", &[800_000, 2_000_000, 9_000_000]),
                    violin("8", &[200_000, 600_000, 1_000_000]),
                ],
            }],
        };
        let trends = surface_trends(&fig2);
        assert_eq!(trends.len(), 1);
        let t = &trends[0];
        assert!(t.median_corr.unwrap() < -0.9);
        assert!(t.max_corr.unwrap() < -0.9);
        assert!(t.outlier_reduction > 10.0);
        let rendered = render_trends(&trends);
        assert!(rendered.contains("memory management"));
    }

    #[test]
    fn flat_category_gives_weak_correlation() {
        let fig2 = Fig2Result {
            vm_counts: vec![1, 2, 4],
            categories: vec![Fig2Category {
                category: Category::FileIo,
                violins: vec![
                    violin("1", &[100, 200, 300]),
                    violin("2", &[110, 190, 310]),
                    violin("4", &[105, 205, 295]),
                ],
            }],
        };
        let t = &surface_trends(&fig2)[0];
        assert!(t.outlier_reduction < 1.2);
    }
}
