//! # ksa-core — kernel surface areas for isolation and scalability
//!
//! Public facade of the reproduction of *"Reducing Kernel Surface Areas
//! for Isolation and Scalability"* (ICPP 2019). The paper's thesis:
//!
//! > System-software isolation — shrinking the **kernel surface area**
//! > each OS instance manages by drawing VM boundaries — removes latent,
//! > potentially unbounded cross-tenant interference inside shared
//! > kernels, at the price of bounded virtualization overhead. For
//! > noise-sensitive workloads the trade is usually worth it.
//!
//! This crate re-exports the whole system and adds:
//!
//! * [`KernelSurfaceArea`] — the paper's central parameter,
//! * [`experiments`] — one builder per table/figure in the paper's
//!   evaluation (Table 1–3, Figure 2–4), each returning structured data
//!   the `ksa-bench` binaries render,
//! * [`analysis`] — surface-area↔variability correlation utilities.
//!
//! ## Quickstart
//!
//! ```
//! use ksa_core::experiments::{self, Scale};
//!
//! // Generate a small coverage-guided corpus and measure it natively
//! // versus in 4 single-core VMs.
//! let corpus = experiments::default_corpus(Scale::Tiny);
//! let t2 = experiments::table2(&corpus.corpus, Scale::Tiny, 42);
//! println!("{}", t2.p99.render());
//! ```

pub mod analysis;
pub mod experiments;
pub mod surface;

pub use surface::KernelSurfaceArea;

// The full system, re-exported.
pub use ksa_cluster as cluster;
pub use ksa_desim as desim;
pub use ksa_envsim as envsim;
pub use ksa_kernel as kernel;
pub use ksa_stats as stats;
pub use ksa_syzgen as syzgen;
pub use ksa_tailbench as tailbench;
pub use ksa_varbench as varbench;
