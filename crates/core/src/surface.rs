//! The kernel surface area: the paper's central parameter.

use ksa_envsim::EnvSpec;

/// The kernel surface area of one OS instance: for each hardware
/// resource, how much of it this kernel manages. The paper's
/// simplification — cores and memory — is what the simulator varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSurfaceArea {
    /// Hardware threads managed by the instance.
    pub cores: usize,
    /// Memory managed by the instance, in MiB.
    pub mem_mib: u64,
}

impl KernelSurfaceArea {
    /// Surface of each instance in an environment.
    pub fn of(spec: &EnvSpec) -> Self {
        let (cores, mem_mib) = spec.surface();
        Self { cores, mem_mib }
    }

    /// A scalar used for ordering/correlation: the geometric mean of the
    /// normalized core and memory dimensions (pages per 4 MiB keep both
    /// dimensions comparable).
    pub fn scalar(&self) -> f64 {
        let mem_units = (self.mem_mib / 4).max(1) as f64;
        (self.cores as f64 * mem_units).sqrt()
    }

    /// Reduction factor relative to `full` (1.0 = same surface; 1/64 for
    /// a 1-core VM on a 64-core machine).
    pub fn reduction_vs(&self, full: &KernelSurfaceArea) -> f64 {
        self.scalar() / full.scalar()
    }
}

impl std::fmt::Display for KernelSurfaceArea {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} cores / {} MiB", self.cores, self.mem_mib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_envsim::{EnvKind, Machine};

    #[test]
    fn surface_shrinks_with_vm_count() {
        let machine = Machine::epyc_64();
        let native = KernelSurfaceArea::of(&EnvSpec::new(machine, EnvKind::Native));
        let vm8 = KernelSurfaceArea::of(&EnvSpec::new(machine, EnvKind::Vm(8)));
        let vm64 = KernelSurfaceArea::of(&EnvSpec::new(machine, EnvKind::Vm(64)));
        assert!(native.scalar() > vm8.scalar());
        assert!(vm8.scalar() > vm64.scalar());
        assert!((vm8.reduction_vs(&native) - 1.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn containers_keep_full_surface() {
        let machine = Machine::epyc_64();
        let native = KernelSurfaceArea::of(&EnvSpec::new(machine, EnvKind::Native));
        let docker = KernelSurfaceArea::of(&EnvSpec::new(machine, EnvKind::Container(64)));
        assert_eq!(native, docker);
    }

    #[test]
    fn display_is_readable() {
        let s = KernelSurfaceArea {
            cores: 4,
            mem_mib: 2048,
        };
        assert_eq!(s.to_string(), "4 cores / 2048 MiB");
    }
}
