//! One builder per table/figure in the paper's evaluation.
//!
//! Each function returns structured data; the `ksa-bench` binaries render
//! it as text/CSV. All builders accept a [`Scale`] so integration tests
//! can run the same code paths in seconds while the full runs regenerate
//! the paper-scale artifacts.

use ksa_cluster::{run_cluster, ClusterConfig};
use ksa_envsim::{container_sweep, vm_sweep, EnvKind, EnvSpec, Machine, SweepRow};
use ksa_kernel::latency::AttributionTable;
use ksa_kernel::prog::Corpus;
use ksa_kernel::{attribution_frames, Category};
use ksa_stats::{BucketTable, ViolinSummary};
use ksa_syzgen::{generate, GenConfig, GeneratedCorpus};
use ksa_tailbench::apps::{cluster_suite, suite, AppProfile};
use ksa_tailbench::single_node::{run_points, SingleNodeConfig};
use ksa_telemetry::export::Frame;
use ksa_telemetry::Registry;
use ksa_varbench::{run_configs_jobs, RunConfig, RunResult};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale: CI and doctests.
    Tiny,
    /// Under a minute: local smoke runs.
    Quick,
    /// The paper-shaped runs (minutes).
    Full,
}

impl Scale {
    /// Corpus generation configuration.
    pub fn corpus_cfg(self, seed: u64) -> GenConfig {
        match self {
            Scale::Tiny => GenConfig {
                seed,
                max_programs: 30,
                stall_limit: 150,
                mutate_pct: 70,
                minimize: true,
            },
            Scale::Quick => GenConfig {
                seed,
                max_programs: 80,
                stall_limit: 400,
                mutate_pct: 70,
                minimize: true,
            },
            Scale::Full => GenConfig {
                seed,
                max_programs: 240,
                stall_limit: 1_500,
                mutate_pct: 70,
                minimize: true,
            },
        }
    }

    /// The machine for the syscall studies (Tables 2–3, Figure 2).
    pub fn machine(self) -> Machine {
        match self {
            Scale::Tiny => Machine {
                cores: 8,
                mem_mib: 4 * 1024,
            },
            Scale::Quick => Machine {
                cores: 16,
                mem_mib: 8 * 1024,
            },
            Scale::Full => Machine::epyc_64(),
        }
    }

    /// Corpus iterations for the syscall studies (the paper uses 100).
    pub fn iterations(self) -> usize {
        match self {
            Scale::Tiny => 4,
            Scale::Quick => 10,
            Scale::Full => 25,
        }
    }

    /// Requests for Figure 3 runs.
    pub fn requests(self) -> u64 {
        match self {
            Scale::Tiny => 300,
            Scale::Quick => 1_200,
            Scale::Full => 3_000,
        }
    }

    /// `(nodes, iterations, requests/iter)` for Figure 4.
    pub fn cluster(self) -> (usize, u64, u64) {
        match self {
            Scale::Tiny => (6, 4, 30),
            Scale::Quick => (12, 8, 40),
            Scale::Full => (32, 25, 40),
        }
    }
}

/// Generates the default coverage-guided corpus at a scale.
pub fn default_corpus(scale: Scale) -> GeneratedCorpus {
    generate(scale.corpus_cfg(0x5eed))
}

/// A noise corpus for the tailbench experiments: generated from a pool
/// of the kernel-coupling-heavy calls (shootdowns, tasklist writers,
/// metadata/journal traffic, cred/audit updates) — the paper's noise
/// deliberately stresses the shared kernel, not the disk.
pub fn noise_corpus(scale: Scale) -> Corpus {
    use ksa_kernel::SysNo;
    use ksa_syzgen::ProgramGenerator;
    let pool = [
        SysNo::Mmap,
        SysNo::Munmap,
        SysNo::Mprotect,
        SysNo::Madvise,
        SysNo::Mremap,
        SysNo::Brk,
        SysNo::Clone,
        SysNo::Wait4,
        SysNo::Kill,
        SysNo::SchedYield,
        SysNo::SchedSetaffinity,
        SysNo::Open,
        SysNo::Unlink,
        SysNo::Rename,
        SysNo::Mkdir,
        SysNo::Chmod,
        SysNo::Setuid,
        SysNo::Capset,
        SysNo::Setgroups,
        SysNo::FutexWait,
        SysNo::FutexWake,
        SysNo::Msgsnd,
        SysNo::Msgrcv,
        SysNo::Write,
        SysNo::Sendto,
        SysNo::Recvfrom,
    ];
    let n = match scale {
        Scale::Tiny => 12,
        Scale::Quick => 18,
        Scale::Full => 28,
    };
    let mut gen = ProgramGenerator::new(0x4015e);
    Corpus {
        programs: (0..n).map(|_| gen.random_program_in(&pool)).collect(),
    }
}

/// A networking-heavy corpus for the `Category::Network` surface-area
/// study (`ablation_net`): socket setup/teardown, loopback traffic
/// through the simulated stack, and epoll readiness scans. Send/receive
/// appear twice so data-path calls dominate control-path ones.
pub fn net_corpus(scale: Scale) -> Corpus {
    use ksa_kernel::SysNo;
    use ksa_syzgen::ProgramGenerator;
    let pool = [
        SysNo::Socket,
        SysNo::Bind,
        SysNo::Listen,
        SysNo::Accept,
        SysNo::Connect,
        SysNo::Sendto,
        SysNo::Sendto,
        SysNo::Recvfrom,
        SysNo::Recvfrom,
        SysNo::ShutdownSock,
        SysNo::EpollCreate,
        SysNo::EpollWait,
    ];
    let n = match scale {
        Scale::Tiny => 10,
        Scale::Quick => 16,
        Scale::Full => 24,
    };
    let mut gen = ProgramGenerator::new(0x6e37);
    Corpus {
        programs: (0..n).map(|_| gen.random_program_in(&pool)).collect(),
    }
}

// ---------------------------------------------------------------- Table 1

/// Table 1: the VM configuration ladder.
pub fn table1(scale: Scale) -> Vec<SweepRow> {
    vm_sweep(scale.machine())
}

// ---------------------------------------------------------------- Table 2

/// Table 2's three sub-tables: per-site median / p99 / max bucket
/// percentages for native Linux, per-core KVM VMs and per-core Docker
/// containers.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// Median breakdown.
    pub median: BucketTable,
    /// 99th-percentile breakdown.
    pub p99: BucketTable,
    /// Worst-case breakdown.
    pub max: BucketTable,
}

/// Runs Table 2: the corpus on all cores in the three headline
/// environments (trials in parallel on the auto worker count).
pub fn table2(corpus: &Corpus, scale: Scale, seed: u64) -> Table2Result {
    table2_jobs(corpus, scale, seed, 0)
}

/// [`table2`] with an explicit `--jobs` worker count (0 = auto,
/// 1 = sequential); results are identical for every count.
pub fn table2_jobs(corpus: &Corpus, scale: Scale, seed: u64, jobs: usize) -> Table2Result {
    table2_metered(corpus, scale, seed, jobs, false).0
}

/// [`table2_jobs`] with optional telemetry: when `metrics` is set every
/// trial runs with its registry enabled and the returned [`Metered`]
/// carries the merged series (labelled `env=<kind>`) plus latency-
/// taxonomy flamegraph frames. Telemetry is strictly observational —
/// the [`Table2Result`] is bit-identical either way.
pub fn table2_metered(
    corpus: &Corpus,
    scale: Scale,
    seed: u64,
    jobs: usize,
    metrics: bool,
) -> (Table2Result, Metered) {
    let machine = scale.machine();
    let kinds = [
        EnvKind::Native,
        EnvKind::Vm(machine.cores),
        EnvKind::Container(machine.cores),
    ];
    let configs: Vec<RunConfig> = kinds
        .iter()
        .map(|&kind| RunConfig {
            env: EnvSpec::new(machine, kind),
            iterations: scale.iterations(),
            sync: true,
            seed,
            max_events: 0,
            trace: false,
            metrics,
            spec: None,
        })
        .collect();
    let results = expect_trials("table2", run_configs_jobs(&configs, corpus, jobs));
    let mut median = BucketTable::new("Table 2a: median system call runtimes (cumulative %)");
    let mut p99 = BucketTable::new("Table 2b: 99th percentile system call runtimes (cumulative %)");
    let mut max = BucketTable::new("Table 2c: worst-case system call runtimes (cumulative %)");
    let mut metered = Metered::default();
    for (kind, mut res) in kinds.into_iter().zip(results) {
        let meds = res.per_site(None, |s| s.median());
        let p99s = res.per_site(None, |s| s.p99());
        let maxes = res.per_site(None, |s| s.max());
        metered.fold_trial(&[("env", &kind.label())], &res.metrics, &res.attrib);
        median.push_values(kind.label(), &meds);
        p99.push_values(kind.label(), &p99s);
        max.push_values(kind.label(), &maxes);
    }
    metered.finish();
    (Table2Result { median, p99, max }, metered)
}

/// Telemetry captured alongside an experiment when its `_metered`
/// variant runs with `metrics` on: the trials' registries merged under
/// distinguishing labels, plus flamegraph frames folded from the
/// aggregated 13-component latency taxonomy (see
/// [`ksa_kernel::attribution_frames`]). Empty/disabled when metrics
/// were off.
#[derive(Debug, Clone, Default)]
pub struct Metered {
    /// Merged telemetry across trials.
    pub registry: Registry,
    /// `category;component` stacks weighted in nanoseconds.
    pub frames: Vec<Frame>,
    attrib: AttributionTable,
}

impl Metered {
    /// Absorbs one trial's registry under `labels` and accumulates its
    /// attribution table for the frame fold.
    fn fold_trial(&mut self, labels: &[(&str, &str)], reg: &Registry, attrib: &AttributionTable) {
        self.registry.absorb(reg, labels);
        self.attrib.merge(attrib);
    }

    /// Folds the accumulated attribution into `frames`.
    fn finish(&mut self) {
        self.frames = attribution_frames(&self.attrib);
    }
}

/// Unwraps a campaign where every trial is expected to complete,
/// panicking with the experiment name and trial index otherwise.
fn expect_trials(
    what: &str,
    results: Vec<Result<RunResult, ksa_varbench::RunError>>,
) -> Vec<RunResult> {
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|e| panic!("{what} trial {i} failed: {e}")))
        .collect()
}

// ---------------------------------------------------------------- Figure 2

/// One subfigure of Figure 2: a category plus one violin per VM count.
#[derive(Debug, Clone)]
pub struct Fig2Category {
    /// The syscall category.
    pub category: Category,
    /// One violin per VM configuration, in sweep order.
    pub violins: Vec<ViolinSummary>,
}

/// Figure 2: distributions of per-site p99s by category across the VM
/// sweep.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// VM counts, left to right.
    pub vm_counts: Vec<usize>,
    /// The six subfigures.
    pub categories: Vec<Fig2Category>,
}

/// Runs Figure 2. Sites are filtered to those with native medians of at
/// least 10µs, as in the paper (shorter ones are mostly the tiny mmaps
/// feeding other calls and show no trend).
pub fn fig2(corpus: &Corpus, scale: Scale, seed: u64) -> Fig2Result {
    fig2_jobs(corpus, scale, seed, 0)
}

/// [`fig2`] with an explicit `--jobs` worker count. The native filter
/// run and the whole VM sweep go through the pool as one batch.
pub fn fig2_jobs(corpus: &Corpus, scale: Scale, seed: u64, jobs: usize) -> Fig2Result {
    fig2_metered(corpus, scale, seed, jobs, false).0
}

/// [`fig2_jobs`] with optional telemetry (labels: `env=<kind>`); see
/// [`table2_metered`] for the contract.
pub fn fig2_metered(
    corpus: &Corpus,
    scale: Scale,
    seed: u64,
    jobs: usize,
    metrics: bool,
) -> (Fig2Result, Metered) {
    let machine = scale.machine();
    let sweep = vm_sweep(machine);
    // One batch: the native run (which decides the site filter) plus
    // every VM-sweep point.
    let mut configs = vec![RunConfig {
        env: EnvSpec::new(machine, EnvKind::Native),
        iterations: scale.iterations(),
        sync: true,
        seed,
        max_events: 0,
        trace: false,
        metrics,
        spec: None,
    }];
    configs.extend(sweep.iter().map(|row| RunConfig {
        env: EnvSpec::new(machine, EnvKind::Vm(row.count)),
        iterations: scale.iterations(),
        sync: true,
        seed,
        max_events: 0,
        trace: false,
        metrics,
        spec: None,
    }));
    let mut results = expect_trials("fig2", run_configs_jobs(&configs, corpus, jobs)).into_iter();
    let mut metered = Metered::default();
    let mut native = results.next().expect("fig2 native trial missing");
    metered.fold_trial(
        &[("env", &native.config.env.kind.label())],
        &native.metrics,
        &native.attrib,
    );
    let keep: Vec<bool> = native
        .sites
        .iter_mut()
        .map(|s| s.samples.median().unwrap_or(0) >= 10_000)
        .collect();
    let per_config: Vec<RunResult> = results.collect();
    for res in &per_config {
        metered.fold_trial(
            &[("env", &res.config.env.kind.label())],
            &res.metrics,
            &res.attrib,
        );
    }
    metered.finish();
    let mut per_config = per_config;

    let mut categories = Vec::new();
    for cat in Category::ALL {
        let mut violins = Vec::new();
        for (row, res) in sweep.iter().zip(per_config.iter_mut()) {
            let p99s: Vec<u64> = res
                .sites
                .iter_mut()
                .enumerate()
                .filter(|(i, s)| keep[*i] && s.in_category(cat))
                .filter_map(|(_, s)| s.samples.p99())
                .collect();
            if let Some(v) = ViolinSummary::from_values(format!("{} VMs", row.count), &p99s, 64) {
                violins.push(v);
            }
        }
        categories.push(Fig2Category {
            category: cat,
            violins,
        });
    }
    (
        Fig2Result {
            vm_counts: sweep.iter().map(|r| r.count).collect(),
            categories,
        },
        metered,
    )
}

// ---------------------------------------------------------------- Table 3

/// Table 3: worst-case bucket percentages in Docker as the container
/// count grows.
pub fn table3(corpus: &Corpus, scale: Scale, seed: u64) -> BucketTable {
    table3_jobs(corpus, scale, seed, 0)
}

/// [`table3`] with an explicit `--jobs` worker count: the container
/// sweep runs as one parallel batch.
pub fn table3_jobs(corpus: &Corpus, scale: Scale, seed: u64, jobs: usize) -> BucketTable {
    table3_metered(corpus, scale, seed, jobs, false).0
}

/// [`table3_jobs`] with optional telemetry (labels: `env=<kind>`); see
/// [`table2_metered`] for the contract.
pub fn table3_metered(
    corpus: &Corpus,
    scale: Scale,
    seed: u64,
    jobs: usize,
    metrics: bool,
) -> (BucketTable, Metered) {
    let machine = scale.machine();
    let sweep = container_sweep(machine);
    let configs: Vec<RunConfig> = sweep
        .iter()
        .map(|row| RunConfig {
            env: EnvSpec::new(machine, EnvKind::Container(row.count)),
            iterations: scale.iterations(),
            sync: true,
            seed,
            max_events: 0,
            trace: false,
            metrics,
            spec: None,
        })
        .collect();
    let results = expect_trials("table3", run_configs_jobs(&configs, corpus, jobs));
    let mut metered = Metered::default();
    let mut table =
        BucketTable::new("Table 3: worst-case (max) syscall runtimes in Docker (cumulative %)");
    for (row, mut res) in sweep.iter().zip(results) {
        let maxes = res.per_site(None, |s| s.max());
        metered.fold_trial(
            &[("env", &res.config.env.kind.label())],
            &res.metrics,
            &res.attrib,
        );
        table.push_values(format!("{} ctnrs", row.count), &maxes);
    }
    metered.finish();
    (table, metered)
}

// ---------------------------------------------------------------- Figure 3

/// One Figure 3 application row: p99 latencies in the four
/// configurations.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Application name.
    pub app: String,
    /// KVM, isolated.
    pub kvm_isolated: u64,
    /// Docker, isolated.
    pub docker_isolated: u64,
    /// KVM with the 48-core syscall noise.
    pub kvm_noise: u64,
    /// Docker with the noise.
    pub docker_noise: u64,
}

impl Fig3Row {
    /// Percent p99 increase from isolated to contended, KVM.
    pub fn kvm_increase_pct(&self) -> f64 {
        pct_increase(self.kvm_isolated, self.kvm_noise)
    }
    /// Percent p99 increase from isolated to contended, Docker.
    pub fn docker_increase_pct(&self) -> f64 {
        pct_increase(self.docker_isolated, self.docker_noise)
    }
}

fn pct_increase(base: u64, now: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        100.0 * (now as f64 - base as f64) / base as f64
    }
}

/// Runs Figure 3 over the full suite (grid points in parallel on the
/// auto worker count).
pub fn fig3(noise: &Corpus, scale: Scale, seed: u64) -> Vec<Fig3Row> {
    fig3_jobs(noise, scale, seed, 0)
}

/// [`fig3`] with an explicit `--jobs` worker count. The whole noise
/// grid — apps × {KVM, Docker} × {isolated, noisy} × repetition seeds —
/// is flattened into one batch of independent points for the pool;
/// since point seeds are a pure function of grid position, the result
/// rows are identical for every worker count.
pub fn fig3_jobs(noise: &Corpus, scale: Scale, seed: u64, jobs: usize) -> Vec<Fig3Row> {
    fig3_metered(noise, scale, seed, jobs, false).0
}

/// [`fig3_jobs`] with optional telemetry (labels: `app`, `virt`,
/// `noise` per grid point); see [`table2_metered`] for the contract.
pub fn fig3_metered(
    noise: &Corpus,
    scale: Scale,
    seed: u64,
    jobs: usize,
    metrics: bool,
) -> (Vec<Fig3Row>, Metered) {
    let (machine, groups) = match scale {
        Scale::Tiny => (
            Machine {
                cores: 8,
                mem_mib: 8 * 1024,
            },
            4,
        ),
        Scale::Quick => (
            Machine {
                cores: 16,
                mem_mib: 16 * 1024,
            },
            4,
        ),
        Scale::Full => (
            Machine {
                cores: 64,
                mem_mib: 64 * 1024,
            },
            4,
        ),
    };
    let mk_cfg = |virt: bool, with_noise: bool| SingleNodeConfig {
        machine,
        groups,
        virt,
        noise: with_noise,
        requests: scale.requests(),
        warmup: (scale.requests() / 10) as usize,
        util_pct: 75,
        trace: false,
        metrics,
        seed,
        spec: None,
    };
    let reps = match scale {
        Scale::Tiny => 1,
        Scale::Quick => 2,
        Scale::Full => 3,
    };
    // The four grid configurations per app, in row order.
    const GRID: [(bool, bool); 4] = [(true, false), (false, false), (true, true), (false, true)];
    let apps = suite();
    let mut points: Vec<(AppProfile, SingleNodeConfig)> = Vec::new();
    for app in &apps {
        for (virt, with_noise) in GRID {
            for r in 0..reps {
                let mut c = mk_cfg(virt, with_noise);
                // The paper runs each client twice and keeps the warmed
                // run; we average over repetition seeds to stabilize the
                // tail estimate.
                c.seed = c.seed.wrapping_add(r * 0x1234_5678);
                points.push((app.clone(), c));
            }
        }
    }
    let results = run_points(&points, noise, jobs);
    let mut metered = Metered::default();
    for ((app, cfg), res) in points.iter().zip(&results) {
        metered.fold_trial(
            &[
                ("app", app.name),
                ("virt", if cfg.virt { "kvm" } else { "docker" }),
                ("noise", if cfg.noise { "on" } else { "off" }),
            ],
            &res.metrics,
            &res.noise_attrib,
        );
    }
    metered.finish();
    let reps = reps as usize;
    let rows = apps
        .iter()
        .zip(results.chunks(GRID.len() * reps))
        .map(|(app, chunk)| {
            let mean_p99 = |g: usize| {
                chunk[g * reps..(g + 1) * reps]
                    .iter()
                    .map(|t| t.p99)
                    .sum::<u64>()
                    / reps as u64
            };
            Fig3Row {
                app: app.name.to_string(),
                kvm_isolated: mean_p99(0),
                docker_isolated: mean_p99(1),
                kvm_noise: mean_p99(2),
                docker_noise: mean_p99(3),
            }
        })
        .collect();
    (rows, metered)
}

// ---------------------------------------------------------------- Figure 4

/// One Figure 4 application row: total 64-node runtimes.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Application name.
    pub app: String,
    /// KVM, isolated.
    pub kvm_isolated: u64,
    /// Docker, isolated.
    pub docker_isolated: u64,
    /// KVM, multi-tenant.
    pub kvm_noise: u64,
    /// Docker, multi-tenant.
    pub docker_noise: u64,
}

impl Fig4Row {
    /// Relative runtime loss isolated → multi-tenant, KVM (percent).
    pub fn kvm_loss_pct(&self) -> f64 {
        pct_increase(self.kvm_isolated, self.kvm_noise)
    }
    /// Relative runtime loss isolated → multi-tenant, Docker (percent).
    pub fn docker_loss_pct(&self) -> f64 {
        pct_increase(self.docker_isolated, self.docker_noise)
    }
}

/// Runs Figure 4 over the cluster suite (no shore/specjbb, as in the
/// paper), simulating nodes in parallel on the auto worker count.
pub fn fig4(noise: &Corpus, scale: Scale, seed: u64) -> Vec<Fig4Row> {
    fig4_jobs(noise, scale, seed, 0)
}

/// [`fig4`] with an explicit `--jobs` worker count for the per-node
/// simulations (0 = auto, 1 = sequential); node seeds derive from node
/// indices, so every count yields the same rows.
pub fn fig4_jobs(noise: &Corpus, scale: Scale, seed: u64, jobs: usize) -> Vec<Fig4Row> {
    fig4_metered(noise, scale, seed, jobs, false).0
}

/// [`fig4_jobs`] with optional telemetry. Per-node registries arrive
/// already merged under `node=<i>` labels (see
/// [`ksa_cluster::run_cluster`]); this adds `app`/`virt`/`noise` on
/// top. Cluster runs carry no attribution table, so the metered frames
/// stay empty.
pub fn fig4_metered(
    noise: &Corpus,
    scale: Scale,
    seed: u64,
    jobs: usize,
    metrics: bool,
) -> (Vec<Fig4Row>, Metered) {
    let (nodes, iterations, per_iter) = scale.cluster();
    let node_machine = match scale {
        Scale::Tiny => Machine {
            cores: 8,
            mem_mib: 8 * 1024,
        },
        Scale::Quick => Machine {
            cores: 12,
            mem_mib: 16 * 1024,
        },
        Scale::Full => Machine {
            cores: 24,
            mem_mib: 64 * 1024,
        },
    };
    let mk_cfg = |virt: bool, with_noise: bool| ClusterConfig {
        nodes,
        iterations,
        requests_per_iter: per_iter,
        node: SingleNodeConfig {
            machine: node_machine,
            groups: 2,
            virt,
            noise: with_noise,
            requests: 0,
            warmup: 0,
            util_pct: 92,
            trace: false,
            metrics,
            seed,
            spec: None,
        },
        barrier_ns: 40_000,
        threads: jobs,
    };
    let mut metered = Metered::default();
    let empty_attrib = AttributionTable::default();
    let mut cell = |app: &AppProfile, virt: bool, with_noise: bool| {
        let res = run_cluster(app, &mk_cfg(virt, with_noise), noise);
        metered.fold_trial(
            &[
                ("app", app.name),
                ("virt", if virt { "kvm" } else { "docker" }),
                ("noise", if with_noise { "on" } else { "off" }),
            ],
            &res.metrics,
            &empty_attrib,
        );
        res.total_ns
    };
    let rows = cluster_suite()
        .iter()
        .map(|app| Fig4Row {
            app: app.name.to_string(),
            kvm_isolated: cell(app, true, false),
            docker_isolated: cell(app, false, false),
            kvm_noise: cell(app, true, true),
            docker_noise: cell(app, false, true),
        })
        .collect();
    metered.finish();
    (rows, metered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_cover_the_ladder() {
        let rows = table1(Scale::Full);
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].count, 1);
        assert_eq!(rows[6].count, 64);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Tiny.iterations() < Scale::Full.iterations());
        assert!(Scale::Tiny.requests() < Scale::Full.requests());
        assert!(Scale::Tiny.machine().cores < Scale::Full.machine().cores);
        let (n_t, ..) = Scale::Tiny.cluster();
        let (n_f, ..) = Scale::Full.cluster();
        assert!(n_t < n_f);
    }

    #[test]
    fn default_corpus_is_nonempty_and_deterministic() {
        let a = default_corpus(Scale::Tiny);
        let b = default_corpus(Scale::Tiny);
        assert!(!a.corpus.is_empty());
        assert_eq!(a.corpus.programs, b.corpus.programs);
        let n = noise_corpus(Scale::Tiny);
        assert!(!n.is_empty() && n.len() <= a.corpus.len());
    }

    #[test]
    fn net_corpus_is_deterministic_and_net_heavy() {
        use ksa_kernel::{Category, SysNo};
        let a = net_corpus(Scale::Tiny);
        let b = net_corpus(Scale::Tiny);
        assert_eq!(a.programs, b.programs);
        let calls: Vec<SysNo> = a
            .programs
            .iter()
            .flat_map(|p| p.calls.iter().map(|c| c.no))
            .collect();
        let net = calls
            .iter()
            .filter(|no| no.categories().contains(&Category::Network))
            .count();
        assert!(
            net * 2 > calls.len(),
            "net calls should dominate: {net}/{}",
            calls.len()
        );
        assert!(calls.contains(&SysNo::Sendto));
    }

    #[test]
    fn table2_tiny_has_three_rows_each() {
        let corpus = default_corpus(Scale::Tiny);
        let t2 = table2(&corpus.corpus, Scale::Tiny, 1);
        assert_eq!(t2.median.rows.len(), 3);
        assert_eq!(t2.p99.rows.len(), 3);
        assert_eq!(t2.max.rows.len(), 3);
        // Paper shape: fewer KVM medians below 1µs than native.
        let native = &t2.median.rows[0];
        let kvm = &t2.median.rows[1];
        assert!(
            kvm.pct_below(0) <= native.pct_below(0),
            "KVM must not beat native below 1us: {} vs {}",
            kvm.pct_below(0),
            native.pct_below(0)
        );
    }
}
