//! Telemetry configuration, mirroring `ksa_desim::TraceConfig`'s
//! shape: a `Copy` struct threaded through run configs, with
//! `disabled()` as the strictly-zero-cost default.

use crate::registry::Ns;

/// Default sampling period: one sample per 100µs of simulated time.
/// Trials run for simulated milliseconds to seconds, so this yields
/// tens to thousands of points per series — enough to see intra-trial
/// pressure evolve without flooding the rings.
pub const DEFAULT_SAMPLE_PERIOD: Ns = 100_000;

/// Default per-series ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Telemetry configuration.
///
/// `enabled == false` is the zero-cost mode: every registry operation
/// reduces to one branch, no metric is allocated, and simulated
/// results are bit-identical to a build without telemetry at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch.
    pub enabled: bool,
    /// Simulated nanoseconds between ring samples. Ticks are
    /// *coalesced*: if the clock jumps several periods between
    /// updates, one sample is taken at the current time rather than
    /// back-filling the missed ticks.
    pub sample_period: Ns,
    /// Bounded capacity of each metric's time-series ring (oldest
    /// samples evicted first, evictions counted).
    pub ring_capacity: usize,
}

impl TelemetryConfig {
    /// Telemetry off: the zero-cost, bit-identical default.
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            sample_period: 0,
            ring_capacity: 0,
        }
    }

    /// Telemetry on with the default period and ring capacity.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            sample_period: DEFAULT_SAMPLE_PERIOD,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Telemetry on with an explicit period and ring capacity.
    pub fn with(sample_period: Ns, ring_capacity: usize) -> Self {
        TelemetryConfig {
            enabled: true,
            sample_period: sample_period.max(1),
            ring_capacity,
        }
    }

    /// Convenience for threading a `bool` through run configs.
    pub fn from_flag(on: bool) -> Self {
        if on {
            Self::enabled()
        } else {
            Self::disabled()
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}
