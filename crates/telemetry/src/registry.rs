//! The metric registry: typed metrics, bounded time-series rings, and
//! coalesced sim-tick sampling.

use std::collections::{BTreeMap, VecDeque};

use ksa_stats::Log2Histogram;

use crate::config::TelemetryConfig;

/// Simulated nanoseconds (kept local so the crate stays below
/// `ksa-desim` in the dependency graph).
pub type Ns = u64;

/// Handle to a registered metric. [`MetricId::NONE`] (returned by every
/// registration on a disabled registry) makes all updates no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(u32);

impl MetricId {
    /// The dangling id: updates through it are dropped.
    pub const NONE: MetricId = MetricId(u32::MAX);

    /// True for the dangling id.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }
}

/// What a metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count (events, nanoseconds, bytes).
    Counter,
    /// Instantaneous level (queue depth, free pages).
    Gauge,
    /// Log2-bucketed distribution; `value` carries the running sum.
    Histogram,
}

impl MetricKind {
    /// Prometheus exposition type name.
    pub fn prom(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A bounded `(sim_time, value)` ring with oldest-first eviction — the
/// same discipline as the trace rings: a full ring drops its oldest
/// sample and counts the eviction, and zero capacity drops everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesRing {
    cap: usize,
    buf: VecDeque<(Ns, u64)>,
    dropped: u64,
}

impl SeriesRing {
    /// An empty ring of capacity `cap`.
    pub fn new(cap: usize) -> Self {
        SeriesRing {
            cap,
            // Eager allocation would defeat the zero-cost-disabled
            // guarantee for cap 0 and waste memory for rarely-sampled
            // metrics; grow on demand instead.
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, t: Ns, v: u64) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((t, v));
    }

    /// Samples currently held, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = (Ns, u64)> + '_ {
        self.buf.iter().copied()
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples evicted (ring was full) or discarded (zero capacity).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (`snake_case`, already namespaced: `engine_events`).
    pub name: String,
    /// Label set, sorted at registration for deterministic identity.
    pub labels: Vec<(String, String)>,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// Current value (counter count, gauge level, histogram sum).
    pub value: u64,
    /// Distribution (histograms only; empty otherwise).
    pub hist: Log2Histogram,
    /// The sampled time series.
    pub ring: SeriesRing,
}

/// The metric registry. All operations are no-ops on a disabled
/// registry; the hot-path update methods are one branch in that case.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    cfg: TelemetryConfig,
    metrics: Vec<Metric>,
    /// `(name, labels) -> index` — registration-time dedup so lazy
    /// registration and cross-registry absorption stay idempotent.
    index: BTreeMap<(String, Vec<(String, String)>), u32>,
    /// Next sim-time at which a ring sample is due.
    next_tick: Ns,
    /// Ring samples taken (coalesced ticks that actually fired).
    pub samples_taken: u64,
}

impl Registry {
    /// A registry under `cfg` (disabled configs yield the inert
    /// registry).
    pub fn new(cfg: TelemetryConfig) -> Self {
        Registry {
            cfg,
            ..Default::default()
        }
    }

    /// A permanently inert registry.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether updates are recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configuration.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    fn register(&mut self, name: &str, labels: &[(&str, String)], kind: MetricKind) -> MetricId {
        if !self.cfg.enabled {
            return MetricId::NONE;
        }
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        labels.sort();
        let key = (name.to_string(), labels.clone());
        if let Some(&i) = self.index.get(&key) {
            debug_assert_eq!(
                self.metrics[i as usize].kind, kind,
                "kind change for {name}"
            );
            return MetricId(i);
        }
        let i = u32::try_from(self.metrics.len()).expect("metric count fits u32");
        self.metrics.push(Metric {
            name: name.to_string(),
            labels,
            kind,
            value: 0,
            hist: Log2Histogram::new(),
            ring: SeriesRing::new(self.cfg.ring_capacity),
        });
        self.index.insert(key, i);
        MetricId(i)
    }

    /// Registers (or finds) a counter.
    pub fn counter(&mut self, name: &str, labels: &[(&str, String)]) -> MetricId {
        self.register(name, labels, MetricKind::Counter)
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, String)]) -> MetricId {
        self.register(name, labels, MetricKind::Gauge)
    }

    /// Registers (or finds) a histogram.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, String)]) -> MetricId {
        self.register(name, labels, MetricKind::Histogram)
    }

    /// Increments a counter (no-op on [`MetricId::NONE`]).
    #[inline]
    pub fn add(&mut self, id: MetricId, delta: u64) {
        if id.is_none() {
            return;
        }
        self.metrics[id.0 as usize].value += delta;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: MetricId, v: u64) {
        if id.is_none() {
            return;
        }
        self.metrics[id.0 as usize].value = v;
    }

    /// Raises a gauge to `v` if `v` exceeds it (peak tracking).
    #[inline]
    pub fn set_max(&mut self, id: MetricId, v: u64) {
        if id.is_none() {
            return;
        }
        let m = &mut self.metrics[id.0 as usize];
        if v > m.value {
            m.value = v;
        }
    }

    /// Records a histogram observation (sum accumulates in `value`).
    #[inline]
    pub fn observe(&mut self, id: MetricId, sample: u64) {
        if id.is_none() {
            return;
        }
        let m = &mut self.metrics[id.0 as usize];
        m.hist.record(sample);
        m.value += sample;
    }

    /// Whether a coalesced tick is due at sim-time `now`. Callers use
    /// this to skip expensive gauge reads entirely between ticks.
    #[inline]
    pub fn due(&self, now: Ns) -> bool {
        self.cfg.enabled && now >= self.next_tick
    }

    /// Takes one ring sample if a tick is due, then re-arms at the next
    /// period boundary after `now` (missed periods coalesce into this
    /// single sample).
    #[inline]
    pub fn sample_tick(&mut self, now: Ns) {
        if !self.due(now) {
            return;
        }
        self.force_sample(now);
        let period = self.cfg.sample_period.max(1);
        self.next_tick = (now / period + 1) * period;
    }

    /// Takes one ring sample unconditionally (end-of-run flush).
    pub fn force_sample(&mut self, now: Ns) {
        if !self.cfg.enabled {
            return;
        }
        for m in &mut self.metrics {
            m.ring.push(now, m.value);
        }
        self.samples_taken += 1;
    }

    /// All registered metrics, in registration order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Current value of the metric with exactly these labels.
    pub fn value_of(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.index
            .get(&(name.to_string(), want))
            .map(|&i| self.metrics[i as usize].value)
    }

    /// Sum of `value` across every label set of `name`.
    pub fn total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .map(|m| m.value)
            .sum()
    }

    /// FNV-1a digest over every metric's identity, value, distribution
    /// and sampled series — the replay/`--jobs` identity gate compares
    /// these.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let fold_bytes = |h: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h = (*h ^ b as u64).wrapping_mul(0x100000001b3);
            }
        };
        let fold = |h: &mut u64, v: u64| {
            let bytes = v.to_le_bytes();
            for &b in &bytes {
                *h = (*h ^ b as u64).wrapping_mul(0x100000001b3);
            }
        };
        for m in &self.metrics {
            fold_bytes(&mut h, m.name.as_bytes());
            for (k, v) in &m.labels {
                fold_bytes(&mut h, k.as_bytes());
                fold_bytes(&mut h, v.as_bytes());
            }
            fold(&mut h, m.value);
            if m.kind == MetricKind::Histogram {
                for &c in &m.hist.buckets {
                    fold(&mut h, c);
                }
            }
            for (t, v) in m.ring.samples() {
                fold(&mut h, t);
                fold(&mut h, v);
            }
            fold(&mut h, m.ring.dropped());
        }
        fold(&mut h, self.samples_taken);
        h
    }

    /// Merges `other`'s metrics into this registry, appending
    /// `extra` labels to each (e.g. `node="3"` when folding per-node
    /// registries into one cluster view). Colliding metrics combine by
    /// kind: counters and histogram sums add, gauges keep the max.
    /// Absorbing an enabled registry into a disabled one adopts the
    /// source configuration, so a fresh `Registry::default()` works as
    /// a merge accumulator.
    pub fn absorb(&mut self, other: &Registry, extra: &[(&str, &str)]) {
        if !other.cfg.enabled {
            return;
        }
        if !self.cfg.enabled {
            self.cfg = other.cfg;
        }
        self.samples_taken += other.samples_taken;
        for m in &other.metrics {
            let labels: Vec<(&str, String)> = m
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .chain(extra.iter().map(|&(k, v)| (k, v.to_string())))
                .collect();
            let id = self.register(&m.name, &labels, m.kind);
            let dst = &mut self.metrics[id.0 as usize];
            match m.kind {
                MetricKind::Counter | MetricKind::Histogram => dst.value += m.value,
                MetricKind::Gauge => dst.value = dst.value.max(m.value),
            }
            dst.hist.merge(&m.hist);
            for (t, v) in m.ring.samples() {
                dst.ring.push(t, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let mut r = Registry::disabled();
        let c = r.counter("x", &[]);
        assert!(c.is_none());
        r.add(c, 5);
        r.set(c, 9);
        r.observe(c, 3);
        r.sample_tick(1_000_000);
        r.force_sample(2_000_000);
        assert!(r.metrics().is_empty());
        assert_eq!(r.samples_taken, 0);
        assert_eq!(r.digest(), Registry::disabled().digest());
    }

    #[test]
    fn counters_gauges_histograms() {
        let mut r = Registry::new(TelemetryConfig::enabled());
        let c = r.counter("events", &[("core", "0".into())]);
        let g = r.gauge("depth", &[]);
        let h = r.histogram("lat", &[]);
        r.add(c, 3);
        r.add(c, 4);
        r.set(g, 9);
        r.set_max(g, 5); // below: no change
        r.set_max(g, 12);
        r.observe(h, 100);
        r.observe(h, 200);
        assert_eq!(r.value_of("events", &[("core", "0")]), Some(7));
        assert_eq!(r.value_of("depth", &[]), Some(12));
        assert_eq!(r.value_of("lat", &[]), Some(300));
        assert_eq!(r.metrics()[2].hist.count(), 2);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut r = Registry::new(TelemetryConfig::enabled());
        let a = r.counter("x", &[("k", "v".into())]);
        let b = r.counter("x", &[("k", "v".into())]);
        assert_eq!(a, b);
        assert_eq!(r.metrics().len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = SeriesRing::new(2);
        ring.push(1, 10);
        ring.push(2, 20);
        ring.push(3, 30);
        assert_eq!(ring.samples().collect::<Vec<_>>(), vec![(2, 20), (3, 30)]);
        assert_eq!(ring.dropped(), 1);
        let mut zero = SeriesRing::new(0);
        zero.push(1, 1);
        assert!(zero.is_empty());
        assert_eq!(zero.dropped(), 1);
    }

    #[test]
    fn ticks_coalesce() {
        let mut r = Registry::new(TelemetryConfig::with(1_000, 16));
        let c = r.counter("n", &[]);
        r.add(c, 1);
        r.sample_tick(0); // due immediately (next_tick starts at 0)
        assert_eq!(r.samples_taken, 1);
        r.sample_tick(500); // within the period: no sample
        assert_eq!(r.samples_taken, 1);
        r.add(c, 1);
        r.sample_tick(10_500); // 10 periods skipped -> ONE coalesced sample
        assert_eq!(r.samples_taken, 2);
        let samples: Vec<_> = r.metrics()[0].ring.samples().collect();
        assert_eq!(samples, vec![(0, 1), (10_500, 2)]);
    }

    #[test]
    fn digest_tracks_content() {
        let mut a = Registry::new(TelemetryConfig::enabled());
        let c = a.counter("n", &[]);
        a.add(c, 1);
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        let cb = b.counter("n", &[]);
        b.add(cb, 1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn absorb_merges_with_extra_labels() {
        let mut node0 = Registry::new(TelemetryConfig::enabled());
        let c0 = node0.counter("reqs", &[]);
        node0.add(c0, 5);
        let mut node1 = Registry::new(TelemetryConfig::enabled());
        let c1 = node1.counter("reqs", &[]);
        node1.add(c1, 7);

        let mut merged = Registry::default();
        merged.absorb(&node0, &[("node", "0")]);
        merged.absorb(&node1, &[("node", "1")]);
        assert!(merged.enabled());
        assert_eq!(merged.value_of("reqs", &[("node", "0")]), Some(5));
        assert_eq!(merged.value_of("reqs", &[("node", "1")]), Some(7));
        assert_eq!(merged.total("reqs"), 12);

        // Same-label absorption folds counters.
        let mut again = Registry::default();
        again.absorb(&node0, &[]);
        again.absorb(&node1, &[]);
        assert_eq!(again.value_of("reqs", &[]), Some(12));
    }
}
