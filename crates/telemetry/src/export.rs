//! Rendering a [`Registry`] for external tools.
//!
//! Three formats:
//!
//! * [`prometheus_text`] — the Prometheus text exposition format
//!   (`# TYPE` headers, `name{label="v"} value` samples, histogram
//!   `_bucket`/`_sum`/`_count` expansion);
//! * [`timeseries_json`] — the full sampled rings as JSON, one series
//!   per metric with its `(sim_ns, value)` samples and drop counter;
//! * [`collapsed`] / [`speedscope_json`] — flamegraph folded-stack and
//!   speedscope renderings of caller-provided weighted stacks (the
//!   bench harness folds the 13-component latency taxonomy into these
//!   frames; this module stays agnostic of where the stacks come from
//!   so the crate sits below the kernel in the dependency graph).

use ksa_json::Value;
use ksa_stats::Log2Histogram;

use crate::registry::{Metric, MetricKind, Registry};

/// A weighted stack: outermost frame first, weight in nanoseconds.
pub type Frame = (Vec<String>, u64);

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn prom_histogram(out: &mut String, m: &Metric) {
    use std::fmt::Write;
    let mut cumulative = 0u64;
    for (i, &c) in m.hist.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        let (_, hi) = Log2Histogram::bucket_range(i);
        let mut labels = m.labels.clone();
        labels.push(("le".into(), hi.to_string()));
        let _ = writeln!(
            out,
            "{}_bucket{} {cumulative}",
            m.name,
            label_block(&labels)
        );
    }
    let mut labels = m.labels.clone();
    labels.push(("le".into(), "+Inf".into()));
    let _ = writeln!(
        out,
        "{}_bucket{} {}",
        m.name,
        label_block(&labels),
        m.hist.count()
    );
    let _ = writeln!(out, "{}_sum{} {}", m.name, label_block(&m.labels), m.value);
    let _ = writeln!(
        out,
        "{}_count{} {}",
        m.name,
        label_block(&m.labels),
        m.hist.count()
    );
}

/// Renders the registry in Prometheus text exposition format. Metrics
/// sharing a name emit one `# TYPE` header; histograms expand into
/// cumulative `_bucket` samples with log2 `le` edges plus `_sum` and
/// `_count`.
pub fn prometheus_text(reg: &Registry) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mut last_name = "";
    for m in reg.metrics() {
        if m.name != last_name {
            let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind.prom());
            last_name = &m.name;
        }
        match m.kind {
            MetricKind::Counter | MetricKind::Gauge => {
                let _ = writeln!(out, "{}{} {}", m.name, label_block(&m.labels), m.value);
            }
            MetricKind::Histogram => prom_histogram(&mut out, m),
        }
    }
    out
}

/// Renders every metric's sampled time series as JSON:
/// `{"samples_taken": n, "series": [{name, kind, labels, value,
/// dropped, samples: [[sim_ns, value], …]}]}`.
pub fn timeseries_json(reg: &Registry) -> String {
    let series = reg.metrics().iter().map(|m| {
        Value::object([
            ("name", Value::str(m.name.clone())),
            ("kind", Value::str(m.kind.prom())),
            (
                "labels",
                Value::object(
                    m.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::str(v.clone()))),
                ),
            ),
            ("value", Value::from(m.value)),
            ("dropped", Value::from(m.ring.dropped())),
            (
                "samples",
                Value::array(
                    m.ring
                        .samples()
                        .map(|(t, v)| Value::array([Value::from(t), Value::from(v)])),
                ),
            ),
        ])
    });
    Value::object([
        ("samples_taken", Value::from(reg.samples_taken)),
        ("series", Value::array(series)),
    ])
    .render()
}

/// Renders weighted stacks in the flamegraph "collapsed" format
/// (`frame;frame;frame weight` per line — loadable by `flamegraph.pl`
/// and by speedscope directly). Zero-weight stacks are omitted.
pub fn collapsed(frames: &[Frame]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (stack, weight) in frames {
        if *weight == 0 || stack.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{} {weight}", stack.join(";"));
    }
    out
}

/// Renders weighted stacks as a speedscope JSON document (one
/// `sampled` profile in nanoseconds; each stack becomes one sample
/// with its weight).
pub fn speedscope_json(name: &str, frames: &[Frame]) -> String {
    let mut frame_names: Vec<String> = Vec::new();
    let mut frame_idx = std::collections::BTreeMap::new();
    let mut samples = Vec::new();
    let mut weights = Vec::new();
    let mut total = 0u64;
    for (stack, weight) in frames {
        if *weight == 0 || stack.is_empty() {
            continue;
        }
        let sample: Vec<Value> = stack
            .iter()
            .map(|f| {
                let i = *frame_idx.entry(f.clone()).or_insert_with(|| {
                    frame_names.push(f.clone());
                    frame_names.len() - 1
                });
                Value::from(i as u64)
            })
            .collect();
        samples.push(Value::Array(sample));
        weights.push(Value::from(*weight));
        total += weight;
    }
    Value::object([
        (
            "$schema",
            Value::str("https://www.speedscope.app/file-format-schema.json"),
        ),
        (
            "shared",
            Value::object([(
                "frames",
                Value::array(
                    frame_names
                        .into_iter()
                        .map(|n| Value::object([("name", Value::str(n))])),
                ),
            )]),
        ),
        (
            "profiles",
            Value::array([Value::object([
                ("type", Value::str("sampled")),
                ("name", Value::str(name)),
                ("unit", Value::str("nanoseconds")),
                ("startValue", Value::from(0u64)),
                ("endValue", Value::from(total)),
                ("samples", Value::Array(samples)),
                ("weights", Value::Array(weights)),
            ])]),
        ),
        ("exporter", Value::str("ksa-telemetry")),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryConfig;

    fn sample_registry() -> Registry {
        let mut r = Registry::new(TelemetryConfig::with(1_000, 8));
        let c = r.counter("engine_events", &[("core", "0".into())]);
        let g = r.gauge("queue_depth", &[]);
        let h = r.histogram("syscall_latency_ns", &[]);
        r.add(c, 42);
        r.set(g, 7);
        r.observe(h, 300);
        r.observe(h, 90_000);
        r.sample_tick(0);
        r.sample_tick(5_000);
        r
    }

    #[test]
    fn prometheus_lines_are_well_formed() {
        let text = prometheus_text(&sample_registry());
        assert!(text.contains("# TYPE engine_events counter"), "{text}");
        assert!(text.contains("engine_events{core=\"0\"} 42"), "{text}");
        assert!(text.contains("queue_depth 7"), "{text}");
        assert!(
            text.contains("syscall_latency_ns_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("syscall_latency_ns_sum 90300"), "{text}");
        // Every non-comment line: <name or name{labels}> <numeric value>.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (head, val) = line.rsplit_once(' ').expect("name value");
            assert!(!head.is_empty());
            assert!(val.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn timeseries_json_round_trips() {
        let doc = timeseries_json(&sample_registry());
        let v = ksa_json::parse(&doc).expect("valid JSON");
        let series = v.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 3);
        let ev = &series[0];
        assert_eq!(ev.get("name").unwrap().as_str().unwrap(), "engine_events");
        let samples = ev.get("samples").unwrap().as_array().unwrap();
        assert_eq!(samples.len(), 2, "two ticks sampled");
    }

    #[test]
    fn collapsed_and_speedscope_agree() {
        let frames: Vec<Frame> = vec![
            (vec!["Network".into(), "lock_wait".into()], 120),
            (vec!["Network".into(), "on_cpu".into()], 500),
            (vec!["Memory".into(), "on_cpu".into()], 0), // dropped
        ];
        let folded = collapsed(&frames);
        assert_eq!(folded, "Network;lock_wait 120\nNetwork;on_cpu 500\n");

        let doc = speedscope_json("taxonomy", &frames);
        let v = ksa_json::parse(&doc).expect("valid JSON");
        let prof = &v.get("profiles").unwrap().as_array().unwrap()[0];
        assert_eq!(prof.get("type").unwrap().as_str().unwrap(), "sampled");
        assert_eq!(prof.get("endValue").unwrap().as_u64().unwrap(), 620);
        let n_frames = v
            .get("shared")
            .unwrap()
            .get("frames")
            .unwrap()
            .as_array()
            .unwrap()
            .len();
        assert_eq!(n_frames, 3, "Network, lock_wait, on_cpu");
        for s in prof.get("samples").unwrap().as_array().unwrap() {
            for idx in s.as_array().unwrap() {
                assert!((idx.as_u64().unwrap() as usize) < n_frames);
            }
        }
    }
}
