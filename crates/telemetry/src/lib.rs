//! # ksa-telemetry — deterministic time-series metrics
//!
//! A metrics layer for the simulation stack with the same contract as
//! the trace layer (`ksa_desim::trace`): **strictly observational**.
//! Registering, updating and sampling metrics never draws from an RNG,
//! never schedules an event and never blocks a process, so enabling
//! telemetry cannot move a single simulated nanosecond — and when
//! disabled every operation is one branch on a `bool`, making the
//! disabled build bit-identical *and* cost-free (the `ablation_obs`
//! gate pins both properties).
//!
//! The model:
//!
//! * a [`Registry`] holds typed metrics — monotonic [counters]
//!   (`MetricKind::Counter`), instantaneous [gauges]
//!   (`MetricKind::Gauge`) and log2-bucketed [histograms]
//!   (`MetricKind::Histogram`) — each identified by a name plus a label
//!   set (`core="3"`, `subsys="net"`, …);
//! * on **coalesced sim-time ticks** (every
//!   [`TelemetryConfig::sample_period`] simulated nanoseconds, merged
//!   when the clock jumps several periods at once) the registry copies
//!   every metric's current value into its bounded [`SeriesRing`] —
//!   the same oldest-first-eviction + drop-counter discipline as the
//!   trace rings, so a long run degrades to "most recent window"
//!   instead of unbounded memory;
//! * because ticks are driven by the *virtual* clock, the sampled
//!   series are deterministic: bit-identical under replay and for
//!   every `--jobs` pool width.
//!
//! [`export`] renders a registry three ways: Prometheus text
//! exposition, time-series JSON, and (from caller-provided folded
//! stacks, e.g. the 13-component latency taxonomy) flamegraph
//! collapsed-stack plus speedscope JSON.
//!
//! [counters]: Registry::counter
//! [gauges]: Registry::gauge
//! [histograms]: Registry::histogram

mod config;
pub mod export;
mod registry;

pub use config::TelemetryConfig;
pub use registry::{Metric, MetricId, MetricKind, Ns, Registry, SeriesRing};
