//! The cluster fabric's failure-detection and recovery machinery.
//!
//! [`run_cluster`](crate::run_cluster) models a *healthy* BSP cluster:
//! per-iteration barriers reduce to a max over independent node
//! simulations. This module lifts PR 1's per-site fault discipline to
//! the node/link level: a seeded [`NodeFaultPlan`] schedules node
//! crash/reboot windows, partition and degraded-link windows, and
//! probabilistic message drops, and the fabric rides through them with
//! a real recovery path:
//!
//! * **Heartbeat detection** — a crashed node stops heartbeating; the
//!   monitor walks `heartbeat → suspect → dead` on deterministic
//!   timeouts before anyone touches its work.
//! * **Work redistribution** — a dead node's shard is reassigned
//!   round-robin to survivors *before* the next iteration (steady
//!   state), or re-executed by a survivor after mid-iteration detection
//!   (crash path), so the barrier completes instead of hanging.
//! * **Retransmission** — barrier-completion messages crossing a
//!   partitioned or lossy link are retried under the shared capped
//!   exponential [`Backoff`] policy with jitter drawn deterministically
//!   from the plan seed. The coordinator dedups by `(iteration,
//!   sender)`, so a lost ack duplicates no completion.
//!
//! Every recovery step emits a [`TraceEventKind::Mark`] into a per-node
//! trace ring (PR 3 taxonomy) and an `err.cluster.*` /
//! `recovery.cluster.*` coverage block (PR 5 registry), making failover
//! paths first-class coverage targets. Everything is a pure function of
//! `(config, plan, per-node durations)`: replays and any pool width are
//! bit-identical.
//!
//! With an *empty* plan the fabric reduces exactly to the healthy
//! semantics — healthy link latency is modelled as part of
//! `barrier_ns`, so only fault-induced delays (degradation excess,
//! retransmit backoff, detection timeouts, re-execution) move an
//! iteration — pinned by `faulted_run_with_empty_plan_matches_healthy`.

use ksa_desim::{
    Backoff, CoreId, NodeFaultPlan, Ns, Pid, TraceEvent, TraceEventKind, TraceLog, TraceRing,
};
use ksa_kernel::coverage::{block, block_err, CoverageSet};
use ksa_kernel::prog::Corpus;
use ksa_tailbench::apps::AppProfile;

use crate::{run_nodes, ClusterConfig, ClusterResult};

/// Failure-detection and retransmission knobs of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Heartbeat interval each node is expected to honour.
    pub heartbeat_ns: Ns,
    /// Missed heartbeats before a node turns *suspect*.
    pub suspect_misses: u32,
    /// Missed heartbeats before a suspect is declared *dead* and its
    /// shard is handed to survivors (≥ `suspect_misses`).
    pub dead_misses: u32,
    /// Healthy one-way message latency (modelled as part of
    /// `barrier_ns`; only the *excess* under degradation delays an
    /// iteration).
    pub link_ns: Ns,
    /// Retransmit backoff policy (shared with the tailbench client).
    pub backoff: Backoff,
    /// Hard bound on transmission attempts per message; a message still
    /// undeliverable after this many tries counts as *lost*.
    pub max_attempts: u32,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            heartbeat_ns: 1_000_000, // 1ms heartbeats
            suspect_misses: 2,
            dead_misses: 3,
            link_ns: 20_000, // 20µs one-way on the healthy fabric
            backoff: Backoff::new(50_000, 2_000_000, 250),
            max_attempts: 1 << 16,
        }
    }
}

impl FabricConfig {
    /// A tighter policy for quick-scale tests: detection timeouts small
    /// against quick-cluster iteration durations.
    pub fn quick() -> Self {
        FabricConfig {
            heartbeat_ns: 100_000,
            suspect_misses: 2,
            dead_misses: 3,
            link_ns: 10_000,
            backoff: Backoff::new(20_000, 500_000, 250),
            max_attempts: 1 << 16,
        }
    }
}

/// What the recovery machinery did during one faulted run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricReport {
    /// Shards of known-dead nodes reassigned to survivors ahead of an
    /// iteration.
    pub reassignments: u64,
    /// Shards re-executed by a survivor after mid-iteration crash
    /// detection (the crashed node's partial work is discarded).
    pub reexecs: u64,
    /// Dead declarations (heartbeat → suspect → dead walks completed).
    pub crash_detections: u64,
    /// Nodes that rebooted and rejoined the membership.
    pub rejoins: u64,
    /// Barrier-completion message retransmissions.
    pub retransmits: u64,
    /// Duplicate completions deduped at the coordinator (lost acks).
    pub dup_completions_dropped: u64,
    /// Unique barrier completions delivered across the run.
    pub completions: u64,
    /// Completions the membership should have produced.
    pub expected_completions: u64,
    /// Expected completions that never arrived (permanent partition or
    /// attempt-budget exhaustion); 0 whenever every fault heals.
    pub lost_completions: u64,
    /// Iterations that began with an empty membership.
    pub failed_iters: u64,
    /// Shards nobody could serve (empty membership).
    pub unserved_shards: u64,
}

impl FabricReport {
    /// Delivered fraction of expected completions, defined even for a
    /// fully-failed run (an empty expectation delivers trivially).
    pub fn completion_ratio(&self) -> f64 {
        if self.expected_completions == 0 {
            return 1.0;
        }
        self.completions as f64 / self.expected_completions as f64
    }

    /// True when every expected completion arrived exactly once.
    pub fn conserved(&self) -> bool {
        self.lost_completions == 0 && self.completions == self.expected_completions
    }
}

/// Coverage + trace sink shared by the recovery steps.
struct Recorder {
    cov: CoverageSet,
    trace: TraceLog,
}

impl Recorder {
    fn new(nodes: usize) -> Self {
        Recorder {
            cov: CoverageSet::new(),
            trace: TraceLog {
                enabled: true,
                rings: (0..nodes.max(1)).map(|_| TraceRing::new(4096)).collect(),
            },
        }
    }

    fn mark(&mut self, node: usize, t: Ns, label: &'static str, a: u64, b: u64) {
        let ring = node.min(self.trace.rings.len().saturating_sub(1));
        self.trace.rings[ring].push(TraceEvent {
            t,
            pid: Pid(node as u32),
            core: CoreId(node as u32),
            kind: TraceEventKind::Mark { label, a, b },
        });
    }

    fn cover(&mut self, name: &'static str) {
        self.cov.insert(block(name));
    }

    fn cover_err(&mut self, name: &'static str) {
        self.cov.insert(block_err(name));
    }
}

/// Outcome of delivering one barrier-completion message.
struct Delivery {
    /// First arrival at the coordinator (`None` = lost).
    arrival: Option<Ns>,
}

/// Drives one message from `from` to `coord`, retrying under the backoff
/// policy across partitions, degraded links and probabilistic drops.
/// Healthy latency is folded into `barrier_ns`, so only the excess over
/// `link_ns` delays the arrival.
#[allow(clippy::too_many_arguments)]
fn deliver(
    plan: &NodeFaultPlan,
    fab: &FabricConfig,
    rec: &mut Recorder,
    rep: &mut FabricReport,
    from: usize,
    coord: usize,
    sent_at: Ns,
    iter: u64,
) -> Delivery {
    if from == coord {
        // The coordinator's own completion needs no link.
        return Delivery {
            arrival: Some(sent_at),
        };
    }
    let mut send_t = sent_at;
    let mut first: Option<Ns> = None;
    for attempt in 1..=fab.max_attempts {
        // Unique per (iteration, attempt); sender/receiver ids are mixed
        // in by the decision hash itself.
        let seq = iter * 0x100000 + attempt as u64;
        let mult = plan.latency_mult_milli(from, coord, send_t);
        // Excess latency over the healthy link (already inside barrier_ns).
        let extra_lat = (fab.link_ns * mult / 1000).saturating_sub(fab.link_ns);
        let cut = plan.partitioned(from, coord, send_t);
        let dropped = cut || plan.message_dropped("link.data", from, coord, seq);
        if !dropped {
            let arrival = send_t + extra_lat;
            if first.is_none() {
                first = Some(arrival);
            } else {
                // The coordinator already has (iter, from): dedup.
                rep.dup_completions_dropped += 1;
                rec.cover("recovery.cluster.dup_drop");
                rec.mark(coord, arrival, "barrier.dup_drop", from as u64, iter);
            }
            let ack_cut = plan.partitioned(coord, from, arrival)
                || plan.message_dropped("link.ack", coord, from, seq);
            if !ack_cut {
                break;
            }
            // Delivered but unacknowledged: the sender must retransmit,
            // and the coordinator will see a duplicate.
            rec.cover_err("cluster.ack_drop");
            rec.cover("recovery.cluster.retransmit");
            rec.mark(from, arrival, "net.ack_lost", coord as u64, seq);
        } else {
            rep.retransmits += 1;
            if cut {
                rec.cover_err("cluster.partition");
            } else {
                rec.cover_err("cluster.link_drop");
            }
            rec.cover("recovery.cluster.retransmit");
            rec.mark(from, send_t, "net.retransmit", coord as u64, attempt as u64);
        }
        let delay = fab.backoff.delay(
            attempt,
            plan.jitter_word("backoff", from as u64, coord as u64, seq),
        );
        if delay >= fab.backoff.cap_ns.max(1) {
            rec.cover("recovery.cluster.backoff_capped");
        }
        let mut next = send_t + delay.max(1);
        if cut {
            match plan.heal_at(from, coord, send_t) {
                // Keep backing off until the partition heals; the first
                // attempt past the heal goes through.
                Some(heal) => next = next.max(heal),
                None => {
                    // Permanently partitioned: the completion is lost.
                    rep.lost_completions += 1;
                    rec.cover_err("cluster.completion_lost");
                    rec.mark(from, send_t, "barrier.lost", coord as u64, iter);
                    return Delivery { arrival: None };
                }
            }
        }
        send_t = next;
    }
    if first.is_none() {
        // Attempt budget exhausted against a lossy (non-partitioned) link.
        rep.lost_completions += 1;
        rec.cover_err("cluster.completion_lost");
        rec.mark(from, send_t, "barrier.lost", coord as u64, iter);
    }
    Delivery { arrival: first }
}

/// Runs `app` across the cluster under a node/link fault plan, riding
/// through crashes, partitions and lossy links with the recovery
/// machinery above. With an empty plan this is bit-identical to
/// [`run_cluster`](crate::run_cluster).
pub fn run_cluster_faulted(
    app: &AppProfile,
    cfg: &ClusterConfig,
    noise_corpus: &Corpus,
    plan: &NodeFaultPlan,
    fab: &FabricConfig,
) -> ClusterResult {
    let per_node = run_nodes(app, cfg, noise_corpus);
    let metrics = crate::merge_node_metrics(&per_node);
    let events = per_node.iter().map(|(_, _, e)| e).sum();
    let base: Vec<Vec<Ns>> = per_node.into_iter().map(|(d, _, _)| d).collect();
    let nodes = cfg.nodes;
    let mut rec = Recorder::new(nodes);
    let mut rep = FabricReport::default();
    let mut known_dead = vec![false; nodes];
    let mut rr = 0usize; // round-robin cursor for reassignment targets
    let mut t: Ns = 0;
    let mut iteration_ns = Vec::with_capacity(cfg.iterations as usize);

    for it in 0..cfg.iterations {
        let iti = it as usize;
        // Reboots: a known-dead node whose outage ended rejoins before
        // the iteration and takes its shard back.
        for (n, dead) in known_dead.iter_mut().enumerate() {
            if *dead && !plan.node_down(n, t) {
                *dead = false;
                rep.rejoins += 1;
                rec.cover("recovery.cluster.rejoin");
                rec.mark(n, t, "node.rejoin", it, 0);
            }
        }
        let live: Vec<usize> = (0..nodes).filter(|&n| !known_dead[n]).collect();
        if live.is_empty() {
            // Nobody to serve anything: the monitor spins one detection
            // period and the iteration's shards go unserved.
            rep.failed_iters += 1;
            rep.unserved_shards += nodes as u64;
            rec.cover_err("cluster.no_members");
            let dur = fab.heartbeat_ns * fab.dead_misses.max(1) as Ns;
            rec.mark(0, t, "membership.empty", it, 0);
            iteration_ns.push(dur);
            t += dur;
            continue;
        }

        // Shard assignment: every node's shard must be served each
        // iteration; known-dead owners' shards go round-robin to the
        // membership (steady-state work redistribution).
        let mut shares = vec![0u64; nodes];
        for &n in &live {
            shares[n] = 1;
        }
        for (n, _) in known_dead.iter().enumerate().filter(|&(_, &d)| d) {
            let target = live[rr % live.len()];
            rr += 1;
            shares[target] += 1;
            rep.reassignments += 1;
            rec.cover("recovery.cluster.reassign");
            rec.mark(target, t, "recovery.reassign", n as u64, it);
        }

        // Work phase: intended finish time per member; members whose
        // crash window opens before they finish crash mid-iteration.
        let mut finish = vec![0u64; nodes]; // absolute, members only
        let mut crashed: Vec<(usize, Ns)> = Vec::new();
        for &n in &live {
            let d = base[n]
                .get(iti)
                .copied()
                .unwrap_or(0)
                .saturating_mul(shares[n]);
            let f = t + d;
            match plan.crash_in(n, t, f) {
                Some(c) => crashed.push((n, c)),
                None => finish[n] = f,
            }
        }
        let survivors: Vec<usize> = live
            .iter()
            .copied()
            .filter(|n| !crashed.iter().any(|(c, _)| c == n))
            .collect();

        // Crash path: heartbeats stop at the crash instant; the monitor
        // walks suspect → dead on timeouts, then a survivor re-executes
        // the dead node's shards after its own work.
        for &(n, c) in &crashed {
            let suspect_t = c + fab.heartbeat_ns * fab.suspect_misses.max(1) as Ns;
            let dead_t = c + fab.heartbeat_ns * fab.dead_misses.max(1) as Ns;
            rec.cover_err("cluster.hb_miss");
            rec.cover_err("cluster.node_crash");
            rec.cover("recovery.cluster.suspect");
            rec.cover("recovery.cluster.dead");
            rec.mark(n, c, "node.crash", it, 0);
            rec.mark(n, suspect_t, "hb.suspect", it, 0);
            rec.mark(n, dead_t, "node.dead", it, 0);
            rep.crash_detections += 1;
            if survivors.is_empty() {
                rep.unserved_shards += shares[n];
                rec.cover_err("cluster.no_members");
                continue;
            }
            let target = survivors[rr % survivors.len()];
            rr += 1;
            let d = base[target]
                .get(iti)
                .copied()
                .unwrap_or(0)
                .saturating_mul(shares[n]);
            finish[target] = finish[target].max(dead_t) + d;
            rep.reexecs += shares[n];
            rec.cover("recovery.cluster.reexec");
            rec.mark(target, dead_t, "recovery.reexec", n as u64, it);
        }

        if survivors.is_empty() {
            // Every member crashed this iteration: detection time is all
            // that passes; their shards were never served.
            rep.failed_iters += 1;
            let dead_t = crashed
                .iter()
                .map(|&(_, c)| c + fab.heartbeat_ns * fab.dead_misses.max(1) as Ns)
                .max()
                .unwrap_or(t + fab.heartbeat_ns);
            for &(n, _) in &crashed {
                known_dead[n] = true;
                rep.unserved_shards += shares[n];
            }
            iteration_ns.push(dead_t - t);
            t = dead_t;
            continue;
        }

        // Barrier phase: every survivor reports completion to the
        // coordinator (lowest surviving id) over the faulty fabric.
        let coord = survivors[0];
        rep.expected_completions += survivors.len() as u64;
        let mut barrier_done = 0u64;
        for &n in &survivors {
            let d = deliver(plan, fab, &mut rec, &mut rep, n, coord, finish[n], it);
            if let Some(arrival) = d.arrival {
                rep.completions += 1;
                barrier_done = barrier_done.max(arrival);
            }
        }
        let done = barrier_done.max(t) + cfg.barrier_ns;
        for &(n, _) in &crashed {
            known_dead[n] = true;
        }
        iteration_ns.push(done - t);
        t = done;
    }

    let total_ns = iteration_ns.iter().sum();
    // The straggler baseline stays the *healthy* per-node mean, so the
    // straggler factor of a faulted run also prices the recovery cost.
    let mean_node_ns = {
        let sums: Vec<Ns> = base.iter().map(|n| n.iter().sum()).collect();
        let total: u128 = sums.iter().map(|&s| s as u128).sum();
        (total / sums.len().max(1) as u128) as Ns + cfg.barrier_ns * cfg.iterations
    };
    ClusterResult {
        app: app.name.to_string(),
        iteration_ns,
        total_ns,
        mean_node_ns,
        fabric: Some(rep),
        coverage: rec.cov,
        trace: rec.trace,
        metrics,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_cluster;
    use ksa_kernel::coverage::is_error_block;
    use ksa_kernel::{Arg, Call, Program, SysNo};
    use ksa_tailbench::apps::suite;

    fn corpus() -> Corpus {
        Corpus {
            programs: vec![Program {
                calls: vec![
                    Call::new(SysNo::Mmap, vec![Arg::Const(128), Arg::Const(1)]),
                    Call::new(SysNo::Munmap, vec![Arg::Ref(0)]),
                ],
            }],
        }
    }

    fn recovery_blocks(cov: &CoverageSet) -> (usize, usize) {
        let mut rec_n = 0;
        let mut err_n = 0;
        for id in cov.iter() {
            let name = ksa_kernel::coverage::block_name(id);
            if name.starts_with("recovery.cluster.") {
                rec_n += 1;
            }
            if is_error_block(id) {
                err_n += 1;
            }
        }
        (rec_n, err_n)
    }

    #[test]
    fn faulted_run_with_empty_plan_matches_healthy() {
        let app = &suite()[1];
        let cfg = ClusterConfig::quick(false, true, 23);
        let healthy = run_cluster(app, &cfg, &corpus());
        let faulted = run_cluster_faulted(
            app,
            &cfg,
            &corpus(),
            &NodeFaultPlan::none(),
            &FabricConfig::quick(),
        );
        assert_eq!(healthy.iteration_ns, faulted.iteration_ns);
        assert_eq!(healthy.total_ns, faulted.total_ns);
        assert_eq!(healthy.mean_node_ns, faulted.mean_node_ns);
        let rep = faulted.fabric.unwrap();
        assert_eq!(rep.retransmits, 0);
        assert_eq!(rep.reassignments, 0);
        assert!(rep.conserved());
        assert_eq!(
            rep.expected_completions,
            cfg.nodes as u64 * cfg.iterations,
            "every node completes every barrier"
        );
        assert!(faulted.coverage.is_empty(), "no recovery path lit up");
    }

    #[test]
    fn node_crash_is_detected_reassigned_and_bounded() {
        let app = &suite()[1];
        let cfg = ClusterConfig::quick(false, false, 29);
        let healthy = run_cluster(app, &cfg, &corpus());
        // Crash node 5 permanently mid-run (~iteration 2 of 5).
        let plan = NodeFaultPlan::new(29).crash(5, 1_000_000, 0);
        let faulted = run_cluster_faulted(app, &cfg, &corpus(), &plan, &FabricConfig::quick());
        assert_eq!(
            faulted.iteration_ns.len(),
            cfg.iterations as usize,
            "the barrier must not hang"
        );
        let rep = faulted.fabric.clone().unwrap();
        assert_eq!(rep.crash_detections, 1, "one dead declaration");
        assert!(rep.reexecs >= 1, "the crash-iteration shard is re-executed");
        assert!(
            rep.reassignments >= 1,
            "later iterations reassign the dead shard ahead of time"
        );
        assert!(rep.conserved(), "survivor completions all arrive");
        assert_eq!(rep.unserved_shards, 0, "all shards accounted for");
        // Recovery costs time, but boundedly so.
        assert!(faulted.total_ns > healthy.total_ns);
        assert!(
            faulted.slowdown_vs(&healthy) < 3.0,
            "slowdown {} unbounded",
            faulted.slowdown_vs(&healthy)
        );
        let (rec_n, err_n) = recovery_blocks(&faulted.coverage);
        assert!(rec_n >= 3, "recovery.cluster.* blocks: {rec_n}");
        assert!(err_n >= 2, "err.cluster.* blocks: {err_n}");
        assert!(faulted.trace.total_events() > 0, "recovery steps traced");
    }

    #[test]
    fn crashed_node_reboots_and_rejoins() {
        let app = &suite()[1];
        let cfg = ClusterConfig::quick(false, false, 31);
        // Down for ~2 iterations, then back.
        let plan = NodeFaultPlan::new(31).crash(2, 800_000, 1_500_000);
        let faulted = run_cluster_faulted(app, &cfg, &corpus(), &plan, &FabricConfig::quick());
        let rep = faulted.fabric.unwrap();
        assert_eq!(rep.rejoins, 1, "the reboot rejoins the membership");
        assert!(rep.conserved());
        assert!(faulted
            .coverage
            .iter()
            .any(|id| ksa_kernel::coverage::block_name(id) == "recovery.cluster.rejoin"));
    }

    #[test]
    fn healed_partition_retransmits_and_conserves_completions() {
        let app = &suite()[1];
        let cfg = ClusterConfig::quick(false, false, 37);
        let plan = NodeFaultPlan::new(37).partition(500_000, 2_200_000, vec![2, 3]);
        let faulted = run_cluster_faulted(app, &cfg, &corpus(), &plan, &FabricConfig::quick());
        let rep = faulted.fabric.unwrap();
        assert!(rep.retransmits > 0, "partitioned sends must retry");
        assert!(
            rep.conserved(),
            "heal conserves completions: {} of {} (lost {})",
            rep.completions,
            rep.expected_completions,
            rep.lost_completions
        );
        assert_eq!(rep.crash_detections, 0, "nobody died");
        let (rec_n, err_n) = recovery_blocks(&faulted.coverage);
        assert!(rec_n >= 1 && err_n >= 1);
    }

    #[test]
    fn lossy_links_dedup_duplicate_completions() {
        let app = &suite()[1];
        let cfg = ClusterConfig::quick(false, false, 41);
        let plan = NodeFaultPlan::new(41).drop_prob_milli(400);
        let faulted = run_cluster_faulted(app, &cfg, &corpus(), &plan, &FabricConfig::quick());
        let rep = faulted.fabric.unwrap();
        assert!(rep.retransmits > 0);
        assert!(
            rep.dup_completions_dropped > 0,
            "a lost ack must produce a deduped duplicate at p=0.4"
        );
        assert!(rep.conserved(), "dedup keeps completions exactly-once");
    }

    #[test]
    fn fully_failed_run_stays_defined() {
        let app = &suite()[1];
        let mut cfg = ClusterConfig::quick(false, false, 43);
        cfg.iterations = 3;
        let mut plan = NodeFaultPlan::new(43);
        for n in 0..cfg.nodes {
            plan = plan.crash(n, 0, 0);
        }
        let faulted = run_cluster_faulted(app, &cfg, &corpus(), &plan, &FabricConfig::quick());
        let rep = faulted.fabric.clone().unwrap();
        assert!(rep.failed_iters > 0);
        assert!(rep.unserved_shards > 0);
        assert!(faulted.straggler_factor().is_finite());
        assert!(faulted.slowdown_vs(&faulted).is_finite());
        assert_eq!(rep.completion_ratio(), 1.0, "empty expectation is trivial");
        assert_eq!(faulted.iteration_ns.len(), cfg.iterations as usize);
    }

    #[test]
    fn faulted_replay_and_pool_width_are_bit_identical() {
        let app = &suite()[1];
        let mut cfg = ClusterConfig::quick(false, true, 47);
        let plan = NodeFaultPlan::new(47)
            .crash(1, 900_000, 1_200_000)
            .partition(300_000, 1_500_000, vec![4, 5])
            .drop_prob_milli(100);
        cfg.threads = 1;
        let seq = run_cluster_faulted(app, &cfg, &corpus(), &plan, &FabricConfig::quick());
        for threads in [4usize, 16] {
            cfg.threads = threads;
            let par = run_cluster_faulted(app, &cfg, &corpus(), &plan, &FabricConfig::quick());
            assert_eq!(seq.iteration_ns, par.iteration_ns, "threads={threads}");
            assert_eq!(seq.fabric, par.fabric, "threads={threads}");
        }
        let replay = run_cluster_faulted(app, &cfg, &corpus(), &plan, &FabricConfig::quick());
        assert_eq!(replay.iteration_ns, {
            cfg.threads = 16;
            run_cluster_faulted(app, &cfg, &corpus(), &plan, &FabricConfig::quick()).iteration_ns
        });
    }
}
