//! JSON round-trips for cluster-run configuration through `ksa-json` —
//! the first step toward a fully-composable, programmatically-generated
//! `RunConfig` for the surface-area autotuner: a [`ClusterConfig`] plus
//! a [`NodeFaultPlan`] and a [`FabricConfig`] fully describe a failover
//! trial, so sweeps can be generated, persisted and replayed from disk.

use ksa_desim::{Backoff, LinkDegrade, LinkPartition, NodeCrash, NodeFaultPlan, NsWindow};
use ksa_envsim::Machine;
use ksa_json::{Error, Value};
use ksa_tailbench::single_node::SingleNodeConfig;

use crate::{ClusterConfig, FabricConfig};

/// Serializes a [`ClusterConfig`] (including its nested node/machine
/// configuration) as a JSON object.
pub fn cluster_config_to_json(cfg: &ClusterConfig) -> Value {
    Value::object([
        ("nodes", Value::from(cfg.nodes as u64)),
        ("iterations", Value::from(cfg.iterations)),
        ("requests_per_iter", Value::from(cfg.requests_per_iter)),
        ("barrier_ns", Value::from(cfg.barrier_ns)),
        ("threads", Value::from(cfg.threads as u64)),
        (
            "node",
            Value::object([
                ("cores", Value::from(cfg.node.machine.cores as u64)),
                ("mem_mib", Value::from(cfg.node.machine.mem_mib)),
                ("groups", Value::from(cfg.node.groups as u64)),
                ("virt", Value::Bool(cfg.node.virt)),
                ("noise", Value::Bool(cfg.node.noise)),
                ("requests", Value::from(cfg.node.requests)),
                ("warmup", Value::from(cfg.node.warmup as u64)),
                ("util_pct", Value::from(cfg.node.util_pct)),
                ("trace", Value::Bool(cfg.node.trace)),
                ("metrics", Value::Bool(cfg.node.metrics)),
                ("seed", Value::from(cfg.node.seed)),
            ]),
        ),
    ])
}

/// Parses a [`ClusterConfig`] back from [`cluster_config_to_json`]'s
/// shape, naming the offending key on mismatch.
pub fn cluster_config_from_json(v: &Value) -> Result<ClusterConfig, Error> {
    let node = v.get("node")?;
    Ok(ClusterConfig {
        nodes: v.get("nodes")?.as_u64()? as usize,
        iterations: v.get("iterations")?.as_u64()?,
        requests_per_iter: v.get("requests_per_iter")?.as_u64()?,
        barrier_ns: v.get("barrier_ns")?.as_u64()?,
        threads: v.get("threads")?.as_u64()? as usize,
        node: SingleNodeConfig {
            machine: Machine {
                cores: node.get("cores")?.as_u64()? as usize,
                mem_mib: node.get("mem_mib")?.as_u64()?,
            },
            groups: node.get("groups")?.as_u64()? as usize,
            virt: node.get("virt")?.as_bool()?,
            noise: node.get("noise")?.as_bool()?,
            requests: node.get("requests")?.as_u64()?,
            warmup: node.get("warmup")?.as_u64()? as usize,
            util_pct: node.get("util_pct")?.as_u64()?,
            trace: node.get("trace")?.as_bool()?,
            metrics: node.get("metrics")?.as_bool()?,
            seed: node.get("seed")?.as_u64()?,
            spec: None,
        },
    })
}

fn window_to_json(w: &NsWindow) -> Value {
    Value::object([("start", Value::from(w.start)), ("end", Value::from(w.end))])
}

fn window_from_json(v: &Value) -> Result<NsWindow, Error> {
    Ok(NsWindow {
        start: v.get("start")?.as_u64()?,
        end: v.get("end")?.as_u64()?,
    })
}

fn island_from_json(v: &Value) -> Result<Vec<usize>, Error> {
    v.get("island")?
        .as_array()?
        .iter()
        .map(|n| n.as_u64().map(|u| u as usize))
        .collect()
}

/// Serializes a [`NodeFaultPlan`] as a JSON object.
pub fn node_fault_plan_to_json(plan: &NodeFaultPlan) -> Value {
    Value::object([
        ("seed", Value::from(plan.seed)),
        ("drop_milli", Value::from(plan.drop_milli as u64)),
        (
            "crashes",
            Value::array(plan.crashes.iter().map(|c| {
                Value::object([
                    ("node", Value::from(c.node as u64)),
                    ("at", Value::from(c.at)),
                    ("down_for", Value::from(c.down_for)),
                ])
            })),
        ),
        (
            "partitions",
            Value::array(plan.partitions.iter().map(|p| {
                Value::object([
                    ("window", window_to_json(&p.window)),
                    (
                        "island",
                        Value::array(p.island.iter().map(|&n| Value::from(n as u64))),
                    ),
                ])
            })),
        ),
        (
            "degrades",
            Value::array(plan.degrades.iter().map(|d| {
                Value::object([
                    ("window", window_to_json(&d.window)),
                    (
                        "island",
                        Value::array(d.island.iter().map(|&n| Value::from(n as u64))),
                    ),
                    ("mult_milli", Value::from(d.mult_milli as u64)),
                ])
            })),
        ),
    ])
}

/// Parses a [`NodeFaultPlan`] back from
/// [`node_fault_plan_to_json`]'s shape.
pub fn node_fault_plan_from_json(v: &Value) -> Result<NodeFaultPlan, Error> {
    let crashes = v
        .get("crashes")?
        .as_array()?
        .iter()
        .map(|c| {
            Ok(NodeCrash {
                node: c.get("node")?.as_u64()? as usize,
                at: c.get("at")?.as_u64()?,
                down_for: c.get("down_for")?.as_u64()?,
            })
        })
        .collect::<Result<Vec<_>, Error>>()?;
    let partitions = v
        .get("partitions")?
        .as_array()?
        .iter()
        .map(|p| {
            Ok(LinkPartition {
                window: window_from_json(p.get("window")?)?,
                island: island_from_json(p)?,
            })
        })
        .collect::<Result<Vec<_>, Error>>()?;
    let degrades = v
        .get("degrades")?
        .as_array()?
        .iter()
        .map(|d| {
            Ok(LinkDegrade {
                window: window_from_json(d.get("window")?)?,
                island: island_from_json(d)?,
                mult_milli: d.get("mult_milli")?.as_u64()? as u32,
            })
        })
        .collect::<Result<Vec<_>, Error>>()?;
    Ok(NodeFaultPlan {
        seed: v.get("seed")?.as_u64()?,
        drop_milli: v.get("drop_milli")?.as_u64()? as u32,
        crashes,
        partitions,
        degrades,
    })
}

/// Serializes a [`FabricConfig`] as a JSON object.
pub fn fabric_config_to_json(fab: &FabricConfig) -> Value {
    Value::object([
        ("heartbeat_ns", Value::from(fab.heartbeat_ns)),
        ("suspect_misses", Value::from(fab.suspect_misses as u64)),
        ("dead_misses", Value::from(fab.dead_misses as u64)),
        ("link_ns", Value::from(fab.link_ns)),
        ("backoff_base_ns", Value::from(fab.backoff.base_ns)),
        ("backoff_cap_ns", Value::from(fab.backoff.cap_ns)),
        (
            "backoff_jitter_milli",
            Value::from(fab.backoff.jitter_milli as u64),
        ),
        ("max_attempts", Value::from(fab.max_attempts as u64)),
    ])
}

/// Parses a [`FabricConfig`] back from [`fabric_config_to_json`]'s shape.
pub fn fabric_config_from_json(v: &Value) -> Result<FabricConfig, Error> {
    Ok(FabricConfig {
        heartbeat_ns: v.get("heartbeat_ns")?.as_u64()?,
        suspect_misses: v.get("suspect_misses")?.as_u64()? as u32,
        dead_misses: v.get("dead_misses")?.as_u64()? as u32,
        link_ns: v.get("link_ns")?.as_u64()?,
        backoff: Backoff::new(
            v.get("backoff_base_ns")?.as_u64()?,
            v.get("backoff_cap_ns")?.as_u64()?,
            v.get("backoff_jitter_milli")?.as_u64()? as u32,
        ),
        max_attempts: v.get("max_attempts")?.as_u64()? as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_config_roundtrips_through_json_text() {
        for cfg in [
            ClusterConfig::paper(true, false, 7),
            ClusterConfig::quick(false, true, 99),
        ] {
            let text = cluster_config_to_json(&cfg).render();
            let back = cluster_config_from_json(&ksa_json::parse(&text).unwrap()).unwrap();
            // ClusterConfig is not PartialEq (nested machine); compare
            // the canonical JSON forms instead.
            assert_eq!(text, cluster_config_to_json(&back).render());
            assert_eq!(back.nodes, cfg.nodes);
            assert_eq!(back.node.seed, cfg.node.seed);
            assert_eq!(back.node.virt, cfg.node.virt);
        }
    }

    #[test]
    fn node_fault_plan_roundtrips_exactly() {
        let plan = NodeFaultPlan::new(0xfeed_beef_dead_cafe)
            .crash(3, 1_000_000, 500_000)
            .crash(60, 2_000_000, 0)
            .partition(100, 90_000, vec![0, 1, 2])
            .degrade(5, 0, vec![7], 4000)
            .drop_prob_milli(125);
        let text = node_fault_plan_to_json(&plan).render();
        let back = node_fault_plan_from_json(&ksa_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, plan, "NodeFaultPlan is PartialEq: exact roundtrip");

        let empty = NodeFaultPlan::none();
        let text = node_fault_plan_to_json(&empty).render();
        let back = node_fault_plan_from_json(&ksa_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, empty);
        assert!(back.is_empty());
    }

    #[test]
    fn fabric_config_roundtrips_exactly() {
        for fab in [FabricConfig::default(), FabricConfig::quick()] {
            let text = fabric_config_to_json(&fab).render();
            let back = fabric_config_from_json(&ksa_json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, fab, "FabricConfig is PartialEq: exact roundtrip");
        }
    }

    #[test]
    fn shape_errors_name_the_missing_key() {
        let v = ksa_json::parse("{\"seed\": 1}").unwrap();
        let err = node_fault_plan_from_json(&v).unwrap_err();
        assert!(err.to_string().contains("crashes"), "{err}");
    }
}
