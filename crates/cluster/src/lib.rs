//! # ksa-cluster — BSP-style multi-node deployments (Figure 4)
//!
//! The paper's final experiment runs each tailbench application on 64
//! Chameleon nodes: every node serves a fixed number of *local* requests
//! per iteration, a global MPI barrier separates iterations, and the run
//! is 50 iterations long. No inter-node traffic sits on the critical path
//! — which means node simulations are independent and the barrier
//! semantics reduce to taking, per iteration, the **max** over nodes'
//! durations. Straggler amplification (the paper's point) falls out: a
//! heavy per-node tail makes `max` over 64 nodes land in the tail almost
//! every iteration.
//!
//! Node simulations run concurrently on the deterministic work-stealing
//! pool (`ksa_desim::pool`); each node is one single-threaded engine run
//! with a seed derived from the node index, so the whole experiment is
//! bit-identical for every worker count, including the sequential
//! (`threads == 1`) baseline.

use ksa_desim::{Ns, TraceLog};
use ksa_kernel::coverage::CoverageSet;
use ksa_kernel::prog::Corpus;
use ksa_tailbench::apps::AppProfile;
use ksa_tailbench::single_node::{run_node_batched, SingleNodeConfig};

pub mod fabric;
pub mod serde;

pub use fabric::{run_cluster_faulted, FabricConfig, FabricReport};

/// Configuration of one cluster run.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of nodes (the paper uses 64).
    pub nodes: usize,
    /// Iterations with a barrier between each (the paper uses 50).
    pub iterations: u64,
    /// Requests each node serves per iteration.
    pub requests_per_iter: u64,
    /// Per-node configuration (machine, virt/container split, noise).
    pub node: SingleNodeConfig,
    /// Per-iteration barrier cost added after the max (network
    /// allreduce latency).
    pub barrier_ns: Ns,
    /// Pool workers used to simulate nodes (0 = auto: `KSA_JOBS` or
    /// available parallelism; 1 = sequential).
    pub threads: usize,
}

impl ClusterConfig {
    /// The paper's configuration: 64 nodes, 50 iterations, one NUMA
    /// socket per app (we model the socket as a 24-core machine split in
    /// two: the app's half and the noise corpus's half).
    pub fn paper(virt: bool, noise: bool, seed: u64) -> Self {
        Self {
            nodes: 64,
            iterations: 50,
            requests_per_iter: 200,
            node: SingleNodeConfig {
                machine: ksa_envsim::Machine {
                    cores: 24,
                    mem_mib: 64 * 1024,
                },
                groups: 2,
                virt,
                noise,
                requests: 0, // unused in batched mode
                warmup: 0,
                // BSP batches are throughput-oriented: clients push the
                // servers near capacity, so service-time inflation from
                // kernel interference directly becomes drain time.
                util_pct: 92,
                trace: false,
                metrics: false,
                seed,
                spec: None,
            },
            barrier_ns: 40_000, // ~40µs allreduce on a cluster fabric
            threads: 0,         // auto: results are thread-count-invariant
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick(virt: bool, noise: bool, seed: u64) -> Self {
        Self {
            nodes: 8,
            iterations: 5,
            requests_per_iter: 40,
            node: SingleNodeConfig {
                machine: ksa_envsim::Machine {
                    cores: 8,
                    mem_mib: 8 * 1024,
                },
                groups: 2,
                virt,
                noise,
                requests: 0,
                warmup: 0,
                util_pct: 92,
                trace: false,
                metrics: false,
                seed,
                spec: None,
            },
            barrier_ns: 40_000,
            threads: 0,
        }
    }
}

/// Result of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Application name.
    pub app: String,
    /// Per-iteration durations (max over nodes, plus barrier cost).
    pub iteration_ns: Vec<Ns>,
    /// Total runtime: sum over iterations.
    pub total_ns: Ns,
    /// Mean over nodes of per-node total busy time (what the runtime
    /// would be without stragglers — the BSP efficiency baseline).
    pub mean_node_ns: Ns,
    /// Recovery-machinery counters (faulted runs only).
    pub fabric: Option<FabricReport>,
    /// `err.cluster.*` / `recovery.cluster.*` blocks the recovery path
    /// lit up (empty for healthy runs).
    pub coverage: CoverageSet,
    /// Per-node fabric trace rings (empty for healthy runs).
    pub trace: TraceLog,
    /// Telemetry merged across nodes, each node's series labelled
    /// `node=<index>` (inert unless [`SingleNodeConfig::metrics`]).
    pub metrics: ksa_telemetry::Registry,
    /// Engine events processed, summed over every node simulation —
    /// the simulated-work unit the bench suite converts to
    /// events/second throughput.
    pub events: u64,
}

impl ClusterResult {
    /// Straggler amplification: total runtime over the no-straggler
    /// baseline. 1.0 = perfectly balanced. Total for every input: a
    /// fully-failed or zero-iteration run (zero baseline) reports 1.0
    /// instead of leaking NaN/∞ into JSON output.
    pub fn straggler_factor(&self) -> f64 {
        if self.mean_node_ns == 0 {
            return 1.0;
        }
        let f = self.total_ns as f64 / self.mean_node_ns as f64;
        if f.is_finite() {
            f
        } else {
            1.0
        }
    }

    /// Slowdown of this run over a healthy reference, guarded the same
    /// way: a zero or degenerate reference reports 1.0, never ∞.
    pub fn slowdown_vs(&self, healthy: &ClusterResult) -> f64 {
        if healthy.total_ns == 0 {
            return 1.0;
        }
        let f = self.total_ns as f64 / healthy.total_ns as f64;
        if f.is_finite() {
            f
        } else {
            1.0
        }
    }

    /// Mean iteration duration, defined (0) for zero-iteration runs.
    pub fn mean_iteration_ns(&self) -> u64 {
        if self.iteration_ns.is_empty() {
            return 0;
        }
        (self.iteration_ns.iter().map(|&n| n as u128).sum::<u128>()
            / self.iteration_ns.len() as u128) as u64
    }
}

/// Runs `app` across the cluster and combines iteration times with
/// barrier (max) semantics.
pub fn run_cluster(app: &AppProfile, cfg: &ClusterConfig, noise_corpus: &Corpus) -> ClusterResult {
    // Each node simulation yields `iterations` durations.
    let per_node = run_nodes(app, cfg, noise_corpus);
    let metrics = merge_node_metrics(&per_node);
    let events = per_node.iter().map(|(_, _, e)| e).sum();

    let mut iteration_ns = Vec::with_capacity(cfg.iterations as usize);
    for it in 0..cfg.iterations as usize {
        let max = per_node
            .iter()
            .map(|(n, _, _)| n.get(it).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        iteration_ns.push(max + cfg.barrier_ns);
    }
    let total_ns = iteration_ns.iter().sum();
    let mean_node_ns = {
        let sums: Vec<Ns> = per_node.iter().map(|(n, _, _)| n.iter().sum()).collect();
        let total: u128 = sums.iter().map(|&s| s as u128).sum();
        (total / sums.len().max(1) as u128) as Ns + cfg.barrier_ns * cfg.iterations
    };
    ClusterResult {
        app: app.name.to_string(),
        iteration_ns,
        total_ns,
        mean_node_ns,
        fabric: None,
        coverage: CoverageSet::new(),
        trace: TraceLog::default(),
        metrics,
        events,
    }
}

/// Folds per-node registries into one, labelling each node's series
/// `node=<index>`. Inert (and allocation-free) when nodes ran without
/// telemetry.
pub(crate) fn merge_node_metrics(
    per_node: &[(Vec<Ns>, ksa_telemetry::Registry, u64)],
) -> ksa_telemetry::Registry {
    let mut merged = ksa_telemetry::Registry::disabled();
    for (i, (_, reg, _)) in per_node.iter().enumerate() {
        let node = i.to_string();
        merged.absorb(reg, &[("node", node.as_str())]);
    }
    merged
}

/// Simulates every node on the work-stealing pool, returning per-node
/// `(iteration durations, telemetry, engine events)` in node order.
/// Node seeds derive from the node *index*, so scheduling cannot reach
/// the simulated results.
pub(crate) fn run_nodes(
    app: &AppProfile,
    cfg: &ClusterConfig,
    noise_corpus: &Corpus,
) -> Vec<(Vec<Ns>, ksa_telemetry::Registry, u64)> {
    ksa_desim::pool::parallel_indexed(cfg.threads, cfg.nodes, |node| {
        let mut node_cfg = cfg.node;
        node_cfg.seed = cfg
            .node
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(node as u64);
        let res = run_node_batched(
            app,
            &node_cfg,
            noise_corpus,
            cfg.iterations,
            cfg.requests_per_iter,
        );
        (res.batch_durations, res.metrics, res.events)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_kernel::{Arg, Call, Program, SysNo};
    use ksa_tailbench::apps::{cluster_suite, suite};

    fn corpus() -> Corpus {
        // Shootdown/scheduler-heavy noise: the strongest cross-core
        // coupling mechanisms, so the quick-scale test sees the effect.
        Corpus {
            programs: vec![Program {
                calls: vec![
                    Call::new(SysNo::Mmap, vec![Arg::Const(128), Arg::Const(1)]),
                    Call::new(SysNo::Munmap, vec![Arg::Ref(0)]),
                    Call::new(SysNo::Mmap, vec![Arg::Const(200), Arg::Const(1)]),
                    Call::new(SysNo::Munmap, vec![Arg::Ref(2)]),
                    Call::new(SysNo::Clone, vec![Arg::Const(0)]),
                    Call::new(SysNo::Wait4, vec![Arg::Ref(4)]),
                ],
            }],
        }
    }

    #[test]
    fn cluster_run_produces_all_iterations() {
        let app = &suite()[1]; // masstree
        let cfg = ClusterConfig::quick(false, false, 3);
        let res = run_cluster(app, &cfg, &corpus());
        assert_eq!(res.iteration_ns.len(), cfg.iterations as usize);
        assert_eq!(res.total_ns, res.iteration_ns.iter().sum::<u64>());
        assert!(res.total_ns > 0);
    }

    #[test]
    fn straggler_factor_at_least_one() {
        let app = &suite()[1];
        let cfg = ClusterConfig::quick(false, true, 5);
        let res = run_cluster(app, &cfg, &corpus());
        assert!(
            res.straggler_factor() >= 0.99,
            "max-combining cannot beat the mean: {}",
            res.straggler_factor()
        );
    }

    #[test]
    fn noise_slows_shared_kernel_more_at_scale() {
        let app = cluster_suite()
            .into_iter()
            .find(|a| a.name == "xapian")
            .unwrap();
        let quiet = run_cluster(&app, &ClusterConfig::quick(false, false, 7), &corpus());
        let noisy = run_cluster(&app, &ClusterConfig::quick(false, true, 7), &corpus());
        assert!(
            noisy.total_ns > quiet.total_ns,
            "syscall noise must slow the shared-kernel cluster"
        );
    }

    #[test]
    fn determinism_across_runs() {
        let app = &suite()[6];
        let cfg = ClusterConfig::quick(true, false, 11);
        let a = run_cluster(app, &cfg, &corpus());
        let b = run_cluster(app, &cfg, &corpus());
        assert_eq!(a.iteration_ns, b.iteration_ns);
    }

    #[test]
    fn node_metrics_merge_with_node_labels_and_stay_neutral() {
        let app = &suite()[1];
        let mut cfg = ClusterConfig::quick(false, false, 9);
        cfg.nodes = 3;
        let off = run_cluster(app, &cfg, &corpus());
        cfg.node.metrics = true;
        let on = run_cluster(app, &cfg, &corpus());
        assert_eq!(
            off.iteration_ns, on.iteration_ns,
            "telemetry must not move cluster results"
        );
        assert!(!off.metrics.enabled());
        assert!(on.metrics.enabled());
        // Every node contributed a labelled copy of its series.
        for node in ["0", "1", "2"] {
            let label = [("tenant", "0"), ("node", node)];
            let reqs = on.metrics.value_of("tenant_requests", &label);
            assert_eq!(
                reqs,
                Some(cfg.iterations * cfg.requests_per_iter),
                "node {node}: per-node request count"
            );
        }
        assert_eq!(
            on.metrics.total("tenant_requests"),
            cfg.nodes as u64 * cfg.iterations * cfg.requests_per_iter
        );
    }

    #[test]
    fn worker_count_does_not_reach_the_simulation() {
        // The Figure 4 acceptance shape: per-node results must be
        // bit-identical whether nodes are simulated sequentially or on
        // a pool wider than the node count.
        let app = &suite()[1];
        let mut cfg = ClusterConfig::quick(false, true, 13);
        cfg.threads = 1;
        let seq = run_cluster(app, &cfg, &corpus());
        for threads in [3usize, 16] {
            cfg.threads = threads;
            let par = run_cluster(app, &cfg, &corpus());
            assert_eq!(seq.iteration_ns, par.iteration_ns, "threads={threads}");
            assert_eq!(seq.total_ns, par.total_ns, "threads={threads}");
            assert_eq!(seq.mean_node_ns, par.mean_node_ns, "threads={threads}");
        }
    }
}
