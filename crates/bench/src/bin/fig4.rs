//! Regenerates Figure 4: multi-node BSP runtimes, isolated versus
//! multi-tenant, KVM versus Docker.

use ksa_bench::{cell_ns, Cli};
use ksa_core::experiments::{fig4_metered, noise_corpus};

fn main() {
    let cli = Cli::parse();
    let noise = noise_corpus(cli.scale);
    let (rows, metered) = fig4_metered(&noise, cli.scale, cli.seed, cli.jobs, cli.metrics());

    println!("Figure 4(a): cluster runtime, isolated");
    println!("{:<12}{:>14}{:>14}", "app", "KVM", "Docker");
    for r in &rows {
        println!(
            "{:<12}{:>14}{:>14}",
            r.app,
            cell_ns(r.kvm_isolated),
            cell_ns(r.docker_isolated)
        );
    }
    println!("\nFigure 4(b): cluster runtime, multi-tenant");
    println!(
        "{:<12}{:>14}{:>14}{:>12}",
        "app", "KVM", "Docker", "KVM adv %"
    );
    for r in &rows {
        let adv =
            100.0 * (r.docker_noise as f64 - r.kvm_noise as f64) / r.docker_noise.max(1) as f64;
        println!(
            "{:<12}{:>14}{:>14}{:>12.1}",
            r.app,
            cell_ns(r.kvm_noise),
            cell_ns(r.docker_noise),
            adv
        );
    }
    println!("\nFigure 4(c): relative runtime loss isolated -> multi-tenant (%)");
    println!("{:<12}{:>12}{:>12}", "app", "KVM %", "Docker %");
    let mut csv = String::from(
        "app,kvm_isolated_ns,docker_isolated_ns,kvm_noise_ns,docker_noise_ns,kvm_loss_pct,docker_loss_pct\n",
    );
    for r in &rows {
        println!(
            "{:<12}{:>12.1}{:>12.1}",
            r.app,
            r.kvm_loss_pct(),
            r.docker_loss_pct()
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{:.2},{:.2}\n",
            r.app,
            r.kvm_isolated,
            r.docker_isolated,
            r.kvm_noise,
            r.docker_noise,
            r.kvm_loss_pct(),
            r.docker_loss_pct()
        ));
    }
    cli.write_csv("fig4", &csv);
    cli.write_metrics("fig4", &metered.registry, &metered.frames);
}
