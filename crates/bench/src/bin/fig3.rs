//! Regenerates Figure 3: single-node tailbench p99 latencies, isolated
//! versus with a 48-core syscall-noise corpus, KVM versus Docker.

use ksa_bench::{cell_ns, Cli};
use ksa_core::experiments::{fig3_metered, noise_corpus};

fn main() {
    let cli = Cli::parse();
    let noise = noise_corpus(cli.scale);
    let (rows, metered) = fig3_metered(&noise, cli.scale, cli.seed, cli.jobs, cli.metrics());

    println!("Figure 3(a): 99th percentile latency, isolated");
    println!("{:<12}{:>14}{:>14}", "app", "KVM", "Docker");
    for r in &rows {
        println!(
            "{:<12}{:>14}{:>14}",
            r.app,
            cell_ns(r.kvm_isolated),
            cell_ns(r.docker_isolated)
        );
    }
    println!("\nFigure 3(b): 99th percentile latency, with syscall noise");
    println!("{:<12}{:>14}{:>14}", "app", "KVM", "Docker");
    for r in &rows {
        println!(
            "{:<12}{:>14}{:>14}",
            r.app,
            cell_ns(r.kvm_noise),
            cell_ns(r.docker_noise)
        );
    }
    println!("\nFigure 3(c): p99 increase isolated -> contended (%)");
    println!("{:<12}{:>12}{:>12}", "app", "KVM %", "Docker %");
    let mut csv = String::from(
        "app,kvm_isolated_ns,docker_isolated_ns,kvm_noise_ns,docker_noise_ns,kvm_incr_pct,docker_incr_pct\n",
    );
    for r in &rows {
        println!(
            "{:<12}{:>12.1}{:>12.1}",
            r.app,
            r.kvm_increase_pct(),
            r.docker_increase_pct()
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{:.2},{:.2}\n",
            r.app,
            r.kvm_isolated,
            r.docker_isolated,
            r.kvm_noise,
            r.docker_noise,
            r.kvm_increase_pct(),
            r.docker_increase_pct()
        ));
    }
    let avg_kvm: f64 = rows.iter().map(|r| r.kvm_increase_pct()).sum::<f64>() / rows.len() as f64;
    let avg_docker: f64 =
        rows.iter().map(|r| r.docker_increase_pct()).sum::<f64>() / rows.len() as f64;
    println!("\naverage increase: KVM {avg_kvm:.1}%  Docker {avg_docker:.1}%");
    cli.write_csv("fig3", &csv);
    cli.write_metrics("fig3", &metered.registry, &metered.frames);
}
