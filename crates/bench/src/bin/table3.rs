//! Regenerates Table 3: worst-case syscall runtimes in Docker as the
//! container count grows.

use ksa_bench::Cli;
use ksa_core::experiments::{default_corpus, table3_metered};

fn main() {
    let cli = Cli::parse();
    let corpus = default_corpus(cli.scale);
    let (table, metered) =
        table3_metered(&corpus.corpus, cli.scale, cli.seed, cli.jobs, cli.metrics());
    println!("{}", table.render());
    cli.write_csv("table3", &table.to_csv());
    cli.write_metrics("table3", &metered.registry, &metered.frames);
}
