//! Regenerates Table 3: worst-case syscall runtimes in Docker as the
//! container count grows.

use ksa_bench::Cli;
use ksa_core::experiments::{default_corpus, table3};

fn main() {
    let cli = Cli::parse();
    let corpus = default_corpus(cli.scale);
    let table = table3(&corpus.corpus, cli.scale, cli.seed);
    println!("{}", table.render());
    cli.write_csv("table3", &table.to_csv());
}
