//! High-density tenant churn ablation: VMs vs containers when tenant
//! count far exceeds core count, gated so regressions fail CI.
//!
//! For each density point (64 → 4096 tenants resident at peak, on an
//! 8-core machine) three deployments run the same seeded churn schedule
//! (see [`ksa_envsim::tenant`]):
//!
//! * **shared** — one kernel hosting every tenant as a container
//!   (per-tenant netfilter/conntrack hops and rootfs dentry pressure
//!   scale with density);
//! * **partitioned** — 4 KVM instances, each hosting a quarter of the
//!   tenants on a full kernel;
//! * **specialized** — the same 4 instances built from a
//!   coverage-derived profile of the tenant lifecycle, so unreached
//!   subsystems never materialize.
//!
//! Gates:
//!
//! 1. **hygiene** — every run conserves tenants (arrived == exited,
//!    nothing live after the last exit) and the post-churn fd/socket
//!    tables are bounded by peak concurrency (`fds.len() <=
//!    peak_open_fds` per slot, `socks.len() <= peak_socks` per
//!    instance). The pre-reuse allocator leaked one slot per descriptor
//!    ever opened and fails this at any density.
//! 2. **metrics** — every configuration reports cold-start and
//!    per-tenant p99 numbers (no silent empty runs).
//! 3. **footprint** — the specialized build allocates strictly fewer
//!    locks than the partitioned full kernel (the lifecycle touches
//!    every daemon-backed subsystem, so daemons only need `<=`).
//! 4. **determinism** — the whole sweep is bit-identical under replay
//!    and across `--jobs` pool widths.
//!
//! Exit code 1 on any gate failure.

use ksa_bench::{cell_ns, Cli};
use ksa_core::experiments::Scale;
use ksa_envsim::{ChurnParams, EnvKind, Machine};
use ksa_kernel::prog::{Arg, Call, Corpus, Program};
use ksa_kernel::SysNo;
use ksa_spec::derive_profile;
use ksa_tailbench::churn::{run_churn_points, ChurnConfig, ChurnResult};

/// The corpus a churn tenant's profile is derived from: the lifecycle
/// exactly as [`ksa_envsim::tenant::TenantHost`] compiles it — fork,
/// working set, loopback connection, request loop, teardown.
fn churn_corpus() -> Corpus {
    Corpus {
        programs: vec![
            // Setup: fork + working set + loopback connection.
            Program {
                calls: vec![
                    Call::new(SysNo::Clone, vec![Arg::Const(0)]),
                    Call::new(SysNo::Open, vec![Arg::Const(3), Arg::Const(1)]),
                    Call::new(SysNo::Mmap, vec![Arg::Const(24), Arg::Const(1)]),
                    Call::new(SysNo::Pwrite, vec![Arg::Ref(1), Arg::Const(2_048)]),
                    Call::new(SysNo::Socket, vec![Arg::Const(0)]),
                    Call::new(SysNo::Bind, vec![Arg::Ref(4), Arg::Const(1)]),
                    Call::new(SysNo::Listen, vec![Arg::Ref(4), Arg::Const(8)]),
                    Call::new(SysNo::Socket, vec![Arg::Const(0)]),
                    Call::new(SysNo::Connect, vec![Arg::Ref(7), Arg::Const(1)]),
                    Call::new(SysNo::Accept, vec![Arg::Ref(4)]),
                    Call::new(SysNo::Close, vec![Arg::Ref(4)]),
                ],
            },
            // One request: loopback round trip + file read.
            Program {
                calls: vec![
                    Call::new(SysNo::Socket, vec![Arg::Const(0)]),
                    Call::new(SysNo::Sendto, vec![Arg::Ref(0), Arg::Const(512)]),
                    Call::new(SysNo::Recvfrom, vec![Arg::Ref(0), Arg::Const(512)]),
                    Call::new(SysNo::Open, vec![Arg::Const(5), Arg::Const(1)]),
                    Call::new(SysNo::Pread, vec![Arg::Ref(3), Arg::Const(512)]),
                ],
            },
            // Teardown: close, unmap, reap.
            Program {
                calls: vec![
                    Call::new(SysNo::Open, vec![Arg::Const(7), Arg::Const(1)]),
                    Call::new(SysNo::Close, vec![Arg::Ref(0)]),
                    Call::new(SysNo::Mmap, vec![Arg::Const(24), Arg::Const(1)]),
                    Call::new(SysNo::Munmap, vec![Arg::Ref(2)]),
                    Call::new(SysNo::Clone, vec![Arg::Const(0)]),
                    Call::new(SysNo::Wait4, vec![Arg::Ref(4)]),
                ],
            },
        ],
    }
}

struct Gates {
    failures: u32,
}

impl Gates {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        let verdict = if ok { "ok  " } else { "FAIL" };
        println!("  [{verdict}] {name}: {detail}");
        if !ok {
            self.failures += 1;
        }
    }
}

fn main() {
    let cli = Cli::parse();
    let densities: &[usize] = match cli.scale {
        Scale::Tiny => &[64],
        Scale::Quick => &[64, 256, 1024],
        Scale::Full => &[64, 256, 1024, 4096],
    };
    let machine = Machine {
        cores: 8,
        mem_mib: 8 * 1024,
    };

    let profile = derive_profile("churn", &churn_corpus(), cli.seed);
    println!(
        "ablation_churn: profile '{}' allows {}/{} syscalls; densities {:?}",
        profile.name,
        profile.mask.allowed_count(),
        SysNo::ALL.len(),
        densities
    );

    // Tenants ≫ cores at every point: total tenants = 2x the resident
    // density, so each point churns through the full population twice.
    let mk = |density: usize, kind: EnvKind, spec| ChurnConfig {
        machine,
        kind,
        params: ChurnParams::quick(density, 2 * density),
        seed: cli.seed,
        spec,
    };
    let mut names = Vec::new();
    let mut configs = Vec::new();
    for &d in densities {
        names.push(("shared", d));
        configs.push(mk(d, EnvKind::Container(d), None));
        names.push(("partitioned", d));
        configs.push(mk(d, EnvKind::Vm(4), None));
        names.push(("specialized", d));
        configs.push(mk(d, EnvKind::Vm(4), Some(profile.mask)));
    }

    let results = run_churn_points(&configs, cli.jobs);
    println!(
        "{:>12} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "config", "density", "cold p50", "cold p99", "req p99", "tenant p99", "krps"
    );
    for ((name, d), res) in names.iter().zip(&results) {
        println!(
            "{name:>12} {d:>8} {:>12} {:>12} {:>12} {:>12} {:>10.1}",
            cell_ns(res.cold_p50),
            cell_ns(res.cold_p99),
            cell_ns(res.req_p99),
            cell_ns(res.worst_tenant_p99),
            res.throughput_rps / 1e3,
        );
    }

    let mut gates = Gates { failures: 0 };

    // Gate 1: conservation + table hygiene on every run.
    let leaks: Vec<String> = names
        .iter()
        .zip(&results)
        .filter(|(_, r)| {
            r.arrived != r.exited
                || r.fd_open_after != 0
                || r.sock_live_after != 0
                || !r.tables_bounded
        })
        .map(|((n, d), r)| {
            format!(
                "{n}@{d} (arrived {} exited {} fds_open {} socks_live {} bounded {})",
                r.arrived, r.exited, r.fd_open_after, r.sock_live_after, r.tables_bounded
            )
        })
        .collect();
    gates.check(
        "hygiene/churn-conservation",
        leaks.is_empty(),
        if leaks.is_empty() {
            let r = &results[0];
            format!(
                "all runs clean; e.g. shared@{}: fd table {} <= peak {}, sock table {} <= peak {}",
                names[0].1, r.fd_table_len, r.fd_peak, r.sock_table_len, r.sock_peak
            )
        } else {
            leaks.join("; ")
        },
    );

    // Gate 2: every configuration produced real measurements.
    gates.check(
        "metrics/all-configs-report",
        results.iter().all(|r| {
            r.arrived > 0 && r.cold_p99 > 0 && r.worst_tenant_p99 > 0 && r.requests_completed > 0
        }),
        format!(
            "{} runs, {} total tenants churned, {} requests",
            results.len(),
            results.iter().map(|r| r.exited).sum::<u64>(),
            results.iter().map(|r| r.requests_completed).sum::<u64>()
        ),
    );

    // Gate 3: specialization strictly shrinks the lock footprint. (The
    // churn lifecycle touches every daemon-backed subsystem — sched,
    // mm, fs, net — so the daemon count legitimately stays put; the
    // ipc/perm lock groups are what collapse.)
    let (part, spec) = (&results[1], &results[2]);
    gates.check(
        "footprint/specialized-shrinks",
        spec.locks_allocated < part.locks_allocated && spec.daemons_spawned <= part.daemons_spawned,
        format!(
            "{} locks < partitioned {}, {} daemons <= {}",
            spec.locks_allocated, part.locks_allocated, spec.daemons_spawned, part.daemons_spawned
        ),
    );

    // Gate 4: replay + pool width cannot reach the results.
    let seq = run_churn_points(&configs, 1);
    let replay = run_churn_points(&configs, cli.jobs);
    let identical = |a: &ChurnResult, b: &ChurnResult| {
        a.digest == b.digest && a.sim_ns == b.sim_ns && a.events == b.events
    };
    gates.check(
        "determinism/jobs-and-replay",
        results.iter().zip(&seq).all(|(a, b)| identical(a, b))
            && results.iter().zip(&replay).all(|(a, b)| identical(a, b)),
        format!("--jobs 1 vs {} and replay digests bit-identical", cli.jobs),
    );

    let mut csv = String::from(
        "config,density,cold_p50_ns,cold_p99_ns,req_p99_ns,worst_tenant_p99_ns,\
         throughput_rps,tenants,requests,fd_table_len,fd_peak,sock_table_len,sock_peak,\
         sim_ns,events,digest\n",
    );
    for ((name, d), r) in names.iter().zip(&results) {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{:.1},{},{},{},{},{},{},{},{},{:#x}\n",
            name,
            d,
            r.cold_p50,
            r.cold_p99,
            r.req_p99,
            r.worst_tenant_p99,
            r.throughput_rps,
            r.exited,
            r.requests_completed,
            r.fd_table_len,
            r.fd_peak,
            r.sock_table_len,
            r.sock_peak,
            r.sim_ns,
            r.events,
            r.digest
        ));
    }
    cli.write_csv("ablation_churn", &csv);

    // Context line for EXPERIMENTS.md: isolation at the top density.
    let top = &results[results.len() - 3..];
    println!(
        "      density {}: shared tenant-p99 {} vs partitioned {} ({:.2}x)",
        densities[densities.len() - 1],
        cell_ns(top[0].worst_tenant_p99),
        cell_ns(top[1].worst_tenant_p99),
        top[0].worst_tenant_p99 as f64 / top[1].worst_tenant_p99.max(1) as f64
    );

    if gates.failures > 0 {
        eprintln!("\nablation_churn: {} gate(s) FAILED", gates.failures);
        std::process::exit(1);
    }
    println!("\nablation_churn: all gates passed");
}
