//! Failover ablation: the cluster fabric's recovery machinery under a
//! deterministic node/link fault plan, gated so regressions fail CI.
//!
//! Three faulted runs of the Figure-4-shaped cluster (healthy baseline,
//! one crashed node, one healed partition) check that:
//!
//! 1. a crashed node's shard is detected, reassigned and re-executed —
//!    the run completes every iteration with **bounded** slowdown over
//!    healthy and zero unserved shards;
//! 2. a healed partition loses zero barrier completions and lets zero
//!    duplicates through (retransmission + coordinator dedup);
//! 3. recovery lights up `err.cluster.*` / `recovery.cluster.*`
//!    coverage blocks that a healthy run must not touch;
//! 4. the whole thing is bit-identical under replay and across `--jobs`
//!    pool widths.
//!
//! Exit code 1 on any gate failure. `--trace-out <path>` dumps the
//! crash run's recovery marks as Chrome-trace JSON.

use ksa_bench::{cell_ns, Cli};
use ksa_cluster::{run_cluster, run_cluster_faulted, ClusterConfig, FabricConfig};
use ksa_core::experiments::{noise_corpus, Scale};
use ksa_desim::NodeFaultPlan;
use ksa_envsim::Machine;
use ksa_tailbench::single_node::SingleNodeConfig;
use ksa_tailbench::suite;
use ksa_varbench::traceout::chrome_trace_json;

/// The Figure-4-shaped cluster for `scale`, sized like `fig4_jobs` but
/// restoring the paper's 64 nodes at full scale (the failover gates are
/// about membership behaviour, so node count is the interesting axis).
fn cluster_config(scale: Scale, seed: u64, jobs: usize) -> ClusterConfig {
    let (nodes, iterations, per_iter) = scale.cluster();
    let (nodes, machine) = match scale {
        Scale::Tiny => (
            nodes,
            Machine {
                cores: 8,
                mem_mib: 8 * 1024,
            },
        ),
        Scale::Quick => (
            nodes,
            Machine {
                cores: 12,
                mem_mib: 16 * 1024,
            },
        ),
        Scale::Full => (
            64,
            Machine {
                cores: 24,
                mem_mib: 64 * 1024,
            },
        ),
    };
    ClusterConfig {
        nodes,
        iterations,
        requests_per_iter: per_iter,
        node: SingleNodeConfig {
            machine,
            groups: 2,
            virt: false,
            noise: false,
            requests: 0,
            warmup: 0,
            util_pct: 92,
            trace: false,
            metrics: false,
            spec: None,
            seed,
        },
        barrier_ns: 40_000,
        threads: jobs,
    }
}

struct Gates {
    failures: u32,
}

impl Gates {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        let verdict = if ok { "ok  " } else { "FAIL" };
        println!("  [{verdict}] {name}: {detail}");
        if !ok {
            self.failures += 1;
        }
    }
}

fn main() {
    let cli = Cli::parse();
    let app = &suite()[1]; // masstree: short requests, fast at scale
    let noise = noise_corpus(cli.scale);
    let cfg = cluster_config(cli.scale, cli.seed, cli.jobs);
    let fab = FabricConfig::quick();
    let mut gates = Gates { failures: 0 };

    println!(
        "ablation_failover: {} nodes x {} iterations, seed {}",
        cfg.nodes, cfg.iterations, cli.seed
    );

    // Baseline: the healthy cluster.
    let healthy = run_cluster(app, &cfg, &noise);
    println!("\nhealthy: total {}", cell_ns(healthy.total_ns));

    // Gate 1: one node crashes permanently about a third into the run.
    let crash_at = healthy.total_ns / 3;
    let crash_plan = NodeFaultPlan::new(cli.seed).crash(cfg.nodes / 2, crash_at, 0);
    let crash = run_cluster_faulted(app, &cfg, &noise, &crash_plan, &fab);
    let crep = crash.fabric.clone().expect("faulted run reports fabric");
    println!(
        "crash:   total {}  (slowdown {:.2}x, {} reassign, {} reexec)",
        cell_ns(crash.total_ns),
        crash.slowdown_vs(&healthy),
        crep.reassignments,
        crep.reexecs
    );
    gates.check(
        "crash/completes",
        crash.iteration_ns.len() == cfg.iterations as usize,
        format!(
            "{} of {} iterations (barrier must not hang)",
            crash.iteration_ns.len(),
            cfg.iterations
        ),
    );
    gates.check(
        "crash/detected",
        crep.crash_detections == 1 && crep.reexecs >= 1 && crep.reassignments >= 1,
        format!(
            "{} detections, {} reexecs, {} reassignments",
            crep.crash_detections, crep.reexecs, crep.reassignments
        ),
    );
    gates.check(
        "crash/all-shards-served",
        crep.unserved_shards == 0 && crep.conserved(),
        format!(
            "{} unserved, {}/{} completions",
            crep.unserved_shards, crep.completions, crep.expected_completions
        ),
    );
    let slowdown = crash.slowdown_vs(&healthy);
    gates.check(
        "crash/bounded-slowdown",
        (1.0..3.0).contains(&slowdown),
        format!("{slowdown:.2}x vs healthy (bound 3.0x)"),
    );

    // Gate 2: a minority island partitions off and heals mid-run.
    let p0 = healthy.total_ns / 4;
    let p1 = healthy.total_ns / 2;
    let island: Vec<usize> = (0..cfg.nodes / 4).collect();
    let part_plan = NodeFaultPlan::new(cli.seed).partition(p0, p1, island);
    let part = run_cluster_faulted(app, &cfg, &noise, &part_plan, &fab);
    let prep = part.fabric.clone().expect("faulted run reports fabric");
    println!(
        "part:    total {}  ({} retransmits, {} dups dropped)",
        cell_ns(part.total_ns),
        prep.retransmits,
        prep.dup_completions_dropped
    );
    gates.check(
        "partition/retransmits",
        prep.retransmits > 0,
        format!("{} retransmissions across the cut", prep.retransmits),
    );
    gates.check(
        "partition/conserves-completions",
        prep.conserved(),
        format!(
            "{}/{} completions, {} lost, {} duplicates deduped",
            prep.completions,
            prep.expected_completions,
            prep.lost_completions,
            prep.dup_completions_dropped
        ),
    );

    // Gate 3: recovery coverage lights up only under faults.
    let lit = crash.coverage.len() + part.coverage.len();
    gates.check(
        "coverage/faults-light-blocks",
        healthy.coverage.is_empty() && crash.coverage.len() >= 5 && part.coverage.len() >= 2,
        format!(
            "healthy {} blocks, crash {}, partition {} ({} total)",
            healthy.coverage.len(),
            crash.coverage.len(),
            part.coverage.len(),
            lit
        ),
    );

    // Gate 4: replay and pool width cannot reach the results.
    let mut seq_cfg = cfg;
    seq_cfg.threads = 1;
    let seq = run_cluster_faulted(app, &seq_cfg, &noise, &crash_plan, &fab);
    let replay = run_cluster_faulted(app, &cfg, &noise, &crash_plan, &fab);
    gates.check(
        "determinism/jobs-and-replay",
        seq.iteration_ns == crash.iteration_ns
            && seq.fabric == crash.fabric
            && replay.iteration_ns == crash.iteration_ns
            && replay.fabric == crash.fabric,
        format!("--jobs 1 vs {} and replay bit-identical", cfg.threads),
    );

    if let Some(path) = &cli.trace_out {
        std::fs::write(path, chrome_trace_json(&crash.trace)).expect("write trace");
        eprintln!("wrote {}", path.display());
    }
    let mut csv = String::from(
        "run,total_ns,slowdown,reassignments,reexecs,retransmits,dups_dropped,completions,expected,lost\n",
    );
    for (name, res) in [
        ("healthy", &healthy),
        ("crash", &crash),
        ("partition", &part),
    ] {
        let rep = res.fabric.clone().unwrap_or_default();
        csv.push_str(&format!(
            "{},{},{:.4},{},{},{},{},{},{},{}\n",
            name,
            res.total_ns,
            res.slowdown_vs(&healthy),
            rep.reassignments,
            rep.reexecs,
            rep.retransmits,
            rep.dup_completions_dropped,
            rep.completions,
            rep.expected_completions,
            rep.lost_completions
        ));
    }
    cli.write_csv("ablation_failover", &csv);

    if gates.failures > 0 {
        eprintln!("\nablation_failover: {} gate(s) FAILED", gates.failures);
        std::process::exit(1);
    }
    println!("\nablation_failover: all gates passed");
}
