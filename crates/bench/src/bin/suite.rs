//! `suite` — the benchmark-regression gate.
//!
//! Runs a pinned-seed micro version of every experiment in the pipeline
//! (Table 1–3, Figure 2–4, calibrate, failover), each twice: once sequentially
//! (`jobs = 1`) and once on the parallel pool. For each experiment it
//! records
//!
//! * sequential and parallel **wall-clock** time,
//! * total **simulated time** and **engine events** (with derived
//!   events/second throughput for both passes),
//! * a **digest** of the simulated results — an FNV-1a fold over every
//!   latency sample / duration the experiment produced.
//!
//! Digest, simulated time and event counts are *machine-independent*:
//! the simulation is deterministic, so any change to them is a real
//! behavioural change of the system, not noise. They are the gated
//! metrics the CI regression job compares against the committed
//! baseline (`BENCH_baseline.json`). Wall-clock is machine-dependent;
//! CI gates only the *ratio* (parallel speedup), and only on machines
//! with at least 4 hardware threads.
//!
//! The suite also hard-fails (exit 4) if any experiment's parallel
//! digest differs from its sequential digest — the determinism
//! acceptance criterion, checked on every run.
//!
//! With `--profile N` the suite additionally re-runs every experiment's
//! parallel pass `N` more times after the gated passes and emits a
//! `profile` section into the report: per-experiment wall-clock
//! (best/mean over the repeats) and the derived events/second. Profiling
//! never affects the gates — digests and event counts are pinned by the
//! gated passes; the extra repeats only tighten the wall-clock numbers
//! the artifact carries.
//!
//! Every run also (a) times a telemetry-on varbench campaign and emits
//! an `engine_profile` section — dispatch/schedule/wake/spawn counters,
//! event-queue peak, events/sec — the ROADMAP engine-overhaul baseline,
//! and (b) appends a one-line wall-clock/throughput record to
//! `BENCH_history.jsonl` keyed by the `KSA_GIT_SHA`/`GITHUB_SHA`
//! environment variable (no clock or repo access from the suite itself).
//!
//! ```text
//! suite [--jobs N] [--out PATH] [--baseline PATH] [--write-baseline PATH]
//!       [--history PATH] [--min-speedup F] [--profile N] [--floor F]
//! ```
//!
//! Exit codes: 0 ok · 2 baseline drift · 3 speedup below gate ·
//! 4 parallel/sequential divergence · 5 events/sec below the committed
//! perf floor · 6 malformed baseline file (unreadable, invalid JSON, or
//! missing/mistyped gated fields — distinct from drift so CI can tell a
//! corrupt committed baseline from a real behavioural change).
//!
//! The perf floor: when the baseline carries an `events_per_sec_floor`
//! field, the engine profile's measured events/sec must not fall below
//! it (exit 5). `KSA_SKIP_PERF_FLOOR=1` skips the check on underpowered
//! runners. `--write-baseline` carries the floor forward from the read
//! baseline; `--floor F` sets or overrides it when regenerating.

use std::time::Instant;

use ksa_cluster::{run_cluster, run_cluster_faulted, ClusterConfig, FabricConfig};
use ksa_core::experiments::{default_corpus, noise_corpus, table1, Scale};
use ksa_core::KernelSurfaceArea;
use ksa_desim::NodeFaultPlan;
use ksa_envsim::{container_sweep, vm_sweep, EnvKind, EnvSpec, Machine};
use ksa_json::Value;
use ksa_kernel::latency::AttributionTable;
use ksa_kernel::prog::Corpus;
use ksa_kernel::{attribution_frames, SpecMask};
use ksa_tailbench::apps::{cluster_suite, suite as app_suite};
use ksa_tailbench::churn::{run_churn_points, ChurnConfig};
use ksa_tailbench::single_node::{run_points, SingleNodeConfig};
use ksa_varbench::{run_configs_jobs, RunConfig};

/// The pinned suite seed: the committed baseline is only valid for this
/// seed, so it is not a CLI knob.
const SEED: u64 = 42;

/// Exit code for a malformed baseline file — distinct from drift (2) so
/// CI can tell "the committed baseline is corrupt" from "the simulation
/// changed".
const EXIT_BAD_BASELINE: i32 = 6;

/// Reports exactly what is wrong with the baseline file and exits with
/// the dedicated malformed-baseline code. Replaces the bare `unwrap`
/// chains that used to turn a truncated or hand-edited baseline into an
/// uninformative panic.
fn baseline_malformed(path: &str, what: impl std::fmt::Display) -> ! {
    eprintln!(
        "suite: baseline {path} is malformed: {what} — regenerate it with \
         --write-baseline (exit {EXIT_BAD_BASELINE} = corrupt baseline, not simulation drift)"
    );
    std::process::exit(EXIT_BAD_BASELINE);
}

/// FNV-1a over a stream of u64s — the digest the drift gate compares.
#[derive(Clone, Copy)]
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf29ce484222325)
    }
    fn fold(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// What one pass (sequential or parallel) of one experiment produced.
struct Pass {
    wall_ns: u64,
    sim_ns: u64,
    events: u64,
    digest: String,
}

/// Simulated outputs of one experiment run (wall time added by `timed`).
struct SimOut {
    sim_ns: u64,
    events: u64,
    digest: Digest,
}

fn timed(f: impl FnOnce() -> SimOut) -> Pass {
    let t0 = Instant::now();
    let out = f();
    Pass {
        wall_ns: t0.elapsed().as_nanos() as u64,
        sim_ns: out.sim_ns,
        events: out.events,
        digest: out.digest.hex(),
    }
}

/// Runs a varbench campaign and folds every trial's samples into the
/// digest (trial order is input order, so the fold is stable).
fn varbench_case(configs: &[RunConfig], corpus: &Corpus, jobs: usize) -> SimOut {
    let results = run_configs_jobs(configs, corpus, jobs);
    let mut d = Digest::new();
    let (mut sim_ns, mut events) = (0u64, 0u64);
    for r in results {
        let res = r.unwrap_or_else(|e| panic!("suite trial failed: {e}"));
        sim_ns += res.sim_ns;
        events += res.events;
        d.fold(res.sim_ns);
        for site in &res.sites {
            for &v in site.samples.raw() {
                d.fold(v);
            }
        }
    }
    SimOut {
        sim_ns,
        events,
        digest: d,
    }
}

fn base_cfg(machine: Machine, kind: EnvKind) -> RunConfig {
    RunConfig {
        env: EnvSpec::new(machine, kind),
        iterations: Scale::Tiny.iterations(),
        sync: true,
        seed: SEED,
        max_events: 0,
        trace: false,
        metrics: false,
        spec: None,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_suite.json");
    let mut baseline: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut history: Option<String> = None;
    let mut min_speedup = 1.5f64;
    let mut profile = 0usize;
    let mut floor_flag: Option<f64> = None;
    let cli = ksa_bench::Cli::parse_with(
        "[--out PATH] [--baseline PATH] [--write-baseline PATH] [--history PATH] \
         [--min-speedup F] [--profile N] [--floor F]",
        |flag, args| {
            match flag {
                "--out" => out_path = args.value("--out"),
                "--baseline" => baseline = Some(args.value("--baseline")),
                "--write-baseline" => write_baseline = Some(args.value("--write-baseline")),
                "--history" => history = Some(args.value("--history")),
                "--min-speedup" => {
                    min_speedup = args
                        .value("--min-speedup")
                        .parse()
                        .expect("--min-speedup: not a number")
                }
                "--profile" => {
                    profile = args
                        .value("--profile")
                        .parse()
                        .expect("--profile: not a number")
                }
                "--floor" => {
                    floor_flag = Some(
                        args.value("--floor")
                            .parse()
                            .expect("--floor: not a number"),
                    )
                }
                _ => return false,
            }
            true
        },
    );
    let jobs = cli.jobs;

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let resolved = ksa_desim::pool::resolve_jobs(jobs);
    eprintln!(
        "suite: seed {SEED}, {threads} hardware threads, parallel pass on {resolved} workers"
    );

    let corpus = default_corpus(Scale::Tiny).corpus;
    let noise = noise_corpus(Scale::Tiny);
    let machine = Scale::Tiny.machine();

    // Each experiment is `fn(jobs) -> SimOut`; the harness runs it at
    // jobs=1 and jobs=<requested> and compares.
    type Case<'a> = (&'a str, Box<dyn Fn(usize) -> SimOut + 'a>);
    let cases: Vec<Case> = vec![
        (
            "table1",
            Box::new(|_jobs| {
                // Machine-defined, no simulation: digest pins the surface-
                // area ladder itself.
                let mut d = Digest::new();
                for row in table1(Scale::Full) {
                    let spec = EnvSpec::new(Scale::Full.machine(), EnvKind::Vm(row.count));
                    d.fold(row.count as u64);
                    d.fold(row.cores_per as u64);
                    d.fold(row.mib_per);
                    d.fold(KernelSurfaceArea::of(&spec).scalar().to_bits());
                }
                SimOut {
                    sim_ns: 0,
                    events: 0,
                    digest: d,
                }
            }),
        ),
        (
            "table2",
            Box::new(|jobs| {
                let kinds = [
                    EnvKind::Native,
                    EnvKind::Vm(machine.cores),
                    EnvKind::Container(machine.cores),
                ];
                let configs: Vec<RunConfig> = kinds.iter().map(|&k| base_cfg(machine, k)).collect();
                varbench_case(&configs, &corpus, jobs)
            }),
        ),
        (
            "fig2",
            Box::new(|jobs| {
                let mut configs = vec![base_cfg(machine, EnvKind::Native)];
                configs.extend(
                    vm_sweep(machine)
                        .iter()
                        .map(|row| base_cfg(machine, EnvKind::Vm(row.count))),
                );
                varbench_case(&configs, &corpus, jobs)
            }),
        ),
        (
            "table3",
            Box::new(|jobs| {
                let configs: Vec<RunConfig> = container_sweep(machine)
                    .iter()
                    .map(|row| base_cfg(machine, EnvKind::Container(row.count)))
                    .collect();
                varbench_case(&configs, &corpus, jobs)
            }),
        ),
        (
            "fig3",
            Box::new(|jobs| {
                let node_machine = Machine {
                    cores: 8,
                    mem_mib: 8 * 1024,
                };
                let mut points = Vec::new();
                for app in app_suite() {
                    for (virt, with_noise) in
                        [(true, false), (false, false), (true, true), (false, true)]
                    {
                        points.push((
                            app.clone(),
                            SingleNodeConfig {
                                machine: node_machine,
                                groups: 4,
                                virt,
                                noise: with_noise,
                                requests: 120,
                                warmup: 12,
                                util_pct: 75,
                                trace: false,
                                metrics: false,
                                spec: None,
                                seed: SEED,
                            },
                        ));
                    }
                }
                let results = run_points(&points, &noise, jobs);
                let mut d = Digest::new();
                let (mut sim_ns, mut events) = (0u64, 0u64);
                for t in &results {
                    sim_ns += t.sim_ns;
                    events += t.events;
                    d.fold(t.sim_ns);
                    d.fold(t.p99);
                    for &v in t.sojourns.raw() {
                        d.fold(v);
                    }
                }
                SimOut {
                    sim_ns,
                    events,
                    digest: d,
                }
            }),
        ),
        (
            "fig4",
            Box::new(|jobs| {
                let apps = cluster_suite();
                let mut d = Digest::new();
                let (mut sim_ns, mut events) = (0u64, 0u64);
                for app in apps.iter().take(2) {
                    for (virt, with_noise) in [(true, false), (false, true)] {
                        let cfg = ClusterConfig {
                            nodes: 4,
                            iterations: 3,
                            requests_per_iter: 20,
                            node: SingleNodeConfig {
                                machine: Machine {
                                    cores: 8,
                                    mem_mib: 8 * 1024,
                                },
                                groups: 2,
                                virt,
                                noise: with_noise,
                                requests: 0,
                                warmup: 0,
                                util_pct: 92,
                                trace: false,
                                metrics: false,
                                spec: None,
                                seed: SEED,
                            },
                            barrier_ns: 40_000,
                            threads: jobs,
                        };
                        let res = run_cluster(app, &cfg, &noise);
                        sim_ns += res.total_ns;
                        // Engine events from the node simulations: without
                        // them this experiment reported events_per_sec 0.0
                        // and escaped all throughput accounting.
                        events += res.events;
                        for &it in &res.iteration_ns {
                            d.fold(it);
                        }
                        d.fold(res.mean_node_ns);
                    }
                }
                SimOut {
                    sim_ns,
                    events,
                    digest: d,
                }
            }),
        ),
        (
            "failover",
            Box::new(|jobs| {
                // A faulted cluster run exercising every recovery path:
                // crash + reboot, healed partition, lossy links. The
                // digest folds iteration times *and* fabric counters, so
                // the baseline pins the recovery machinery bit-for-bit.
                let app = &app_suite()[1];
                let cfg = ClusterConfig {
                    nodes: 6,
                    iterations: 4,
                    requests_per_iter: 20,
                    node: SingleNodeConfig {
                        machine: Machine {
                            cores: 8,
                            mem_mib: 8 * 1024,
                        },
                        groups: 2,
                        virt: false,
                        noise: true,
                        requests: 0,
                        warmup: 0,
                        util_pct: 92,
                        trace: false,
                        metrics: false,
                        spec: None,
                        seed: SEED,
                    },
                    barrier_ns: 40_000,
                    threads: jobs,
                };
                let plan = NodeFaultPlan::new(SEED)
                    .crash(2, 900_000, 1_500_000)
                    .partition(300_000, 1_400_000, vec![4, 5])
                    .drop_prob_milli(100);
                let res = run_cluster_faulted(app, &cfg, &noise, &plan, &FabricConfig::quick());
                let rep = res.fabric.clone().expect("faulted run reports fabric");
                let mut d = Digest::new();
                for &it in &res.iteration_ns {
                    d.fold(it);
                }
                for v in [
                    rep.reassignments,
                    rep.reexecs,
                    rep.crash_detections,
                    rep.rejoins,
                    rep.retransmits,
                    rep.dup_completions_dropped,
                    rep.completions,
                    rep.expected_completions,
                    rep.lost_completions,
                    res.coverage.len() as u64,
                ] {
                    d.fold(v);
                }
                SimOut {
                    sim_ns: res.total_ns,
                    events: res.events,
                    digest: d,
                }
            }),
        ),
        (
            "calibrate",
            Box::new(|jobs| {
                let mut points = Vec::new();
                for app in app_suite() {
                    for virt in [false, true] {
                        points.push((
                            app.clone(),
                            SingleNodeConfig {
                                machine: Machine {
                                    cores: 16,
                                    mem_mib: 16 * 1024,
                                },
                                groups: 4,
                                virt,
                                noise: false,
                                requests: 100,
                                warmup: 10,
                                util_pct: 10,
                                trace: false,
                                metrics: false,
                                spec: None,
                                seed: SEED,
                            },
                        ));
                    }
                }
                let results = run_points(&points, &noise, jobs);
                let mut d = Digest::new();
                let (mut sim_ns, mut events) = (0u64, 0u64);
                for t in &results {
                    sim_ns += t.sim_ns;
                    events += t.events;
                    d.fold(t.sim_ns);
                    for &v in t.sojourns.raw() {
                        d.fold(v);
                    }
                }
                SimOut {
                    sim_ns,
                    events,
                    digest: d,
                }
            }),
        ),
        (
            "spec",
            Box::new(|jobs| {
                // Specialization micro-experiment: the same tiny campaign
                // unspecialized, under the full mask (which must change
                // nothing) and under a corpus-derived mask. The digest
                // folds the derived profile itself (allowlist + category
                // indices) before the runs, so both the derivation and
                // the specialized kernel are pinned bit-for-bit.
                let profile = ksa_spec::derive_profile("suite", &corpus, SEED);
                let mut d = Digest::new();
                for no in profile.mask.allowed() {
                    d.fold(no.index() as u64);
                }
                for c in profile.mask.categories() {
                    d.fold(c.index() as u64);
                }
                let configs: Vec<RunConfig> = [None, Some(SpecMask::full()), Some(profile.mask)]
                    .iter()
                    .map(|&spec| RunConfig {
                        spec,
                        ..base_cfg(machine, EnvKind::Vm(2))
                    })
                    .collect();
                let out = varbench_case(&configs, &corpus, jobs);
                d.fold(out.digest.0);
                SimOut {
                    sim_ns: out.sim_ns,
                    events: out.events,
                    digest: d,
                }
            }),
        ),
        (
            "churn",
            Box::new(|jobs| {
                // High-density tenant churn micro-experiment: one density
                // point, shared-kernel containers vs partitioned VMs. The
                // digest folds the per-run record-stream digest plus the
                // headline metrics, and every run must pass the fd/socket
                // slot-reuse hygiene audits — the pre-reuse allocator
                // fails here before any baseline comparison.
                let configs = [
                    ChurnConfig::quick(EnvKind::Container(8), 48, SEED),
                    ChurnConfig::quick(EnvKind::Vm(2), 48, SEED),
                ];
                let results = run_churn_points(&configs, jobs);
                let mut d = Digest::new();
                let (mut sim_ns, mut events) = (0u64, 0u64);
                for r in &results {
                    assert!(
                        r.arrived == r.exited
                            && r.fd_open_after == 0
                            && r.sock_live_after == 0
                            && r.tables_bounded,
                        "churn hygiene violated: arrived {} exited {} fds_open {} \
                         socks_live {} bounded {}",
                        r.arrived,
                        r.exited,
                        r.fd_open_after,
                        r.sock_live_after,
                        r.tables_bounded
                    );
                    sim_ns += r.sim_ns;
                    events += r.events;
                    d.fold(r.digest);
                    d.fold(r.cold_p99);
                    d.fold(r.worst_tenant_p99);
                    d.fold(r.requests_completed);
                }
                SimOut {
                    sim_ns,
                    events,
                    digest: d,
                }
            }),
        ),
    ];

    let mut rows = Vec::new();
    let mut diverged = false;
    let (mut total_seq, mut total_par) = (0u64, 0u64);
    for (name, case) in &cases {
        let seq = timed(|| case(1));
        let par = timed(|| case(jobs));
        if seq.digest != par.digest || seq.sim_ns != par.sim_ns || seq.events != par.events {
            eprintln!(
                "suite: {name}: parallel run diverged from sequential \
                 (digest {} vs {}, sim_ns {} vs {})",
                seq.digest, par.digest, seq.sim_ns, par.sim_ns
            );
            diverged = true;
        }
        total_seq += seq.wall_ns;
        total_par += par.wall_ns;
        let speedup = seq.wall_ns as f64 / par.wall_ns.max(1) as f64;
        let eps = |p: &Pass| p.events as f64 / (p.wall_ns.max(1) as f64 / 1e9);
        eprintln!(
            "suite: {name:<10} seq {:>8.1}ms  par {:>8.1}ms  speedup {speedup:>5.2}x  \
             sim {:>6.1}ms  {:>9.0} ev/s par",
            seq.wall_ns as f64 / 1e6,
            par.wall_ns as f64 / 1e6,
            seq.sim_ns as f64 / 1e6,
            eps(&par),
        );
        rows.push(Value::object([
            ("name", Value::str(*name)),
            ("seq_wall_ns", Value::from(seq.wall_ns)),
            ("par_wall_ns", Value::from(par.wall_ns)),
            ("speedup", Value::from(speedup)),
            ("sim_ns", Value::from(seq.sim_ns)),
            ("events", Value::from(seq.events)),
            ("events_per_sec_seq", Value::from(eps(&seq))),
            ("events_per_sec_par", Value::from(eps(&par))),
            ("digest", Value::str(seq.digest.clone())),
        ]));
    }

    let overall = total_seq as f64 / total_par.max(1) as f64;
    eprintln!(
        "suite: total seq {:.1}ms  par {:.1}ms  overall speedup {overall:.2}x",
        total_seq as f64 / 1e6,
        total_par as f64 / 1e6
    );

    // Engine self-profile: one metered varbench campaign with telemetry
    // on, timed for wall clock. Dispatch/schedule/wake/spawn counts and
    // the queue peak come from the engine's own counters; with the
    // events/sec this section is the ROADMAP engine-overhaul baseline.
    let (engine_profile, profile_metrics, profile_attrib) = {
        let kinds = [
            EnvKind::Native,
            EnvKind::Vm(machine.cores),
            EnvKind::Container(machine.cores),
        ];
        let configs: Vec<RunConfig> = kinds
            .iter()
            .map(|&k| RunConfig {
                metrics: true,
                ..base_cfg(machine, k)
            })
            .collect();
        let t0 = Instant::now();
        let results = run_configs_jobs(&configs, &corpus, jobs);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let (mut sim_ns, mut samples) = (0u64, 0u64);
        let mut queue_peak = 0u64;
        let mut totals = [0u64; 5];
        const COUNTERS: [&str; 5] = [
            "engine_events_dispatched",
            "engine_events_scheduled",
            "engine_process_wakes",
            "engine_processes_spawned",
            "engine_timer_ticks",
        ];
        let mut merged = ksa_telemetry::Registry::disabled();
        let mut attrib = AttributionTable::default();
        for r in results {
            let res = r.unwrap_or_else(|e| panic!("suite engine profile trial failed: {e}"));
            sim_ns += res.sim_ns;
            samples += res.metrics.samples_taken;
            queue_peak = queue_peak.max(res.metrics.total("engine_event_queue_peak"));
            for (t, name) in totals.iter_mut().zip(COUNTERS) {
                *t += res.metrics.total(name);
            }
            merged.absorb(&res.metrics, &[("env", &res.config.env.kind.label())]);
            attrib.merge(&res.attrib);
        }
        let eps = totals[0] as f64 / (wall_ns.max(1) as f64 / 1e9);
        eprintln!(
            "suite: engine profile  {:>8.1}ms wall  {:>9.0} ev/s  queue peak {queue_peak}",
            wall_ns as f64 / 1e6,
            eps,
        );
        let profile = Value::object([
            ("wall_ns", Value::from(wall_ns)),
            ("sim_ns", Value::from(sim_ns)),
            ("events_dispatched", Value::from(totals[0])),
            ("events_scheduled", Value::from(totals[1])),
            ("process_wakes", Value::from(totals[2])),
            ("processes_spawned", Value::from(totals[3])),
            ("timer_ticks", Value::from(totals[4])),
            ("event_queue_peak", Value::from(queue_peak)),
            ("telemetry_samples", Value::from(samples)),
            ("events_per_sec", Value::from(eps)),
        ]);
        (profile, merged, attrib)
    };
    cli.write_metrics(
        "suite",
        &profile_metrics,
        &attribution_frames(&profile_attrib),
    );

    let mut report_fields = vec![
        ("version", Value::from(1u64)),
        ("seed", Value::from(SEED)),
        ("hardware_threads", Value::from(threads)),
        ("parallel_jobs", Value::from(resolved)),
        ("total_seq_wall_ns", Value::from(total_seq)),
        ("total_par_wall_ns", Value::from(total_par)),
        ("overall_speedup", Value::from(overall)),
        ("engine_profile", engine_profile.clone()),
        ("experiments", Value::array(rows)),
    ];

    // Profiling repeats run after the gated passes so they can never
    // perturb the gates; they only sharpen the wall-clock numbers.
    if profile > 0 {
        eprintln!("suite: profiling — {profile} extra parallel pass(es) per experiment");
        let mut prof_rows = Vec::new();
        for (name, case) in &cases {
            let passes: Vec<Pass> = (0..profile).map(|_| timed(|| case(jobs))).collect();
            let best = passes.iter().map(|p| p.wall_ns).min().unwrap_or(0);
            let mean = passes.iter().map(|p| p.wall_ns).sum::<u64>() / profile as u64;
            let events = passes.first().map(|p| p.events).unwrap_or(0);
            let eps_best = events as f64 / (best.max(1) as f64 / 1e9);
            eprintln!(
                "suite: profile {name:<10} best {:>8.1}ms  mean {:>8.1}ms  {:>9.0} ev/s best",
                best as f64 / 1e6,
                mean as f64 / 1e6,
                eps_best,
            );
            prof_rows.push(Value::object([
                ("name", Value::str(*name)),
                ("repeats", Value::from(profile)),
                ("best_wall_ns", Value::from(best)),
                ("mean_wall_ns", Value::from(mean)),
                ("events", Value::from(events)),
                ("events_per_sec_best", Value::from(eps_best)),
                (
                    "wall_ns",
                    Value::array(passes.iter().map(|p| Value::from(p.wall_ns))),
                ),
            ]));
        }
        report_fields.push(("profile", Value::array(prof_rows)));
    }

    let report = Value::object(report_fields);
    std::fs::write(&out_path, report.render()).expect("write suite report");
    eprintln!("suite: wrote {out_path}");

    // One-line wall-clock/throughput history record, appended per run
    // and keyed by the git SHA from the environment — the suite itself
    // never reads a clock or the repo, so records stay deterministic
    // modulo wall time.
    {
        use std::io::Write;
        let history_path = history.unwrap_or_else(|| "BENCH_history.jsonl".to_string());
        let sha = std::env::var("KSA_GIT_SHA")
            .or_else(|_| std::env::var("GITHUB_SHA"))
            .unwrap_or_else(|_| "unknown".to_string());
        let line = Value::object([
            ("sha", Value::str(sha)),
            ("seed", Value::from(SEED)),
            ("hardware_threads", Value::from(threads)),
            ("parallel_jobs", Value::from(resolved)),
            ("total_seq_wall_ns", Value::from(total_seq)),
            ("total_par_wall_ns", Value::from(total_par)),
            ("overall_speedup", Value::from(overall)),
            (
                "engine_events_per_sec",
                engine_profile.get("events_per_sec").unwrap().clone(),
            ),
        ]);
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&history_path)
            .expect("open history file");
        writeln!(f, "{}", line.render()).expect("append history line");
        eprintln!("suite: appended history to {history_path}");
    }

    // Parse the baseline (if any) once: the drift gate and the perf
    // floor both read it, and --write-baseline carries its floor
    // forward.
    let base_doc: Option<Value> = baseline.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| baseline_malformed(path, format_args!("cannot read: {e}")));
        ksa_json::parse(&text)
            .unwrap_or_else(|e| baseline_malformed(path, format_args!("invalid JSON: {e}")))
    });
    let baseline_floor: Option<f64> = base_doc
        .as_ref()
        .and_then(|b| b.get("events_per_sec_floor").ok())
        .map(|v| {
            v.as_f64().unwrap_or_else(|e| {
                baseline_malformed(
                    baseline.as_deref().unwrap_or_default(),
                    format_args!("events_per_sec_floor: {e}"),
                )
            })
        });
    let floor_out = floor_flag.or(baseline_floor);

    if let Some(path) = write_baseline {
        // The baseline is the gated (machine-independent) subset only,
        // plus the perf floor (carried from the read baseline or set
        // with --floor).
        let mut gated_fields = vec![("version", Value::from(1u64)), ("seed", Value::from(SEED))];
        if let Some(floor) = floor_out {
            gated_fields.push(("events_per_sec_floor", Value::from(floor)));
        }
        gated_fields.push((
            "experiments",
            Value::array(
                report
                    .get("experiments")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|e| {
                        Value::object([
                            ("name", e.get("name").unwrap().clone()),
                            ("sim_ns", e.get("sim_ns").unwrap().clone()),
                            ("events", e.get("events").unwrap().clone()),
                            ("digest", e.get("digest").unwrap().clone()),
                        ])
                    }),
            ),
        ));
        let gated = Value::object(gated_fields);
        std::fs::write(&path, gated.render()).expect("write baseline");
        eprintln!("suite: wrote baseline {path}");
    }

    if diverged {
        std::process::exit(4);
    }

    if let Some(base) = &base_doc {
        let path = baseline.as_deref().unwrap_or_default();
        let mut drift = false;
        let base_rows = base
            .get("experiments")
            .and_then(|v| v.as_array())
            .unwrap_or_else(|e| baseline_malformed(path, format_args!("experiments: {e}")));
        for (i, be) in base_rows.iter().enumerate() {
            let name = be.get("name").and_then(|v| v.as_str()).unwrap_or_else(|e| {
                baseline_malformed(path, format_args!("experiments[{i}].name: {e}"))
            });
            // The report is suite-built this run, so its shape is known.
            let Some(now) = report
                .get("experiments")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .find(|e| e.get("name").unwrap().as_str().unwrap() == name)
            else {
                eprintln!("suite: baseline experiment {name} missing from this run");
                drift = true;
                continue;
            };
            for key in ["digest", "sim_ns", "events"] {
                let want = be.get(key).unwrap_or_else(|e| {
                    baseline_malformed(path, format_args!("experiments[{i}] ({name}).{key}: {e}"))
                });
                let got = now.get(key).unwrap();
                if want.render() != got.render() {
                    eprintln!(
                        "suite: {name}: gated metric {key} drifted from baseline: \
                         {} -> {}",
                        want.render(),
                        got.render()
                    );
                    drift = true;
                }
            }
        }
        if drift {
            eprintln!("suite: simulated metrics drifted — if intentional, regenerate the baseline with --write-baseline");
            std::process::exit(2);
        }
        eprintln!("suite: all gated metrics match {path}");
    }

    // The speedup gate only means something with real parallelism
    // underneath; the CI job runs on >= 4-thread runners.
    if threads >= 4 && resolved >= 2 {
        if overall < min_speedup {
            eprintln!(
                "suite: overall parallel speedup {overall:.2}x is below the {min_speedup:.2}x gate \
                 on {threads} hardware threads"
            );
            std::process::exit(3);
        }
        eprintln!("suite: speedup gate passed ({overall:.2}x >= {min_speedup:.2}x)");
    } else {
        eprintln!("suite: speedup gate skipped ({threads} hardware threads, {resolved} workers)");
    }

    // Perf floor: the engine profile's events/sec must not fall below
    // the committed floor — the regression tripwire for the hot-path
    // overhaul. KSA_SKIP_PERF_FLOOR is the escape hatch for runners too
    // slow to meaningfully compare against the committed measurement.
    if let Some(floor) = baseline_floor {
        let eps = engine_profile
            .get("events_per_sec")
            .unwrap()
            .as_f64()
            .unwrap();
        if std::env::var_os("KSA_SKIP_PERF_FLOOR").is_some() {
            eprintln!(
                "suite: perf floor skipped (KSA_SKIP_PERF_FLOOR set; measured {eps:.0} ev/s, \
                 floor {floor:.0})"
            );
        } else if eps < floor {
            eprintln!(
                "suite: engine profile throughput {eps:.0} ev/s is below the committed floor \
                 {floor:.0} ev/s — a hot-path regression (set KSA_SKIP_PERF_FLOOR=1 on \
                 underpowered runners)"
            );
            std::process::exit(5);
        } else {
            eprintln!("suite: perf floor passed ({eps:.0} ev/s >= {floor:.0} ev/s)");
        }
    }
}
