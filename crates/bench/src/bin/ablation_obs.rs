//! Observability ablation: the telemetry layer is gated so observer
//! effects and drifting exports fail CI.
//!
//! Two workloads run with telemetry off and on — the Table 2 syscall
//! campaign (varbench) and the xapian request path (tailbench) — and
//! four gate families check:
//!
//! 1. **neutrality** — the simulation is bit-identical with telemetry
//!    enabled: clock, event count, per-site latencies and sojourn
//!    samples all match the disabled run, and the disabled registry
//!    never takes a sample;
//! 2. **attribution** — enabled per-category telemetry totals exactly
//!    equal the independently-collected [`AttributionTable`] sums, and
//!    the engine counter equals the run's event count;
//! 3. **exports** — the Prometheus text, time-series JSON, collapsed
//!    stacks and speedscope profile all parse / are well-formed;
//! 4. **determinism** — with telemetry on, replay and `--jobs` pool
//!    widths reproduce the same results *and* the same registry digest.
//!
//! Exit code 1 on any gate failure.

use ksa_bench::{cell_ns, Cli};
use ksa_core::experiments::{default_corpus, Scale};
use ksa_envsim::{EnvKind, EnvSpec};
use ksa_json::parse;
use ksa_kernel::attribution_frames;
use ksa_tailbench::single_node::{run_single_node, SingleNodeConfig, TailResult};
use ksa_tailbench::suite;
use ksa_telemetry::export::{collapsed, prometheus_text, speedscope_json, timeseries_json};
use ksa_varbench::{run_configs_jobs, RunConfig, RunResult};

struct Gates {
    failures: u32,
}

impl Gates {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        let verdict = if ok { "ok  " } else { "FAIL" };
        println!("  [{verdict}] {name}: {detail}");
        if !ok {
            self.failures += 1;
        }
    }
}

fn same_sim(a: &RunResult, b: &RunResult) -> bool {
    a.sim_ns == b.sim_ns
        && a.events == b.events
        && a.sites.len() == b.sites.len()
        && a.attrib.calls() == b.attrib.calls()
        && a.attrib.grand_total().total == b.attrib.grand_total().total
}

fn same_tail(a: &TailResult, b: &TailResult) -> bool {
    a.p99 == b.p99
        && a.sim_ns == b.sim_ns
        && a.events == b.events
        && a.sojourns.raw() == b.sojourns.raw()
        && a.batch_durations == b.batch_durations
}

fn main() {
    let cli = Cli::parse();
    let mut gates = Gates { failures: 0 };

    // ------------------------------------------------ varbench campaign
    let corpus = default_corpus(cli.scale);
    let scale = match cli.scale {
        Scale::Full => Scale::Quick, // the gate needs a real run, not an hour
        s => s,
    };
    let mk_cfg = |metrics: bool| RunConfig {
        env: EnvSpec::new(scale.machine(), EnvKind::Vm(4)),
        iterations: scale.iterations(),
        sync: true,
        seed: cli.seed,
        max_events: 0,
        trace: false,
        metrics,
        spec: None,
    };
    let off = expect_one(run_configs_jobs(&[mk_cfg(false)], &corpus.corpus, cli.jobs));
    let on = expect_one(run_configs_jobs(&[mk_cfg(true)], &corpus.corpus, cli.jobs));
    println!(
        "varbench: {} events / clock {} / {} telemetry samples",
        on.events,
        cell_ns(on.sim_ns),
        on.metrics.samples_taken
    );

    gates.check(
        "neutrality/varbench",
        same_sim(&off, &on) && !off.metrics.enabled() && off.metrics.samples_taken == 0,
        format!(
            "telemetry on: clock {} events {} == disabled run; disabled registry inert",
            cell_ns(on.sim_ns),
            on.events
        ),
    );
    gates.check(
        "neutrality/samples-flow",
        on.metrics.enabled() && on.metrics.samples_taken >= 1 && !on.metrics.metrics().is_empty(),
        format!(
            "{} samples over {} series",
            on.metrics.samples_taken,
            on.metrics.metrics().len()
        ),
    );

    // Gate 2: telemetry totals are exactly the attribution sums.
    let grand = on.attrib.grand_total();
    let mut per_cat_ok = true;
    for (cat, (calls, agg)) in on.attrib.by_category() {
        let label = [("category", cat.name())];
        per_cat_ok &= on.metrics.value_of("syscall_calls", &label) == Some(*calls)
            && on.metrics.value_of("syscall_ns", &label) == Some(agg.total);
    }
    gates.check(
        "attribution/per-category",
        per_cat_ok && on.attrib.by_category().next().is_some(),
        format!(
            "{} categories: syscall_calls/syscall_ns match the table exactly",
            on.attrib.by_category().count()
        ),
    );
    gates.check(
        "attribution/grand-totals",
        on.metrics.total("syscall_ns") == grand.total
            && on.metrics.total("syscall_calls") == on.attrib.calls()
            && on.metrics.total("engine_events_dispatched") == on.events,
        format!(
            "syscall_ns {} == attrib total; engine_events_dispatched {} == run events",
            on.metrics.total("syscall_ns"),
            on.events
        ),
    );

    // ------------------------------------------------ tailbench request path
    let apps = suite();
    let app = &apps[0]; // xapian
    let base = match cli.scale {
        Scale::Full => SingleNodeConfig::paper(true, false, cli.seed),
        _ => SingleNodeConfig::quick(true, false, cli.seed),
    };
    let tail_off = run_single_node(app, &SingleNodeConfig { ..base }, &corpus.corpus);
    let tail_on = run_single_node(
        app,
        &SingleNodeConfig {
            metrics: true,
            ..base
        },
        &corpus.corpus,
    );
    gates.check(
        "neutrality/tailbench",
        same_tail(&tail_off, &tail_on)
            && !tail_off.metrics.enabled()
            && tail_on.metrics.total("tenant_requests") == base.requests,
        format!(
            "p99 {} and {} sojourns identical; {} requests counted",
            cell_ns(tail_on.p99),
            tail_on.sojourns.raw().len(),
            tail_on.metrics.total("tenant_requests")
        ),
    );

    // Gate 3: every export format parses.
    let frames = attribution_frames(&on.attrib);
    let ts = parse(&timeseries_json(&on.metrics));
    let ts_ok = ts
        .as_ref()
        .map(|v| v.get("samples_taken").is_ok() && v.get("series").is_ok())
        .unwrap_or(false);
    let ss_ok = parse(&speedscope_json("ablation_obs", &frames))
        .map(|v| v.get("profiles").is_ok())
        .unwrap_or(false);
    let prom = prometheus_text(&on.metrics);
    let prom_ok = !prom.is_empty()
        && prom.lines().all(|l| {
            l.starts_with('#')
                || l.rsplit_once(' ')
                    .is_some_and(|(_, v)| v.parse::<u64>().is_ok())
        });
    let folded = collapsed(&frames);
    let folded_ok = !folded.is_empty()
        && folded.lines().all(|l| {
            l.rsplit_once(' ')
                .is_some_and(|(stack, v)| stack.contains(';') && v.parse::<u64>().is_ok())
        });
    gates.check(
        "exports/parse",
        ts_ok && ss_ok && prom_ok && folded_ok,
        format!(
            "timeseries+speedscope JSON parse; {} prom lines, {} folded stacks well-formed",
            prom.lines().count(),
            folded.lines().count()
        ),
    );

    // Gate 4: replay and pool width reproduce results *and* registries.
    let seq = expect_one(run_configs_jobs(&[mk_cfg(true)], &corpus.corpus, 1));
    let replay = expect_one(run_configs_jobs(&[mk_cfg(true)], &corpus.corpus, cli.jobs));
    gates.check(
        "determinism/jobs-and-replay",
        same_sim(&seq, &on)
            && same_sim(&replay, &on)
            && seq.metrics.digest() == on.metrics.digest()
            && replay.metrics.digest() == on.metrics.digest(),
        format!(
            "--jobs 1 vs {} and replay bit-identical (registry digest {:#018x})",
            cli.jobs,
            on.metrics.digest()
        ),
    );

    let mut csv = String::from("gate,run,sim_ns,events,telemetry_samples,registry_digest\n");
    for (name, res) in [
        ("off", &off),
        ("on", &on),
        ("seq", &seq),
        ("replay", &replay),
    ] {
        csv.push_str(&format!(
            "varbench,{},{},{},{},{:#018x}\n",
            name,
            res.sim_ns,
            res.events,
            res.metrics.samples_taken,
            res.metrics.digest()
        ));
    }
    cli.write_csv("ablation_obs", &csv);
    cli.write_metrics("ablation_obs", &on.metrics, &frames);

    if gates.failures > 0 {
        eprintln!("\nablation_obs: {} gate(s) FAILED", gates.failures);
        std::process::exit(1);
    }
    println!("\nablation_obs: all gates passed");
}

fn expect_one(mut results: Vec<Result<RunResult, ksa_varbench::RunError>>) -> RunResult {
    results
        .remove(0)
        .unwrap_or_else(|e| panic!("ablation_obs trial failed: {e:?}"))
}
