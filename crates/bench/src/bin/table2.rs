//! Regenerates Table 2: median / p99 / worst-case syscall runtime
//! breakdowns for native Linux, per-core KVM VMs and per-core Docker
//! containers.

use ksa_bench::Cli;
use ksa_core::experiments::{default_corpus, table2_metered};

fn main() {
    let cli = Cli::parse();
    let t0 = std::time::Instant::now();
    let corpus = default_corpus(cli.scale);
    eprintln!(
        "corpus: {} programs / {} calls / {} blocks ({:.1?})",
        corpus.corpus.len(),
        corpus.corpus.total_calls(),
        corpus.stats.blocks,
        t0.elapsed()
    );
    let (result, metered) =
        table2_metered(&corpus.corpus, cli.scale, cli.seed, cli.jobs, cli.metrics());
    println!("{}", result.median.render());
    println!("{}", result.p99.render());
    println!("{}", result.max.render());
    cli.write_csv("table2_median", &result.median.to_csv());
    cli.write_csv("table2_p99", &result.p99.to_csv());
    cli.write_csv("table2_max", &result.max.to_csv());
    cli.write_metrics("table2", &metered.registry, &metered.frames);
    eprintln!("total {:?}", t0.elapsed());
}
