//! Regenerates Table 1: the VM configuration ladder.

use ksa_bench::Cli;
use ksa_core::experiments::{table1, Scale};
use ksa_core::KernelSurfaceArea;
use ksa_envsim::{EnvKind, EnvSpec};

fn main() {
    let cli = Cli::parse();
    let rows = table1(Scale::Full); // Table 1 is machine-defined, not sampled
    println!("Table 1: VM configurations (64-core / 32 GB machine)");
    println!(
        "{:<8}{:>12}{:>12}{:>18}",
        "# VMs", "cores/VM", "GiB/VM", "surface scalar"
    );
    let machine = Scale::Full.machine();
    let mut csv = String::from("vms,cores_per,mib_per,surface_scalar\n");
    for r in &rows {
        let spec = EnvSpec::new(machine, EnvKind::Vm(r.count));
        let s = KernelSurfaceArea::of(&spec);
        println!(
            "{:<8}{:>12}{:>12.1}{:>18.1}",
            r.count,
            r.cores_per,
            r.mib_per as f64 / 1024.0,
            s.scalar()
        );
        csv.push_str(&format!(
            "{},{},{},{:.3}\n",
            r.count,
            r.cores_per,
            r.mib_per,
            s.scalar()
        ));
    }
    cli.write_csv("table1", &csv);
}
