//! Regenerates Figure 2: distributions of per-syscall 99th percentiles
//! by category across the VM-count sweep, plus the surface-area trend
//! analysis.

use ksa_bench::Cli;
use ksa_core::analysis::{render_trends, surface_trends};
use ksa_core::experiments::{default_corpus, fig2_metered};

fn main() {
    let cli = Cli::parse();
    let corpus = default_corpus(cli.scale);
    let (result, metered) =
        fig2_metered(&corpus.corpus, cli.scale, cli.seed, cli.jobs, cli.metrics());

    let mut csv = String::from("category,vms,count,min,whisker_lo,q1,median,q3,whisker_hi,max\n");
    for cat in &result.categories {
        println!(
            "Figure 2({}): {} — per-site p99 distribution by VM count",
            cat.category.letter(),
            cat.category.name()
        );
        for v in &cat.violins {
            println!("  {}", v.render_line());
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                cat.category.letter(),
                v.label.trim_end_matches(" VMs"),
                v.count,
                v.min,
                v.whisker_lo,
                v.q1,
                v.median,
                v.q3,
                v.whisker_hi,
                v.max
            ));
        }
        println!();
    }
    println!("{}", render_trends(&surface_trends(&result)));
    cli.write_csv("fig2", &csv);
    cli.write_metrics("fig2", &metered.registry, &metered.frames);
}
