//! Specialization ablation: the third surface-area axis, gated so
//! regressions fail CI.
//!
//! Three runs of the tailbench request path under the same machine
//! split (xapian, the kernel-intensive app):
//!
//! * **shared** — one kernel, 4 containers (the paper's Docker column);
//! * **partitioned** — 4 KVM instances, full kernel each (KVM column);
//! * **specialized** — the same 4 instances built from a
//!   coverage-derived [`SpecProfile`] of xapian's request path, so
//!   unreached subsystems never materialize: their daemons don't spawn
//!   and their lock groups collapse onto one stub.
//!
//! Gates:
//!
//! 1. specialization strictly shrinks the static footprint — fewer
//!    daemons **and** fewer engine locks than the partitioned kernel;
//! 2. the tail does not regress: specialized p99 within 5% of
//!    partitioned (the gated machinery was idle on this path);
//! 3. a full-allowlist profile is bit-identical to the unspecialized
//!    kernel — sojourn samples, clock, event count and footprint all
//!    equal (specialization off is exactly the old build);
//! 4. the whole ablation is bit-identical under replay and across
//!    `--jobs` pool widths.
//!
//! Exit code 1 on any gate failure.

use ksa_bench::{cell_ns, Cli};
use ksa_core::experiments::Scale;
use ksa_kernel::prog::{Arg, Call, Corpus, Program};
use ksa_kernel::SysNo;
use ksa_spec::{derive_profile, SpecProfile};
use ksa_tailbench::single_node::{run_points, run_single_node, SingleNodeConfig, TailResult};
use ksa_tailbench::suite;

/// The corpus a tenant's profile is derived from: xapian's request path
/// as the server executes it — connection setup plus the per-request
/// app template. Derivation replays it through the coverage sandbox, so
/// subsystems the path drags in (page allocation under `pread`, say)
/// join the category set even without a syscall of their own.
fn xapian_corpus() -> Corpus {
    Corpus {
        programs: vec![
            // Server setup: files + both socket ends.
            Program {
                calls: vec![
                    Call::new(SysNo::Open, vec![Arg::Const(1), Arg::Const(1)]),
                    Call::new(SysNo::Socket, vec![Arg::Const(1)]),
                    Call::new(SysNo::Bind, vec![Arg::Ref(1), Arg::Const(80)]),
                    Call::new(SysNo::Listen, vec![Arg::Ref(1), Arg::Const(8)]),
                    Call::new(SysNo::Socket, vec![Arg::Const(1)]),
                    Call::new(SysNo::Connect, vec![Arg::Ref(4), Arg::Const(80)]),
                    Call::new(SysNo::Accept, vec![Arg::Ref(1)]),
                    Call::new(SysNo::Pwrite, vec![Arg::Ref(0), Arg::Const(32_000)]),
                    Call::new(SysNo::Pread, vec![Arg::Ref(0), Arg::Const(32_000)]),
                    Call::new(SysNo::Sendto, vec![Arg::Ref(4), Arg::Const(1_500)]),
                    Call::new(SysNo::Recvfrom, vec![Arg::Ref(4), Arg::Const(1_500)]),
                ],
            },
            // Per-request work: the xapian app template.
            Program {
                calls: vec![
                    Call::new(SysNo::Pread, vec![Arg::Const(0), Arg::Const(24_000)]),
                    Call::new(SysNo::Mmap, vec![Arg::Const(16), Arg::Const(1)]),
                    Call::new(SysNo::Stat, vec![Arg::Const(4)]),
                ],
            },
        ],
    }
}

struct Gates {
    failures: u32,
}

impl Gates {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        let verdict = if ok { "ok  " } else { "FAIL" };
        println!("  [{verdict}] {name}: {detail}");
        if !ok {
            self.failures += 1;
        }
    }
}

fn identical(a: &TailResult, b: &TailResult) -> bool {
    a.p99 == b.p99
        && a.sim_ns == b.sim_ns
        && a.events == b.events
        && a.sojourns.raw() == b.sojourns.raw()
        && a.locks_allocated == b.locks_allocated
        && a.daemons_spawned == b.daemons_spawned
}

fn main() {
    let cli = Cli::parse();
    let apps = suite();
    let app = &apps[0]; // xapian: kernel-intensive request path
    let noise = Corpus { programs: vec![] }; // unused: noise off everywhere

    let profile = derive_profile("xapian", &xapian_corpus(), cli.seed);
    let cats: Vec<String> = profile.mask.categories().map(|c| c.to_string()).collect();
    println!(
        "ablation_spec: profile '{}' allows {}/{} syscalls, categories [{}]",
        profile.name,
        profile.mask.allowed_count(),
        SysNo::ALL.len(),
        cats.join(", ")
    );

    let base = match cli.scale {
        Scale::Full => SingleNodeConfig::paper(false, false, cli.seed),
        _ => SingleNodeConfig::quick(false, false, cli.seed),
    };
    let shared = SingleNodeConfig { ..base };
    let partitioned = SingleNodeConfig { virt: true, ..base };
    let specialized = SingleNodeConfig {
        virt: true,
        spec: Some(profile.mask),
        ..base
    };

    let points = [
        ("shared", shared),
        ("partitioned", partitioned),
        ("specialized", specialized),
    ];
    let point_list: Vec<_> = points.iter().map(|&(_, cfg)| (app.clone(), cfg)).collect();
    let results = run_points(&point_list, &noise, cli.jobs);
    let (sh, part, spec) = (&results[0], &results[1], &results[2]);
    for ((name, _), res) in points.iter().zip(&results) {
        println!(
            "{name:>12}: p99 {:>10}  {} daemons, {} locks",
            cell_ns(res.p99),
            res.daemons_spawned,
            res.locks_allocated
        );
    }
    let mut gates = Gates { failures: 0 };

    // Gate 1: the static footprint strictly shrinks.
    gates.check(
        "footprint/daemons",
        spec.daemons_spawned < part.daemons_spawned,
        format!(
            "{} daemons < {} partitioned",
            spec.daemons_spawned, part.daemons_spawned
        ),
    );
    gates.check(
        "footprint/locks",
        spec.locks_allocated < part.locks_allocated,
        format!(
            "{} locks < {} partitioned",
            spec.locks_allocated, part.locks_allocated
        ),
    );

    // Gate 2: gating idle machinery must not cost tail latency.
    gates.check(
        "tail/no-regression",
        spec.p99 as f64 <= part.p99 as f64 * 1.05,
        format!(
            "specialized p99 {} vs partitioned {} (bound 1.05x)",
            cell_ns(spec.p99),
            cell_ns(part.p99)
        ),
    );

    // Gate 3: the full-allowlist profile is the unspecialized kernel.
    let full_cfg = SingleNodeConfig {
        spec: Some(SpecProfile::full("all").mask),
        ..partitioned
    };
    let full = run_single_node(app, &full_cfg, &noise);
    gates.check(
        "identity/full-allowlist",
        identical(&full, part) && full.daemons_spawned == 4 * 5,
        format!(
            "full-mask run == spec=None run ({} samples, clock {}, {} daemons)",
            full.sojourns.raw().len(),
            cell_ns(full.sim_ns),
            full.daemons_spawned
        ),
    );

    // Gate 4: replay and pool width cannot reach the results.
    let seq = run_points(&point_list, &noise, 1);
    let replay = run_single_node(app, &specialized, &noise);
    gates.check(
        "determinism/jobs-and-replay",
        results.iter().zip(&seq).all(|(a, b)| identical(a, b)) && identical(&replay, spec),
        format!("--jobs 1 vs {} and replay bit-identical", cli.jobs),
    );

    let mut csv = String::from("run,p99_ns,sim_ns,events,daemons_spawned,locks_allocated\n");
    for ((name, _), res) in points.iter().zip(&results) {
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            name, res.p99, res.sim_ns, res.events, res.daemons_spawned, res.locks_allocated
        ));
    }
    cli.write_csv("ablation_spec", &csv);

    // Context line for EXPERIMENTS.md: the shared-kernel tail.
    println!(
        "      shared: p99 {} ({}x the partitioned tail)",
        cell_ns(sh.p99),
        format_args!("{:.2}", sh.p99 as f64 / part.p99.max(1) as f64)
    );

    if gates.failures > 0 {
        eprintln!("\nablation_spec: {} gate(s) FAILED", gates.failures);
        std::process::exit(1);
    }
    println!("\nablation_spec: all gates passed");
}
