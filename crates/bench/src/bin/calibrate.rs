//! Calibration tool: measures per-app request service demand at low
//! utilization to keep the target-utilization math honest. Dev tool.

use ksa_bench::Cli;
use ksa_core::experiments::{noise_corpus, Scale};
use ksa_envsim::Machine;
use ksa_tailbench::apps::suite;
use ksa_tailbench::single_node::{run_points, SingleNodeConfig};

fn main() {
    let cli = Cli::parse();
    let noise = noise_corpus(Scale::Tiny);
    // The app × virt sweep points are independent low-load runs; push
    // them through the pool like every other sweep.
    let mut points = Vec::new();
    for app in suite() {
        for virt in [false, true] {
            let cfg = SingleNodeConfig {
                machine: Machine {
                    cores: 16,
                    mem_mib: 16 * 1024,
                },
                groups: 4,
                virt,
                noise: false,
                requests: 400,
                warmup: 50,
                util_pct: 10, // low load: sojourn ~= service demand
                trace: false,
                metrics: cli.metrics(),
                spec: None,
                seed: 5,
            };
            points.push((app.clone(), cfg));
        }
    }
    let results = run_points(&points, &noise, cli.jobs);
    let mut merged = ksa_telemetry::Registry::disabled();
    for ((app, cfg), res) in points.iter().zip(&results) {
        merged.absorb(
            &res.metrics,
            &[
                ("app", app.name),
                ("virt", if cfg.virt { "kvm" } else { "docker" }),
            ],
        );
    }
    cli.write_metrics("calibrate", &merged, &[]);
    for ((app, cfg), res) in points.iter().zip(results) {
        let mean = res.sojourns.mean().unwrap_or(0.0);
        let expected = app.service_ns + app.jitter_ns / 2;
        println!(
            "{:<10} virt={} mean={:>10.0}ns expected_user={:>9}ns kernel_actual={:>9.0}ns (profile kernel_ns={})",
            app.name, cfg.virt as u8, mean, expected,
            mean - expected as f64, app.kernel_ns
        );
    }
}
