//! Calibration tool: measures per-app request service demand at low
//! utilization to keep the target-utilization math honest. Dev tool.

use ksa_core::experiments::{noise_corpus, Scale};
use ksa_envsim::Machine;
use ksa_tailbench::apps::suite;
use ksa_tailbench::single_node::{run_single_node, SingleNodeConfig};

fn main() {
    let noise = noise_corpus(Scale::Tiny);
    for app in suite() {
        for virt in [false, true] {
            let cfg = SingleNodeConfig {
                machine: Machine { cores: 16, mem_mib: 16 * 1024 },
                groups: 4,
                virt,
                noise: false,
                requests: 400,
                warmup: 50,
                util_pct: 10, // low load: sojourn ~= service demand
                trace: false,
                seed: 5,
            };
            let res = run_single_node(&app, &cfg, &noise);
            let mean = res.sojourns.mean().unwrap_or(0.0);
            let expected = app.service_ns + app.jitter_ns / 2;
            println!(
                "{:<10} virt={} mean={:>10.0}ns expected_user={:>9}ns kernel_actual={:>9.0}ns (profile kernel_ns={})",
                app.name, virt as u8, mean, expected,
                mean - expected as f64, app.kernel_ns
            );
        }
    }
}
