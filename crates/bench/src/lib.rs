//! Shared plumbing for the experiment binaries: CLI parsing and artifact
//! writing in [`cli`], table-cell formatting, and the offline
//! [`microbench`] harness. See [`cli`] for the flags every binary
//! accepts.

pub mod cli;

pub use cli::Cli;

/// Formats a nanosecond value for table cells.
pub fn cell_ns(ns: u64) -> String {
    ksa_stats::fmt_ns(ns)
}

/// Minimal wall-clock micro-benchmark runner for the `benches/` targets
/// (they are `harness = false` binaries; no external bench framework is
/// available offline). Each case runs a warmup pass plus `samples` timed
/// passes and prints min/mean per iteration.
pub mod microbench {
    use std::time::Instant;

    /// A named group of benchmark cases.
    pub struct Group {
        name: String,
        samples: u32,
    }

    /// Opens a group with the default sample count.
    pub fn group(name: &str) -> Group {
        Group {
            name: name.to_string(),
            samples: 10,
        }
    }

    impl Group {
        /// Overrides the number of timed passes per case.
        pub fn sample_size(mut self, samples: u32) -> Self {
            self.samples = samples.max(1);
            self
        }

        /// Times `f`, printing per-case statistics. The closure's return
        /// value is passed through a black box so the work is not
        /// optimized away.
        pub fn bench<T>(&self, case: &str, mut f: impl FnMut() -> T) {
            std::hint::black_box(f());
            let mut times = Vec::with_capacity(self.samples as usize);
            for _ in 0..self.samples {
                let t0 = Instant::now();
                std::hint::black_box(f());
                times.push(t0.elapsed().as_nanos() as u64);
            }
            let min = *times.iter().min().expect("samples >= 1");
            let mean = times.iter().sum::<u64>() / times.len() as u64;
            println!(
                "{}/{case}: min {}  mean {}  ({} samples)",
                self.name,
                super::cell_ns(min),
                super::cell_ns(mean),
                times.len()
            );
        }
    }
}
