//! Shared plumbing for the experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--tiny` / `--quick` / `--full` — experiment scale (default quick),
//! * `--seed <n>` — trial seed (default 42),
//! * `--jobs <n>` — pool workers for independent trials (default 0 =
//!   auto: `KSA_JOBS` or available parallelism; 1 = sequential; results
//!   are bit-identical for every value),
//! * `--csv <dir>` — also write CSV artifacts into `dir`,
//! * `--trace-out <path>` — write a Chrome-trace JSON of the run's
//!   recorded trace (bins that record one).

use ksa_core::experiments::Scale;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiment scale.
    pub scale: Scale,
    /// Trial seed.
    pub seed: u64,
    /// Pool workers for independent trials (0 = auto).
    pub jobs: usize,
    /// CSV output directory.
    pub csv: Option<PathBuf>,
    /// Chrome-trace JSON output path.
    pub trace_out: Option<PathBuf>,
}

impl Cli {
    /// Parses `std::env::args`; exits with usage on errors.
    pub fn parse() -> Self {
        let mut scale = Scale::Quick;
        let mut seed = 42;
        let mut jobs = 0;
        let mut csv = None;
        let mut trace_out = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--tiny" => scale = Scale::Tiny,
                "--quick" => scale = Scale::Quick,
                "--full" => scale = Scale::Full,
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                }
                "--jobs" => {
                    jobs = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--jobs needs a number"));
                }
                "--csv" => {
                    csv = Some(PathBuf::from(
                        args.next().unwrap_or_else(|| usage("--csv needs a dir")),
                    ));
                }
                "--trace-out" => {
                    trace_out = Some(PathBuf::from(
                        args.next()
                            .unwrap_or_else(|| usage("--trace-out needs a path")),
                    ));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument: {other}")),
            }
        }
        Cli {
            scale,
            seed,
            jobs,
            csv,
            trace_out,
        }
    }

    /// Writes `content` as `<name>.csv` when `--csv` was given.
    pub fn write_csv(&self, name: &str, content: &str) {
        if let Some(dir) = &self.csv {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, content).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--tiny|--quick|--full] [--seed N] [--jobs N] [--csv DIR] \
         [--trace-out PATH]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// Formats a nanosecond value for table cells.
pub fn cell_ns(ns: u64) -> String {
    ksa_stats::fmt_ns(ns)
}

/// Minimal wall-clock micro-benchmark runner for the `benches/` targets
/// (they are `harness = false` binaries; no external bench framework is
/// available offline). Each case runs a warmup pass plus `samples` timed
/// passes and prints min/mean per iteration.
pub mod microbench {
    use std::time::Instant;

    /// A named group of benchmark cases.
    pub struct Group {
        name: String,
        samples: u32,
    }

    /// Opens a group with the default sample count.
    pub fn group(name: &str) -> Group {
        Group {
            name: name.to_string(),
            samples: 10,
        }
    }

    impl Group {
        /// Overrides the number of timed passes per case.
        pub fn sample_size(mut self, samples: u32) -> Self {
            self.samples = samples.max(1);
            self
        }

        /// Times `f`, printing per-case statistics. The closure's return
        /// value is passed through a black box so the work is not
        /// optimized away.
        pub fn bench<T>(&self, case: &str, mut f: impl FnMut() -> T) {
            std::hint::black_box(f());
            let mut times = Vec::with_capacity(self.samples as usize);
            for _ in 0..self.samples {
                let t0 = Instant::now();
                std::hint::black_box(f());
                times.push(t0.elapsed().as_nanos() as u64);
            }
            let min = *times.iter().min().expect("samples >= 1");
            let mean = times.iter().sum::<u64>() / times.len() as u64;
            println!(
                "{}/{case}: min {}  mean {}  ({} samples)",
                self.name,
                super::cell_ns(min),
                super::cell_ns(mean),
                times.len()
            );
        }
    }
}
