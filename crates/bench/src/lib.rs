//! Shared plumbing for the experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--tiny` / `--quick` / `--full` — experiment scale (default quick),
//! * `--seed <n>` — trial seed (default 42),
//! * `--csv <dir>` — also write CSV artifacts into `dir`.

use ksa_core::experiments::Scale;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiment scale.
    pub scale: Scale,
    /// Trial seed.
    pub seed: u64,
    /// CSV output directory.
    pub csv: Option<PathBuf>,
}

impl Cli {
    /// Parses `std::env::args`; exits with usage on errors.
    pub fn parse() -> Self {
        let mut scale = Scale::Quick;
        let mut seed = 42;
        let mut csv = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--tiny" => scale = Scale::Tiny,
                "--quick" => scale = Scale::Quick,
                "--full" => scale = Scale::Full,
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                }
                "--csv" => {
                    csv = Some(PathBuf::from(
                        args.next().unwrap_or_else(|| usage("--csv needs a dir")),
                    ));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument: {other}")),
            }
        }
        Cli { scale, seed, csv }
    }

    /// Writes `content` as `<name>.csv` when `--csv` was given.
    pub fn write_csv(&self, name: &str, content: &str) {
        if let Some(dir) = &self.csv {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, content).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <bin> [--tiny|--quick|--full] [--seed N] [--csv DIR]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// Formats a nanosecond value for table cells.
pub fn cell_ns(ns: u64) -> String {
    ksa_stats::fmt_ns(ns)
}
