//! Shared CLI parsing for the experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--tiny` / `--quick` / `--full` — experiment scale (default quick),
//! * `--seed <n>` — trial seed (default 42),
//! * `--jobs <n>` — pool workers for independent trials (default 0 =
//!   auto: `KSA_JOBS` or available parallelism; 1 = sequential; results
//!   are bit-identical for every value),
//! * `--csv <dir>` — also write CSV artifacts into `dir`,
//! * `--trace-out <path>` — write a Chrome-trace JSON of the run's
//!   recorded trace (bins that record one),
//! * `--metrics-out <path>` — write the run's telemetry: time-series
//!   JSON at `path`, Prometheus text next to it (`.prom`), and — for
//!   bins that collect a latency attribution — collapsed-stack
//!   (`.folded`) and speedscope (`.speedscope.json`) profiles.
//!
//! Bins with extra flags extend the parser through
//! [`Cli::parse_with`]'s hook instead of re-rolling the loop.

use ksa_core::experiments::Scale;
use ksa_telemetry::export::{collapsed, prometheus_text, speedscope_json, timeseries_json, Frame};
use ksa_telemetry::Registry;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiment scale.
    pub scale: Scale,
    /// Trial seed.
    pub seed: u64,
    /// Pool workers for independent trials (0 = auto).
    pub jobs: usize,
    /// CSV output directory.
    pub csv: Option<PathBuf>,
    /// Chrome-trace JSON output path.
    pub trace_out: Option<PathBuf>,
    /// Telemetry output path (time-series JSON; siblings derived).
    pub metrics_out: Option<PathBuf>,
}

/// The argument stream handed to [`Cli::parse_with`] extensions; pull
/// flag values with [`Args::value`].
pub struct Args {
    inner: std::iter::Skip<std::env::Args>,
    usage_extra: &'static str,
}

impl Args {
    fn next(&mut self) -> Option<String> {
        self.inner.next()
    }

    /// The value following the current flag; exits with usage if absent.
    pub fn value(&mut self, flag: &str) -> String {
        match self.inner.next() {
            Some(v) => v,
            None => self.usage(&format!("{flag} needs a value")),
        }
    }

    /// Exits with the usage banner (extension flags appended) and `msg`.
    pub fn usage(&self, msg: &str) -> ! {
        usage_with(self.usage_extra, msg)
    }
}

impl Cli {
    /// Parses `std::env::args`; exits with usage on errors.
    pub fn parse() -> Self {
        Self::parse_with("", |_, args| args.usage("unexpected extension flag"))
    }

    /// Parses the common flags, handing anything unrecognized to `ext`.
    /// `ext` gets the flag string plus the argument stream (to pull the
    /// flag's value) and returns `true` if it consumed the flag;
    /// `extra_usage` is appended to the usage banner.
    pub fn parse_with(
        extra_usage: &'static str,
        mut ext: impl FnMut(&str, &mut Args) -> bool,
    ) -> Self {
        let mut cli = Cli {
            scale: Scale::Quick,
            seed: 42,
            jobs: 0,
            csv: None,
            trace_out: None,
            metrics_out: None,
        };
        let mut args = Args {
            inner: std::env::args().skip(1),
            usage_extra: extra_usage,
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--tiny" => cli.scale = Scale::Tiny,
                "--quick" => cli.scale = Scale::Quick,
                "--full" => cli.scale = Scale::Full,
                "--seed" => {
                    cli.seed = args
                        .value("--seed")
                        .parse()
                        .unwrap_or_else(|_| args.usage("--seed needs a number"));
                }
                "--jobs" => {
                    cli.jobs = args
                        .value("--jobs")
                        .parse()
                        .unwrap_or_else(|_| args.usage("--jobs needs a number"));
                }
                "--csv" => cli.csv = Some(PathBuf::from(args.value("--csv"))),
                "--trace-out" => cli.trace_out = Some(PathBuf::from(args.value("--trace-out"))),
                "--metrics-out" => {
                    cli.metrics_out = Some(PathBuf::from(args.value("--metrics-out")))
                }
                "--help" | "-h" => args.usage(""),
                other => {
                    if !ext(other, &mut args) {
                        args.usage(&format!("unknown argument: {other}"));
                    }
                }
            }
        }
        cli
    }

    /// Whether the run should collect telemetry (i.e. `--metrics-out`
    /// was given) — wire this into `RunConfig::metrics` and friends.
    pub fn metrics(&self) -> bool {
        self.metrics_out.is_some()
    }

    /// Writes `content` as `<name>.csv` when `--csv` was given.
    pub fn write_csv(&self, name: &str, content: &str) {
        if let Some(dir) = &self.csv {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, content).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }

    /// Writes the run's telemetry when `--metrics-out` was given:
    /// time-series JSON at the flag's path, Prometheus text next to it,
    /// and — when `frames` is non-empty — collapsed-stack and speedscope
    /// profiles folded from the latency taxonomy (see
    /// [`ksa_kernel::attribution_frames`]).
    pub fn write_metrics(&self, name: &str, reg: &Registry, frames: &[Frame]) {
        let Some(path) = &self.metrics_out else {
            return;
        };
        std::fs::write(path, timeseries_json(reg)).expect("write metrics json");
        eprintln!("wrote {}", path.display());
        let prom = path.with_extension("prom");
        std::fs::write(&prom, prometheus_text(reg)).expect("write prometheus text");
        eprintln!("wrote {}", prom.display());
        if !frames.is_empty() {
            let folded = path.with_extension("folded");
            std::fs::write(&folded, collapsed(frames)).expect("write collapsed stacks");
            eprintln!("wrote {}", folded.display());
            let ss = path.with_extension("speedscope.json");
            std::fs::write(&ss, speedscope_json(name, frames)).expect("write speedscope");
            eprintln!("wrote {}", ss.display());
        }
    }
}

fn usage_with(extra: &str, msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--tiny|--quick|--full] [--seed N] [--jobs N] [--csv DIR] \
         [--trace-out PATH] [--metrics-out PATH]{}{extra}",
        if extra.is_empty() { "" } else { " " }
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
