//! Ablation: the networking surface area (the seventh Figure 2 row).
//!
//! Runs a networking-heavy corpus across the VM sweep on one machine
//! under barrier sync. A shared kernel funnels every core through one
//! softirq path, one NIC ring set, and one socket/port table, so
//! Network-category tails grow with the surface area; per-core VMs
//! carry the virtio exit tax instead but bound the tail. The bench
//! asserts that ordering and prints the lock-contention attribution
//! (softirq / nic_queue / sock_bucket labels).

use ksa_bench::microbench;
use ksa_core::experiments::{net_corpus, Scale};
use ksa_envsim::{EnvKind, EnvSpec, Machine};
use ksa_kernel::Category;
use ksa_varbench::{run, RunConfig, RunResult};

const MACHINE: Machine = Machine {
    cores: 8,
    mem_mib: 4 * 1024,
};

fn trial(corpus: &ksa_kernel::prog::Corpus, kind: EnvKind) -> RunResult {
    run(
        &RunConfig {
            env: EnvSpec::new(MACHINE, kind),
            iterations: 6,
            sync: true,
            seed: 17,
            max_events: 0,
            trace: false,
            metrics: false,
            spec: None,
        },
        corpus,
    )
    .expect("ablation_net trial failed")
}

/// Median and worst per-site p99 over the Network category.
fn net_tail(res: &mut RunResult) -> (u64, u64) {
    let mut p99s = res.per_site(Some(Category::Network), |s| s.p99());
    p99s.sort_unstable();
    let med = p99s.get(p99s.len() / 2).copied().unwrap_or(0);
    let max = p99s.last().copied().unwrap_or(0);
    (med, max)
}

fn main() {
    let corpus = net_corpus(Scale::Tiny);
    let group = microbench::group("ablation_net").sample_size(5);

    for (label, kind) in [
        ("shared_vm1", EnvKind::Vm(1)),
        ("percore_vm8", EnvKind::Vm(8)),
    ] {
        group.bench(label, || trial(&corpus, kind));
    }

    // The surface-area claim, checked once across the sweep: the shared
    // kernel's Network tail must not beat the per-core split's.
    let mut tails = Vec::new();
    for count in [1usize, 2, 4, 8] {
        let mut res = trial(&corpus, EnvKind::Vm(count));
        let (med, max) = net_tail(&mut res);
        eprintln!(
            "Vm({count}): net med-p99={med}ns max-p99={max}ns over {} sites",
            res.per_site(Some(Category::Network), |s| s.p99()).len()
        );
        tails.push((count, med, max));
    }
    let shared = tails[0];
    let split = tails[tails.len() - 1];
    assert!(
        shared.1 >= split.1,
        "shared-kernel Network median p99 ({}) must be >= per-core VMs' ({})",
        shared.1,
        split.1
    );

    // Contention attribution: the shared run's hotspots must include the
    // networking locks the new subsystem introduced.
    let res = trial(&corpus, EnvKind::Vm(1));
    let hot = res.contention.render();
    for label in ["softirq", "nic_queue", "sock_bucket"] {
        assert!(
            res.contention.by_label.contains_key(label),
            "shared trial should exercise the {label} lock; hotspots:\n{hot}"
        );
    }
    eprintln!("shared-kernel lock contention:\n{hot}");
}
