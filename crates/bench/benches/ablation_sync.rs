//! Ablation: barrier synchronization on/off.
//!
//! The paper argues fine-grained synchronization is what exposes latent
//! contention. This bench measures the same corpus with and without the
//! global program barrier and reports how much measured tail collapses
//! without it.

use ksa_bench::microbench;
use ksa_core::experiments::{default_corpus, Scale};
use ksa_envsim::{EnvKind, EnvSpec, Machine};
use ksa_varbench::{run, RunConfig};

fn main() {
    let corpus = default_corpus(Scale::Tiny).corpus;
    let machine = Machine {
        cores: 8,
        mem_mib: 4096,
    };
    let group = microbench::group("ablation_sync").sample_size(10);
    for sync in [true, false] {
        group.bench(if sync { "synced" } else { "unsynced" }, || {
            run(
                &RunConfig {
                    env: EnvSpec::new(machine, EnvKind::Native),
                    iterations: 4,
                    sync,
                    seed: 3,
                    max_events: 0,
                    trace: false,
                    metrics: false,
                    spec: None,
                },
                &corpus,
            )
        });
    }

    // Report the measurement-quality difference once.
    let mut stats = Vec::new();
    for sync in [true, false] {
        let mut res = run(
            &RunConfig {
                env: EnvSpec::new(machine, EnvKind::Native),
                iterations: 8,
                sync,
                seed: 3,
                max_events: 0,
                trace: false,
                metrics: false,
                spec: None,
            },
            &corpus,
        )
        .expect("trial failed");
        let p99s = res.per_site(None, |s| s.p99());
        let mut sorted = p99s.clone();
        sorted.sort_unstable();
        stats.push((sync, sorted[sorted.len() / 2], *sorted.last().unwrap()));
    }
    for (sync, med, max) in stats {
        eprintln!(
            "sync={}: median-of-site-p99s={}ns worst-site-p99={}ns",
            sync, med, max
        );
    }
}
