//! Ablation: barrier synchronization on/off.
//!
//! The paper argues fine-grained synchronization is what exposes latent
//! contention. This bench measures the same corpus with and without the
//! global program barrier and reports (via criterion throughput and an
//! eprintln summary) how much measured tail collapses without it.

use criterion::{criterion_group, criterion_main, Criterion};
use ksa_core::experiments::{default_corpus, Scale};
use ksa_envsim::{EnvKind, EnvSpec, Machine};
use ksa_varbench::{run, RunConfig};

fn bench_sync_ablation(c: &mut Criterion) {
    let corpus = default_corpus(Scale::Tiny).corpus;
    let machine = Machine {
        cores: 8,
        mem_mib: 4096,
    };
    let mut group = c.benchmark_group("ablation_sync");
    group.sample_size(10);
    for sync in [true, false] {
        group.bench_function(if sync { "synced" } else { "unsynced" }, |b| {
            b.iter(|| {
                run(
                    &RunConfig {
                        env: EnvSpec::new(machine, EnvKind::Native),
                        iterations: 4,
                        sync,
                        seed: 3,
                    },
                    &corpus,
                )
            })
        });
    }
    group.finish();

    // Report the measurement-quality difference once.
    let mut stats = Vec::new();
    for sync in [true, false] {
        let mut res = run(
            &RunConfig {
                env: EnvSpec::new(machine, EnvKind::Native),
                iterations: 8,
                sync,
                seed: 3,
            },
            &corpus,
        );
        let p99s = res.per_site(None, |s| s.p99());
        let mut sorted = p99s.clone();
        sorted.sort_unstable();
        stats.push((sync, sorted[sorted.len() / 2], *sorted.last().unwrap()));
    }
    for (sync, med, max) in stats {
        eprintln!(
            "sync={}: median-of-site-p99s={}ns worst-site-p99={}ns",
            sync, med, max
        );
    }
}

criterion_group!(benches, bench_sync_ablation);
criterion_main!(benches);
