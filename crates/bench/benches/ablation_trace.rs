//! Ablation: latency *attribution* across the surface-area sweep.
//!
//! The tracing tentpole's acceptance gate. A networking-heavy corpus
//! runs under barrier sync on one 8-core machine divided into 1, 2, 4
//! and 8 VMs. With per-call attribution retained (`keep_raw`), the tail
//! of the Network-category calls can be *decomposed*: on a shared
//! kernel the p99 is dominated by lock wait (softirq, NIC rings, socket
//! buckets, conntrack); splitting the kernel shrinks each instance's
//! lock population, so the **lock-wait share of the tail must decline
//! monotonically** from shared to per-core — while the VM-exit share
//! rises (virtio doorbells replace queueing). This is the paper's
//! surface-area mechanism, read off the attribution rather than
//! inferred from totals.

use ksa_bench::microbench;
use ksa_core::experiments::{net_corpus, Scale};
use ksa_envsim::{EnvKind, EnvSpec, Machine};
use ksa_kernel::{Attribution, Category, RawCall};
use ksa_varbench::{run_hooked, RunConfig, RunResult};

const MACHINE: Machine = Machine {
    cores: 8,
    mem_mib: 4 * 1024,
};

fn trial(corpus: &ksa_kernel::prog::Corpus, kind: EnvKind) -> RunResult {
    run_hooked(
        &RunConfig {
            env: EnvSpec::new(MACHINE, kind),
            iterations: 6,
            sync: true,
            seed: 23,
            max_events: 0,
            trace: false,
            metrics: false,
            spec: None,
        },
        corpus,
        |engine| {
            use ksa_kernel::world::HasKernel;
            engine.world_mut().kernel_mut().attrib.keep_raw = true;
        },
    )
    .expect("ablation_trace trial failed")
}

/// Aggregated decomposition of the Network-category tail: every raw
/// call in the slowest decile (at or above the p90 total latency — the
/// mass that determines where the p99 lands; the p99 slice alone is a
/// handful of calls and too grainy to decompose). Also returns the p99
/// cut itself for reporting.
fn tail_decomposition(raw: &[RawCall]) -> (u64, Attribution) {
    let mut net: Vec<&RawCall> = raw
        .iter()
        .filter(|c| c.no.categories().contains(&Category::Network))
        .collect();
    assert!(!net.is_empty(), "corpus must exercise Network syscalls");
    net.sort_by_key(|c| c.attrib.total);
    let p99 = net[(net.len() - 1) * 99 / 100].attrib.total;
    let p90 = net[(net.len() - 1) * 90 / 100].attrib.total;
    let mut agg = Attribution::default();
    for c in net.iter().filter(|c| c.attrib.total >= p90) {
        agg.add(&c.attrib);
    }
    (p99, agg)
}

fn share(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 / total as f64
    }
}

fn main() {
    let corpus = net_corpus(Scale::Tiny);
    let group = microbench::group("ablation_trace").sample_size(5);

    for (label, kind) in [
        ("attrib_shared_vm1", EnvKind::Vm(1)),
        ("attrib_percore_vm8", EnvKind::Vm(8)),
    ] {
        group.bench(label, || trial(&corpus, kind));
    }

    // The gate: lock-wait share of the Network tail declines
    // monotonically as the kernel splits 1 → 2 → 4 → 8 instances.
    let mut shares = Vec::new();
    for count in [1usize, 2, 4, 8] {
        let res = trial(&corpus, EnvKind::Vm(count));
        assert_eq!(
            res.attrib.raw.len() as u64,
            res.attrib.calls(),
            "keep_raw must retain every recorded call"
        );
        let (p99, tail) = tail_decomposition(&res.attrib.raw);
        assert!(tail.is_exact(), "tail aggregate must stay exact");
        let lock_share = share(tail.lock_wait, tail.total);
        let exit_share = share(tail.vm_exit, tail.total);
        eprintln!(
            "Vm({count}): net p99={p99}ns tail lock-wait {:.1}% vm-exit {:.1}% \
             (softirq {:.1}%, runq {:.1}%)",
            100.0 * lock_share,
            100.0 * exit_share,
            100.0 * share(tail.softirq_wait, tail.total),
            100.0 * share(tail.runq_wait, tail.total),
        );
        shares.push((count, lock_share, exit_share));
    }
    for w in shares.windows(2) {
        assert!(
            w[1].1 <= w[0].1,
            "lock-wait share of the Network tail must decline with the split: \
             Vm({}) {:.3} vs Vm({}) {:.3}",
            w[0].0,
            w[0].1,
            w[1].0,
            w[1].1
        );
    }
    assert!(
        shares[0].1 > shares[3].1,
        "shared kernel must show strictly more tail lock wait than per-core VMs"
    );
    assert!(
        shares[3].2 >= shares[0].2,
        "the per-core split pays for isolation in VM exits, not lock wait"
    );

    // The attribution table renders the paste-ready category view.
    let res = trial(&corpus, EnvKind::Vm(1));
    eprintln!(
        "shared-kernel attribution:\n{}",
        res.attrib.render_by_category()
    );
}
