//! Generator microbenchmarks: coverage-guided corpus construction cost.

use ksa_bench::microbench;
use ksa_syzgen::{generate, GenConfig};

fn main() {
    let group = microbench::group("corpus_generation").sample_size(10);
    for max_programs in [20usize, 60] {
        group.bench(&format!("{max_programs}"), || {
            generate(GenConfig {
                seed: 7,
                max_programs,
                stall_limit: 300,
                mutate_pct: 70,
                minimize: true,
            })
        });
    }
}
