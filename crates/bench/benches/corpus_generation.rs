//! Generator microbenchmarks: coverage-guided corpus construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksa_syzgen::{generate, GenConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_generation");
    group.sample_size(10);
    for programs in [20usize, 60] {
        group.bench_with_input(
            BenchmarkId::from_parameter(programs),
            &programs,
            |b, &max_programs| {
                b.iter(|| {
                    generate(GenConfig {
                        seed: 7,
                        max_programs,
                        stall_limit: 300,
                        mutate_pct: 70,
                        minimize: true,
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
