//! Ablation: coverage-guided versus random corpus.
//!
//! Coverage guidance should reach more kernel blocks per program — the
//! generator's whole point.

use ksa_bench::microbench;
use ksa_syzgen::{generate, GenConfig, ProgramGenerator, Sandbox};

fn main() {
    let group = microbench::group("ablation_corpus").sample_size(10);
    group.bench("coverage_guided", || {
        generate(GenConfig {
            seed: 11,
            max_programs: 30,
            stall_limit: 200,
            mutate_pct: 70,
            minimize: true,
        })
    });
    group.bench("random", || {
        let mut gen = ProgramGenerator::new(11);
        let mut sandbox = Sandbox::new(11);
        let mut cover = ksa_kernel::coverage::CoverageSet::new();
        for _ in 0..30 {
            let p = gen.random_program();
            cover.merge(&sandbox.run_fresh(&p));
        }
        cover.len()
    });

    // Coverage-per-program comparison, reported once.
    let guided = generate(GenConfig {
        seed: 11,
        max_programs: 30,
        stall_limit: 200,
        mutate_pct: 70,
        minimize: true,
    });
    let mut gen = ProgramGenerator::new(11);
    let mut sandbox = Sandbox::new(11);
    let mut random_cover = ksa_kernel::coverage::CoverageSet::new();
    for _ in 0..guided.corpus.len() {
        let p = gen.random_program();
        random_cover.merge(&sandbox.run_fresh(&p));
    }
    eprintln!(
        "blocks with {} programs: coverage-guided={} random={}",
        guided.corpus.len(),
        guided.stats.blocks,
        random_cover.len()
    );
}
