//! Ablation: which surface-area dimension matters per subsystem.
//!
//! Varies cores-only (same memory per instance) against the paper's
//! proportional sweep, reporting memory-management versus filesystem
//! tails. Times the simulation and prints the shape summary once.

use ksa_bench::microbench;
use ksa_core::experiments::{default_corpus, Scale};
use ksa_envsim::{EnvKind, EnvSpec, Machine};
use ksa_kernel::Category;
use ksa_varbench::{run, RunConfig};

fn tail(res: &mut ksa_varbench::RunResult, cat: Category) -> u64 {
    let mut p99s = res.per_site(Some(cat), |s| s.p99());
    p99s.sort_unstable();
    p99s.get(p99s.len() / 2).copied().unwrap_or(0)
}

fn main() {
    let corpus = default_corpus(Scale::Tiny).corpus;
    let group = microbench::group("ablation_surface").sample_size(10);

    // Proportional sweep (cores and memory shrink together) vs a
    // memory-rich sweep (cores shrink, memory constant per instance).
    for (label, mem_mib) in [("proportional", 4096u64), ("memory_rich", 16_384)] {
        group.bench(label, || {
            run(
                &RunConfig {
                    env: EnvSpec::new(Machine { cores: 8, mem_mib }, EnvKind::Vm(8)),
                    iterations: 4,
                    sync: true,
                    seed: 5,
                    max_events: 0,
                    trace: false,
                    metrics: false,
                    spec: None,
                },
                &corpus,
            )
        });
    }

    for (label, mem) in [("proportional-4G", 4096u64), ("memory-rich-16G", 16_384)] {
        let mut res = run(
            &RunConfig {
                env: EnvSpec::new(
                    Machine {
                        cores: 8,
                        mem_mib: mem,
                    },
                    EnvKind::Vm(8),
                ),
                iterations: 6,
                sync: true,
                seed: 5,
                max_events: 0,
                trace: false,
                metrics: false,
                spec: None,
            },
            &corpus,
        )
        .expect("trial failed");
        eprintln!(
            "{label}: mm med-p99={}ns fs med-p99={}ns io med-p99={}ns",
            tail(&mut res, Category::Memory),
            tail(&mut res, Category::Filesystem),
            tail(&mut res, Category::FileIo),
        );
    }
}
