//! Ablation: which surface-area dimension matters per subsystem.
//!
//! Varies cores-only (same memory per instance) against the paper's
//! proportional sweep, reporting memory-management versus filesystem
//! tails. Runs the simulation inside criterion for timing and prints the
//! shape summary once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksa_core::experiments::{default_corpus, Scale};
use ksa_envsim::{EnvKind, EnvSpec, Machine};
use ksa_kernel::Category;
use ksa_varbench::{run, RunConfig};

fn tail(res: &mut ksa_varbench::RunResult, cat: Category) -> u64 {
    let mut p99s = res.per_site(Some(cat), |s| s.p99());
    p99s.sort_unstable();
    p99s.get(p99s.len() / 2).copied().unwrap_or(0)
}

fn bench_surface_ablation(c: &mut Criterion) {
    let corpus = default_corpus(Scale::Tiny).corpus;
    let mut group = c.benchmark_group("ablation_surface");
    group.sample_size(10);

    // Proportional sweep (cores and memory shrink together) vs a
    // memory-rich sweep (cores shrink, memory constant per instance).
    for (label, mem_mib) in [("proportional", 4096u64), ("memory_rich", 16_384)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mem_mib, |b, &mem| {
            b.iter(|| {
                run(
                    &RunConfig {
                        env: EnvSpec::new(Machine { cores: 8, mem_mib: mem }, EnvKind::Vm(8)),
                        iterations: 4,
                        sync: true,
                        seed: 5,
                    },
                    &corpus,
                )
            })
        });
    }
    group.finish();

    for (label, mem) in [("proportional-4G", 4096u64), ("memory-rich-16G", 16_384)] {
        let mut res = run(
            &RunConfig {
                env: EnvSpec::new(Machine { cores: 8, mem_mib: mem }, EnvKind::Vm(8)),
                iterations: 6,
                sync: true,
                seed: 5,
            },
            &corpus,
        );
        eprintln!(
            "{label}: mm med-p99={}ns fs med-p99={}ns io med-p99={}ns",
            tail(&mut res, Category::Memory),
            tail(&mut res, Category::Filesystem),
            tail(&mut res, Category::FileIo),
        );
    }
}

criterion_group!(benches, bench_surface_ablation);
criterion_main!(benches);
