//! Ablation: the fault-injection corpus phase on/off.
//!
//! A no-fault replay of the corpus can only reach success-path blocks —
//! `err.*` coverage is exactly zero. The fault phase (Syzkaller's
//! FAULT_INJECTION analogue) must therefore *strictly* extend coverage,
//! and every block it adds on the error side is unreachable without
//! injection. This bench measures both and asserts the separation; it
//! also drives one fault-injected varbench trial through `run_hooked`
//! to show plans compose with the measurement harness.

use ksa_bench::microbench;
use ksa_desim::FaultPlan;
use ksa_envsim::{EnvKind, EnvSpec, Machine};
use ksa_kernel::coverage::CoverageSet;
use ksa_syzgen::{fault_phase, generate, FaultGenConfig, GenConfig, Sandbox};
use ksa_varbench::{run_hooked, RunConfig};

fn gen_cfg() -> GenConfig {
    GenConfig {
        seed: 11,
        max_programs: 20,
        stall_limit: 150,
        mutate_pct: 70,
        minimize: false,
    }
}

fn main() {
    let base = generate(gen_cfg()).corpus;

    let group = microbench::group("ablation_faults").sample_size(5);
    group.bench("no_fault_replay", || {
        let mut sb = Sandbox::new(11);
        let mut cover = CoverageSet::new();
        for p in &base.programs {
            cover.merge(&sb.run_fresh(p));
        }
        cover.len()
    });
    group.bench("fault_phase", || {
        fault_phase(&base, FaultGenConfig::default()).stats.accepted
    });

    // The coverage claim, checked once: the no-fault baseline reaches
    // zero error blocks; injection strictly exceeds it.
    let mut sb = Sandbox::new(11);
    let mut baseline = CoverageSet::new();
    for p in &base.programs {
        baseline.merge(&sb.run_fresh(p));
    }
    assert_eq!(
        baseline.error_blocks(),
        0,
        "a fault-free replay must not reach err.* blocks"
    );
    let out = fault_phase(&base, FaultGenConfig::default());
    assert!(
        out.stats.error_blocks > 0,
        "injection must reach error blocks"
    );
    assert!(
        out.stats.new_blocks > 0,
        "fault-enabled coverage must strictly exceed the baseline"
    );
    eprintln!(
        "coverage: no-fault={} blocks (0 err) | with faults=+{} blocks \
         ({} err) from {} accepted plans over {} probed sites",
        baseline.len(),
        out.stats.new_blocks,
        out.stats.error_blocks,
        out.stats.accepted,
        out.stats.sites_probed,
    );

    // The networking subsystem obeys the same attribution law: natural
    // socket errors (EBADF, EAGAIN on empty buffers, refused connects)
    // are plain blocks, and `err.net.*` blocks are reachable only under
    // injection. Checked against a net-heavy corpus so every socket
    // fault point is actually on the replayed path.
    use ksa_kernel::coverage::block_name;
    let net_base = ksa_core::experiments::net_corpus(ksa_core::experiments::Scale::Tiny);
    let mut sb = Sandbox::new(11);
    let mut net_baseline = CoverageSet::new();
    for p in &net_base.programs {
        net_baseline.merge(&sb.run_fresh(p));
    }
    let net_err = |c: &CoverageSet| {
        c.iter()
            .filter(|&id| block_name(id).starts_with("err.net."))
            .count()
    };
    assert_eq!(
        net_err(&net_baseline),
        0,
        "a fault-free net replay must not reach err.net.* blocks"
    );
    let net_out = fault_phase(&net_base, FaultGenConfig::default());
    let mut injected = CoverageSet::new();
    for e in &net_out.entries {
        sb.set_fault_plan(e.plan.clone());
        injected.merge(&sb.run_fresh(&net_base.programs[e.prog]));
    }
    assert!(
        net_err(&injected) > 0,
        "injection must reach err.net.* blocks on a net-heavy corpus"
    );
    eprintln!(
        "net attribution: baseline err.net.*=0 | injected err.net.*={} \
         from {} accepted plans",
        net_err(&injected),
        net_out.stats.accepted,
    );

    // One fault-injected measurement trial: install an accepted plan on
    // every kernel instance and run the corpus under the barrier harness.
    let plan = out
        .entries
        .first()
        .map(|e| e.plan.clone())
        .unwrap_or_else(FaultPlan::none);
    let res = run_hooked(
        &RunConfig {
            env: EnvSpec::new(
                Machine {
                    cores: 4,
                    mem_mib: 2048,
                },
                EnvKind::Native,
            ),
            iterations: 4,
            sync: true,
            seed: 13,
            max_events: 0,
            trace: false,
            metrics: false,
            spec: None,
        },
        &base,
        |engine| engine.set_fault_plan(plan),
    )
    .expect("fault-injected trial failed");
    eprintln!(
        "fault-injected varbench trial: {} sites, sim time {}ns",
        res.sites.len(),
        res.sim_ns
    );
}
