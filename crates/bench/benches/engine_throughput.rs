//! Engine microbenchmarks: event-loop throughput on contended and
//! uncontended configurations.

use ksa_bench::microbench;
use ksa_envsim::{EnvKind, EnvSpec, Machine};
use ksa_kernel::prog::Corpus;
use ksa_kernel::{Arg, Call, Program, SysNo};
use ksa_varbench::{run, RunConfig};

fn mixed_corpus() -> Corpus {
    Corpus {
        programs: vec![
            Program {
                calls: vec![
                    Call::new(SysNo::Open, vec![Arg::Const(1), Arg::Const(1)]),
                    Call::new(SysNo::Write, vec![Arg::Ref(0), Arg::Const(16_000)]),
                    Call::new(SysNo::Fsync, vec![Arg::Ref(0)]),
                ],
            },
            Program {
                calls: vec![
                    Call::new(SysNo::Mmap, vec![Arg::Const(64), Arg::Const(1)]),
                    Call::new(SysNo::Munmap, vec![Arg::Ref(0)]),
                ],
            },
            Program {
                calls: vec![
                    Call::new(SysNo::Getpid, vec![]),
                    Call::new(SysNo::SchedYield, vec![]),
                    Call::new(SysNo::FutexWake, vec![Arg::Const(3), Arg::Const(1)]),
                ],
            },
        ],
    }
}

fn main() {
    let corpus = mixed_corpus();
    let group = microbench::group("engine_throughput").sample_size(10);
    for cores in [4usize, 16] {
        for kind in [EnvKind::Native, EnvKind::Vm(cores)] {
            let label = format!("{}c/{}", cores, kind.label());
            group.bench(&label, || {
                run(
                    &RunConfig {
                        env: EnvSpec::new(
                            Machine {
                                cores,
                                mem_mib: 1024 * cores as u64 / 4,
                            },
                            kind,
                        ),
                        iterations: 5,
                        sync: true,
                        seed: 1,
                        max_events: 0,
                        trace: false,
                        metrics: false,
                        spec: None,
                    },
                    &corpus,
                )
            });
        }
    }
}
