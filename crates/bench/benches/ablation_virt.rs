//! Ablation: the virtualization overhead model on/off.
//!
//! Separates the isolation *benefit* (separate kernel instances) from
//! the virtualization *cost* (exits, nested paging) by running the same
//! per-core VM sweep with (a) the KVM overhead profile and (b) a "free
//! hypervisor" whose profile is zeroed after environment construction.

use ksa_bench::microbench;
use ksa_core::experiments::{default_corpus, Scale};
use ksa_envsim::{EnvKind, EnvSpec, Machine};
use ksa_kernel::instance::VirtProfile;
use ksa_varbench::{run_hooked, RunConfig, RunResult};

fn measure(free_hypervisor: bool, corpus: &ksa_kernel::prog::Corpus) -> RunResult {
    let machine = Machine {
        cores: 8,
        mem_mib: 4096,
    };
    run_hooked(
        &RunConfig {
            env: EnvSpec::new(machine, EnvKind::Vm(8)),
            iterations: 6,
            sync: true,
            seed: 9,
            max_events: 0,
            trace: false,
            metrics: false,
            spec: None,
        },
        corpus,
        |engine| {
            if free_hypervisor {
                for inst in &mut engine.world_mut().instances {
                    inst.virt = VirtProfile::native();
                }
            }
        },
    )
    .expect("trial failed")
}

fn main() {
    let corpus = default_corpus(Scale::Tiny).corpus;
    let group = microbench::group("ablation_virt").sample_size(10);
    group.bench("kvm_profile", || measure(false, &corpus));
    group.bench("free_hypervisor", || measure(true, &corpus));

    // Shape report: the isolation benefit survives, the bounded cost
    // disappears.
    let mut kvm = measure(false, &corpus);
    let mut free = measure(true, &corpus);
    let med = |r: &mut RunResult| {
        let mut v = r.per_site(None, |s| s.median());
        v.sort_unstable();
        v[v.len() / 2]
    };
    eprintln!(
        "median-of-site-medians: kvm={}ns free-hypervisor={}ns (the gap is the bounded virtualization cost)",
        med(&mut kvm),
        med(&mut free)
    );
}
