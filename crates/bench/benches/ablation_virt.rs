//! Ablation: the virtualization overhead model on/off.
//!
//! Separates the isolation *benefit* (separate kernel instances) from
//! the virtualization *cost* (exits, nested paging) by running the same
//! per-core VM sweep with (a) the KVM overhead profile and (b) a "free
//! hypervisor" whose profile is zeroed after environment construction.

use criterion::{criterion_group, criterion_main, Criterion};
use ksa_core::experiments::{default_corpus, Scale};
use ksa_envsim::{EnvKind, EnvSpec, Machine};
use ksa_kernel::instance::VirtProfile;
use ksa_varbench::{run_hooked, RunConfig, RunResult};

fn measure(free_hypervisor: bool, corpus: &ksa_kernel::prog::Corpus) -> RunResult {
    let machine = Machine {
        cores: 8,
        mem_mib: 4096,
    };
    run_hooked(
        &RunConfig {
            env: EnvSpec::new(machine, EnvKind::Vm(8)),
            iterations: 6,
            sync: true,
            seed: 9,
        },
        corpus,
        |engine| {
            if free_hypervisor {
                for inst in &mut engine.world_mut().instances {
                    inst.virt = VirtProfile::native();
                }
            }
        },
    )
}

fn bench_virt_ablation(c: &mut Criterion) {
    let corpus = default_corpus(Scale::Tiny).corpus;
    let mut group = c.benchmark_group("ablation_virt");
    group.sample_size(10);
    group.bench_function("kvm_profile", |b| {
        b.iter(|| measure(false, &corpus))
    });
    group.bench_function("free_hypervisor", |b| {
        b.iter(|| measure(true, &corpus))
    });
    group.finish();

    // Shape report: the isolation benefit survives, the bounded cost
    // disappears.
    let mut kvm = measure(false, &corpus);
    let mut free = measure(true, &corpus);
    let med = |r: &mut RunResult| {
        let mut v = r.per_site(None, |s| s.median());
        v.sort_unstable();
        v[v.len() / 2]
    };
    eprintln!(
        "median-of-site-medians: kvm={}ns free-hypervisor={}ns (the gap is the bounded virtualization cost)",
        med(&mut kvm),
        med(&mut free)
    );
}

criterion_group!(benches, bench_virt_ablation);
criterion_main!(benches);
