//! Offline drop-in replacement for the subset of the `rand` crate this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, self-contained implementation of the `rand` API
//! surface it depends on: [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], [`rngs::StdRng`]
//! and [`seq::SliceRandom::choose`]. The generator core is xoshiro256++
//! seeded through SplitMix64 — the same construction the real `SmallRng`
//! uses on 64-bit targets — so streams are deterministic, well mixed and
//! cheap.
//!
//! Only determinism and statistical plausibility are promised, not
//! stream compatibility with the real crate: seeds produce *a* fixed
//! sequence, not the upstream sequence.

use std::ops::Range;

/// SplitMix64: seed expander (and a fine standalone mixer).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The xoshiro256++ core shared by both rng types.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is invalid for xoshiro; splitmix of any seed
        // cannot produce it, but keep the guard for from_seed paths.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9e3779b97f4a7c15;
        }
        Self { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types the blanket [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(core: &mut Xoshiro256) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn draw(core: &mut Xoshiro256) -> Self {
        core.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw(core: &mut Xoshiro256) -> Self {
        (core.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn draw(core: &mut Xoshiro256) -> Self {
        core.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn draw(core: &mut Xoshiro256) -> Self {
        core.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn draw(core: &mut Xoshiro256) -> Self {
        // 53 random mantissa bits in [0, 1).
        (core.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range types usable with [`Rng::gen_range`]. Generic over the output
/// type (instead of an associated type) so integer literals in call sites
/// like `gen_range(0..32)` infer their type from the surrounding
/// expression, matching the real crate's ergonomics.
pub trait SampleRange<T> {
    /// Draws uniformly from the (half-open) range.
    fn sample(self, core: &mut Xoshiro256) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, core: &mut Xoshiro256) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply rejection-free mapping (Lemire); the
                // tiny modulo bias is irrelevant for simulation jitter.
                let hi = ((core.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, core: &mut Xoshiro256) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((core.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, core: &mut Xoshiro256) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::draw(core);
        self.start + unit * (self.end - self.start)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Access to the shared generator core.
    fn core(&mut self) -> &mut Xoshiro256;

    /// Draws a uniformly random value of an inferred type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self.core())
    }

    /// Draws uniformly from a half-open range.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.core())
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self.core()) < p
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{SeedableRng, Xoshiro256};

    /// Small, fast generator (workload RNGs).
    #[derive(Debug, Clone)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    /// "Standard" generator (engine RNG). Same core as [`SmallRng`] but a
    /// distinct stream: the seed is domain-separated so engine jitter and
    /// workload choices never correlate by accident.
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    /// Domain-separation tag so a `StdRng` and a `SmallRng` built from the
    /// same seed still produce independent streams.
    const STD_RNG_TAG: u64 = 0xa0761d6478bd642f;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed ^ STD_RNG_TAG))
        }
    }

    impl super::Rng for SmallRng {
        #[inline]
        fn core(&mut self) -> &mut Xoshiro256 {
            &mut self.0
        }
    }

    impl super::Rng for StdRng {
        #[inline]
        fn core(&mut self) -> &mut Xoshiro256 {
            &mut self.0
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// The subset of `rand::seq::SliceRandom` the workspace uses.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                self.get(i)
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
            let f = r.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn streams_differ_between_rng_types() {
        let mut small = SmallRng::seed_from_u64(42);
        let mut std = StdRng::seed_from_u64(42);
        assert_ne!(small.gen::<u64>(), std.gen::<u64>());
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = SmallRng::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let items = [1u32, 2, 3, 4];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut r).unwrap()));
        }
        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle permutes, never loses elements");
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
