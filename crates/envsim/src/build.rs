//! Materializing an environment on a discrete-event engine.

use ksa_desim::{CoreConfig, CoreId, DeviceModel, Engine, Ns, US};
use ksa_kernel::daemons::spawn_daemons;
use ksa_kernel::instance::{InstanceConfig, KernelInstance, TenancyProfile, VirtProfile};
use ksa_kernel::spec::SpecMask;
use ksa_kernel::world::HasKernel;

use crate::spec::{EnvKind, EnvSpec};

/// Handles to a built environment.
#[derive(Debug, Clone)]
pub struct BuiltEnv {
    /// All machine cores, in instance order.
    pub cores: Vec<CoreId>,
    /// Instance index per core (parallel to `cores`).
    pub instance_of: Vec<usize>,
    /// Number of kernel instances.
    pub instances: usize,
}

/// Native timer-interrupt cost.
const NATIVE_TICK_COST: Ns = 3 * US / 2;
/// Guest timer-interrupt cost (timer exits).
const GUEST_TICK_COST: Ns = 3 * US;

/// Builds `spec` on `engine`: adds cores, partitions them into kernel
/// instances, registers the shared host disk, and spawns each instance's
/// daemons. Returns the core handles.
pub fn build_env<W: HasKernel + 'static>(
    engine: &mut Engine<W>,
    spec: &EnvSpec,
    seed: u64,
) -> BuiltEnv {
    build_env_with(engine, spec, seed, None)
}

/// [`build_env`] with an optional specialization mask applied to every
/// instance. `None` (and `Some(SpecMask::full())`) build the
/// unspecialized kernel bit-identically; a narrower mask gates each
/// instance's daemons and lock footprint at construction.
pub fn build_env_with<W: HasKernel + 'static>(
    engine: &mut Engine<W>,
    spec: &EnvSpec,
    seed: u64,
    mask: Option<SpecMask>,
) -> BuiltEnv {
    let n_inst = spec.kind.instances();
    assert!(
        spec.machine.cores.is_multiple_of(n_inst),
        "cores ({}) must divide evenly into {} instances",
        spec.machine.cores,
        n_inst
    );
    let (cores_per, mib_per) = spec.surface();
    let virt = match spec.kind {
        EnvKind::Vm(_) => VirtProfile::kvm(),
        _ => VirtProfile::native(),
    };
    let tick_cost = if virt.enabled {
        GUEST_TICK_COST
    } else {
        NATIVE_TICK_COST
    };
    let tenancy = match spec.kind {
        EnvKind::Container(n) => TenancyProfile::containers(n as u32),
        _ => TenancyProfile::none(),
    };

    // One host disk shared by every instance: VMs get virtio front-ends
    // to the same media, containers share the host block layer.
    let disk = engine.add_device(DeviceModel::nvme_ssd());
    let mut all_cores = Vec::with_capacity(spec.machine.cores);
    let mut instance_of = Vec::with_capacity(spec.machine.cores);
    for inst_idx in 0..n_inst {
        let cores: Vec<CoreId> = (0..cores_per)
            .map(|_| {
                engine.add_core(CoreConfig {
                    tick_period: ksa_desim::MS,
                    tick_cost,
                })
            })
            .collect();
        all_cores.extend(cores.iter().copied());
        instance_of.extend(std::iter::repeat_n(inst_idx, cores_per));
        let inst = KernelInstance::build(
            engine,
            inst_idx,
            InstanceConfig {
                cores,
                mem_mib: mib_per,
                virt,
                tenancy,
                cost: spec.cost,
                disk,
                spec: mask.unwrap_or_default(),
            },
        );
        let mut inst = inst;
        if let EnvKind::Container(n) = spec.kind {
            // Every container image contributes rootfs layers to the
            // shared dentry/inode caches (hash-chain pressure scales
            // with tenant count — Table 3's mechanism).
            inst.state.fs.dentries += 2_000 * n as u64;
            // Containers share one host network stack: every tenant adds
            // netfilter/conntrack chain hops to each packet's path. VMs
            // pay virtio exits instead (see CostModel::exit_io_kick).
            inst.state.net.stack_extra_ns = 120 * n as u64;
        }
        engine.world_mut().kernel_mut().push_instance(inst);
    }
    for inst_idx in 0..n_inst {
        spawn_daemons(engine, inst_idx, seed.wrapping_add(inst_idx as u64 * 7919));
    }
    BuiltEnv {
        cores: all_cores,
        instance_of,
        instances: n_inst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Machine;
    use ksa_desim::EngineParams;
    use ksa_kernel::world::KernelWorld;

    fn engine() -> Engine<KernelWorld> {
        Engine::new(KernelWorld::new(), EngineParams::default(), 7)
    }

    #[test]
    fn native_builds_one_instance() {
        let mut eng = engine();
        let spec = EnvSpec::new(
            Machine {
                cores: 8,
                mem_mib: 1024,
            },
            EnvKind::Native,
        );
        let built = build_env(&mut eng, &spec, 1);
        assert_eq!(built.cores.len(), 8);
        assert_eq!(built.instances, 1);
        let w = eng.world().kernel();
        assert_eq!(w.instances.len(), 1);
        assert_eq!(w.instances[0].n_cores(), 8);
        assert!(!w.instances[0].virt.enabled);
        assert_eq!(w.instances[0].tenancy.containers, 0);
    }

    #[test]
    fn vm_sweep_divides_surface() {
        for n in [1usize, 2, 4, 8] {
            let mut eng = engine();
            let spec = EnvSpec::new(
                Machine {
                    cores: 8,
                    mem_mib: 4096,
                },
                EnvKind::Vm(n),
            );
            let built = build_env(&mut eng, &spec, 1);
            let w = eng.world().kernel();
            assert_eq!(w.instances.len(), n);
            assert_eq!(built.instances, n);
            for inst in &w.instances {
                assert_eq!(inst.n_cores(), 8 / n);
                assert_eq!(inst.mem_pages, (4096 / n as u64) * 256);
                assert!(inst.virt.enabled);
            }
            // Every core maps to exactly one instance.
            for (i, &c) in built.cores.iter().enumerate() {
                assert_eq!(w.instance_of(c), built.instance_of[i]);
            }
        }
    }

    #[test]
    fn containers_share_one_kernel() {
        let mut eng = engine();
        let spec = EnvSpec::new(
            Machine {
                cores: 4,
                mem_mib: 512,
            },
            EnvKind::Container(16),
        );
        build_env(&mut eng, &spec, 1);
        let w = eng.world().kernel();
        assert_eq!(w.instances.len(), 1);
        assert_eq!(w.instances[0].tenancy.containers, 16);
        assert!(!w.instances[0].virt.enabled);
    }

    #[test]
    fn specialized_env_gates_daemons_and_locks() {
        use ksa_kernel::SysNo;
        let build = |mask: Option<SpecMask>| {
            let mut eng = engine();
            let spec = EnvSpec::new(
                Machine {
                    cores: 4,
                    mem_mib: 1024,
                },
                EnvKind::Vm(2),
            );
            build_env_with(&mut eng, &spec, 1, mask);
            let w = eng.world().kernel();
            (
                w.instances[0].daemons_spawned,
                w.instances[0].locks_allocated,
            )
        };
        let (full_d, full_l) = build(None);
        assert_eq!(full_d, 5);
        // A network-only profile: no flusher/kswapd/lb/vmstat, and the
        // sched/mm/fs/ipc/perm lock groups collapse onto the stub.
        let mask = ksa_kernel::spec::SpecMask::empty()
            .allow(SysNo::Socket)
            .allow(SysNo::Sendto);
        let (spec_d, spec_l) = build(Some(mask));
        assert_eq!(spec_d, 1);
        assert!(spec_l < full_l, "{spec_l} locks not < {full_l}");
        // The explicit full mask is the unspecialized build.
        assert_eq!(build(Some(SpecMask::full())), (full_d, full_l));
    }

    #[test]
    fn daemons_run_without_users() {
        // An environment with daemons but no user processes must not
        // stall the engine (run_until with a deadline returns cleanly).
        let mut eng = engine();
        let spec = EnvSpec::new(
            Machine {
                cores: 2,
                mem_mib: 256,
            },
            EnvKind::Native,
        );
        build_env(&mut eng, &spec, 1);
        // No user processes: run() exits immediately (live_users == 0).
        let res = eng.run().unwrap();
        assert_eq!(res.clock, 0);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_division_is_rejected() {
        let mut eng = engine();
        let spec = EnvSpec::new(
            Machine {
                cores: 6,
                mem_mib: 512,
            },
            EnvKind::Vm(4),
        );
        build_env(&mut eng, &spec, 1);
    }
}
