//! Environment specifications and the paper's configuration sweeps.

use ksa_kernel::params::CostModel;

/// The physical machine being divided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Machine {
    /// Hardware threads.
    pub cores: usize,
    /// Memory in MiB.
    pub mem_mib: u64,
}

impl Machine {
    /// The paper's system-call evaluation box: 64 hardware threads and
    /// 32 GB virtualized for the benchmark (Table 1).
    pub fn epyc_64() -> Self {
        Self {
            cores: 64,
            mem_mib: 32 * 1024,
        }
    }

    /// One NUMA socket of the paper's Chameleon nodes (24 cores / 48 HT
    /// split per socket; each app pinned to one socket).
    pub fn chameleon_socket() -> Self {
        Self {
            cores: 24,
            mem_mib: 64 * 1024,
        }
    }
}

/// How the machine's kernel surface is divided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvKind {
    /// Bare metal: one kernel, whole machine.
    Native,
    /// `n` KVM-style virtual machines, resources divided evenly.
    Vm(usize),
    /// One shared kernel hosting `n` Docker-style containers.
    Container(usize),
}

impl EnvKind {
    /// Number of kernel instances this environment creates.
    pub fn instances(self) -> usize {
        match self {
            EnvKind::Native | EnvKind::Container(_) => 1,
            EnvKind::Vm(n) => n,
        }
    }

    /// Display label matching the paper's tables.
    pub fn label(self) -> String {
        match self {
            EnvKind::Native => "Linux".to_string(),
            EnvKind::Vm(n) => format!("KVM x{n}"),
            EnvKind::Container(n) => format!("Docker x{n}"),
        }
    }
}

/// A full environment specification.
#[derive(Debug, Clone, Copy)]
pub struct EnvSpec {
    /// The machine.
    pub machine: Machine,
    /// The division.
    pub kind: EnvKind,
    /// Kernel cost model (shared by all instances).
    pub cost: CostModel,
}

impl EnvSpec {
    /// Convenience constructor with the default cost model.
    pub fn new(machine: Machine, kind: EnvKind) -> Self {
        Self {
            machine,
            kind,
            cost: CostModel::default(),
        }
    }

    /// Per-instance kernel surface area: `(cores, MiB)`.
    pub fn surface(&self) -> (usize, u64) {
        let n = self.kind.instances();
        (self.machine.cores / n, self.machine.mem_mib / n as u64)
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRow {
    /// Number of VMs (or containers).
    pub count: usize,
    /// Cores per instance.
    pub cores_per: usize,
    /// Memory per instance in MiB.
    pub mib_per: u64,
}

/// Table 1: the VM configuration ladder over a machine.
pub fn vm_sweep(machine: Machine) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    let mut n = 1;
    while n <= machine.cores {
        rows.push(SweepRow {
            count: n,
            cores_per: machine.cores / n,
            mib_per: machine.mem_mib / n as u64,
        });
        n *= 2;
    }
    rows
}

/// The analogous container ladder (Section 5.2 / Table 3).
pub fn container_sweep(machine: Machine) -> Vec<SweepRow> {
    vm_sweep(machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = vm_sweep(Machine::epyc_64());
        assert_eq!(rows.len(), 7);
        let counts: Vec<usize> = rows.iter().map(|r| r.count).collect();
        assert_eq!(counts, vec![1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(rows[0].cores_per, 64);
        assert_eq!(rows[0].mib_per, 32 * 1024);
        assert_eq!(rows[6].cores_per, 1);
        assert_eq!(rows[6].mib_per, 512, "64 VMs get 512 MiB each");
        // Total resources constant across the sweep.
        for r in &rows {
            assert_eq!(r.count * r.cores_per, 64);
            assert_eq!(r.count as u64 * r.mib_per, 32 * 1024);
        }
    }

    #[test]
    fn env_kind_instances() {
        assert_eq!(EnvKind::Native.instances(), 1);
        assert_eq!(EnvKind::Vm(8).instances(), 8);
        assert_eq!(EnvKind::Container(64).instances(), 1);
    }

    #[test]
    fn surface_divides_by_instances() {
        let spec = EnvSpec::new(Machine::epyc_64(), EnvKind::Vm(16));
        assert_eq!(spec.surface(), (4, 2048));
        let native = EnvSpec::new(Machine::epyc_64(), EnvKind::Native);
        assert_eq!(native.surface(), (64, 32 * 1024));
        let docker = EnvSpec::new(Machine::epyc_64(), EnvKind::Container(64));
        assert_eq!(
            docker.surface(),
            (64, 32 * 1024),
            "containers do not shrink the kernel surface"
        );
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(EnvKind::Native.label(), "Linux");
        assert_eq!(EnvKind::Vm(64).label(), "KVM x64");
        assert_eq!(EnvKind::Container(4).label(), "Docker x4");
    }
}
