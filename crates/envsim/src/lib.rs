//! # ksa-envsim — deployment environments
//!
//! Builds the three deployment styles the paper compares on one simulated
//! machine:
//!
//! * **Native**: one kernel instance managing every core and all memory —
//!   the maximal kernel surface area.
//! * **VMs** ([`EnvKind::Vm`]): k KVM-style instances, each managing an
//!   equal slice of cores and memory, each paying the bounded
//!   virtualization overhead ([`ksa_kernel::VirtProfile::kvm`]); the
//!   host SSD is shared (virtio front-ends, one backing device).
//! * **Containers** ([`EnvKind::Container`]): one native kernel instance
//!   plus per-container namespace/cgroup overhead that grows with the
//!   container count.
//!
//! [`vm_sweep`] reproduces Table 1's configuration ladder (1→64 VMs over
//! 64 cores / 32 GB), [`container_sweep`] the analogous container ladder.

pub mod build;
pub mod spec;
pub mod tenant;

pub use build::{build_env, build_env_with, BuiltEnv};
pub use spec::{container_sweep, vm_sweep, EnvKind, EnvSpec, Machine, SweepRow};
pub use tenant::{spawn_churn_hosts, ChurnParams, TenantHost};
