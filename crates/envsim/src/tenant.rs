//! High-density serverless tenant churn.
//!
//! A **tenant** is one short-lived serverless instance: it arrives on a
//! seeded schedule, forks a worker (`clone`), materializes a working set
//! (`open` + `mmap(MAP_POPULATE)`), establishes a loopback connection
//! through the simulated net stack, serves a burst of requests, and
//! exits — releasing every descriptor, socket-table slot, port and page
//! it held. Tenant count far exceeds core count (the paper's isolation
//! regime stressed to density 4096 over a handful of cores), so each
//! core multiplexes a bounded *resident set* of tenants and admission
//! queueing is part of the measured cold-start latency.
//!
//! One [`TenantHost`] process runs per core. Hosts pre-spawn at build
//! time (the engine has no mid-run spawn) and each drains its share of
//! the global arrival schedule. Because dispatch compiles kernel state
//! mutations synchronously, a host learns every fd/vma number the
//! kernel actually assigned (`seq.result`) at build time and closes
//! exactly those resources at tenant exit — which is what makes the
//! post-churn table audits (`fds.len() <= peak_open_fds`,
//! `socks.len() <= peak_socks`) meaningful: any slot the allocator
//! leaks stays leaked.
//!
//! Measurements are emitted through the engine's record stream, keyed
//! per tenant (see [`COLD_START_KEY`], [`REQUEST_KEY`], [`EXIT_KEY`]),
//! so harnesses recover cold-start latency, per-tenant p99 isolation
//! and churn conservation without any side channel.

use std::collections::VecDeque;

use ksa_desim::{CoreId, Effect, Engine, FaultState, Ns, Process, SimCtx, WakeReason};
use ksa_kernel::coverage::CoverageSet;
use ksa_kernel::dispatch::{dispatch_exit, dispatch_into};
use ksa_kernel::exec::OpRunner;
use ksa_kernel::instance::KernelInstance;
use ksa_kernel::ops::{KOp, OpSeq};
use ksa_kernel::world::HasKernel;
use ksa_kernel::SysNo;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::build::BuiltEnv;

/// Record-key stride separating metric kinds; the low bits carry the
/// tenant id.
pub const KEY_SPACE: u64 = 1 << 40;
/// Cold start: admission queueing + full setup, per tenant.
pub const COLD_START_KEY: u64 = KEY_SPACE;
/// Request sojourn (ready-to-reply, includes multiplexing interference).
pub const REQUEST_KEY: u64 = 2 * KEY_SPACE;
/// Tenant exit marker (value = simulated exit time).
pub const EXIT_KEY: u64 = 3 * KEY_SPACE;

/// Splits a churn record key into `(kind base, tenant id)`.
pub fn split_key(key: u64) -> (u64, u64) {
    (key & !(KEY_SPACE - 1), key & (KEY_SPACE - 1))
}

/// Workload shape for one churn run.
#[derive(Debug, Clone, Copy)]
pub struct ChurnParams {
    /// Target peak concurrent tenants machine-wide; each core's
    /// resident set is capped at `ceil(density / cores)`.
    pub density: usize,
    /// Total tenants over the run (>= density for full churn).
    pub tenants: usize,
    /// Mean inter-arrival gap; actual gaps are uniform in
    /// `[mean/2, 3*mean/2)`.
    pub mean_inter_arrival_ns: Ns,
    /// Mean requests served per tenant before exit (uniform in
    /// `[max(1, mean/2), 3*mean/2)`).
    pub requests_per_tenant: u64,
    /// Think time between a tenant's requests.
    pub think_ns: Ns,
    /// Working-set pages each tenant maps (prefaulted).
    pub ws_pages: u64,
    /// Request payload bytes through the loopback stack.
    pub req_bytes: u64,
    /// Userspace service compute per request.
    pub service_ns: Ns,
    /// Fraction (milli) of service compute that is memory-bound.
    pub mem_milli: u64,
}

impl ChurnParams {
    /// A quick default shape: callers override density/tenants.
    pub fn quick(density: usize, tenants: usize) -> Self {
        Self {
            density,
            tenants,
            mean_inter_arrival_ns: 20_000,
            requests_per_tenant: 4,
            think_ns: 5_000,
            ws_pages: 24,
            req_bytes: 512,
            service_ns: 8_000,
            mem_milli: 300,
        }
    }
}

/// One tenant's arrival-schedule entry.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    id: u64,
    at: Ns,
    requests: u64,
}

/// A resident tenant mid-lifecycle.
#[derive(Debug, Clone, Copy)]
struct Tenant {
    id: u64,
    scheduled: Ns,
    requests_left: u64,
    /// When this tenant can next run (admission for setup, think-time
    /// expiry between requests).
    ready_at: Ns,
    file_fd: Option<u64>,
    client_fd: Option<u64>,
    conn_fd: Option<u64>,
    /// Index into the slot's vma table.
    vma: Option<u64>,
    cloned: bool,
}

/// What the host's compiled sequence currently executes.
#[derive(Debug, Clone, Copy)]
enum Running {
    None,
    Setup {
        idx: usize,
    },
    Request {
        idx: usize,
        started: Ns,
    },
    Exit {
        idx: usize,
    },
    /// Final slot-wide `exit_group` sweep after the last tenant left.
    HostExit,
}

/// One churn host pinned to a core: admits tenants up to the resident
/// cap and multiplexes their lifecycles.
pub struct TenantHost {
    core: CoreId,
    instance: usize,
    slot: usize,
    cap: usize,
    params: ChurnParams,
    arrivals: VecDeque<Arrival>,
    resident: Vec<Tenant>,
    rng: SmallRng,
    cover: CoverageSet,
    runner: OpRunner,
    runner_live: bool,
    running: Running,
    seq_buf: OpSeq,
    sub_buf: OpSeq,
}

impl TenantHost {
    /// Dispatches one syscall into the scratch buffer, appends its ops
    /// to the sequence under construction, and returns the result if
    /// the call succeeded at compile time.
    fn call(
        &mut self,
        inst: &mut KernelInstance,
        faults: &mut FaultState,
        no: SysNo,
        args: &[u64],
    ) -> Option<u64> {
        dispatch_into(
            inst,
            self.slot,
            no,
            args,
            &mut self.rng,
            &mut self.cover,
            faults,
            &mut self.sub_buf,
        );
        self.seq_buf.ops.extend_from_slice(&self.sub_buf.ops);
        if self.sub_buf.error.is_some() {
            None
        } else {
            Some(self.sub_buf.result)
        }
    }

    /// Compiles the full tenant setup: fork, working set, file touch,
    /// loopback connection. The listening socket is closed inside the
    /// same compiled sequence, so the bound port (= this slot index) is
    /// only held within one compile instant and never collides across
    /// tenants or hosts.
    fn build_setup<W: HasKernel>(&mut self, ctx: &mut SimCtx<'_, W>, idx: usize) {
        let t = self.resident[idx];
        let p = self.params;
        let (world, faults) = ctx.world_and_faults();
        let inst = &mut world.kernel_mut().instances[self.instance];
        self.seq_buf.reset();

        let cloned = self.call(inst, faults, SysNo::Clone, &[0]).is_some();
        let name_sel = t.id.wrapping_mul(7).wrapping_add(3);
        let file_fd = self.call(inst, faults, SysNo::Open, &[name_sel, 1]);
        let vma = self
            .call(inst, faults, SysNo::Mmap, &[p.ws_pages, 1])
            .map(|handle| handle - 1);
        if let Some(fd) = file_fd {
            self.call(inst, faults, SysNo::Pwrite, &[fd, 4 * p.req_bytes]);
        }
        let port = self.slot as u64;
        let mut client_fd = None;
        let mut conn_fd = None;
        if let Some(ls) = self.call(inst, faults, SysNo::Socket, &[0]) {
            let bound = self.call(inst, faults, SysNo::Bind, &[ls, port]).is_some()
                && self.call(inst, faults, SysNo::Listen, &[ls, 8]).is_some();
            if bound {
                client_fd = self.call(inst, faults, SysNo::Socket, &[0]);
                if let Some(c) = client_fd {
                    if self
                        .call(inst, faults, SysNo::Connect, &[c, port])
                        .is_some()
                    {
                        conn_fd = self.call(inst, faults, SysNo::Accept, &[ls]);
                    }
                }
            }
            self.call(inst, faults, SysNo::Close, &[ls]);
        }
        debug_assert!(self.seq_buf.locks_balanced());
        self.runner.relower(&self.seq_buf, inst, self.core);
        self.runner_live = true;

        let t = &mut self.resident[idx];
        t.cloned = cloned;
        t.file_fd = file_fd;
        t.client_fd = client_fd;
        t.conn_fd = conn_fd;
        t.vma = vma;
    }

    /// Compiles one request: loopback round trip plus the service
    /// compute, against the connection set up at admission.
    fn build_request<W: HasKernel>(&mut self, ctx: &mut SimCtx<'_, W>, idx: usize) {
        let t = self.resident[idx];
        let p = self.params;
        let (world, faults) = ctx.world_and_faults();
        let inst = &mut world.kernel_mut().instances[self.instance];
        self.seq_buf.reset();

        if let (Some(c), Some(s)) = (t.client_fd, t.conn_fd) {
            self.call(inst, faults, SysNo::Sendto, &[c, p.req_bytes, 0]);
            self.call(inst, faults, SysNo::Recvfrom, &[s, p.req_bytes]);
        }
        if let Some(fd) = t.file_fd {
            self.call(inst, faults, SysNo::Pread, &[fd, p.req_bytes]);
        }
        let mem = p.service_ns * p.mem_milli / 1000;
        self.seq_buf.mem(mem);
        self.seq_buf.push(KOp::UserCpu(p.service_ns - mem));
        if let (Some(c), Some(s)) = (t.client_fd, t.conn_fd) {
            self.call(inst, faults, SysNo::Sendto, &[s, p.req_bytes / 2, 0]);
            self.call(inst, faults, SysNo::Recvfrom, &[c, p.req_bytes / 2]);
        }
        debug_assert!(self.seq_buf.locks_balanced());
        self.runner.relower(&self.seq_buf, inst, self.core);
        self.runner_live = true;
    }

    /// Compiles the tenant's exit: close exactly the descriptors it
    /// opened (the socket-table slots reclaim here), unmap its working
    /// set, and reap the forked worker.
    fn build_exit<W: HasKernel>(&mut self, ctx: &mut SimCtx<'_, W>, idx: usize) {
        let t = self.resident[idx];
        let (world, faults) = ctx.world_and_faults();
        let inst = &mut world.kernel_mut().instances[self.instance];
        self.seq_buf.reset();

        for fd in [t.client_fd, t.conn_fd, t.file_fd].into_iter().flatten() {
            self.call(inst, faults, SysNo::Close, &[fd]);
        }
        if let Some(vma) = t.vma {
            self.call(inst, faults, SysNo::Munmap, &[vma]);
        }
        if t.cloned {
            self.call(inst, faults, SysNo::Wait4, &[0]);
        }
        debug_assert!(self.seq_buf.locks_balanced());
        self.runner.relower(&self.seq_buf, inst, self.core);
        self.runner_live = true;
    }

    /// Compiles the host's final `exit_group` sweep: validates that the
    /// lifecycles above leaked nothing (the sweep finds zero open
    /// descriptors when every tenant exited cleanly) and resets the
    /// slot for the audit.
    fn build_host_exit<W: HasKernel>(&mut self, ctx: &mut SimCtx<'_, W>) {
        let (world, faults) = ctx.world_and_faults();
        let inst = &mut world.kernel_mut().instances[self.instance];
        dispatch_exit(
            inst,
            self.slot,
            &mut self.rng,
            &mut self.cover,
            faults,
            &mut self.seq_buf,
        );
        self.runner.relower(&self.seq_buf, inst, self.core);
        self.runner_live = true;
    }

    /// Books the metrics for whatever the runner just finished.
    fn complete<W: HasKernel>(&mut self, ctx: &mut SimCtx<'_, W>) {
        let now = ctx.now();
        match self.running {
            Running::None | Running::HostExit => {}
            Running::Setup { idx } => {
                let t = &mut self.resident[idx];
                ctx.record(COLD_START_KEY + t.id, now - t.scheduled);
                t.ready_at = now;
            }
            Running::Request { idx, started } => {
                let t = &mut self.resident[idx];
                ctx.record(REQUEST_KEY + t.id, now - started);
                t.requests_left -= 1;
                t.ready_at = now + self.params.think_ns;
            }
            Running::Exit { idx } => {
                let t = self.resident.swap_remove(idx);
                ctx.record(EXIT_KEY + t.id, now);
            }
        }
        self.running = Running::None;
    }

    /// Picks and compiles the next unit of work, or sleeps/terminates.
    fn next<W: HasKernel>(&mut self, ctx: &mut SimCtx<'_, W>) -> Effect {
        let now = ctx.now();
        // Admit the next arrival when below the resident cap.
        if self.resident.len() < self.cap {
            if let Some(a) = self.arrivals.front().copied() {
                if a.at <= now {
                    self.arrivals.pop_front();
                    self.resident.push(Tenant {
                        id: a.id,
                        scheduled: a.at,
                        requests_left: a.requests,
                        ready_at: now,
                        file_fd: None,
                        client_fd: None,
                        conn_fd: None,
                        vma: None,
                        cloned: false,
                    });
                    let idx = self.resident.len() - 1;
                    self.build_setup(ctx, idx);
                    self.running = Running::Setup { idx };
                    return self.step(ctx);
                }
            }
        }
        // Run the longest-waiting ready resident (ties by id, so the
        // order is a pure function of simulated state).
        let ready = self
            .resident
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ready_at <= now)
            .min_by_key(|(_, t)| (t.ready_at, t.id))
            .map(|(i, _)| i);
        if let Some(idx) = ready {
            if self.resident[idx].requests_left == 0 {
                self.build_exit(ctx, idx);
                self.running = Running::Exit { idx };
            } else {
                self.build_request(ctx, idx);
                self.running = Running::Request { idx, started: now };
            }
            return self.step(ctx);
        }
        // Nothing ready: sleep until the next arrival or wake-up.
        let mut wake: Option<Ns> = self.resident.iter().map(|t| t.ready_at).min();
        if self.resident.len() < self.cap {
            if let Some(a) = self.arrivals.front() {
                wake = Some(wake.map_or(a.at, |w| w.min(a.at)));
            }
        }
        match wake {
            Some(at) => Effect::Sleep(at.max(now + 1) - now),
            None => {
                // All tenants churned through: final slot-wide sweep,
                // then the host (a non-daemon) finishes the run.
                self.build_host_exit(ctx);
                self.running = Running::HostExit;
                self.step(ctx)
            }
        }
    }

    fn step<W: HasKernel>(&mut self, ctx: &mut SimCtx<'_, W>) -> Effect {
        if self.runner_live {
            if ctx.trace_enabled() {
                self.runner.trace_exits(ctx);
            }
            if let Some(e) = self.runner.step(ctx) {
                return e;
            }
        }
        self.runner_live = false;
        if matches!(self.running, Running::HostExit) {
            return Effect::Done;
        }
        self.complete(ctx);
        self.next(ctx)
    }
}

impl<W: HasKernel + 'static> Process<W> for TenantHost {
    fn resume(&mut self, ctx: &mut SimCtx<'_, W>, _wake: WakeReason) -> Effect {
        if self.runner_live {
            return self.step(ctx);
        }
        self.next(ctx)
    }

    fn label(&self) -> &str {
        "tenant-host"
    }
}

/// Builds the global arrival schedule and spawns one [`TenantHost`] per
/// core of `built`. Tenant `i` lands on core `i % cores`; the schedule
/// (arrival gaps and per-tenant request counts) is a pure function of
/// `seed`, so campaigns replay bit-identically.
pub fn spawn_churn_hosts<W: HasKernel + 'static>(
    engine: &mut Engine<W>,
    built: &BuiltEnv,
    params: &ChurnParams,
    seed: u64,
) {
    let n_cores = built.cores.len();
    assert!(n_cores > 0, "churn needs at least one core");
    assert!(params.tenants > 0, "churn needs at least one tenant");
    let cap = params.density.div_ceil(n_cores).max(1);

    let mut sched_rng = SmallRng::seed_from_u64(seed ^ 0x00c0_ffee_d00d);
    let ia = params.mean_inter_arrival_ns.max(2);
    let req_lo = (params.requests_per_tenant / 2).max(1);
    let req_hi = (3 * params.requests_per_tenant / 2).max(req_lo + 1);
    let mut per_core: Vec<VecDeque<Arrival>> = vec![VecDeque::new(); n_cores];
    let mut at = 0u64;
    for id in 0..params.tenants as u64 {
        at += sched_rng.gen_range(ia / 2..3 * ia / 2);
        per_core[(id as usize) % n_cores].push_back(Arrival {
            id,
            at,
            requests: sched_rng.gen_range(req_lo..req_hi),
        });
    }

    for (ci, &core) in built.cores.iter().enumerate() {
        let (instance, slot) = engine.world().kernel().locate(core);
        let host = TenantHost {
            core,
            instance,
            slot,
            cap,
            params: *params,
            arrivals: std::mem::take(&mut per_core[ci]),
            resident: Vec::new(),
            rng: SmallRng::seed_from_u64(seed ^ (0x7e2a_a27e << 8) ^ ci as u64),
            cover: CoverageSet::new(),
            runner: OpRunner::empty(),
            runner_live: false,
            running: Running::None,
            seq_buf: OpSeq::new(),
            sub_buf: OpSeq::new(),
        };
        engine.spawn(core, Box::new(host), 0);
    }
}
