//! Simulated NICs: per-queue descriptor rings with NAPI-style polling.
//!
//! The model is deliberately *logical*, like the rest of the kernel state:
//! a queue is a bounded counter of descriptors awaiting softirq
//! processing, not a byte-accurate ring. Syscall handlers enqueue packets
//! on the queue chosen by an RSS-style flow hash (paying the doorbell /
//! driver costs as micro-ops); a budgeted NAPI poller drains the rings in
//! deferred softirq context, competing with process time on the event
//! engine. A full ring pushes back on the sender (`try_enqueue` fails →
//! the syscall returns `EAGAIN`), which is how real virtio-net drivers
//! shed load when the softirq side cannot keep up.

use crate::time::Ns;

/// Service model of a simulated NIC.
#[derive(Debug, Clone, Copy)]
pub struct NicModel {
    /// Number of hardware queues (RSS channels). Shared kernels funnel
    /// every core through these; small instances get proportionally
    /// fewer but also proportionally fewer contenders.
    pub queues: u32,
    /// Descriptor-ring depth per queue; enqueueing beyond this fails.
    pub ring_slots: u32,
    /// Fixed per-packet processing cost (header parse, descriptor
    /// bookkeeping) paid by the softirq side per drained packet.
    pub per_pkt: Ns,
    /// Transfer time per byte in femtoseconds (ns/byte × 10⁶), matching
    /// [`crate::iodev::DeviceModel`]. 10 GbE ≈ 1.25 GB/s ⇒ 800_000.
    pub fs_per_byte: u64,
}

impl NicModel {
    /// A virtio-net device with `queues` queue pairs: 256-descriptor
    /// rings, ~10 GbE wire speed, sub-microsecond per-packet cost.
    pub fn virtio(queues: u32) -> Self {
        Self {
            queues: queues.max(1),
            ring_slots: 256,
            per_pkt: 450,
            fs_per_byte: 800_000,
        }
    }

    /// Deterministic wire/copy time for `bytes` payload bytes.
    pub fn service(&self, bytes: u64) -> Ns {
        self.per_pkt + bytes.saturating_mul(self.fs_per_byte) / 1_000_000
    }
}

/// Dynamic NIC state: per-queue backlog counters plus lifetime totals.
#[derive(Debug, Clone)]
pub struct NicState {
    /// The service model.
    pub model: NicModel,
    /// Descriptors pending softirq processing, per queue.
    pub pending: Vec<u64>,
    /// Round-robin cursor for budget-fair draining.
    next_queue: usize,
    /// Packets ever enqueued.
    pub enqueued: u64,
    /// Packets dropped because a ring was full.
    pub dropped: u64,
    /// Packets drained by NAPI polls.
    pub polled: u64,
}

impl NicState {
    /// Creates an idle NIC.
    pub fn new(model: NicModel) -> Self {
        Self {
            pending: vec![0; model.queues.max(1) as usize],
            model,
            next_queue: 0,
            enqueued: 0,
            dropped: 0,
            polled: 0,
        }
    }

    /// RSS queue selection: a multiplicative hash of the flow id, so
    /// distinct flows spread across queues deterministically.
    #[inline]
    pub fn queue_for(&self, flow: u64) -> usize {
        (flow.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.pending.len()
    }

    /// Posts one descriptor on `queue`. Returns `false` (and counts a
    /// drop) when the ring is full — the caller's backpressure signal.
    pub fn try_enqueue(&mut self, queue: usize) -> bool {
        let q = queue % self.pending.len();
        if self.pending[q] >= self.model.ring_slots as u64 {
            self.dropped += 1;
            return false;
        }
        self.pending[q] += 1;
        self.enqueued += 1;
        true
    }

    /// Total descriptors awaiting softirq processing across all queues.
    pub fn pending_total(&self) -> u64 {
        self.pending.iter().sum()
    }

    /// Drains up to `budget` descriptors round-robin across queues (one
    /// NAPI poll). Returns the number actually drained.
    pub fn poll(&mut self, budget: u64) -> u64 {
        let n_q = self.pending.len();
        let mut drained = 0;
        let mut idle_scans = 0;
        while drained < budget && idle_scans < n_q {
            let q = self.next_queue % n_q;
            if self.pending[q] > 0 {
                self.pending[q] -= 1;
                drained += 1;
                idle_scans = 0;
            } else {
                idle_scans += 1;
            }
            self.next_queue = (q + 1) % n_q;
        }
        self.polled += drained;
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_is_per_pkt_plus_transfer() {
        let m = NicModel {
            queues: 1,
            ring_slots: 16,
            per_pkt: 100,
            fs_per_byte: 2_000_000, // 2 ns/byte
        };
        assert_eq!(m.service(0), 100);
        assert_eq!(m.service(500), 1100);
    }

    #[test]
    fn full_ring_pushes_back() {
        let mut n = NicState::new(NicModel {
            queues: 1,
            ring_slots: 2,
            per_pkt: 0,
            fs_per_byte: 0,
        });
        assert!(n.try_enqueue(0));
        assert!(n.try_enqueue(0));
        assert!(!n.try_enqueue(0), "third descriptor exceeds the ring");
        assert_eq!(n.dropped, 1);
        assert_eq!(n.pending_total(), 2);
    }

    #[test]
    fn poll_is_budgeted_and_round_robin() {
        let mut n = NicState::new(NicModel::virtio(2));
        for _ in 0..10 {
            n.try_enqueue(0);
            n.try_enqueue(1);
        }
        assert_eq!(n.pending_total(), 20);
        assert_eq!(n.poll(6), 6);
        assert_eq!(n.pending_total(), 14);
        // Both queues made progress (round-robin fairness).
        assert!(n.pending.iter().all(|&p| p < 10));
        assert_eq!(n.poll(100), 14, "drains everything when under budget");
        assert_eq!(n.poll(100), 0, "idle poll drains nothing");
        assert_eq!(n.polled, 20);
    }

    #[test]
    fn queue_for_spreads_flows() {
        let n = NicState::new(NicModel::virtio(8));
        let hits: std::collections::BTreeSet<usize> = (0..64u64).map(|f| n.queue_for(f)).collect();
        assert!(hits.len() > 4, "flows spread over queues: {hits:?}");
        assert_eq!(n.queue_for(7), n.queue_for(7), "hash is deterministic");
    }
}
