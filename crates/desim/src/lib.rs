//! # ksa-desim — deterministic discrete-event simulation engine
//!
//! This crate is the execution substrate for the kernel-surface-area
//! reproduction. It provides a **virtual-time** world in which simulated
//! processes run on simulated CPU cores and interact through simulated
//! synchronization primitives. All contention effects the paper attributes to
//! shared kernels — lock convoys, IPI/TLB-shootdown stalls, daemon
//! interference, device queueing — *emerge* from the event engine rather
//! than being sampled from output distributions.
//!
//! ## Model
//!
//! * **Time** is a `u64` nanosecond clock ([`Ns`]). Events are processed in
//!   `(time, sequence)` order, so runs are bit-for-bit deterministic for a
//!   given seed.
//! * **Processes** implement [`Process`]: resumable state machines that
//!   return one blocking [`Effect`] per resume (compute for n ns, acquire a
//!   lock, wait for I/O, ...). Non-blocking actions (releasing locks,
//!   signalling queues, recording samples) happen through [`SimCtx`].
//! * **Cores** serialize the compute of all processes bound to them
//!   (`free_at` occupancy), charge per-tick interrupt overhead, and track
//!   interrupt-disabled sections so IPI acknowledgements are genuinely
//!   delayed by spinlock critical sections — the coupling behind many of the
//!   paper's tail events.
//! * **Locks** come in three kinds ([`LockKind`]): FIFO spinlocks (queued,
//!   interrupt-disabling, like Linux qspinlocks), sleeping mutexes (handoff
//!   plus scheduler wake-up latency), and reader-writer locks (writer-
//!   preferring, batched reader grants).
//! * **RCU domains**, **IPI broadcasts**, **block devices** with FIFO
//!   request queues, **wait queues** and **barriers** complete the kernel
//!   toolbox.
//! * **Fault injection** ([`fault`]): a seeded [`FaultPlan`] assigns
//!   per-site failure schedules (alloc failures, I/O errors, lock
//!   timeouts) that processes consult through [`SimCtx`]; decisions are a
//!   pure function of `(seed, site, hit)` so faulty runs replay
//!   bit-identically. An event-budget watchdog
//!   ([`Engine::set_event_budget`]) converts livelocked simulations into a
//!   structured [`SimError::Stalled`] instead of running forever.
//!
//! The engine is generic over a *world* type `W` — shared mutable state
//! (e.g. a simulated kernel) that every process can inspect and mutate
//! during its resume step. A single engine run is strictly single-threaded;
//! callers parallelize across independent engine instances (trials, nodes)
//! through the deterministic work-stealing [`pool`], which pins output
//! order so parallel campaigns stay bit-identical to sequential ones.

pub mod cpu;
pub mod engine;
pub mod equeue;
pub mod fault;
pub mod fxmap;
pub mod iodev;
pub mod lock;
pub mod netdev;
pub mod pool;
pub mod process;
pub mod time;
pub mod trace;

pub use cpu::{CoreConfig, CoreId, CoreState, OccClass};
pub use engine::{
    BarrierId, Engine, EngineParams, QueueId, RcuId, Record, SimCtx, SimError, SimResult,
};
pub use equeue::{EventId, EventQueue};
pub use fault::{
    Backoff, FaultKind, FaultPlan, FaultSchedule, FaultState, InjectedFault, LinkDegrade,
    LinkPartition, NodeCrash, NodeFaultPlan, NsWindow,
};
pub use fxmap::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use iodev::{DevId, DeviceModel};
pub use lock::{LockId, LockKind, LockMode, WAIT_HIST_BUCKETS};
pub use netdev::{NicModel, NicState};
pub use pool::{default_jobs, parallel_indexed, resolve_jobs, run_tasks, TaskResult};
pub use process::{Effect, Pid, Process, WakeReason};
pub use time::{Ns, MS, SEC, US};
pub use trace::{
    LatBreakdown, LatComp, LatSnapshot, ProcKind, TraceConfig, TraceEvent, TraceEventKind,
    TraceLog, TraceRing,
};
