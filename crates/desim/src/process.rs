//! Process trait, blocking effects and wake reasons.

use crate::engine::{BarrierId, QueueId, RcuId, SimCtx};
use crate::iodev::DevId;
use crate::lock::{LockId, LockMode};
use crate::time::Ns;
use crate::trace::ProcKind;

/// Identifier of a simulated process within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl Pid {
    /// Index into the engine's process table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Why a process was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// First resume after spawn.
    Start,
    /// A `Delay`/`Sleep` elapsed.
    Timer,
    /// The requested lock was granted (ownership already transferred).
    LockGranted(LockId),
    /// All IPI targets acknowledged.
    IpiDone,
    /// The submitted I/O request completed.
    IoDone,
    /// The barrier released this generation.
    BarrierReleased,
    /// Another process signalled the wait queue this process slept on.
    Signaled(QueueId),
    /// The requested RCU grace period elapsed.
    RcuDone,
}

impl WakeReason {
    /// Stable short tag for trace events.
    pub fn tag(&self) -> &'static str {
        match self {
            WakeReason::Start => "start",
            WakeReason::Timer => "timer",
            WakeReason::LockGranted(_) => "lock",
            WakeReason::IpiDone => "ipi",
            WakeReason::IoDone => "io",
            WakeReason::BarrierReleased => "barrier",
            WakeReason::Signaled(_) => "queue",
            WakeReason::RcuDone => "rcu",
        }
    }
}

/// The single blocking action a process requests from the engine per resume.
///
/// Everything here suspends the process until the corresponding
/// [`WakeReason`] arrives; non-blocking actions are methods on [`SimCtx`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Compute for `Ns` nanoseconds **on this process's core**: the request
    /// is serialized with other processes bound to the same core and
    /// inflated by per-tick interrupt overhead and stolen time.
    Delay(Ns),
    /// Wait `Ns` nanoseconds of pure virtual time without occupying the
    /// core (arrival timers, think time).
    Sleep(Ns),
    /// Acquire a lock in the given mode; blocks until granted (FIFO).
    Acquire(LockId, LockMode),
    /// Broadcast an IPI to `targets` and block until every target
    /// acknowledged. Targets whose core currently has interrupts disabled
    /// (inside a spinlock section) defer their acknowledgement until the
    /// section ends. `handler_ns` is charged to each target core.
    Ipi {
        /// Cores to interrupt (the caller must exclude its own core).
        targets: Vec<crate::cpu::CoreId>,
        /// Cost of the interrupt handler on each target core.
        handler_ns: Ns,
    },
    /// Submit `bytes` of I/O to a device and block until it completes.
    Io {
        /// Target device.
        dev: DevId,
        /// Request size in bytes.
        bytes: u64,
    },
    /// Enter a barrier; blocks until all participants arrive.
    Barrier(BarrierId),
    /// Sleep on a wait queue until signalled.
    Wait(QueueId),
    /// Wait for an RCU grace period on the given domain.
    RcuSync(RcuId),
    /// The process has finished; it will never be resumed again.
    Done,
}

/// A resumable simulated process.
///
/// `W` is the engine's world type: shared mutable state (e.g. the simulated
/// kernel) accessible through `ctx.world` during a resume step.
pub trait Process<W> {
    /// Advances the process state machine and returns the next blocking
    /// effect. `wake` says why the process was resumed (the result of the
    /// previous effect).
    fn resume(&mut self, ctx: &mut SimCtx<'_, W>, wake: WakeReason) -> Effect;

    /// Daemons do not keep the simulation alive: the engine stops once all
    /// non-daemon processes are `Done`.
    fn is_daemon(&self) -> bool {
        false
    }

    /// How this process's compute is classified for *other* processes'
    /// run-queue-wait attribution. Defaults to following
    /// [`Process::is_daemon`]; softirq-context processes (the NAPI
    /// poller) should override to [`ProcKind::Softirq`].
    fn kind(&self) -> ProcKind {
        if self.is_daemon() {
            ProcKind::Daemon
        } else {
            ProcKind::User
        }
    }

    /// Debug label used in stall diagnostics.
    fn label(&self) -> &str {
        "process"
    }
}
