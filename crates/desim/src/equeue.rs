//! Index-addressed event priority queue over a slab of event records.
//!
//! The engine's hot loop is pop-one/push-a-few millions of times per
//! trial, so the queue is built for that shape:
//!
//! * **Slab storage.** Event records live in a flat `Vec` and are
//!   addressed by stable [`EventId`] handles (`slot` + generation).
//!   Freed slots go on a LIFO free list and are reused, so the
//!   steady-state path performs no allocation once the slab has grown
//!   to the trial's peak depth.
//! * **4-ary implicit heap.** Ordering lives in a separate dense heap
//!   of 24-byte `(t, seq, slot)` entries. A 4-ary layout halves the
//!   sift-down depth vs a binary heap and keeps each node's children
//!   in one cache line.
//! * **Lazy cancellation.** [`cancel`](EventQueue::cancel) marks the
//!   record dead and bumps its generation; the heap entry is skipped
//!   (and the slot freed) when it surfaces at the top. Stale
//!   `EventId`s are detected by generation mismatch.
//!
//! ## Determinism
//!
//! Keys are `(t, seq)` with `seq` unique per queue, so the key order is
//! a *total* order: every correct priority queue pops the exact same
//! sequence of events. Swapping the binary `BinaryHeap<Reverse<Event>>`
//! for this structure therefore cannot change any simulation output —
//! the tie-break rule is the `seq` component itself, not any property
//! of the container.

use crate::time::Ns;

const NIL: u32 = u32::MAX;

/// Stable handle to a scheduled event. Survives arbitrary queue churn;
/// using it after the event fired (or was cancelled) is detected by a
/// generation check and reported as "not live".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

struct Record<T> {
    seq: u64,
    gen: u32,
    /// Next slot on the free list; `NIL` while the record is live.
    next_free: u32,
    /// False once cancelled or popped (the heap entry may linger).
    live: bool,
    payload: T,
}

/// Heap entry: the full comparison key plus the slab slot. Keeping the
/// key here (not just the slot) means sift operations never touch the
/// slab — the heap is a dense array of 24-byte PODs.
#[derive(Clone, Copy)]
struct Entry {
    t: Ns,
    seq: u64,
    slot: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (Ns, u64) {
        (self.t, self.seq)
    }
}

/// Min-queue of `(t, seq)`-keyed events carrying a `T` payload.
pub struct EventQueue<T> {
    records: Vec<Record<T>>,
    free_head: u32,
    heap: Vec<Entry>,
    next_seq: u64,
    /// Live (scheduled, not cancelled) events.
    live: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        Self {
            records: Vec::new(),
            free_head: NIL,
            heap: Vec::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Number of live events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slab capacity actually materialized (live + free slots). Exposed
    /// so tests can assert free-list reuse keeps the slab from growing.
    pub fn slab_len(&self) -> usize {
        self.records.len()
    }

    /// Schedules `payload` at time `t`, after every event already
    /// scheduled for `t`. Returns a stable handle for cancellation.
    pub fn push(&mut self, t: Ns, payload: T) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_keyed(t, seq, payload)
    }

    /// Re-inserts an event at an explicit `(t, seq)` key — used to park
    /// a popped event back (deadline/budget boundaries) without
    /// disturbing its position relative to later arrivals. The caller
    /// must only replay keys obtained from [`pop`](Self::pop).
    pub(crate) fn push_keyed(&mut self, t: Ns, seq: u64, payload: T) -> EventId {
        debug_assert!(
            seq < self.next_seq,
            "replayed seq was never issued by this queue"
        );
        let slot = if self.free_head != NIL {
            let slot = self.free_head;
            let rec = &mut self.records[slot as usize];
            self.free_head = rec.next_free;
            rec.seq = seq;
            rec.next_free = NIL;
            rec.live = true;
            rec.payload = payload;
            slot
        } else {
            let slot = self.records.len() as u32;
            self.records.push(Record {
                seq,
                gen: 0,
                next_free: NIL,
                live: true,
                payload,
            });
            slot
        };
        let gen = self.records[slot as usize].gen;
        self.heap.push(Entry { t, seq, slot });
        self.sift_up(self.heap.len() - 1);
        self.live += 1;
        EventId { slot, gen }
    }

    /// Cancels the event behind `id` if it is still live. Returns
    /// whether anything was cancelled (false for fired/stale handles).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(rec) = self.records.get_mut(id.slot as usize) else {
            return false;
        };
        if !rec.live || rec.gen != id.gen {
            return false;
        }
        rec.live = false;
        rec.gen = rec.gen.wrapping_add(1);
        self.live -= 1;
        // The heap entry stays; `pop` skips and frees it lazily.
        true
    }

    /// Pops the minimum-key live event, returning `(t, seq, payload)`.
    pub fn pop(&mut self) -> Option<(Ns, u64, T)>
    where
        T: Copy,
    {
        loop {
            let top = *self.heap.first()?;
            self.remove_top();
            let rec = &mut self.records[top.slot as usize];
            let was_live = rec.live && rec.seq == top.seq;
            if was_live {
                rec.live = false;
                rec.gen = rec.gen.wrapping_add(1);
            }
            // Free the slot in both cases: a cancelled record's slot is
            // only reclaimed once its heap entry surfaces here.
            let payload = rec.payload;
            rec.next_free = self.free_head;
            self.free_head = top.slot;
            if was_live {
                self.live -= 1;
                return Some((top.t, top.seq, payload));
            }
        }
    }

    fn remove_top(&mut self) {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.heap[parent].key() <= entry.key() {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = entry;
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let entry = self.heap[i];
        loop {
            let first = 4 * i + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let mut min_key = self.heap[first].key();
            let end = (first + 4).min(len);
            for c in first + 1..end {
                let k = self.heap[c].key();
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if entry.key() <= min_key {
                break;
            }
            self.heap[i] = self.heap[min];
            i = min;
        }
        self.heap[i] = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(30, 'c');
        q.push(10, 'a');
        q.push(10, 'b');
        q.push(20, 'x');
        let mut out = Vec::new();
        while let Some((t, _, p)) = q.pop() {
            out.push((t, p));
        }
        assert_eq!(out, vec![(10, 'a'), (10, 'b'), (20, 'x'), (30, 'c')]);
    }

    #[test]
    fn interleaved_pushes_at_same_time_preserve_push_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(5, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().map(|(_, _, p)| p), Some(i));
        }
    }

    #[test]
    fn free_list_reuse_bounds_the_slab() {
        let mut q = EventQueue::new();
        for round in 0..1000u64 {
            q.push(round, round);
            q.push(round, round + 1);
            q.pop();
            q.pop();
        }
        assert!(q.slab_len() <= 2, "slab grew to {}", q.slab_len());
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_event_and_detects_stale_ids() {
        let mut q = EventQueue::new();
        let a = q.push(10, 'a');
        let b = q.push(20, 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel must fail");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, _, p)| p), Some('b'));
        assert!(!q.cancel(b), "cancel after pop must fail");
        // The freed slot is reused; the old handle must stay stale.
        let c = q.push(30, 'c');
        assert!(!q.cancel(a));
        assert!(q.cancel(c));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancelled_slot_is_reclaimed_after_pop_passes_it() {
        let mut q = EventQueue::new();
        let a = q.push(10, 1u32);
        q.push(20, 2u32);
        q.cancel(a);
        // Popping the live event first surfaces the cancelled entry.
        assert_eq!(q.pop().map(|(_, _, p)| p), Some(2));
        assert!(q.pop().is_none());
        // Both slots are back on the free list.
        q.push(1, 3u32);
        q.push(2, 4u32);
        assert_eq!(q.slab_len(), 2);
    }

    #[test]
    fn park_and_replay_keeps_relative_order() {
        let mut q = EventQueue::new();
        q.push(10, 'a');
        q.push(10, 'b');
        let (t, seq, p) = q.pop().unwrap();
        assert_eq!(p, 'a');
        // Park it back (deadline boundary), then push a later arrival
        // at the same time: the parked event must still pop first.
        q.push_keyed(t, seq, p);
        q.push(10, 'z');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'z']);
    }
}
