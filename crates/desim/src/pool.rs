//! Deterministic work-stealing thread pool for trial-level parallelism.
//!
//! A single [`Engine`](crate::Engine) run is strictly single-threaded —
//! the determinism boundary of the whole system. What *is* parallel is
//! the layer above: a measurement campaign is a bag of independent
//! trials (one engine per trial), so executing them concurrently cannot
//! change any simulated result as long as each trial's inputs (config +
//! seed) are untouched and outputs land back in input order. This module
//! provides that execution substrate to every harness in the workspace
//! (varbench trials, tailbench sweep points, cluster nodes, the bench
//! suite) without any external dependency: scoped `std::thread` workers
//! over per-worker deques with LIFO-steal, the classic work-stealing
//! shape.
//!
//! ## Guarantees
//!
//! * **Bit-identical to sequential.** Results are written to an
//!   index-addressed slot per task; `run_tasks(jobs, tasks)` returns the
//!   same vector for every `jobs`, including 1 (which runs inline on the
//!   caller's thread with no pool at all).
//! * **Panic isolation.** Every task runs under `catch_unwind`; a
//!   poisoned task surfaces as `Err(payload)` in its own slot and the
//!   worker moves on to the next task, so one bad trial never takes the
//!   campaign (or its sibling worker's queue) down.
//! * **No oversubscription of the scheduler's attention.** Worker count
//!   defaults to `KSA_JOBS` or, failing that, the machine's available
//!   parallelism, and is clamped to the task count.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Result of one pooled task: `Ok` on completion, `Err` with the panic
/// payload if the task panicked.
pub type TaskResult<T> = std::thread::Result<T>;

/// The default worker count: `KSA_JOBS` if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 if even that is
/// unknown).
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("KSA_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a `--jobs`-style knob: `0` means "auto" ([`default_jobs`]),
/// anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        default_jobs()
    } else {
        jobs
    }
}

/// Work-stealing state shared by the workers of one `run_tasks` call.
struct Shared<F, T> {
    /// The tasks, taken (once) by whichever worker claims the index.
    tasks: Vec<Mutex<Option<F>>>,
    /// Per-worker index deques; worker `w` pops its own front and steals
    /// from other workers' backs.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Index-addressed result slots — this is what pins output order.
    results: Vec<Mutex<Option<TaskResult<T>>>>,
}

impl<F: FnOnce() -> T, T> Shared<F, T> {
    /// Claims and runs task `i`, storing its (panic-isolated) result.
    fn execute(&self, i: usize) {
        let task = self.tasks[i]
            .lock()
            .expect("task slot poisoned")
            .take()
            .expect("task executed twice");
        // No pool lock is held across the task body, so a panicking
        // trial cannot poison the scheduling state.
        let result = catch_unwind(AssertUnwindSafe(task));
        *self.results[i].lock().expect("result slot poisoned") = Some(result);
    }

    /// Next task index for worker `w`: own queue first (front), then a
    /// steal sweep over the other workers' queues (back).
    fn next_index(&self, w: usize) -> Option<usize> {
        if let Some(i) = self.queues[w].lock().expect("queue poisoned").pop_front() {
            return Some(i);
        }
        let n = self.queues.len();
        for off in 1..n {
            let v = (w + off) % n;
            if let Some(i) = self.queues[v].lock().expect("queue poisoned").pop_back() {
                return Some(i);
            }
        }
        None
    }
}

/// Executes `tasks` on up to `jobs` workers (0 = auto) and returns their
/// results **in input order**. Each task is panic-isolated; see the
/// module docs for the full guarantees.
///
/// With `jobs == 1` (or a single task) everything runs inline on the
/// calling thread — the sequential baseline the determinism property
/// tests and the bench suite compare against.
pub fn run_tasks<F, T>(jobs: usize, tasks: Vec<F>) -> Vec<TaskResult<T>>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n_tasks = tasks.len();
    let workers = resolve_jobs(jobs).min(n_tasks).max(1);
    if workers == 1 {
        return tasks
            .into_iter()
            .map(|t| catch_unwind(AssertUnwindSafe(t)))
            .collect();
    }

    let shared = Shared {
        tasks: tasks.into_iter().map(|t| Mutex::new(Some(t))).collect(),
        queues: (0..workers)
            .map(|w| {
                // Round-robin seeding keeps early tasks spread across
                // workers; stealing rebalances whatever the seeding got
                // wrong about task durations.
                Mutex::new((w..n_tasks).step_by(workers).collect())
            })
            .collect(),
        results: (0..n_tasks).map(|_| Mutex::new(None)).collect(),
    };

    std::thread::scope(|s| {
        for w in 0..workers {
            let shared = &shared;
            s.spawn(move || {
                while let Some(i) = shared.next_index(w) {
                    shared.execute(i);
                }
            });
        }
    });

    shared
        .results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("pool exited with an unexecuted task")
        })
        .collect()
}

/// Convenience wrapper: applies `f` to each item index (0..n) in
/// parallel, unwrapping panics into a propagated panic on the caller's
/// thread. For harnesses that want isolation instead, use [`run_tasks`]
/// directly.
pub fn parallel_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    let f = &f;
    run_tasks(jobs, (0..n).map(|i| move || f(i)).collect())
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        for jobs in [1, 2, 3, 8] {
            let tasks: Vec<_> = (0..23u64).map(|i| move || i * i).collect();
            let out = run_tasks(jobs, tasks);
            let values: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..23u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        // A task whose output depends only on its input must produce
        // the same vector under any worker count.
        let mk = || {
            (0..40u64)
                .map(|i| move || i.wrapping_mul(0x9e3779b9) ^ i)
                .collect()
        };
        let seq: Vec<u64> = run_tasks(1, mk()).into_iter().map(|r| r.unwrap()).collect();
        for jobs in [2, 4, 7] {
            let par: Vec<u64> = run_tasks(jobs, mk())
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(seq, par, "jobs={jobs} diverged from sequential");
        }
    }

    #[test]
    fn a_panicking_task_does_not_take_down_siblings() {
        for jobs in [1, 4] {
            let done = AtomicUsize::new(0);
            let tasks: Vec<_> = (0..10usize)
                .map(|i| {
                    let done = &done;
                    move || {
                        if i == 3 {
                            panic!("poisoned trial {i}");
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                        i
                    }
                })
                .collect();
            let out = run_tasks(jobs, tasks);
            assert_eq!(done.load(Ordering::Relaxed), 9, "jobs={jobs}");
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    assert!(r.is_err(), "jobs={jobs}: slot 3 should carry the panic");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i, "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn stealing_drains_imbalanced_queues() {
        // One long task pins a worker; the others must steal the rest.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| {
                Box::new(move || {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                    }
                    i
                }) as _
            })
            .collect();
        let out = run_tasks(4, tasks);
        assert_eq!(out.len(), 16);
        assert!(out.into_iter().map(|r| r.unwrap()).eq(0..16));
    }

    #[test]
    fn empty_and_single_task_edge_cases() {
        let out: Vec<TaskResult<u32>> = run_tasks(8, Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
        let out = run_tasks(8, vec![|| 7u32]);
        assert_eq!(out.into_iter().next().unwrap().unwrap(), 7);
    }

    #[test]
    fn resolve_jobs_semantics() {
        assert!(default_jobs() >= 1);
        assert_eq!(resolve_jobs(3), 3);
        assert_eq!(resolve_jobs(0), default_jobs());
    }

    #[test]
    fn parallel_indexed_maps_in_order() {
        let out = parallel_indexed(4, 9, |i| i as u64 + 1);
        assert_eq!(out, (1..=9u64).collect::<Vec<_>>());
    }
}
