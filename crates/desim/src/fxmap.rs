//! Vendored Fx-style hasher for hot-path lookup tables.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is
//! DoS-resistant but costs tens of nanoseconds per short key — real
//! money on tables probed once per simulated syscall (fault sites, IPI
//! tokens). This is the multiply-xor scheme rustc uses internally
//! (firefox's original "Fx" hash): one rotate, one xor, one multiply
//! per word. All keys here are simulation-internal (static site names,
//! small integers), so hash-flooding resistance buys nothing.
//!
//! Vendored by hand because the workspace takes no external
//! dependencies. Iteration order of an `FxHashMap` differs from the
//! default hasher's and from insertion order — callers that fold map
//! contents into deterministic output must sort first (they already do;
//! see `FaultState::hit_counts`).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold 8 bytes at a time, then the sub-word tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                word |= (b as u64) << (8 * i);
            }
            self.add_to_hash(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_and_int_keys_round_trip() {
        let mut m: FxHashMap<String, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(format!("site.{i}"), i);
        }
        for i in 0..1000u64 {
            // &str lookup against String keys must work (Borrow).
            assert_eq!(m.get(format!("site.{i}").as_str()), Some(&i));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            assert!(s.insert(i * 7));
        }
        assert!(s.contains(&21));
    }

    #[test]
    fn hash_is_deterministic_across_hasher_instances() {
        fn h(bytes: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        }
        assert_eq!(h(b"alloc.page"), h(b"alloc.page"));
        assert_ne!(h(b"alloc.page"), h(b"alloc.slab"));
        // Sub-word tails must contribute.
        assert_ne!(h(b"abcdefgh"), h(b"abcdefghi"));
    }
}
