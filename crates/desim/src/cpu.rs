//! Simulated CPU cores.

use std::collections::VecDeque;

use crate::time::{Ns, MS, US};

/// Classification of charged core occupancy, used to attribute a
/// queued process's run-queue wait to *who* was occupying the core:
/// other application work, softirq polling, housekeeping daemons, or
/// stolen interrupt-handler time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum OccClass {
    /// Application / workload compute.
    User = 0,
    /// Softirq-context compute (NAPI polling).
    Softirq = 1,
    /// Housekeeping-daemon compute.
    Daemon = 2,
    /// Interrupt-handler time injected via [`CoreState::steal`].
    Irq = 3,
}

impl OccClass {
    /// Number of occupancy classes.
    pub const COUNT: usize = 4;
}

/// Identifier of a simulated hardware thread within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub u32);

impl CoreId {
    /// Index into the engine's core table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static configuration of one core.
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// Period of the local timer interrupt (Linux `CONFIG_HZ=1000` ⇒ 1 ms).
    pub tick_period: Ns,
    /// CPU time consumed by each timer interrupt. Virtualized cores pay a
    /// higher cost here (timer exits), configured by the environment model.
    pub tick_cost: Ns,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            tick_period: MS,
            tick_cost: 2 * US,
        }
    }
}

/// Dynamic state of one core during a run.
#[derive(Debug)]
pub struct CoreState {
    /// Static configuration.
    pub cfg: CoreConfig,
    /// Virtual time at which the core finishes its currently charged work.
    /// Compute requests issued before this time queue behind it.
    pub free_at: Ns,
    /// Nesting depth of interrupt-disabled (spinlock) sections. While
    /// nonzero, IPIs to this core are deferred.
    pub irq_depth: u32,
    /// IPI acknowledgements deferred until interrupts are re-enabled.
    /// Each entry is `(ipi_token, handler_ns)`; tokens index the
    /// engine's IPI slab.
    pub deferred_acks: Vec<(u32, Ns)>,
    /// Total CPU time stolen from this core by interrupt handlers — kept
    /// for diagnostics ("OS noise" accounting).
    pub stolen: Ns,
    /// Recent charged-occupancy intervals `(start, end, class)`, ordered
    /// and non-overlapping. Consumed by [`CoreState::queue_breakdown`] to
    /// attribute run-queue waits; intervals entirely in the past are
    /// pruned on each charge.
    segments: VecDeque<(Ns, Ns, OccClass)>,
}

impl CoreState {
    /// Creates a fresh core.
    pub fn new(cfg: CoreConfig) -> Self {
        Self {
            cfg,
            free_at: 0,
            irq_depth: 0,
            deferred_acks: Vec::new(),
            stolen: 0,
            segments: VecDeque::new(),
        }
    }

    fn push_segment(&mut self, now: Ns, start: Ns, end: Ns, class: OccClass) {
        while let Some(&(_, e, _)) = self.segments.front() {
            if e <= now {
                self.segments.pop_front();
            } else {
                break;
            }
        }
        if end > start {
            self.segments.push_back((start, end, class));
        }
    }

    /// Charges `work` ns of `class`-occupancy compute starting no earlier
    /// than `now`; returns the completion time. Adds timer-tick overhead
    /// proportional to the wall time spent computing.
    pub fn charge_compute(&mut self, now: Ns, work: Ns, class: OccClass) -> Ns {
        let start = self.free_at.max(now);
        let ticks = work.checked_div(self.cfg.tick_period).unwrap_or(0);
        let end = start + work + ticks * self.cfg.tick_cost;
        self.free_at = end;
        self.push_segment(now, start, end, class);
        end
    }

    /// Steals `ns` of CPU from whatever this core runs next (interrupt
    /// handler cost injection). Returns the time at which the stolen work
    /// completes: back-to-back interrupts to one core serialize, which is
    /// what turns concurrent TLB-shootdown broadcasts into storms.
    pub fn steal(&mut self, now: Ns, ns: Ns) -> Ns {
        let start = self.free_at.max(now);
        let end = start + ns;
        self.free_at = end;
        self.stolen += ns;
        self.push_segment(now, start, end, OccClass::Irq);
        end
    }

    /// Decomposes the queue window `[now, free_at)` — the wait a process
    /// charging compute at `now` would experience — by occupancy class.
    /// The window is always fully tiled by retained segments: the core's
    /// `free_at` only advances through charges, each of which records its
    /// interval, and idle gaps necessarily end at or before `now` (a gap
    /// is created by a charge arriving at a clock value ≤ `now` whose
    /// start equals its arrival time). Returns per-class totals indexed
    /// by `OccClass as usize`.
    pub fn queue_breakdown(&self, now: Ns) -> [Ns; OccClass::COUNT] {
        let mut out = [0; OccClass::COUNT];
        for &(s, e, c) in &self.segments {
            let lo = s.max(now);
            if e > lo {
                out[c as usize] += e - lo;
            }
        }
        debug_assert_eq!(
            out.iter().sum::<Ns>(),
            self.free_at.saturating_sub(now),
            "occupancy segments must tile the queue window"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_serializes_on_core() {
        let mut c = CoreState::new(CoreConfig {
            tick_period: MS,
            tick_cost: 0,
        });
        let e1 = c.charge_compute(0, 100, OccClass::User);
        assert_eq!(e1, 100);
        // Second request at t=50 queues behind the first.
        let e2 = c.charge_compute(50, 100, OccClass::User);
        assert_eq!(e2, 200);
        // Request after the core went idle starts immediately.
        let e3 = c.charge_compute(500, 10, OccClass::User);
        assert_eq!(e3, 510);
    }

    #[test]
    fn tick_overhead_scales_with_work() {
        let mut c = CoreState::new(CoreConfig {
            tick_period: MS,
            tick_cost: 10 * US,
        });
        // 5 ms of work crosses 5 tick boundaries -> +50us.
        let end = c.charge_compute(0, 5 * MS, OccClass::User);
        assert_eq!(end, 5 * MS + 50 * US);
    }

    #[test]
    fn steal_pushes_free_at_and_accounts() {
        let mut c = CoreState::new(CoreConfig::default());
        c.steal(100, 40);
        assert_eq!(c.free_at, 140);
        assert_eq!(c.stolen, 40);
        let end = c.charge_compute(100, 10, OccClass::User);
        assert_eq!(end, 150, "compute queues behind stolen time");
    }

    #[test]
    fn zero_tick_period_disables_tick_cost() {
        let mut c = CoreState::new(CoreConfig {
            tick_period: 0,
            tick_cost: 10,
        });
        assert_eq!(c.charge_compute(0, 1000, OccClass::User), 1000);
    }

    #[test]
    fn queue_breakdown_attributes_by_occupant_class() {
        let mut c = CoreState::new(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        c.charge_compute(0, 100, OccClass::User); // [0, 100)
        c.charge_compute(0, 50, OccClass::Softirq); // [100, 150)
        c.steal(0, 30); // [150, 180)
        c.charge_compute(0, 20, OccClass::Daemon); // [180, 200)
                                                   // A process arriving at t=120 waits until t=200.
        let parts = c.queue_breakdown(120);
        assert_eq!(parts[OccClass::User as usize], 0, "user work already past");
        assert_eq!(parts[OccClass::Softirq as usize], 30);
        assert_eq!(parts[OccClass::Irq as usize], 30);
        assert_eq!(parts[OccClass::Daemon as usize], 20);
        assert_eq!(parts.iter().sum::<Ns>(), 80);
    }

    #[test]
    fn queue_breakdown_empty_window_is_zero() {
        let mut c = CoreState::new(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        c.charge_compute(0, 100, OccClass::User);
        assert_eq!(c.queue_breakdown(500), [0; OccClass::COUNT]);
    }

    #[test]
    fn stale_segments_are_pruned_on_charge() {
        let mut c = CoreState::new(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        for i in 0..10 {
            c.charge_compute(i * 1000, 10, OccClass::User);
        }
        // Each charge found the core idle, so earlier segments are pruned.
        assert!(c.segments.len() <= 1, "kept {} segments", c.segments.len());
    }
}
