//! Simulated CPU cores.

use crate::time::{Ns, MS, US};

/// Identifier of a simulated hardware thread within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub u32);

impl CoreId {
    /// Index into the engine's core table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static configuration of one core.
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// Period of the local timer interrupt (Linux `CONFIG_HZ=1000` ⇒ 1 ms).
    pub tick_period: Ns,
    /// CPU time consumed by each timer interrupt. Virtualized cores pay a
    /// higher cost here (timer exits), configured by the environment model.
    pub tick_cost: Ns,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            tick_period: MS,
            tick_cost: 2 * US,
        }
    }
}

/// Dynamic state of one core during a run.
#[derive(Debug)]
pub struct CoreState {
    /// Static configuration.
    pub cfg: CoreConfig,
    /// Virtual time at which the core finishes its currently charged work.
    /// Compute requests issued before this time queue behind it.
    pub free_at: Ns,
    /// Nesting depth of interrupt-disabled (spinlock) sections. While
    /// nonzero, IPIs to this core are deferred.
    pub irq_depth: u32,
    /// IPI acknowledgements deferred until interrupts are re-enabled.
    /// Each entry is `(ipi_token, handler_ns)`.
    pub deferred_acks: Vec<(u64, Ns)>,
    /// Total CPU time stolen from this core by interrupt handlers — kept
    /// for diagnostics ("OS noise" accounting).
    pub stolen: Ns,
}

impl CoreState {
    /// Creates a fresh core.
    pub fn new(cfg: CoreConfig) -> Self {
        Self {
            cfg,
            free_at: 0,
            irq_depth: 0,
            deferred_acks: Vec::new(),
            stolen: 0,
        }
    }

    /// Charges `work` ns of compute starting no earlier than `now`; returns
    /// the completion time. Adds timer-tick overhead proportional to the
    /// wall time spent computing.
    pub fn charge_compute(&mut self, now: Ns, work: Ns) -> Ns {
        let start = self.free_at.max(now);
        let ticks = work.checked_div(self.cfg.tick_period).unwrap_or(0);
        let end = start + work + ticks * self.cfg.tick_cost;
        self.free_at = end;
        end
    }

    /// Steals `ns` of CPU from whatever this core runs next (interrupt
    /// handler cost injection). Returns the time at which the stolen work
    /// completes: back-to-back interrupts to one core serialize, which is
    /// what turns concurrent TLB-shootdown broadcasts into storms.
    pub fn steal(&mut self, now: Ns, ns: Ns) -> Ns {
        let start = self.free_at.max(now);
        self.free_at = start + ns;
        self.stolen += ns;
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_serializes_on_core() {
        let mut c = CoreState::new(CoreConfig {
            tick_period: MS,
            tick_cost: 0,
        });
        let e1 = c.charge_compute(0, 100);
        assert_eq!(e1, 100);
        // Second request at t=50 queues behind the first.
        let e2 = c.charge_compute(50, 100);
        assert_eq!(e2, 200);
        // Request after the core went idle starts immediately.
        let e3 = c.charge_compute(500, 10);
        assert_eq!(e3, 510);
    }

    #[test]
    fn tick_overhead_scales_with_work() {
        let mut c = CoreState::new(CoreConfig {
            tick_period: MS,
            tick_cost: 10 * US,
        });
        // 5 ms of work crosses 5 tick boundaries -> +50us.
        let end = c.charge_compute(0, 5 * MS);
        assert_eq!(end, 5 * MS + 50 * US);
    }

    #[test]
    fn steal_pushes_free_at_and_accounts() {
        let mut c = CoreState::new(CoreConfig::default());
        c.steal(100, 40);
        assert_eq!(c.free_at, 140);
        assert_eq!(c.stolen, 40);
        let end = c.charge_compute(100, 10);
        assert_eq!(end, 150, "compute queues behind stolen time");
    }

    #[test]
    fn zero_tick_period_disables_tick_cost() {
        let mut c = CoreState::new(CoreConfig {
            tick_period: 0,
            tick_cost: 10,
        });
        assert_eq!(c.charge_compute(0, 1000), 1000);
    }
}
