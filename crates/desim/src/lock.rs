//! Simulated kernel synchronization primitives.

use std::collections::VecDeque;

use crate::process::Pid;
use crate::time::Ns;

/// Number of log2 buckets in a per-lock wait-time histogram.
pub const WAIT_HIST_BUCKETS: usize = 64;

/// Identifier of a simulated lock within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId(pub u32);

impl LockId {
    /// Index into the engine's lock table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Kind of synchronization primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// Queued spinlock: FIFO handoff, interrupts disabled while held
    /// (matching Linux `spin_lock_irqsave` sections — the common case for
    /// the global locks we model). Waiters burn CPU, but the engine models
    /// only the ordering, not the burnt cycles.
    Spin,
    /// Sleeping mutex: FIFO handoff plus a scheduler wake-up latency.
    Mutex,
    /// Reader-writer sleeping lock (e.g. `mmap_sem`): multiple readers or
    /// one writer. Waiting writers block new readers (fair/writer-preferring
    /// queueing, like Linux rwsems), which is what turns a single writer
    /// into a convoy — a key variability mechanism.
    RwLock,
}

/// Acquisition mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Exclusive (writer) acquisition. The only valid mode for `Spin` and
    /// `Mutex` locks.
    Exclusive,
    /// Shared (reader) acquisition; only valid for `RwLock`.
    Shared,
}

/// Who currently holds a lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Holder {
    /// Nobody.
    Free,
    /// One exclusive owner.
    Exclusive(Pid),
    /// `n` readers (RwLock only).
    Shared(u32),
}

/// Dynamic state of one lock.
#[derive(Debug)]
pub struct LockState {
    /// The primitive kind.
    pub kind: LockKind,
    /// Current holder(s).
    pub holder: Holder,
    /// FIFO queue of waiters: `(pid, mode, enqueue time)`. The enqueue
    /// timestamp is what turns contention *counts* into wait *durations*
    /// (the lockstat analogue).
    pub waiters: VecDeque<(Pid, LockMode, Ns)>,
    /// Debug label for stall diagnostics.
    pub label: &'static str,
    /// Total number of acquisitions (contention accounting).
    pub acquisitions: u64,
    /// Number of acquisitions that had to wait.
    pub contended: u64,
    /// Total enqueue → grant wait across all contended acquisitions.
    pub total_wait_ns: Ns,
    /// Longest single enqueue → grant wait.
    pub max_wait_ns: Ns,
    /// Log2 histogram of contended waits: bucket `b` counts waits with
    /// `floor(log2(ns)) == b` (bucket 0 also holds zero-ns waits).
    pub wait_hist: [u64; WAIT_HIST_BUCKETS],
    /// When the current exclusive holder took ownership (hold-time
    /// tracing; meaningless while free or reader-held).
    pub held_since: Ns,
}

impl LockState {
    /// Creates a free lock.
    pub fn new(kind: LockKind, label: &'static str) -> Self {
        Self {
            kind,
            holder: Holder::Free,
            waiters: VecDeque::new(),
            label,
            acquisitions: 0,
            contended: 0,
            total_wait_ns: 0,
            max_wait_ns: 0,
            wait_hist: [0; WAIT_HIST_BUCKETS],
            held_since: 0,
        }
    }

    /// Accounts one contended acquisition's enqueue → grant wait.
    pub fn record_wait(&mut self, wait: Ns) {
        self.total_wait_ns += wait;
        if wait > self.max_wait_ns {
            self.max_wait_ns = wait;
        }
        let bucket = if wait == 0 {
            0
        } else {
            63 - wait.leading_zeros() as usize
        };
        self.wait_hist[bucket] += 1;
    }

    /// Attempts an immediate acquisition for `pid`. Returns `true` when
    /// granted. FIFO fairness: an arrival never barges past queued waiters.
    pub fn try_acquire(&mut self, pid: Pid, mode: LockMode) -> bool {
        debug_assert!(
            !(matches!(self.kind, LockKind::Spin | LockKind::Mutex) && mode == LockMode::Shared),
            "shared acquisition of non-rw lock {}",
            self.label
        );
        if !self.waiters.is_empty() {
            return false;
        }
        match (&mut self.holder, mode) {
            (Holder::Free, LockMode::Exclusive) => {
                self.holder = Holder::Exclusive(pid);
                self.acquisitions += 1;
                true
            }
            (Holder::Free, LockMode::Shared) => {
                self.holder = Holder::Shared(1);
                self.acquisitions += 1;
                true
            }
            (Holder::Shared(n), LockMode::Shared) => {
                *n += 1;
                self.acquisitions += 1;
                true
            }
            _ => false,
        }
    }

    /// Releases the lock held by `pid` (or one reader reference). Returns
    /// the set of waiters to grant now — `(pid, mode, enqueue time)` —
    /// either one exclusive waiter or a leading batch of shared waiters.
    ///
    /// Allocating convenience over [`LockState::release_into`]; the
    /// engine's hot path passes a reusable buffer instead.
    pub fn release(&mut self, pid: Pid) -> Vec<(Pid, LockMode, Ns)> {
        let mut granted = Vec::new();
        self.release_into(pid, &mut granted);
        granted
    }

    /// [`LockState::release`] appending the granted waiters to `out`
    /// (which is not cleared first) instead of allocating.
    pub fn release_into(&mut self, pid: Pid, out: &mut Vec<(Pid, LockMode, Ns)>) {
        match &mut self.holder {
            Holder::Exclusive(owner) => {
                assert_eq!(*owner, pid, "{}: release by non-owner", self.label);
                self.holder = Holder::Free;
            }
            Holder::Shared(n) => {
                assert!(*n > 0, "{}: reader release underflow", self.label);
                *n -= 1;
                if *n > 0 {
                    return;
                }
                self.holder = Holder::Free;
            }
            Holder::Free => panic!("{}: release of free lock", self.label),
        }
        self.grant_waiters(out);
    }

    /// Pops the waiters that can run now that the lock is free.
    fn grant_waiters(&mut self, granted: &mut Vec<(Pid, LockMode, Ns)>) {
        match self.waiters.front() {
            None => {}
            Some((_, LockMode::Exclusive, _)) => {
                let (p, m, since) = self.waiters.pop_front().unwrap();
                self.holder = Holder::Exclusive(p);
                self.acquisitions += 1;
                granted.push((p, m, since));
            }
            Some((_, LockMode::Shared, _)) => {
                let mut n = 0;
                while matches!(self.waiters.front(), Some((_, LockMode::Shared, _))) {
                    let (p, m, since) = self.waiters.pop_front().unwrap();
                    n += 1;
                    self.acquisitions += 1;
                    granted.push((p, m, since));
                }
                self.holder = Holder::Shared(n);
            }
        }
    }

    /// Enqueues `pid` as a waiter arriving at virtual time `now`.
    pub fn enqueue(&mut self, pid: Pid, mode: LockMode, now: Ns) {
        self.contended += 1;
        self.waiters.push_back((pid, mode, now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> Pid {
        Pid(n)
    }

    #[test]
    fn exclusive_handoff_is_fifo() {
        let mut l = LockState::new(LockKind::Spin, "t");
        assert!(l.try_acquire(pid(1), LockMode::Exclusive));
        assert!(!l.try_acquire(pid(2), LockMode::Exclusive));
        l.enqueue(pid(2), LockMode::Exclusive, 10);
        assert!(!l.try_acquire(pid(3), LockMode::Exclusive));
        l.enqueue(pid(3), LockMode::Exclusive, 20);
        let g = l.release(pid(1));
        assert_eq!(g, vec![(pid(2), LockMode::Exclusive, 10)]);
        let g = l.release(pid(2));
        assert_eq!(g, vec![(pid(3), LockMode::Exclusive, 20)]);
        assert!(l.release(pid(3)).is_empty());
        assert_eq!(l.holder, Holder::Free);
    }

    #[test]
    fn readers_share_and_batch() {
        let mut l = LockState::new(LockKind::RwLock, "rw");
        assert!(l.try_acquire(pid(1), LockMode::Shared));
        assert!(l.try_acquire(pid(2), LockMode::Shared));
        // Writer waits behind 2 readers.
        assert!(!l.try_acquire(pid(3), LockMode::Exclusive));
        l.enqueue(pid(3), LockMode::Exclusive, 5);
        // New reader cannot barge past the queued writer.
        assert!(!l.try_acquire(pid(4), LockMode::Shared));
        l.enqueue(pid(4), LockMode::Shared, 6);
        assert!(!l.try_acquire(pid(5), LockMode::Shared));
        l.enqueue(pid(5), LockMode::Shared, 7);

        assert!(l.release(pid(1)).is_empty(), "still one reader left");
        let g = l.release(pid(2));
        assert_eq!(g, vec![(pid(3), LockMode::Exclusive, 5)]);
        // Writer release grants the reader batch at once.
        let g = l.release(pid(3));
        assert_eq!(
            g,
            vec![(pid(4), LockMode::Shared, 6), (pid(5), LockMode::Shared, 7)]
        );
        assert_eq!(l.holder, Holder::Shared(2));
    }

    #[test]
    fn contention_counters() {
        let mut l = LockState::new(LockKind::Mutex, "m");
        assert!(l.try_acquire(pid(1), LockMode::Exclusive));
        l.enqueue(pid(2), LockMode::Exclusive, 0);
        l.release(pid(1));
        l.release(pid(2));
        assert_eq!(l.acquisitions, 2);
        assert_eq!(l.contended, 1);
    }

    #[test]
    fn wait_accounting_totals_max_and_buckets() {
        let mut l = LockState::new(LockKind::Spin, "w");
        l.record_wait(0);
        l.record_wait(1);
        l.record_wait(1000); // floor(log2(1000)) = 9
        l.record_wait(1 << 20);
        assert_eq!(l.total_wait_ns, 1 + 1000 + (1 << 20));
        assert_eq!(l.max_wait_ns, 1 << 20);
        assert_eq!(l.wait_hist[0], 2, "zero and 1ns waits share bucket 0");
        assert_eq!(l.wait_hist[9], 1);
        assert_eq!(l.wait_hist[20], 1);
        assert_eq!(l.wait_hist.iter().sum::<u64>(), 4);
    }

    #[test]
    fn huge_wait_lands_in_top_bucket() {
        let mut l = LockState::new(LockKind::Spin, "w");
        l.record_wait(u64::MAX);
        assert_eq!(l.wait_hist[63], 1);
    }

    #[test]
    #[should_panic(expected = "release of free lock")]
    fn release_free_panics() {
        let mut l = LockState::new(LockKind::Spin, "t");
        l.release(pid(1));
    }

    #[test]
    #[should_panic(expected = "release by non-owner")]
    fn release_by_non_owner_panics() {
        let mut l = LockState::new(LockKind::Spin, "t");
        assert!(l.try_acquire(pid(1), LockMode::Exclusive));
        l.release(pid(2));
    }
}
