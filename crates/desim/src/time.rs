//! Virtual time units.

/// Virtual time in nanoseconds. The whole workspace shares this unit.
pub type Ns = u64;

/// Nanoseconds per microsecond.
pub const US: Ns = 1_000;
/// Nanoseconds per millisecond.
pub const MS: Ns = 1_000_000;
/// Nanoseconds per second.
pub const SEC: Ns = 1_000_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_compose() {
        assert_eq!(MS, 1000 * US);
        assert_eq!(SEC, 1000 * MS);
    }
}
