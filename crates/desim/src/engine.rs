//! The event engine: virtual clock, event queue and effect dispatch.
//!
//! The scheduling core is built for raw single-trial speed (see
//! DESIGN.md, "engine hot path"): events live in an index-addressed
//! slab queue ([`EventQueue`]) instead of a `BinaryHeap` of boxed
//! records, IPI bookkeeping is a dense slab keyed by token index, and
//! same-time wake trains (lock grants, barrier releases, queue
//! signals) coalesce into a single queue operation. All of it is
//! bit-identical to the naive one-event-per-wake formulation because
//! `(t, seq)` is a total order — see the determinism notes on
//! [`EventQueue`].

use ksa_telemetry::{MetricId, Registry, TelemetryConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cpu::{CoreConfig, CoreId, CoreState, OccClass};
use crate::equeue::EventQueue;
use crate::fault::{FaultKind, FaultPlan, FaultState};
use crate::iodev::{DevId, DeviceModel, DeviceState};
use crate::lock::{LockId, LockKind, LockMode, LockState, WAIT_HIST_BUCKETS};
use crate::process::{Effect, Pid, Process, WakeReason};
use crate::time::{Ns, US};
use crate::trace::{
    LatBreakdown, LatComp, LatSnapshot, ProcKind, TraceConfig, TraceEvent, TraceEventKind,
    TraceLog, TraceRing,
};

/// Identifier of a wait queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueId(pub u32);

/// Identifier of a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrierId(pub u32);

/// Identifier of an RCU domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RcuId(pub u32);

/// Engine-wide latency parameters for the synchronization primitives.
#[derive(Debug, Clone, Copy)]
pub struct EngineParams {
    /// One-way IPI delivery latency.
    pub ipi_latency: Ns,
    /// Cache-line handoff cost when a spinlock passes between cores.
    pub spin_handoff: Ns,
    /// Scheduler wake-up latency added when a sleeping lock or wait queue
    /// wakes a process.
    pub sched_wakeup: Ns,
    /// Cost charged when a barrier releases.
    pub barrier_release: Ns,
    /// Fixed component of an RCU grace period.
    pub rcu_base: Ns,
    /// Per-core component of an RCU grace period (each core in the domain
    /// must pass a quiescent state).
    pub rcu_per_core: Ns,
    /// Uniform jitter added to each grace period.
    pub rcu_jitter: Ns,
}

impl Default for EngineParams {
    fn default() -> Self {
        Self {
            ipi_latency: 1_500,
            spin_handoff: 150,
            sched_wakeup: 2_500,
            barrier_release: 300,
            rcu_base: 8 * US,
            rcu_per_core: 4 * US,
            rcu_jitter: 30 * US,
        }
    }
}

/// One recorded measurement: processes call [`SimCtx::record`] and the
/// harness interprets `key` (e.g. as a call-site index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Which process recorded the sample.
    pub pid: Pid,
    /// Caller-defined key (measurement site).
    pub key: u64,
    /// Virtual time of the record.
    pub t: Ns,
    /// The measured value (usually a latency in ns).
    pub value: u64,
}

/// Error returned when the simulation cannot make progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run could not finish. Either the event heap drained while live
    /// processes remained (a lost wake-up or lock cycle — `livelock ==
    /// false`), or the event-budget watchdog fired because the run kept
    /// processing events without the user processes finishing (`livelock ==
    /// true`). Carries diagnostics either way so the harness can report a
    /// structured failure instead of hanging forever.
    Stalled {
        /// Virtual time at the stall.
        clock: Ns,
        /// Events processed by the failed `run_until` call.
        events: u64,
        /// True when the event budget was exhausted (livelock watchdog);
        /// false when the heap drained with live processes (deadlock).
        livelock: bool,
        /// `(pid, label, blocked_on)` for every live, blocked process.
        blocked: Vec<(Pid, String, String)>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled {
                clock,
                events,
                livelock,
                blocked,
            } => {
                if *livelock {
                    writeln!(
                        f,
                        "simulation exceeded its event budget ({events} events) at t={clock}ns; live processes:"
                    )?;
                } else {
                    writeln!(f, "simulation stalled at t={clock}ns; blocked processes:")?;
                }
                for (pid, label, on) in blocked {
                    writeln!(f, "  pid {} ({label}) blocked on {on}", pid.0)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed run.
#[derive(Debug)]
pub struct SimResult {
    /// Final virtual clock value.
    pub clock: Ns,
    /// All samples recorded during the run, in record order.
    pub records: Vec<Record>,
    /// Events processed by this `run`/`run_until` call — the engine's
    /// unit of simulated work, used by the bench suite to report
    /// events/second throughput.
    pub events: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Wake(Pid, WakeReason),
    /// A coalesced train of same-time wakes: index into
    /// `EngineState::batches`. Dispatch unpacks the train in push
    /// order, which is bit-identical to one event per wake (the train's
    /// wakes would have held consecutive seqs and popped back-to-back),
    /// but costs one queue operation instead of N.
    WakeBatch(u32),
    /// IPI acknowledgement; the token indexes `EngineState::ipis`.
    IpiAck(u32),
}

#[derive(Debug)]
struct QueueState {
    waiting: std::collections::VecDeque<Pid>,
}

#[derive(Debug)]
struct BarrierState {
    size: u32,
    waiting: Vec<Pid>,
}

#[derive(Debug)]
struct RcuDomain {
    n_cores: u32,
}

/// Slab entry for an in-flight IPI broadcast; the slot index is the
/// token carried by `EventKind::IpiAck`. Token values never reach
/// records, traces or digests, so free-list reuse is unobservable.
#[derive(Debug, Clone, Copy)]
struct IpiPending {
    sender: Pid,
    remaining: u32,
}

/// Mutable engine state shared with processes through [`SimCtx`].
///
/// Everything except the process table and the world lives here so that a
/// resumed process can release locks, signal queues and record samples
/// while the engine still holds its own `Box`.
pub struct EngineState {
    clock: Ns,
    events: EventQueue<EventKind>,
    cores: Vec<CoreState>,
    locks: Vec<LockState>,
    queues: Vec<QueueState>,
    barriers: Vec<BarrierState>,
    rcu: Vec<RcuDomain>,
    devices: Vec<DeviceState>,
    /// In-flight IPI broadcasts, slab-allocated; tokens are indices.
    ipis: Vec<IpiPending>,
    ipi_free: Vec<u32>,
    /// Wake-train buffers behind `EventKind::WakeBatch`. Dispatched
    /// buffers are cleared and recycled through `batch_free`, so the
    /// steady state allocates nothing.
    batches: Vec<Vec<(Pid, WakeReason)>>,
    batch_free: Vec<u32>,
    /// Reusable scratch for lock-release grant lists.
    grant_buf: Vec<(Pid, LockMode, Ns)>,
    /// Per-pid `done` flags, dense so the hot wake path never touches
    /// the boxed process table just to skip a finished pid.
    proc_done: Vec<bool>,
    /// Per-pid label of what the process is blocked on (diagnostics).
    proc_blocked_on: Vec<&'static str>,
    records: Vec<Record>,
    params: EngineParams,
    rng: StdRng,
    faults: FaultState,
    event_budget: u64,
    proc_core: Vec<CoreId>,
    proc_daemon: Vec<bool>,
    live_users: usize,
    proc_kind: Vec<ProcKind>,
    /// Per-pid cumulative latency components (always on; pure
    /// bookkeeping, never alters timing or RNG draws).
    lat: Vec<LatBreakdown>,
    /// Per-pid cumulative lock wait per label, in first-contended order.
    lock_waits: Vec<Vec<(&'static str, Ns)>>,
    /// Per-pid timestamp of the last unknown-duration block (lock, IPI,
    /// barrier, wait queue); settled against the clock at resume.
    blocked_since: Vec<Ns>,
    trace_cfg: TraceConfig,
    trace: TraceLog,
    /// Engine self-profiling metrics (inert unless
    /// [`Engine::set_telemetry`] enabled them). Purely observational:
    /// counters and gauges only, never clock/RNG/scheduling state.
    telem: Registry,
    em: EngineMetrics,
}

/// Cached metric ids for the engine's own hot-path instrumentation.
/// All [`MetricId::NONE`] while telemetry is disabled, so every update
/// is a single-branch no-op.
#[derive(Clone, Copy)]
struct EngineMetrics {
    /// Events popped and dispatched (`engine_events_dispatched`).
    dispatched: MetricId,
    /// Events pushed onto the heap — the engine's allocation-rate
    /// proxy, since each event is a heap slot and the heap grows by
    /// doubling (`engine_events_scheduled`).
    scheduled: MetricId,
    /// Event-queue depth after each dispatch (`engine_event_queue_depth`).
    queue_depth: MetricId,
    /// Peak event-queue depth (`engine_event_queue_peak`).
    queue_peak: MetricId,
    /// Process wakes delivered (`engine_process_wakes`).
    wakes: MetricId,
    /// Processes spawned (`engine_processes_spawned`).
    spawned: MetricId,
    /// Timer interrupts charged against compute slices, post-coalescing
    /// (`engine_timer_ticks`).
    timer_ticks: MetricId,
}

impl EngineMetrics {
    const NONE: EngineMetrics = EngineMetrics {
        dispatched: MetricId::NONE,
        scheduled: MetricId::NONE,
        queue_depth: MetricId::NONE,
        queue_peak: MetricId::NONE,
        wakes: MetricId::NONE,
        spawned: MetricId::NONE,
        timer_ticks: MetricId::NONE,
    };

    fn register(reg: &mut Registry) -> EngineMetrics {
        EngineMetrics {
            dispatched: reg.counter("engine_events_dispatched", &[]),
            scheduled: reg.counter("engine_events_scheduled", &[]),
            queue_depth: reg.gauge("engine_event_queue_depth", &[]),
            queue_peak: reg.gauge("engine_event_queue_peak", &[]),
            wakes: reg.counter("engine_process_wakes", &[]),
            spawned: reg.counter("engine_processes_spawned", &[]),
            timer_ticks: reg.counter("engine_timer_ticks", &[]),
        }
    }
}

impl EngineState {
    #[inline]
    fn telem_on(&self) -> bool {
        self.telem.enabled()
    }

    fn schedule(&mut self, t: Ns, kind: EventKind) {
        debug_assert!(t >= self.clock, "scheduling into the past");
        self.events.push(t, kind);
        if self.telem_on() {
            self.telem.add(self.em.scheduled, 1);
        }
    }

    fn wake_at(&mut self, t: Ns, pid: Pid, reason: WakeReason) {
        self.schedule(t, EventKind::Wake(pid, reason));
    }

    /// Hands out an empty (capacity-retaining) wake-train buffer and
    /// its slab index. The slot is left empty until `commit_train`.
    fn take_train(&mut self) -> (u32, Vec<(Pid, WakeReason)>) {
        match self.batch_free.pop() {
            Some(b) => {
                let buf = std::mem::take(&mut self.batches[b as usize]);
                (b, buf)
            }
            None => {
                self.batches.push(Vec::new());
                (self.batches.len() as u32 - 1, Vec::new())
            }
        }
    }

    /// Schedules a filled wake train at `t`. Trains of length >= 2
    /// coalesce into one `WakeBatch` queue operation; a singleton is a
    /// plain `Wake` (and an empty train schedules nothing). The
    /// `scheduled` counter advances by the train length either way, so
    /// telemetry totals match the one-event-per-wake formulation.
    fn commit_train(&mut self, t: Ns, b: u32, mut train: Vec<(Pid, WakeReason)>) {
        match train.len() {
            0 => {
                self.batches[b as usize] = train;
                self.batch_free.push(b);
            }
            1 => {
                let (pid, reason) = train[0];
                train.clear();
                self.batches[b as usize] = train;
                self.batch_free.push(b);
                self.wake_at(t, pid, reason);
            }
            n => {
                self.batches[b as usize] = train;
                self.events.push(t, EventKind::WakeBatch(b));
                if self.telem_on() {
                    self.telem.add(self.em.scheduled, n as u64);
                }
            }
        }
    }

    #[inline]
    fn trace_on(&self) -> bool {
        self.trace_cfg.enabled
    }

    /// Appends a trace event to the ring of `pid`'s core. Purely
    /// observational: touches no clock, RNG or scheduling state.
    fn trace_push(&mut self, pid: Pid, kind: TraceEventKind) {
        let core = self.proc_core[pid.index()];
        while self.trace.rings.len() <= core.index() {
            self.trace
                .rings
                .push(TraceRing::new(self.trace_cfg.ring_capacity));
        }
        self.trace.rings[core.index()].push(TraceEvent {
            t: self.clock,
            pid,
            core,
            kind,
        });
    }

    /// Accumulates `ns` of lock wait for `pid` under `label`.
    fn add_lock_wait(&mut self, pid: Pid, label: &'static str, ns: Ns) {
        let waits = &mut self.lock_waits[pid.index()];
        if let Some(entry) = waits.iter_mut().find(|e| e.0 == label) {
            entry.1 += ns;
        } else {
            waits.push((label, ns));
        }
    }

    /// Grants released-lock waiters: bookkeeping plus wake events. All
    /// grants of one release share a wake time, so they coalesce into a
    /// single wake train.
    fn grant(&mut self, lock: LockId, granted: &[(Pid, LockMode, Ns)]) {
        if granted.is_empty() {
            return;
        }
        let kind = self.locks[lock.index()].kind;
        let label = self.locks[lock.index()].label;
        let delay = match kind {
            LockKind::Spin => self.params.spin_handoff,
            LockKind::Mutex | LockKind::RwLock => {
                self.params.spin_handoff + self.params.sched_wakeup
            }
        };
        let t = self.clock + delay;
        let (b, mut train) = self.take_train();
        for &(pid, mode, since) in granted {
            if kind == LockKind::Spin {
                let core = self.proc_core[pid.index()];
                self.cores[core.index()].irq_depth += 1;
            }
            // The waiter owns the lock from its wake time onward; its
            // wait ran from enqueue to that wake (handoff included).
            let wait = t - since;
            let l = &mut self.locks[lock.index()];
            l.record_wait(wait);
            if mode == LockMode::Exclusive {
                l.held_since = t;
            }
            self.add_lock_wait(pid, label, wait);
            if self.trace_on() {
                self.trace_push(
                    pid,
                    TraceEventKind::LockAcquired {
                        lock,
                        label,
                        wait_ns: wait,
                        contended: true,
                    },
                );
            }
            train.push((pid, WakeReason::LockGranted(lock)));
        }
        self.commit_train(t, b, train);
    }

    /// Releases `lock` on behalf of `pid`, waking any granted waiters and
    /// flushing IPI acknowledgements deferred by a spin section.
    fn do_release(&mut self, pid: Pid, lock: LockId) {
        let kind = self.locks[lock.index()].kind;
        if self.trace_on() {
            let l = &self.locks[lock.index()];
            if l.holder == crate::lock::Holder::Exclusive(pid) {
                let held_ns = self.clock.saturating_sub(l.held_since);
                let label = l.label;
                self.trace_push(
                    pid,
                    TraceEventKind::LockReleased {
                        lock,
                        label,
                        held_ns,
                    },
                );
            }
        }
        if kind == LockKind::Spin {
            let core = self.proc_core[pid.index()];
            let cs = &mut self.cores[core.index()];
            assert!(cs.irq_depth > 0, "spin unlock without irq section");
            cs.irq_depth -= 1;
            if cs.irq_depth == 0 && !cs.deferred_acks.is_empty() {
                let acks = std::mem::take(&mut cs.deferred_acks);
                let now = self.clock;
                for (token, handler_ns) in acks {
                    let done = self.cores[core.index()].steal(now, handler_ns);
                    let t = done + self.params.ipi_latency;
                    self.schedule(t, EventKind::IpiAck(token));
                }
            }
        }
        let mut granted = std::mem::take(&mut self.grant_buf);
        self.locks[lock.index()].release_into(pid, &mut granted);
        self.grant(lock, &granted);
        granted.clear();
        self.grant_buf = granted;
    }

    /// Allocates an IPI slab slot; the returned token rides in
    /// `EventKind::IpiAck` events.
    fn alloc_ipi(&mut self, sender: Pid, remaining: u32) -> u32 {
        let pending = IpiPending { sender, remaining };
        match self.ipi_free.pop() {
            Some(i) => {
                self.ipis[i as usize] = pending;
                i
            }
            None => {
                self.ipis.push(pending);
                self.ipis.len() as u32 - 1
            }
        }
    }
}

/// Context handed to a process during `resume`: the shared world plus the
/// engine services that never block.
pub struct SimCtx<'a, W> {
    /// The engine's world: shared mutable state visible to all processes.
    pub world: &'a mut W,
    st: &'a mut EngineState,
    pid: Pid,
}

impl<'a, W> SimCtx<'a, W> {
    /// Current virtual time.
    pub fn now(&self) -> Ns {
        self.st.clock
    }

    /// The resumed process's id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The core this process is bound to.
    pub fn core(&self) -> CoreId {
        self.st.proc_core[self.pid.index()]
    }

    /// The engine's deterministic RNG (shared; use for device-jitter-like
    /// decisions — workload RNGs should live inside the process).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.st.rng
    }

    /// Releases a lock this process holds (or drops one reader reference).
    /// Never blocks; granted waiters are woken via events.
    pub fn release(&mut self, lock: LockId) {
        self.st.do_release(self.pid, lock);
    }

    /// Wakes up to `n` processes sleeping on `queue`; returns how many were
    /// woken. A signal with no sleepers is lost (condition-variable
    /// semantics) — guard with world state.
    pub fn signal(&mut self, queue: QueueId, n: usize) -> usize {
        let mut woken = 0;
        let t = self.st.clock + self.st.params.sched_wakeup;
        let (b, mut train) = self.st.take_train();
        while woken < n {
            let Some(pid) = self.st.queues[queue.0 as usize].waiting.pop_front() else {
                break;
            };
            train.push((pid, WakeReason::Signaled(queue)));
            woken += 1;
        }
        self.st.commit_train(t, b, train);
        woken
    }

    /// Records a measurement sample.
    pub fn record(&mut self, key: u64, value: u64) {
        let rec = Record {
            pid: self.pid,
            key,
            t: self.st.clock,
            value,
        };
        self.st.records.push(rec);
    }

    /// Number of processes currently sleeping on `queue`.
    pub fn queue_len(&self, queue: QueueId) -> usize {
        self.st.queues[queue.0 as usize].waiting.len()
    }

    /// The engine's fault-injection state.
    pub fn faults(&mut self) -> &mut FaultState {
        &mut self.st.faults
    }

    /// Registers a hit of `(kind, site)` and asks the fault plan whether
    /// this hit should fail. Convenience over [`SimCtx::faults`].
    pub fn should_fail(&mut self, kind: FaultKind, site: &str) -> bool {
        let fail = self.st.faults.should_fail(kind, site);
        if fail && self.st.trace_on() {
            let pid = self.pid;
            let site = site.to_string();
            self.st
                .trace_push(pid, TraceEventKind::FaultInjected { kind, site });
        }
        fail
    }

    /// True when trace-event recording is enabled. Use to skip building
    /// event payloads that would otherwise allocate.
    pub fn trace_enabled(&self) -> bool {
        self.st.trace_on()
    }

    /// Records a trace event on this process's core ring (no-op when
    /// tracing is disabled). Kernel layers use this for syscall and
    /// VM-exit marks the engine cannot see.
    pub fn trace_mark(&mut self, kind: TraceEventKind) {
        if self.st.trace_on() {
            let pid = self.pid;
            self.st.trace_push(pid, kind);
        }
    }

    /// A consistent snapshot of this process's cumulative latency
    /// components and per-label lock waits. Two snapshots bracketing a
    /// stretch of work decompose exactly the virtual time elapsed
    /// between them ([`LatBreakdown::since`]).
    pub fn lat_snapshot(&self) -> LatSnapshot {
        LatSnapshot {
            comps: self.st.lat[self.pid.index()],
            lock_waits: self.st.lock_waits[self.pid.index()].clone(),
        }
    }

    /// [`SimCtx::lat_snapshot`] into a caller-owned snapshot, reusing
    /// its `lock_waits` allocation. Syscall-bracketing callers take two
    /// snapshots per call, so the reuse removes two Vec clones from
    /// every simulated syscall.
    pub fn lat_snapshot_into(&self, out: &mut LatSnapshot) {
        out.comps = self.st.lat[self.pid.index()];
        out.lock_waits
            .clone_from(&self.st.lock_waits[self.pid.index()]);
    }

    /// Splits the context into the world and the fault state, so code that
    /// holds `&mut W` (e.g. a kernel dispatch loop) can still consult the
    /// fault plan without a double mutable borrow of the context.
    pub fn world_and_faults(&mut self) -> (&mut W, &mut FaultState) {
        (self.world, &mut self.st.faults)
    }
}

/// The discrete-event engine. See the crate docs for the model.
///
/// Process state is struct-of-arrays: the boxed state machines live
/// here, while the dense per-pid scalars the hot path actually probes
/// (`done`, `blocked_on`, core binding, latency breakdowns) live in
/// contiguous `Vec`s on [`EngineState`].
pub struct Engine<W> {
    st: EngineState,
    procs: Vec<Option<Box<dyn Process<W>>>>,
    world: W,
}

impl<W> Engine<W> {
    /// Creates an engine around `world`, seeded for determinism.
    pub fn new(world: W, params: EngineParams, seed: u64) -> Self {
        Self {
            st: EngineState {
                clock: 0,
                events: EventQueue::new(),
                cores: Vec::new(),
                locks: Vec::new(),
                queues: Vec::new(),
                barriers: Vec::new(),
                rcu: Vec::new(),
                devices: Vec::new(),
                ipis: Vec::new(),
                ipi_free: Vec::new(),
                batches: Vec::new(),
                batch_free: Vec::new(),
                grant_buf: Vec::new(),
                proc_done: Vec::new(),
                proc_blocked_on: Vec::new(),
                records: Vec::new(),
                params,
                rng: StdRng::seed_from_u64(seed),
                faults: FaultState::default(),
                event_budget: 0,
                proc_core: Vec::new(),
                proc_daemon: Vec::new(),
                live_users: 0,
                proc_kind: Vec::new(),
                lat: Vec::new(),
                lock_waits: Vec::new(),
                blocked_since: Vec::new(),
                trace_cfg: TraceConfig::disabled(),
                trace: TraceLog::default(),
                telem: Registry::disabled(),
                em: EngineMetrics::NONE,
            },
            procs: Vec::new(),
            world,
        }
    }

    /// Registers a core; returns its id.
    pub fn add_core(&mut self, cfg: CoreConfig) -> CoreId {
        let id = CoreId(self.st.cores.len() as u32);
        self.st.cores.push(CoreState::new(cfg));
        id
    }

    /// Registers a lock; returns its id.
    pub fn add_lock(&mut self, kind: LockKind, label: &'static str) -> LockId {
        let id = LockId(self.st.locks.len() as u32);
        self.st.locks.push(LockState::new(kind, label));
        id
    }

    /// Registers a wait queue; returns its id.
    pub fn add_queue(&mut self) -> QueueId {
        let id = QueueId(self.st.queues.len() as u32);
        self.st.queues.push(QueueState {
            waiting: Default::default(),
        });
        id
    }

    /// Registers a barrier over `size` participants; returns its id.
    pub fn add_barrier(&mut self, size: u32) -> BarrierId {
        assert!(size > 0, "barrier size must be positive");
        let id = BarrierId(self.st.barriers.len() as u32);
        self.st.barriers.push(BarrierState {
            size,
            waiting: Vec::new(),
        });
        id
    }

    /// Registers an RCU domain spanning `n_cores` cores; returns its id.
    pub fn add_rcu_domain(&mut self, n_cores: u32) -> RcuId {
        let id = RcuId(self.st.rcu.len() as u32);
        self.st.rcu.push(RcuDomain { n_cores });
        id
    }

    /// Registers a block device; returns its id.
    pub fn add_device(&mut self, model: DeviceModel) -> DevId {
        let id = DevId(self.st.devices.len() as u32);
        self.st.devices.push(DeviceState::new(model));
        id
    }

    /// Spawns a process bound to `core`, first resumed at `start_at`.
    pub fn spawn(&mut self, core: CoreId, proc: Box<dyn Process<W>>, start_at: Ns) -> Pid {
        assert!(core.index() < self.st.cores.len(), "unknown core");
        let pid = Pid(self.procs.len() as u32);
        let daemon = proc.is_daemon();
        let kind = proc.kind();
        self.procs.push(Some(proc));
        self.st.proc_done.push(false);
        self.st.proc_blocked_on.push("start");
        self.st.proc_core.push(core);
        self.st.proc_daemon.push(daemon);
        self.st.proc_kind.push(kind);
        self.st.lat.push(LatBreakdown::default());
        self.st.lock_waits.push(Vec::new());
        self.st.blocked_since.push(0);
        if !daemon {
            self.st.live_users += 1;
        }
        if self.st.telem_on() {
            let id = self.st.em.spawned;
            self.st.telem.add(id, 1);
        }
        self.st.wake_at(start_at, pid, WakeReason::Start);
        pid
    }

    /// Shared world accessor.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable world accessor (between runs / before start).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Current virtual time.
    pub fn now(&self) -> Ns {
        self.st.clock
    }

    /// Total CPU time stolen from `core` by interrupt handlers.
    pub fn stolen_time(&self, core: CoreId) -> Ns {
        self.st.cores[core.index()].stolen
    }

    /// `(acquisitions, contended)` counters for a lock.
    pub fn lock_stats(&self, lock: LockId) -> (u64, u64) {
        let l = &self.st.locks[lock.index()];
        (l.acquisitions, l.contended)
    }

    /// Iterates `(label, acquisitions, contended)` over every registered
    /// lock — the raw material for contention attribution.
    pub fn all_lock_stats(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.st
            .locks
            .iter()
            .map(|l| (l.label, l.acquisitions, l.contended))
    }

    /// `(total_wait_ns, max_wait_ns)` for a lock (contended waits only).
    pub fn lock_wait_stats(&self, lock: LockId) -> (Ns, Ns) {
        let l = &self.st.locks[lock.index()];
        (l.total_wait_ns, l.max_wait_ns)
    }

    /// Iterates `(label, acquisitions, contended, total_wait_ns,
    /// max_wait_ns, wait_hist)` over every registered lock — the lockstat
    /// analogue's raw material (durations, not just rates).
    #[allow(clippy::type_complexity)]
    pub fn all_lock_wait_stats(
        &self,
    ) -> impl Iterator<Item = (&'static str, u64, u64, Ns, Ns, &[u64; WAIT_HIST_BUCKETS])> + '_
    {
        self.st.locks.iter().map(|l| {
            (
                l.label,
                l.acquisitions,
                l.contended,
                l.total_wait_ns,
                l.max_wait_ns,
                &l.wait_hist,
            )
        })
    }

    /// A process's cumulative latency components.
    pub fn lat_breakdown(&self, pid: Pid) -> LatBreakdown {
        self.st.lat[pid.index()]
    }

    /// A process's cumulative per-label lock waits.
    pub fn proc_lock_waits(&self, pid: Pid) -> &[(&'static str, Ns)] {
        &self.st.lock_waits[pid.index()]
    }

    /// Installs a tracing configuration and resets any previously
    /// recorded trace. With tracing disabled (the default) no events are
    /// recorded; either way, simulated results are bit-identical —
    /// recording is purely observational.
    pub fn set_trace(&mut self, cfg: TraceConfig) {
        self.st.trace_cfg = cfg;
        self.st.trace = TraceLog {
            enabled: cfg.enabled,
            rings: Vec::new(),
        };
    }

    /// The trace recorded so far.
    pub fn trace_log(&self) -> &TraceLog {
        &self.st.trace
    }

    /// Takes ownership of the recorded trace, leaving an empty one.
    pub fn take_trace(&mut self) -> TraceLog {
        let enabled = self.st.trace_cfg.enabled;
        let mut taken = std::mem::take(&mut self.st.trace);
        taken.enabled = enabled;
        self.st.trace.enabled = enabled;
        taken
    }

    /// Installs a telemetry configuration, replacing any previously
    /// recorded metrics. With telemetry disabled (the default) every
    /// metric update is a single-branch no-op; either way simulated
    /// results are bit-identical — the registry is purely observational
    /// and is only read from the virtual clock.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        self.st.telem = Registry::new(cfg);
        self.st.em = if cfg.enabled {
            EngineMetrics::register(&mut self.st.telem)
        } else {
            EngineMetrics::NONE
        };
    }

    /// The engine's self-profiling metrics recorded so far.
    pub fn telemetry(&self) -> &Registry {
        &self.st.telem
    }

    /// Takes ownership of the recorded metrics after flushing a final
    /// sample at the current clock, leaving a fresh registry with the
    /// same configuration.
    pub fn take_telemetry(&mut self) -> Registry {
        if self.st.telem.enabled() {
            self.st.telem.force_sample(self.st.clock);
        }
        let cfg = self.st.telem.config();
        let taken = std::mem::take(&mut self.st.telem);
        self.st.telem = Registry::new(cfg);
        self.st.em = if cfg.enabled {
            EngineMetrics::register(&mut self.st.telem)
        } else {
            EngineMetrics::NONE
        };
        taken
    }

    /// Installs a fault plan, clearing any previous hit counters. Call
    /// before `run`; handlers consult the plan through [`SimCtx`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.st.faults.reset(plan);
    }

    /// The fault-injection state (plan, hit counters, injected faults).
    pub fn fault_state(&self) -> &FaultState {
        &self.st.faults
    }

    /// Mutable fault-injection state (e.g. to inspect-and-reset between
    /// runs of a long-lived engine).
    pub fn fault_state_mut(&mut self) -> &mut FaultState {
        &mut self.st.faults
    }

    /// Arms the livelock watchdog: a single `run`/`run_until` call may
    /// process at most `budget` events before failing with a structured
    /// [`SimError::Stalled`] (`livelock == true`). `0` disables the
    /// watchdog (the default).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.st.event_budget = budget;
    }

    /// Runs to completion: until every non-daemon process is done.
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        self.run_until(Ns::MAX)
    }

    /// Runs until every non-daemon process is done or the clock passes
    /// `deadline`, whichever comes first.
    pub fn run_until(&mut self, deadline: Ns) -> Result<SimResult, SimError> {
        let mut processed: u64 = 0;
        let budget = self.st.event_budget;
        while self.st.live_users > 0 {
            let Some((t, seq, kind)) = self.st.events.pop() else {
                return Err(self.stall_error(processed, false));
            };
            if t > deadline {
                // Park it back at its original key so a later
                // run_until can continue exactly where this one stopped.
                self.st.events.push_keyed(t, seq, kind);
                break;
            }
            match kind {
                EventKind::Wake(pid, reason) => {
                    if budget != 0 && processed >= budget {
                        // Watchdog: the run keeps generating events
                        // without the user processes finishing. Park the
                        // event for a possible resume and report a
                        // structured livelock instead of spinning forever.
                        self.st.events.push_keyed(t, seq, kind);
                        return Err(self.stall_error(processed, true));
                    }
                    processed += 1;
                    self.st.clock = t;
                    self.dispatch_telem();
                    self.run_process(pid, reason);
                }
                EventKind::WakeBatch(b) => {
                    // Each sub-wake counts as one dispatched/processed
                    // event, with the budget checked before each one —
                    // exactly as if the train were N separate events.
                    let mut train = std::mem::take(&mut self.st.batches[b as usize]);
                    for i in 0..train.len() {
                        if budget != 0 && processed >= budget {
                            // Re-park the undispatched tail of the train
                            // at the original key; its wakes stay ahead
                            // of any later same-time arrivals.
                            train.drain(..i);
                            self.st.batches[b as usize] = train;
                            self.st.events.push_keyed(t, seq, EventKind::WakeBatch(b));
                            return Err(self.stall_error(processed, true));
                        }
                        processed += 1;
                        self.st.clock = t;
                        self.dispatch_telem();
                        let (pid, reason) = train[i];
                        self.run_process(pid, reason);
                    }
                    train.clear();
                    self.st.batches[b as usize] = train;
                    self.st.batch_free.push(b);
                }
                EventKind::IpiAck(token) => {
                    if budget != 0 && processed >= budget {
                        self.st.events.push_keyed(t, seq, kind);
                        return Err(self.stall_error(processed, true));
                    }
                    processed += 1;
                    self.st.clock = t;
                    self.dispatch_telem();
                    let p = &mut self.st.ipis[token as usize];
                    p.remaining -= 1;
                    if p.remaining == 0 {
                        let sender = p.sender;
                        self.st.ipi_free.push(token);
                        self.run_process(sender, WakeReason::IpiDone);
                    }
                }
            }
        }
        Ok(SimResult {
            clock: self.st.clock,
            records: std::mem::take(&mut self.st.records),
            events: processed,
        })
    }

    /// Per-dispatch telemetry: counters, queue-depth gauges and the
    /// time-series sampler. Inert (one branch) without telemetry.
    #[inline]
    fn dispatch_telem(&mut self) {
        if self.st.telem_on() {
            let em = self.st.em;
            let depth = self.st.events.len() as u64;
            self.st.telem.add(em.dispatched, 1);
            self.st.telem.set(em.queue_depth, depth);
            self.st.telem.set_max(em.queue_peak, depth);
            self.st.telem.sample_tick(self.st.clock);
        }
    }

    fn stall_error(&self, events: u64, livelock: bool) -> SimError {
        let blocked = self
            .procs
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.st.proc_done[i])
            .map(|(i, s)| {
                let label = s
                    .as_ref()
                    .map(|p| p.label().to_string())
                    .unwrap_or_default();
                (Pid(i as u32), label, self.st.proc_blocked_on[i].to_string())
            })
            .collect();
        SimError::Stalled {
            clock: self.st.clock,
            events,
            livelock,
            blocked,
        }
    }

    fn run_process(&mut self, pid: Pid, mut wake: WakeReason) {
        if self.st.proc_done[pid.index()] {
            return;
        }
        // Settle unknown-duration blocks now that the wake time is known.
        // (Timer, I/O and RCU waits were settled when the effect was
        // issued, because their end time was already known then.)
        let settle = match wake {
            WakeReason::LockGranted(_) => Some(LatComp::LockWait),
            WakeReason::IpiDone => Some(LatComp::IpiWait),
            WakeReason::BarrierReleased => Some(LatComp::BarrierWait),
            WakeReason::Signaled(_) => Some(LatComp::QueueWait),
            _ => None,
        };
        if let Some(comp) = settle {
            let dt = self.st.clock - self.st.blocked_since[pid.index()];
            self.st.lat[pid.index()].add(comp, dt);
        }
        if self.st.trace_on() {
            self.st
                .trace_push(pid, TraceEventKind::Wake { reason: wake.tag() });
        }
        if self.st.telem_on() {
            let id = self.st.em.wakes;
            self.st.telem.add(id, 1);
        }
        let mut proc = self.procs[pid.index()]
            .take()
            .expect("process resumed re-entrantly");
        let core = self.st.proc_core[pid.index()];
        loop {
            let effect = {
                let mut ctx = SimCtx {
                    world: &mut self.world,
                    st: &mut self.st,
                    pid,
                };
                proc.resume(&mut ctx, wake)
            };
            let st = &mut self.st;
            let now = st.clock;
            match effect {
                Effect::Delay(n) => {
                    let class = match st.proc_kind[pid.index()] {
                        ProcKind::User => OccClass::User,
                        ProcKind::Softirq => OccClass::Softirq,
                        ProcKind::Daemon => OccClass::Daemon,
                    };
                    let (queued, ticks, tick_cost, end) = {
                        let cs = &mut st.cores[core.index()];
                        let queued = if cs.free_at > now {
                            cs.queue_breakdown(now)
                        } else {
                            [0; OccClass::COUNT]
                        };
                        let ticks = n.checked_div(cs.cfg.tick_period).unwrap_or(0);
                        let tick_cost = ticks * cs.cfg.tick_cost;
                        let end = cs.charge_compute(now, n, class);
                        (queued, ticks, tick_cost, end)
                    };
                    let lat = &mut st.lat[pid.index()];
                    lat.add(LatComp::OnCpu, n);
                    lat.add(LatComp::TickIrq, tick_cost);
                    lat.add(LatComp::RunqWait, queued[OccClass::User as usize]);
                    lat.add(LatComp::SoftirqWait, queued[OccClass::Softirq as usize]);
                    lat.add(LatComp::DaemonWait, queued[OccClass::Daemon as usize]);
                    lat.add(LatComp::IrqWait, queued[OccClass::Irq as usize]);
                    if st.telem_on() && ticks > 0 {
                        let id = st.em.timer_ticks;
                        st.telem.add(id, ticks);
                    }
                    if st.trace_on() {
                        if ticks > 0 {
                            st.trace_push(
                                pid,
                                TraceEventKind::TimerTicks {
                                    n: ticks,
                                    cost_ns: tick_cost,
                                },
                            );
                        }
                        st.trace_push(
                            pid,
                            TraceEventKind::Block {
                                comp: LatComp::OnCpu,
                            },
                        );
                    }
                    st.wake_at(end, pid, WakeReason::Timer);
                    st.proc_blocked_on[pid.index()] = "delay";
                    break;
                }
                Effect::Sleep(n) => {
                    st.lat[pid.index()].add(LatComp::Sleep, n);
                    if st.trace_on() {
                        st.trace_push(
                            pid,
                            TraceEventKind::Block {
                                comp: LatComp::Sleep,
                            },
                        );
                    }
                    st.wake_at(now + n, pid, WakeReason::Timer);
                    st.proc_blocked_on[pid.index()] = "sleep";
                    break;
                }
                Effect::Acquire(lock, mode) => {
                    if st.locks[lock.index()].try_acquire(pid, mode) {
                        if st.locks[lock.index()].kind == LockKind::Spin {
                            st.cores[core.index()].irq_depth += 1;
                        }
                        if mode == LockMode::Exclusive {
                            st.locks[lock.index()].held_since = now;
                        }
                        if st.trace_on() {
                            let label = st.locks[lock.index()].label;
                            st.trace_push(
                                pid,
                                TraceEventKind::LockAcquired {
                                    lock,
                                    label,
                                    wait_ns: 0,
                                    contended: false,
                                },
                            );
                        }
                        wake = WakeReason::LockGranted(lock);
                        continue;
                    }
                    st.locks[lock.index()].enqueue(pid, mode, now);
                    st.blocked_since[pid.index()] = now;
                    if st.trace_on() {
                        let label = st.locks[lock.index()].label;
                        st.trace_push(pid, TraceEventKind::LockContend { lock, label });
                        st.trace_push(
                            pid,
                            TraceEventKind::Block {
                                comp: LatComp::LockWait,
                            },
                        );
                    }
                    st.proc_blocked_on[pid.index()] = st.locks[lock.index()].label;
                    break;
                }
                Effect::Ipi {
                    targets,
                    handler_ns,
                } => {
                    if targets.is_empty() {
                        wake = WakeReason::IpiDone;
                        continue;
                    }
                    st.blocked_since[pid.index()] = now;
                    if st.trace_on() {
                        st.trace_push(
                            pid,
                            TraceEventKind::IpiBroadcast {
                                targets: targets.len() as u32,
                                handler_ns,
                            },
                        );
                        st.trace_push(
                            pid,
                            TraceEventKind::Block {
                                comp: LatComp::IpiWait,
                            },
                        );
                    }
                    let token = st.alloc_ipi(pid, targets.len() as u32);
                    for target in targets {
                        debug_assert_ne!(target, core, "IPI to own core");
                        let tc = &mut st.cores[target.index()];
                        if tc.irq_depth > 0 {
                            tc.deferred_acks.push((token, handler_ns));
                        } else {
                            let done = tc.steal(now, handler_ns);
                            let t = done + st.params.ipi_latency;
                            st.schedule(t, EventKind::IpiAck(token));
                        }
                    }
                    st.proc_blocked_on[pid.index()] = "ipi";
                    break;
                }
                Effect::Io { dev, bytes } => {
                    let jitter_max = st.devices[dev.index()].model.jitter;
                    let jitter = if jitter_max == 0 {
                        0
                    } else {
                        st.rng.gen_range(0..jitter_max)
                    };
                    let done = st.devices[dev.index()].submit(now, bytes, jitter);
                    st.lat[pid.index()].add(LatComp::IoWait, done - now);
                    if st.trace_on() {
                        st.trace_push(
                            pid,
                            TraceEventKind::IoSubmit {
                                bytes,
                                dur_ns: done - now,
                            },
                        );
                        st.trace_push(
                            pid,
                            TraceEventKind::Block {
                                comp: LatComp::IoWait,
                            },
                        );
                    }
                    st.wake_at(done, pid, WakeReason::IoDone);
                    st.proc_blocked_on[pid.index()] = "io";
                    break;
                }
                Effect::Barrier(b) => {
                    let full = {
                        let bs = &mut st.barriers[b.0 as usize];
                        bs.waiting.push(pid);
                        bs.waiting.len() as u32 == bs.size
                    };
                    st.blocked_since[pid.index()] = now;
                    if st.trace_on() {
                        st.trace_push(
                            pid,
                            TraceEventKind::Block {
                                comp: LatComp::BarrierWait,
                            },
                        );
                    }
                    if full {
                        // All participants release at the same instant:
                        // one coalesced wake train.
                        let release = now + st.params.barrier_release;
                        let mut waiters = std::mem::take(&mut st.barriers[b.0 as usize].waiting);
                        let (train_id, mut train) = st.take_train();
                        train.extend(waiters.iter().map(|&w| (w, WakeReason::BarrierReleased)));
                        st.commit_train(release, train_id, train);
                        waiters.clear();
                        st.barriers[b.0 as usize].waiting = waiters;
                    }
                    st.proc_blocked_on[pid.index()] = "barrier";
                    break;
                }
                Effect::Wait(q) => {
                    st.queues[q.0 as usize].waiting.push_back(pid);
                    st.blocked_since[pid.index()] = now;
                    if st.trace_on() {
                        st.trace_push(
                            pid,
                            TraceEventKind::Block {
                                comp: LatComp::QueueWait,
                            },
                        );
                    }
                    st.proc_blocked_on[pid.index()] = "queue";
                    break;
                }
                Effect::RcuSync(r) => {
                    let dom = &st.rcu[r.0 as usize];
                    let gp = st.params.rcu_base + st.params.rcu_per_core * dom.n_cores as Ns;
                    let jitter = if st.params.rcu_jitter == 0 {
                        0
                    } else {
                        st.rng.gen_range(0..st.params.rcu_jitter)
                    };
                    st.lat[pid.index()].add(LatComp::RcuWait, gp + jitter);
                    if st.trace_on() {
                        st.trace_push(
                            pid,
                            TraceEventKind::RcuSync {
                                dur_ns: gp + jitter,
                            },
                        );
                        st.trace_push(
                            pid,
                            TraceEventKind::Block {
                                comp: LatComp::RcuWait,
                            },
                        );
                    }
                    st.wake_at(now + gp + jitter, pid, WakeReason::RcuDone);
                    st.proc_blocked_on[pid.index()] = "rcu";
                    break;
                }
                Effect::Done => {
                    st.proc_done[pid.index()] = true;
                    if !st.proc_daemon[pid.index()] {
                        st.live_users -= 1;
                    }
                    break;
                }
            }
        }
        self.procs[pid.index()] = Some(proc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that runs a scripted list of effects.
    struct Scripted {
        effects: Vec<Effect>,
        at: usize,
        wakes: Vec<WakeReason>,
        releases: Vec<(usize, LockId)>, // release lock before issuing effect #i
        finish_time: std::rc::Rc<std::cell::Cell<Ns>>,
    }

    impl Scripted {
        fn new(effects: Vec<Effect>) -> Self {
            Self {
                effects,
                at: 0,
                wakes: Vec::new(),
                releases: Vec::new(),
                finish_time: Default::default(),
            }
        }

        fn with_release(mut self, before: usize, lock: LockId) -> Self {
            self.releases.push((before, lock));
            self
        }

        fn with_finish_probe(mut self, probe: std::rc::Rc<std::cell::Cell<Ns>>) -> Self {
            self.finish_time = probe;
            self
        }
    }

    impl Process<()> for Scripted {
        fn resume(&mut self, ctx: &mut SimCtx<'_, ()>, wake: WakeReason) -> Effect {
            self.wakes.push(wake);
            for &(before, lock) in &self.releases {
                if before == self.at {
                    ctx.release(lock);
                }
            }
            if self.at >= self.effects.len() {
                self.finish_time.set(ctx.now());
                return Effect::Done;
            }
            let e = self.effects[self.at].clone();
            self.at += 1;
            e
        }
    }

    fn engine() -> Engine<()> {
        Engine::new((), EngineParams::default(), 42)
    }

    #[test]
    fn delay_advances_clock() {
        let mut eng = engine();
        let c = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        let probe = std::rc::Rc::new(std::cell::Cell::new(0));
        eng.spawn(
            c,
            Box::new(
                Scripted::new(vec![Effect::Delay(100), Effect::Delay(50)])
                    .with_finish_probe(probe.clone()),
            ),
            0,
        );
        let res = eng.run().unwrap();
        assert_eq!(res.clock, 150);
        assert_eq!(probe.get(), 150);
    }

    #[test]
    fn telemetry_records_self_profile_without_observer_effect() {
        let run = |telem: bool| {
            let mut eng = engine();
            let c = eng.add_core(CoreConfig {
                tick_period: 40,
                tick_cost: 3,
            });
            if telem {
                eng.set_telemetry(ksa_telemetry::TelemetryConfig::enabled());
            }
            eng.spawn(
                c,
                Box::new(Scripted::new(vec![Effect::Delay(100), Effect::Delay(50)])),
                0,
            );
            let res = eng.run().unwrap();
            let reg = eng.take_telemetry();
            (res.clock, res.events, reg)
        };
        let (clock_off, events_off, reg_off) = run(false);
        let (clock_on, events_on, reg_on) = run(true);
        assert_eq!(clock_off, clock_on, "telemetry must not perturb results");
        assert_eq!(events_off, events_on);
        assert!(!reg_off.enabled());
        assert_eq!(reg_off.metrics().len(), 0, "disabled registry stays empty");

        assert_eq!(reg_on.value_of("engine_processes_spawned", &[]), Some(1));
        assert_eq!(
            reg_on.value_of("engine_events_dispatched", &[]),
            Some(events_on),
            "every processed event is counted"
        );
        let scheduled = reg_on.value_of("engine_events_scheduled", &[]).unwrap();
        assert!(scheduled >= events_on, "all dispatched events were pushed");
        // Delay(100)/tick 40 → 2 ticks; Delay(50) → 1 tick.
        assert_eq!(reg_on.value_of("engine_timer_ticks", &[]), Some(3));
        assert!(reg_on.value_of("engine_process_wakes", &[]).unwrap() >= 2);
        assert!(reg_on.samples_taken >= 1, "final flush sampled the rings");
    }

    #[test]
    fn take_telemetry_leaves_a_fresh_enabled_registry() {
        let mut eng = engine();
        let c = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        eng.set_telemetry(ksa_telemetry::TelemetryConfig::enabled());
        eng.spawn(c, Box::new(Scripted::new(vec![Effect::Delay(10)])), 0);
        eng.run().unwrap();
        let first = eng.take_telemetry();
        assert!(first.value_of("engine_events_dispatched", &[]).unwrap() > 0);
        // A second run reuses the fresh registry with the same config.
        eng.spawn(
            c,
            Box::new(Scripted::new(vec![Effect::Delay(10)])),
            eng.now(),
        );
        eng.run().unwrap();
        let second = eng.take_telemetry();
        assert!(second.enabled());
        assert_eq!(second.value_of("engine_processes_spawned", &[]), Some(1));
    }

    #[test]
    fn two_processes_on_one_core_serialize() {
        let mut eng = engine();
        let c = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        let p1 = std::rc::Rc::new(std::cell::Cell::new(0));
        let p2 = std::rc::Rc::new(std::cell::Cell::new(0));
        eng.spawn(
            c,
            Box::new(Scripted::new(vec![Effect::Delay(100)]).with_finish_probe(p1.clone())),
            0,
        );
        eng.spawn(
            c,
            Box::new(Scripted::new(vec![Effect::Delay(100)]).with_finish_probe(p2.clone())),
            0,
        );
        eng.run().unwrap();
        assert_eq!(p1.get(), 100);
        assert_eq!(p2.get(), 200, "second process queues on the core");
    }

    #[test]
    fn sleep_does_not_occupy_core() {
        let mut eng = engine();
        let c = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        let p1 = std::rc::Rc::new(std::cell::Cell::new(0));
        let p2 = std::rc::Rc::new(std::cell::Cell::new(0));
        eng.spawn(
            c,
            Box::new(Scripted::new(vec![Effect::Sleep(100)]).with_finish_probe(p1.clone())),
            0,
        );
        eng.spawn(
            c,
            Box::new(Scripted::new(vec![Effect::Delay(100)]).with_finish_probe(p2.clone())),
            0,
        );
        eng.run().unwrap();
        assert_eq!(p1.get(), 100);
        assert_eq!(p2.get(), 100, "sleeping process leaves the core free");
    }

    #[test]
    fn lock_contention_queues_fifo() {
        let mut eng = engine();
        let c0 = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        let c1 = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        let l = eng.add_lock(LockKind::Spin, "test");
        let p1 = std::rc::Rc::new(std::cell::Cell::new(0));
        let p2 = std::rc::Rc::new(std::cell::Cell::new(0));
        // Holder: acquire, hold for 1000ns, release, done.
        eng.spawn(
            c0,
            Box::new(
                Scripted::new(vec![
                    Effect::Acquire(l, LockMode::Exclusive),
                    Effect::Delay(1000),
                ])
                .with_release(2, l)
                .with_finish_probe(p1.clone()),
            ),
            0,
        );
        // Waiter arrives at t=10.
        eng.spawn(
            c1,
            Box::new(
                Scripted::new(vec![
                    Effect::Acquire(l, LockMode::Exclusive),
                    Effect::Delay(10),
                ])
                .with_release(2, l)
                .with_finish_probe(p2.clone()),
            ),
            10,
        );
        eng.run().unwrap();
        assert_eq!(p1.get(), 1000);
        // Waiter granted at 1000 + spin_handoff, then 10ns work.
        let expected = 1000 + EngineParams::default().spin_handoff + 10;
        assert_eq!(p2.get(), expected);
        let (acq, cont) = eng.lock_stats(l);
        assert_eq!(acq, 2);
        assert_eq!(cont, 1);
    }

    #[test]
    fn ipi_defers_while_spinlock_held() {
        let params = EngineParams::default();
        let mut eng = engine();
        let c0 = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        let c1 = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        let l = eng.add_lock(LockKind::Spin, "irqsection");
        // Target holds a spinlock (irqs off) from t=0 to t=5000.
        eng.spawn(
            c1,
            Box::new(
                Scripted::new(vec![
                    Effect::Acquire(l, LockMode::Exclusive),
                    Effect::Delay(5000),
                ])
                .with_release(2, l),
            ),
            0,
        );
        // Sender broadcasts at t=100 with a 200ns handler.
        let probe = std::rc::Rc::new(std::cell::Cell::new(0));
        eng.spawn(
            c0,
            Box::new(
                Scripted::new(vec![Effect::Ipi {
                    targets: vec![c1],
                    handler_ns: 200,
                }])
                .with_finish_probe(probe.clone()),
            ),
            100,
        );
        eng.run().unwrap();
        // Ack can only happen after the spin section ends at t=5000.
        let expected_min = 5000 + params.ipi_latency + 200;
        assert!(
            probe.get() >= expected_min,
            "ipi completed at {} < {}",
            probe.get(),
            expected_min
        );
    }

    #[test]
    fn ipi_with_no_targets_completes_immediately() {
        let mut eng = engine();
        let c = eng.add_core(CoreConfig::default());
        let probe = std::rc::Rc::new(std::cell::Cell::new(99));
        eng.spawn(
            c,
            Box::new(
                Scripted::new(vec![Effect::Ipi {
                    targets: vec![],
                    handler_ns: 500,
                }])
                .with_finish_probe(probe.clone()),
            ),
            0,
        );
        eng.run().unwrap();
        assert_eq!(probe.get(), 0);
    }

    #[test]
    fn barrier_releases_all_participants_together() {
        let mut eng = engine();
        let mut probes = Vec::new();
        for i in 0..4u64 {
            let c = eng.add_core(CoreConfig {
                tick_period: 0,
                tick_cost: 0,
            });
            let p = std::rc::Rc::new(std::cell::Cell::new(0));
            probes.push(p.clone());
            let b = BarrierId(0);
            // Register barrier lazily below; spawn with staggered arrival.
            eng.spawn(
                c,
                Box::new(
                    Scripted::new(vec![Effect::Delay(i * 100), Effect::Barrier(b)])
                        .with_finish_probe(p),
                ),
                0,
            );
        }
        eng.add_barrier(4);
        eng.run().unwrap();
        let expected = 300 + EngineParams::default().barrier_release;
        for p in probes {
            assert_eq!(p.get(), expected);
        }
    }

    #[test]
    fn wait_and_signal_roundtrip() {
        struct Waiter {
            q: QueueId,
            started: bool,
            probe: std::rc::Rc<std::cell::Cell<Ns>>,
        }
        impl Process<()> for Waiter {
            fn resume(&mut self, ctx: &mut SimCtx<'_, ()>, _wake: WakeReason) -> Effect {
                if !self.started {
                    self.started = true;
                    Effect::Wait(self.q)
                } else {
                    self.probe.set(ctx.now());
                    Effect::Done
                }
            }
        }
        struct Signaler {
            q: QueueId,
            step: u32,
        }
        impl Process<()> for Signaler {
            fn resume(&mut self, ctx: &mut SimCtx<'_, ()>, _wake: WakeReason) -> Effect {
                self.step += 1;
                match self.step {
                    1 => Effect::Sleep(1000),
                    2 => {
                        assert_eq!(ctx.signal(self.q, 4), 1, "one waiter present");
                        Effect::Done
                    }
                    _ => unreachable!(),
                }
            }
        }
        let mut eng = engine();
        let c = eng.add_core(CoreConfig::default());
        let q = eng.add_queue();
        let probe = std::rc::Rc::new(std::cell::Cell::new(0));
        eng.spawn(
            c,
            Box::new(Waiter {
                q,
                started: false,
                probe: probe.clone(),
            }),
            0,
        );
        eng.spawn(c, Box::new(Signaler { q, step: 0 }), 0);
        eng.run().unwrap();
        assert_eq!(probe.get(), 1000 + EngineParams::default().sched_wakeup);
    }

    #[test]
    fn stall_is_reported_with_diagnostics() {
        let mut eng = engine();
        let c = eng.add_core(CoreConfig::default());
        let q = eng.add_queue();
        eng.spawn(c, Box::new(Scripted::new(vec![Effect::Wait(q)])), 0);
        let err = eng.run().unwrap_err();
        match err {
            SimError::Stalled {
                blocked, livelock, ..
            } => {
                assert!(!livelock, "drained heap is a deadlock, not a livelock");
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].2, "queue");
            }
        }
    }

    #[test]
    fn event_budget_converts_livelock_into_structured_error() {
        // A user process that never finishes: sleeps forever in a loop.
        struct Spinner;
        impl Process<()> for Spinner {
            fn resume(&mut self, _ctx: &mut SimCtx<'_, ()>, _w: WakeReason) -> Effect {
                Effect::Sleep(1_000)
            }
            fn label(&self) -> &'static str {
                "spinner"
            }
        }
        let mut eng = engine();
        let c = eng.add_core(CoreConfig::default());
        eng.spawn(c, Box::new(Spinner), 0);
        eng.set_event_budget(100);
        let err = eng.run().unwrap_err();
        match err {
            SimError::Stalled {
                events,
                livelock,
                blocked,
                ..
            } => {
                assert!(livelock, "watchdog fires as a livelock");
                assert_eq!(events, 100);
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].1, "spinner");
            }
        }
    }

    #[test]
    fn event_budget_does_not_trip_healthy_runs() {
        let mut eng = engine();
        let c = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        eng.spawn(
            c,
            Box::new(Scripted::new(vec![Effect::Delay(100), Effect::Delay(50)])),
            0,
        );
        eng.set_event_budget(1_000);
        let res = eng.run().unwrap();
        assert_eq!(res.clock, 150);
    }

    #[test]
    fn budget_exhausted_run_can_resume_with_larger_budget() {
        let mut eng = engine();
        let c = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        eng.spawn(
            c,
            Box::new(Scripted::new(vec![
                Effect::Delay(10),
                Effect::Delay(10),
                Effect::Delay(10),
                Effect::Delay(10),
            ])),
            0,
        );
        eng.set_event_budget(2);
        let err = eng.run().unwrap_err();
        assert!(matches!(err, SimError::Stalled { livelock: true, .. }));
        eng.set_event_budget(0);
        let res = eng.run().unwrap();
        assert_eq!(res.clock, 40, "parked event resumes cleanly");
    }

    #[test]
    fn fault_plan_is_reachable_through_ctx() {
        use crate::fault::{FaultSchedule, InjectedFault};

        struct Failer {
            outcomes: std::rc::Rc<std::cell::RefCell<Vec<bool>>>,
        }
        impl Process<()> for Failer {
            fn resume(&mut self, ctx: &mut SimCtx<'_, ()>, _w: WakeReason) -> Effect {
                for _ in 0..3 {
                    let fail = ctx.should_fail(FaultKind::AllocFail, "mm.alloc_pages");
                    self.outcomes.borrow_mut().push(fail);
                }
                let (_world, faults) = ctx.world_and_faults();
                assert_eq!(faults.hits_at(FaultKind::AllocFail, "mm.alloc_pages"), 3);
                Effect::Done
            }
        }
        let mut eng = engine();
        let c = eng.add_core(CoreConfig::default());
        eng.set_fault_plan(FaultPlan::new(9).site(
            FaultKind::AllocFail,
            "mm.alloc_pages",
            FaultSchedule::Nth(2),
        ));
        let outcomes = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        eng.spawn(
            c,
            Box::new(Failer {
                outcomes: outcomes.clone(),
            }),
            0,
        );
        eng.run().unwrap();
        assert_eq!(*outcomes.borrow(), vec![false, true, false]);
        assert_eq!(
            eng.fault_state().injected(),
            &[InjectedFault {
                kind: FaultKind::AllocFail,
                site: "mm.alloc_pages".to_string(),
                hit: 2,
            }]
        );
    }

    #[test]
    fn rcu_sync_scales_with_domain_size() {
        let mut eng = Engine::new(
            (),
            EngineParams {
                rcu_jitter: 0,
                ..EngineParams::default()
            },
            1,
        );
        let c = eng.add_core(CoreConfig::default());
        let small = eng.add_rcu_domain(1);
        let large = eng.add_rcu_domain(64);
        let p_small = std::rc::Rc::new(std::cell::Cell::new(0));
        let p_large = std::rc::Rc::new(std::cell::Cell::new(0));
        eng.spawn(
            c,
            Box::new(
                Scripted::new(vec![Effect::RcuSync(small)]).with_finish_probe(p_small.clone()),
            ),
            0,
        );
        eng.spawn(
            c,
            Box::new(
                Scripted::new(vec![Effect::RcuSync(large)]).with_finish_probe(p_large.clone()),
            ),
            0,
        );
        eng.run().unwrap();
        assert!(p_large.get() > p_small.get());
        let params = EngineParams::default();
        assert_eq!(p_small.get(), params.rcu_base + params.rcu_per_core);
        assert_eq!(p_large.get(), params.rcu_base + 64 * params.rcu_per_core);
    }

    #[test]
    fn io_requests_queue_on_device() {
        let mut eng = engine();
        let c0 = eng.add_core(CoreConfig::default());
        let c1 = eng.add_core(CoreConfig::default());
        let dev = eng.add_device(DeviceModel {
            base: 1000,
            fs_per_byte: 0,
            jitter: 0,
            channels: 1,
        });
        let p1 = std::rc::Rc::new(std::cell::Cell::new(0));
        let p2 = std::rc::Rc::new(std::cell::Cell::new(0));
        eng.spawn(
            c0,
            Box::new(
                Scripted::new(vec![Effect::Io { dev, bytes: 0 }]).with_finish_probe(p1.clone()),
            ),
            0,
        );
        eng.spawn(
            c1,
            Box::new(
                Scripted::new(vec![Effect::Io { dev, bytes: 0 }]).with_finish_probe(p2.clone()),
            ),
            0,
        );
        eng.run().unwrap();
        assert_eq!(p1.get(), 1000);
        assert_eq!(p2.get(), 2000);
    }

    #[test]
    fn records_are_collected_in_order() {
        struct Recorder;
        impl Process<()> for Recorder {
            fn resume(&mut self, ctx: &mut SimCtx<'_, ()>, _w: WakeReason) -> Effect {
                ctx.record(7, 111);
                ctx.record(8, 222);
                Effect::Done
            }
        }
        let mut eng = engine();
        let c = eng.add_core(CoreConfig::default());
        eng.spawn(c, Box::new(Recorder), 5);
        let res = eng.run().unwrap();
        assert_eq!(res.records.len(), 2);
        assert_eq!(res.records[0].key, 7);
        assert_eq!(res.records[0].value, 111);
        assert_eq!(res.records[0].t, 5);
        assert_eq!(res.records[1].key, 8);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        fn run_once(seed: u64) -> Ns {
            let mut eng = Engine::new((), EngineParams::default(), seed);
            let c = eng.add_core(CoreConfig::default());
            let dev = eng.add_device(DeviceModel::nvme_ssd());
            let mut script = Vec::new();
            for _ in 0..20 {
                script.push(Effect::Io { dev, bytes: 4096 });
                script.push(Effect::Delay(500));
            }
            eng.spawn(c, Box::new(Scripted::new(script)), 0);
            eng.run().unwrap().clock
        }
        assert_eq!(run_once(7), run_once(7));
        assert_ne!(
            run_once(7),
            run_once(8),
            "different seeds draw different jitter"
        );
    }

    #[test]
    fn daemon_does_not_keep_engine_alive() {
        struct Daemon;
        impl Process<()> for Daemon {
            fn resume(&mut self, _ctx: &mut SimCtx<'_, ()>, _w: WakeReason) -> Effect {
                Effect::Sleep(1000)
            }
            fn is_daemon(&self) -> bool {
                true
            }
        }
        let mut eng = engine();
        let c = eng.add_core(CoreConfig::default());
        eng.spawn(c, Box::new(Daemon), 0);
        eng.spawn(c, Box::new(Scripted::new(vec![Effect::Delay(10_000)])), 0);
        let res = eng.run().unwrap();
        // Engine stops when the user process finishes, not at the daemon's
        // endless sleeps.
        assert!(
            res.clock >= 10_000 && res.clock < 20_000,
            "clock={}",
            res.clock
        );
    }

    #[test]
    fn lock_wait_durations_are_accounted() {
        let params = EngineParams::default();
        let mut eng = engine();
        let c0 = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        let c1 = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        let l = eng.add_lock(LockKind::Spin, "test");
        eng.spawn(
            c0,
            Box::new(
                Scripted::new(vec![
                    Effect::Acquire(l, LockMode::Exclusive),
                    Effect::Delay(1000),
                ])
                .with_release(2, l),
            ),
            0,
        );
        let waiter = eng.spawn(
            c1,
            Box::new(
                Scripted::new(vec![
                    Effect::Acquire(l, LockMode::Exclusive),
                    Effect::Delay(10),
                ])
                .with_release(2, l),
            ),
            10,
        );
        eng.run().unwrap();
        // Waiter enqueued at t=10, granted wake at t=1000+handoff.
        let expected = 1000 + params.spin_handoff - 10;
        let (total, max) = eng.lock_wait_stats(l);
        assert_eq!(total, expected);
        assert_eq!(max, expected);
        assert_eq!(eng.lat_breakdown(waiter).get(LatComp::LockWait), expected);
        assert_eq!(eng.proc_lock_waits(waiter), &[("test", expected)]);
        let (_, _, contended, total_w, _, hist) = eng.all_lock_wait_stats().next().unwrap();
        assert_eq!(contended, 1);
        assert_eq!(total_w, expected);
        assert_eq!(hist.iter().sum::<u64>(), 1, "one contended acquisition");
    }

    #[test]
    fn breakdown_components_tile_elapsed_time() {
        // Two processes on one core: P2's breakdown must decompose its
        // entire lifetime (runq wait behind P1 + own work + sleep).
        let mut eng = engine();
        let c = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        let p1 = eng.spawn(c, Box::new(Scripted::new(vec![Effect::Delay(100)])), 0);
        let probe = std::rc::Rc::new(std::cell::Cell::new(0));
        let p2 = eng.spawn(
            c,
            Box::new(
                Scripted::new(vec![Effect::Delay(50), Effect::Sleep(30)])
                    .with_finish_probe(probe.clone()),
            ),
            0,
        );
        eng.run().unwrap();
        assert_eq!(probe.get(), 180);
        let b1 = eng.lat_breakdown(p1);
        assert_eq!(b1.get(LatComp::OnCpu), 100);
        assert_eq!(b1.total(), 100);
        let b2 = eng.lat_breakdown(p2);
        assert_eq!(b2.get(LatComp::RunqWait), 100, "queued behind p1");
        assert_eq!(b2.get(LatComp::OnCpu), 50);
        assert_eq!(b2.get(LatComp::Sleep), 30);
        assert_eq!(b2.total(), 180, "components sum to lifetime");
    }

    #[test]
    fn tracing_records_events_without_changing_results() {
        fn run_once(trace: bool) -> (Ns, usize, u64) {
            let mut eng = Engine::new((), EngineParams::default(), 7);
            if trace {
                eng.set_trace(TraceConfig::enabled());
            }
            let c = eng.add_core(CoreConfig::default());
            let dev = eng.add_device(DeviceModel::nvme_ssd());
            let mut script = Vec::new();
            for _ in 0..10 {
                script.push(Effect::Io { dev, bytes: 4096 });
                script.push(Effect::Delay(500));
            }
            eng.spawn(c, Box::new(Scripted::new(script)), 0);
            let clock = eng.run().unwrap().clock;
            let log = eng.take_trace();
            (clock, log.total_events(), log.total_dropped())
        }
        let (t_off, ev_off, _) = run_once(false);
        let (t_on, ev_on, dropped) = run_once(true);
        assert_eq!(t_off, t_on, "tracing must not perturb the simulation");
        assert_eq!(ev_off, 0, "disabled tracing records nothing");
        assert!(ev_on > 0, "enabled tracing records events");
        assert_eq!(dropped, 0);
    }

    #[test]
    fn trace_ring_overflow_keeps_newest() {
        let mut eng = engine();
        eng.set_trace(TraceConfig::with_capacity(8));
        let c = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        let script = vec![Effect::Delay(10); 100];
        eng.spawn(c, Box::new(Scripted::new(script)), 0);
        eng.run().unwrap();
        let log = eng.take_trace();
        assert_eq!(log.rings[0].len(), 8);
        assert!(log.total_dropped() > 0);
        let last = log.merged().last().unwrap().t;
        assert_eq!(last, 1000, "newest events survive overflow");
    }

    #[test]
    fn run_until_stops_at_deadline_and_resumes() {
        let mut eng = engine();
        let c = eng.add_core(CoreConfig {
            tick_period: 0,
            tick_cost: 0,
        });
        eng.spawn(
            c,
            Box::new(Scripted::new(vec![
                Effect::Delay(1000),
                Effect::Delay(1000),
                Effect::Delay(1000),
            ])),
            0,
        );
        eng.run_until(1500).unwrap();
        assert!(eng.now() <= 1500);
        let res = eng.run().unwrap();
        assert_eq!(res.clock, 3000);
    }
}
