//! Deterministic fault injection.
//!
//! Syzkaller only reaches deep kernel error paths because its executor can
//! force failures (alloc failures, I/O errors) at chosen call sites; this
//! module is the simulation's analogue. A [`FaultPlan`] names *sites*
//! (static strings like `"mm.alloc_pages"`) and gives each a
//! [`FaultSchedule`]; a [`FaultState`] owns the plan plus per-site hit
//! counters and answers the single question handlers ask:
//! [`FaultState::should_fail`].
//!
//! Every decision is a pure function of `(plan seed, kind, site, hit
//! number)` — no wall clock, no global RNG — so identical seed + identical
//! plan replays bit-identically, and disjoint sites never interact. That
//! determinism is what lets the fuzzer *mutate schedules* the way it
//! mutates programs.

use crate::fxmap::FxHashMap;
use crate::time::Ns;

/// The class of failure a site can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// Memory allocation failure (buddy or slab) → ENOMEM paths.
    AllocFail,
    /// Block-device / journal I/O error → EIO paths.
    IoError,
    /// Lock acquisition timeout → EAGAIN/backoff paths.
    LockTimeout,
}

impl FaultKind {
    /// All kinds, in a stable order.
    pub const ALL: [FaultKind; 3] = [
        FaultKind::AllocFail,
        FaultKind::IoError,
        FaultKind::LockTimeout,
    ];

    /// Dense index of this kind (its position in [`FaultKind::ALL`]),
    /// used to address per-kind lookup tables without hashing the kind.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short stable name (used in serialized plans and reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::AllocFail => "alloc_fail",
            FaultKind::IoError => "io_error",
            FaultKind::LockTimeout => "lock_timeout",
        }
    }
}

/// When a site fails, as a function of its hit counter (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Never fail (the default).
    Never,
    /// Fail exactly on the `n`-th hit (1-based), once.
    Nth(u64),
    /// Fail on every `n`-th hit (n ≥ 1).
    EveryNth(u64),
    /// Fail each hit independently with probability `milli`/1000,
    /// derived deterministically from the plan seed and hit number.
    ProbMilli(u32),
}

impl FaultSchedule {
    fn decides(self, seed: u64, kind: FaultKind, site: &str, hit: u64) -> bool {
        match self {
            FaultSchedule::Never => false,
            FaultSchedule::Nth(n) => hit == n.max(1),
            FaultSchedule::EveryNth(n) => hit.is_multiple_of(n.max(1)),
            FaultSchedule::ProbMilli(milli) => {
                decision_hash(seed, kind, site, hit) % 1000 < milli as u64
            }
        }
    }
}

/// SplitMix64-style mixer over (seed, kind, site, hit).
fn decision_hash(seed: u64, kind: FaultKind, site: &str, hit: u64) -> u64 {
    let mut h = seed ^ 0x9e3779b97f4a7c15u64.wrapping_mul(kind as u64 + 1);
    for b in site.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^= hit.wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// A seeded assignment of schedules to fault sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for probabilistic schedules.
    pub seed: u64,
    /// Per-kind default schedule for sites without an explicit entry.
    defaults: [(FaultKind, FaultScheduleSlot); 3],
    /// Site-specific schedules, one map per kind so the hot lookup is
    /// a single `&str` probe — no `(kind, String)` key allocation.
    sites: [FxHashMap<String, FaultSchedule>; 3],
}

/// Internal: a schedule slot that defaults to `Never`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FaultScheduleSlot(FaultSchedule);

impl Default for FaultScheduleSlot {
    fn default() -> Self {
        FaultScheduleSlot(FaultSchedule::Never)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing (every engine starts with this).
    pub fn none() -> Self {
        Self::new(0)
    }

    /// An empty plan with a decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            defaults: [
                (FaultKind::AllocFail, FaultScheduleSlot::default()),
                (FaultKind::IoError, FaultScheduleSlot::default()),
                (FaultKind::LockTimeout, FaultScheduleSlot::default()),
            ],
            sites: Default::default(),
        }
    }

    /// True when no schedule can ever fire.
    pub fn is_empty(&self) -> bool {
        self.defaults
            .iter()
            .all(|(_, s)| s.0 == FaultSchedule::Never)
            && self
                .sites
                .iter()
                .all(|m| m.values().all(|s| *s == FaultSchedule::Never))
    }

    /// Sets the schedule for one site (builder style).
    pub fn site(mut self, kind: FaultKind, site: impl Into<String>, sched: FaultSchedule) -> Self {
        self.set_site(kind, site, sched);
        self
    }

    /// Sets the schedule for one site.
    pub fn set_site(&mut self, kind: FaultKind, site: impl Into<String>, sched: FaultSchedule) {
        self.sites[kind.index()].insert(site.into(), sched);
    }

    /// Sets the default schedule for every site of `kind` (builder style).
    pub fn kind_default(mut self, kind: FaultKind, sched: FaultSchedule) -> Self {
        for slot in &mut self.defaults {
            if slot.0 == kind {
                slot.1 = FaultScheduleSlot(sched);
            }
        }
        self
    }

    /// The schedule governing `(kind, site)`.
    pub fn schedule_for(&self, kind: FaultKind, site: &str) -> FaultSchedule {
        if let Some(s) = self.sites[kind.index()].get(site) {
            return *s;
        }
        self.defaults
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| s.0)
            .unwrap_or(FaultSchedule::Never)
    }

    /// Iterates the explicitly scheduled sites.
    pub fn scheduled_sites(&self) -> impl Iterator<Item = (FaultKind, &str, FaultSchedule)> {
        FaultKind::ALL.into_iter().flat_map(move |k| {
            self.sites[k.index()]
                .iter()
                .map(move |(s, sched)| (k, s.as_str(), *sched))
        })
    }
}

/// One injected fault, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The failure class.
    pub kind: FaultKind,
    /// The site that failed.
    pub site: String,
    /// Which hit (1-based) of that site failed.
    pub hit: u64,
}

/// Runtime fault-decision state: the plan plus per-site hit counters.
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    plan: FaultPlan,
    /// Per-kind hit counters. The steady-state path (a re-hit of a
    /// known site) is one Fx probe with a `&str` key; the site string
    /// is only allocated on a site's first-ever hit.
    hits: [FxHashMap<String, u64>; 3],
    injected: Vec<InjectedFault>,
}

impl FaultState {
    /// Builds state for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            hits: Default::default(),
            injected: Vec::new(),
        }
    }

    /// Replaces the plan and clears all counters.
    pub fn reset(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.hits.iter_mut().for_each(|m| m.clear());
        self.injected.clear();
    }

    /// Clears counters and the injection log but keeps the plan, so its
    /// schedules replay from hit 1 (a fresh "VM boot" under the same
    /// plan).
    pub fn rearm(&mut self) {
        self.hits.iter_mut().for_each(|m| m.clear());
        self.injected.clear();
    }

    /// The governing plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Registers one hit of `(kind, site)` and decides whether this hit
    /// fails. Handlers call this at each failable point; the counter
    /// advances regardless of the verdict so `Nth` schedules address
    /// individual dynamic occurrences.
    pub fn should_fail(&mut self, kind: FaultKind, site: &str) -> bool {
        let map = &mut self.hits[kind.index()];
        let hit = match map.get_mut(site) {
            Some(h) => {
                *h += 1;
                *h
            }
            None => {
                map.insert(site.to_string(), 1);
                1
            }
        };
        let sched = self.plan.schedule_for(kind, site);
        let fail = sched.decides(self.plan.seed, kind, site, hit);
        if fail {
            self.injected.push(InjectedFault {
                kind,
                site: site.to_string(),
                hit,
            });
        }
        fail
    }

    /// Hit counters, in arbitrary order: `(kind, site, hits)`.
    pub fn hit_counts(&self) -> impl Iterator<Item = (FaultKind, &str, u64)> {
        FaultKind::ALL.into_iter().flat_map(move |k| {
            self.hits[k.index()]
                .iter()
                .map(move |(s, h)| (k, s.as_str(), *h))
        })
    }

    /// Total hits registered for `(kind, site)`.
    pub fn hits_at(&self, kind: FaultKind, site: &str) -> u64 {
        self.hits[kind.index()].get(site).copied().unwrap_or(0)
    }

    /// Every fault injected so far, in injection order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.injected
    }
}

// ---------------------------------------------------------------------------
// Node/link fault domain (the cluster fabric's analogue of `FaultPlan`)
// ---------------------------------------------------------------------------

/// Half-open window `[start, end)` in cluster virtual time. An `end` of
/// zero means "until the end of the run".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NsWindow {
    /// First nanosecond the window covers.
    pub start: Ns,
    /// First nanosecond past the window (0 = forever).
    pub end: Ns,
}

impl NsWindow {
    /// True when `t` falls inside the window.
    pub fn contains(&self, t: Ns) -> bool {
        t >= self.start && (self.end == 0 || t < self.end)
    }
}

/// A scheduled node crash: the node dies at `at` and reboots after
/// `down_for` nanoseconds (0 = never comes back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCrash {
    /// The crashing node.
    pub node: usize,
    /// Crash instant in cluster virtual time.
    pub at: Ns,
    /// Outage length (0 = permanent).
    pub down_for: Ns,
}

impl NodeCrash {
    /// True when the node is down at `t`.
    pub fn covers(&self, t: Ns) -> bool {
        t >= self.at && (self.down_for == 0 || t < self.at + self.down_for)
    }

    /// The reboot instant, if the node ever returns.
    pub fn reboot_at(&self) -> Option<Ns> {
        (self.down_for > 0).then(|| self.at + self.down_for)
    }
}

/// A network partition: for the duration of `window`, nodes inside
/// `island` cannot exchange messages with nodes outside it (links within
/// each side stay up).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkPartition {
    /// When the partition holds.
    pub window: NsWindow,
    /// The isolated node group.
    pub island: Vec<usize>,
}

/// A degraded-link window: messages crossing between `island` and the
/// rest (or every link when `island` is empty) pay `mult_milli`/1000
/// times the healthy latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkDegrade {
    /// When the degradation holds.
    pub window: NsWindow,
    /// The slow side (empty = all links).
    pub island: Vec<usize>,
    /// Latency multiplier in milli-units (1000 = unchanged).
    pub mult_milli: u32,
}

/// SplitMix64-style mixer over `(seed, stream, a, b, n)` — the node-level
/// analogue of [`decision_hash`]. `stream` namespaces independent decision
/// families (message drops, ack drops, backoff jitter) so they never
/// correlate.
pub fn node_decision_hash(seed: u64, stream: &str, a: u64, b: u64, n: u64) -> u64 {
    let mut h = seed ^ 0x9e3779b97f4a7c15;
    for byte in stream.bytes() {
        h = (h ^ byte as u64).wrapping_mul(0x100000001b3);
    }
    h ^= a.wrapping_mul(0xff51afd7ed558ccd);
    h ^= b.rotate_left(32).wrapping_mul(0xc4ceb9fe1a85ec53);
    h ^= n.wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// A seeded, bit-identically replayable schedule of node and link faults
/// across a cluster: crash/reboot windows per node, partition and
/// degraded-link windows between node groups, and a probabilistic
/// per-message link-drop rate. Every query is a pure function of the
/// plan and its arguments — no wall clock, no global RNG — mirroring the
/// per-site [`FaultPlan`] discipline at the fabric level.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeFaultPlan {
    /// Seed for probabilistic decisions (drops, jitter).
    pub seed: u64,
    /// Scheduled node crashes.
    pub crashes: Vec<NodeCrash>,
    /// Partition windows.
    pub partitions: Vec<LinkPartition>,
    /// Degraded-link windows.
    pub degrades: Vec<LinkDegrade>,
    /// Per-message drop probability in milli-units (0 = lossless,
    /// applied to every non-partitioned link).
    pub drop_milli: u32,
}

impl NodeFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan with a decision seed.
    pub fn new(seed: u64) -> Self {
        NodeFaultPlan {
            seed,
            ..Self::default()
        }
    }

    /// True when no fault can ever fire.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.partitions.is_empty()
            && self.degrades.is_empty()
            && self.drop_milli == 0
    }

    /// Schedules a crash (builder style).
    pub fn crash(mut self, node: usize, at: Ns, down_for: Ns) -> Self {
        self.crashes.push(NodeCrash { node, at, down_for });
        self
    }

    /// Schedules a partition window isolating `island` (builder style).
    pub fn partition(mut self, start: Ns, end: Ns, island: Vec<usize>) -> Self {
        self.partitions.push(LinkPartition {
            window: NsWindow { start, end },
            island,
        });
        self
    }

    /// Schedules a degraded-link window (builder style).
    pub fn degrade(mut self, start: Ns, end: Ns, island: Vec<usize>, mult_milli: u32) -> Self {
        self.degrades.push(LinkDegrade {
            window: NsWindow { start, end },
            island,
            mult_milli,
        });
        self
    }

    /// Sets the probabilistic per-message drop rate (builder style).
    /// Rates are clamped below certainty so retransmission always
    /// terminates.
    pub fn drop_prob_milli(mut self, milli: u32) -> Self {
        self.drop_milli = milli.min(900);
        self
    }

    /// True when `node` is down at `t`.
    pub fn node_down(&self, node: usize, t: Ns) -> bool {
        self.crashes.iter().any(|c| c.node == node && c.covers(t))
    }

    /// The first crash of `node` striking within `[from, until)`, or an
    /// outage already covering `from`. Returns the effective crash
    /// instant clamped to `from`.
    pub fn crash_in(&self, node: usize, from: Ns, until: Ns) -> Option<Ns> {
        self.crashes
            .iter()
            .filter(|c| c.node == node)
            .filter_map(|c| {
                if c.covers(from) {
                    Some(from)
                } else if c.at >= from && c.at < until {
                    Some(c.at)
                } else {
                    None
                }
            })
            .min()
    }

    /// True when a message between `a` and `b` cannot cross at `t`
    /// (some active partition has exactly one endpoint in its island).
    pub fn partitioned(&self, a: usize, b: usize, t: Ns) -> bool {
        self.partitions
            .iter()
            .any(|p| p.window.contains(t) && (p.island.contains(&a) != p.island.contains(&b)))
    }

    /// The instant the last partition severing `a`–`b` active at `t`
    /// heals (`None` when a covering window never ends).
    pub fn heal_at(&self, a: usize, b: usize, t: Ns) -> Option<Ns> {
        let mut heal = None;
        for p in &self.partitions {
            if p.window.contains(t) && (p.island.contains(&a) != p.island.contains(&b)) {
                if p.window.end == 0 {
                    return None;
                }
                heal = Some(heal.map_or(p.window.end, |h: Ns| h.max(p.window.end)));
            }
        }
        heal
    }

    /// Latency multiplier (milli-units) for a message between `a` and
    /// `b` at `t`: the product of every active degradation crossing the
    /// link. 1000 = healthy.
    pub fn latency_mult_milli(&self, a: usize, b: usize, t: Ns) -> u64 {
        let mut mult = 1000u64;
        for d in &self.degrades {
            let crosses = d.island.is_empty() || (d.island.contains(&a) != d.island.contains(&b));
            if d.window.contains(t) && crosses {
                mult = mult * d.mult_milli.max(1) as u64 / 1000;
            }
        }
        mult.max(1)
    }

    /// Deterministic per-message drop verdict for transmission `seq` of
    /// a message from `a` to `b` (`stream` separates data from acks).
    pub fn message_dropped(&self, stream: &str, a: usize, b: usize, seq: u64) -> bool {
        if self.drop_milli == 0 {
            return false;
        }
        node_decision_hash(self.seed, stream, a as u64, b as u64, seq) % 1000
            < self.drop_milli as u64
    }

    /// A deterministic word for jitter draws, namespaced by `stream`.
    pub fn jitter_word(&self, stream: &str, a: u64, b: u64, n: u64) -> u64 {
        node_decision_hash(self.seed, stream, a, b, n)
    }
}

/// Capped exponential backoff with deterministic jitter — the shared
/// retransmit policy of the cluster fabric and the tailbench client.
/// The delay for attempt `k` (1-based) is `min(cap, base << (k-1))`
/// minus a jitter of up to `jitter_milli`/1000 of that value, so the
/// schedule **never exceeds `cap_ns`** and desynchronizes retriers
/// without a wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First-attempt delay.
    pub base_ns: Ns,
    /// Hard ceiling on any delay.
    pub cap_ns: Ns,
    /// Jitter span in milli-units of the capped delay (0..=1000).
    pub jitter_milli: u32,
}

impl Backoff {
    /// A policy with the given base, cap and jitter span.
    pub const fn new(base_ns: Ns, cap_ns: Ns, jitter_milli: u32) -> Self {
        Backoff {
            base_ns,
            cap_ns,
            jitter_milli,
        }
    }

    /// The delay before attempt `attempt` (1-based). `jitter_word` is a
    /// caller-supplied deterministic random word (e.g.
    /// [`NodeFaultPlan::jitter_word`] or a seeded RNG draw).
    pub fn delay(&self, attempt: u32, jitter_word: u64) -> Ns {
        let base = self.base_ns.max(1) as u128;
        let shift = attempt.saturating_sub(1).min(63);
        let raw = (base << shift).min(self.cap_ns.max(1) as u128) as u64;
        let span = raw as u128 * self.jitter_milli.min(1000) as u128 / 1000;
        let jitter = if span == 0 {
            0
        } else {
            jitter_word % (span as u64 + 1)
        };
        raw - jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fails() {
        let mut st = FaultState::new(FaultPlan::none());
        for _ in 0..1000 {
            assert!(!st.should_fail(FaultKind::AllocFail, "mm.alloc_pages"));
        }
        assert!(st.injected().is_empty());
        assert_eq!(st.hits_at(FaultKind::AllocFail, "mm.alloc_pages"), 1000);
    }

    #[test]
    fn nth_fails_exactly_once() {
        let plan = FaultPlan::new(1).site(FaultKind::IoError, "fileio.read", FaultSchedule::Nth(3));
        let mut st = FaultState::new(plan);
        let verdicts: Vec<bool> = (0..6)
            .map(|_| st.should_fail(FaultKind::IoError, "fileio.read"))
            .collect();
        assert_eq!(verdicts, [false, false, true, false, false, false]);
        assert_eq!(st.injected().len(), 1);
        assert_eq!(st.injected()[0].hit, 3);
    }

    #[test]
    fn every_nth_recurs() {
        let plan =
            FaultPlan::new(1).site(FaultKind::AllocFail, "mm.slab", FaultSchedule::EveryNth(2));
        let mut st = FaultState::new(plan);
        let verdicts: Vec<bool> = (0..6)
            .map(|_| st.should_fail(FaultKind::AllocFail, "mm.slab"))
            .collect();
        assert_eq!(verdicts, [false, true, false, true, false, true]);
    }

    #[test]
    fn prob_is_deterministic_and_seed_sensitive() {
        let run = |seed| {
            let plan = FaultPlan::new(seed).site(
                FaultKind::AllocFail,
                "mm.alloc_pages",
                FaultSchedule::ProbMilli(300),
            );
            let mut st = FaultState::new(plan);
            (0..200)
                .map(|_| st.should_fail(FaultKind::AllocFail, "mm.alloc_pages"))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7), "same seed, same verdicts");
        assert_ne!(run(7), run(8), "different seed, different verdicts");
        let fails = run(7).iter().filter(|&&f| f).count();
        assert!((20..120).contains(&fails), "p=0.3 over 200: {fails}");
    }

    #[test]
    fn kind_default_covers_unnamed_sites() {
        let plan = FaultPlan::new(2).kind_default(FaultKind::IoError, FaultSchedule::EveryNth(1));
        let mut st = FaultState::new(plan);
        assert!(st.should_fail(FaultKind::IoError, "anywhere"));
        assert!(!st.should_fail(FaultKind::AllocFail, "anywhere"));
    }

    #[test]
    fn sites_are_independent() {
        let plan = FaultPlan::new(3)
            .site(FaultKind::AllocFail, "a", FaultSchedule::Nth(1))
            .site(FaultKind::AllocFail, "b", FaultSchedule::Nth(2));
        let mut st = FaultState::new(plan.clone());
        assert!(st.should_fail(FaultKind::AllocFail, "a"));
        assert!(!st.should_fail(FaultKind::AllocFail, "b"));
        assert!(st.should_fail(FaultKind::AllocFail, "b"));

        // Interleaving hits of a *different* site does not shift b's
        // decisions: counters are per-site.
        let mut st2 = FaultState::new(plan);
        for _ in 0..50 {
            st2.should_fail(FaultKind::AllocFail, "a");
        }
        assert!(!st2.should_fail(FaultKind::AllocFail, "b"));
        assert!(st2.should_fail(FaultKind::AllocFail, "b"));
    }

    #[test]
    fn kinds_do_not_collide_on_the_same_site_name() {
        let plan = FaultPlan::new(4).site(FaultKind::AllocFail, "x", FaultSchedule::Nth(1));
        let mut st = FaultState::new(plan);
        assert!(!st.should_fail(FaultKind::IoError, "x"));
        assert!(st.should_fail(FaultKind::AllocFail, "x"));
    }

    #[test]
    fn node_plan_crash_windows() {
        let plan = NodeFaultPlan::new(1).crash(3, 1_000, 500).crash(5, 100, 0);
        assert!(!plan.node_down(3, 999));
        assert!(plan.node_down(3, 1_000));
        assert!(plan.node_down(3, 1_499));
        assert!(!plan.node_down(3, 1_500), "node 3 reboots");
        assert!(plan.node_down(5, u64::MAX / 2), "down_for=0 is permanent");
        assert_eq!(plan.crash_in(3, 0, 900), None);
        assert_eq!(plan.crash_in(3, 0, 2_000), Some(1_000));
        assert_eq!(plan.crash_in(3, 1_200, 2_000), Some(1_200), "clamped");
        assert!(!plan.node_down(0, 1_100), "other nodes unaffected");
    }

    #[test]
    fn node_plan_partitions_cut_only_crossing_links() {
        let plan = NodeFaultPlan::new(2).partition(100, 200, vec![0, 1]);
        assert!(plan.partitioned(0, 2, 150));
        assert!(plan.partitioned(2, 1, 150), "symmetric");
        assert!(!plan.partitioned(0, 1, 150), "intra-island link up");
        assert!(!plan.partitioned(2, 3, 150), "outside link up");
        assert!(!plan.partitioned(0, 2, 99));
        assert!(!plan.partitioned(0, 2, 200), "half-open window");
        assert_eq!(plan.heal_at(0, 2, 150), Some(200));
        assert_eq!(plan.heal_at(0, 1, 150), None, "link not severed");
    }

    #[test]
    fn node_plan_degrades_multiply() {
        let plan =
            NodeFaultPlan::new(3)
                .degrade(0, 100, vec![], 2000)
                .degrade(50, 100, vec![1], 3000);
        assert_eq!(plan.latency_mult_milli(0, 2, 10), 2000);
        assert_eq!(plan.latency_mult_milli(0, 1, 60), 6000, "stacked");
        assert_eq!(plan.latency_mult_milli(0, 2, 60), 2000, "non-crossing");
        assert_eq!(plan.latency_mult_milli(0, 1, 100), 1000, "expired");
    }

    #[test]
    fn node_plan_drops_are_deterministic_and_stream_separated() {
        let plan = NodeFaultPlan::new(7).drop_prob_milli(400);
        let data: Vec<bool> = (0..200)
            .map(|s| plan.message_dropped("data", 1, 0, s))
            .collect();
        let again: Vec<bool> = (0..200)
            .map(|s| plan.message_dropped("data", 1, 0, s))
            .collect();
        let acks: Vec<bool> = (0..200)
            .map(|s| plan.message_dropped("ack", 1, 0, s))
            .collect();
        assert_eq!(data, again, "bit-identical replay");
        assert_ne!(data, acks, "ack stream independent");
        let drops = data.iter().filter(|&&d| d).count();
        assert!((40..160).contains(&drops), "p=0.4 over 200: {drops}");
        assert!(
            !NodeFaultPlan::new(7).message_dropped("data", 1, 0, 5),
            "lossless by default"
        );
    }

    #[test]
    fn backoff_is_capped_exponential_with_bounded_jitter() {
        let b = Backoff::new(1_000, 8_000, 250);
        // Jitter word 0 = no jitter: pure capped doubling.
        assert_eq!(b.delay(1, 0), 1_000);
        assert_eq!(b.delay(2, 0), 2_000);
        assert_eq!(b.delay(4, 0), 8_000);
        assert_eq!(b.delay(30, 0), 8_000, "stays at cap");
        for attempt in 1..64 {
            for word in [1u64, 999, u64::MAX] {
                let d = b.delay(attempt, word);
                assert!(d <= b.cap_ns, "attempt {attempt}: {d} exceeds cap");
                let raw = (1_000u64 << (attempt - 1).min(63)).min(8_000);
                assert!(d >= raw - raw / 4, "jitter wider than 250 milli");
            }
        }
        // Degenerate policies stay defined.
        assert!(Backoff::new(0, 0, 1000).delay(10, u64::MAX) <= 1);
    }
}
