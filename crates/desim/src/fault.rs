//! Deterministic fault injection.
//!
//! Syzkaller only reaches deep kernel error paths because its executor can
//! force failures (alloc failures, I/O errors) at chosen call sites; this
//! module is the simulation's analogue. A [`FaultPlan`] names *sites*
//! (static strings like `"mm.alloc_pages"`) and gives each a
//! [`FaultSchedule`]; a [`FaultState`] owns the plan plus per-site hit
//! counters and answers the single question handlers ask:
//! [`FaultState::should_fail`].
//!
//! Every decision is a pure function of `(plan seed, kind, site, hit
//! number)` — no wall clock, no global RNG — so identical seed + identical
//! plan replays bit-identically, and disjoint sites never interact. That
//! determinism is what lets the fuzzer *mutate schedules* the way it
//! mutates programs.

use std::collections::HashMap;

/// The class of failure a site can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// Memory allocation failure (buddy or slab) → ENOMEM paths.
    AllocFail,
    /// Block-device / journal I/O error → EIO paths.
    IoError,
    /// Lock acquisition timeout → EAGAIN/backoff paths.
    LockTimeout,
}

impl FaultKind {
    /// All kinds, in a stable order.
    pub const ALL: [FaultKind; 3] = [
        FaultKind::AllocFail,
        FaultKind::IoError,
        FaultKind::LockTimeout,
    ];

    /// Short stable name (used in serialized plans and reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::AllocFail => "alloc_fail",
            FaultKind::IoError => "io_error",
            FaultKind::LockTimeout => "lock_timeout",
        }
    }
}

/// When a site fails, as a function of its hit counter (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Never fail (the default).
    Never,
    /// Fail exactly on the `n`-th hit (1-based), once.
    Nth(u64),
    /// Fail on every `n`-th hit (n ≥ 1).
    EveryNth(u64),
    /// Fail each hit independently with probability `milli`/1000,
    /// derived deterministically from the plan seed and hit number.
    ProbMilli(u32),
}

impl FaultSchedule {
    fn decides(self, seed: u64, kind: FaultKind, site: &str, hit: u64) -> bool {
        match self {
            FaultSchedule::Never => false,
            FaultSchedule::Nth(n) => hit == n.max(1),
            FaultSchedule::EveryNth(n) => hit.is_multiple_of(n.max(1)),
            FaultSchedule::ProbMilli(milli) => {
                decision_hash(seed, kind, site, hit) % 1000 < milli as u64
            }
        }
    }
}

/// SplitMix64-style mixer over (seed, kind, site, hit).
fn decision_hash(seed: u64, kind: FaultKind, site: &str, hit: u64) -> u64 {
    let mut h = seed ^ 0x9e3779b97f4a7c15u64.wrapping_mul(kind as u64 + 1);
    for b in site.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^= hit.wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// A seeded assignment of schedules to fault sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for probabilistic schedules.
    pub seed: u64,
    /// Per-kind default schedule for sites without an explicit entry.
    defaults: [(FaultKind, FaultScheduleSlot); 3],
    /// Site-specific schedules.
    sites: HashMap<(FaultKind, String), FaultSchedule>,
}

/// Internal: a schedule slot that defaults to `Never`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FaultScheduleSlot(FaultSchedule);

impl Default for FaultScheduleSlot {
    fn default() -> Self {
        FaultScheduleSlot(FaultSchedule::Never)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing (every engine starts with this).
    pub fn none() -> Self {
        Self::new(0)
    }

    /// An empty plan with a decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            defaults: [
                (FaultKind::AllocFail, FaultScheduleSlot::default()),
                (FaultKind::IoError, FaultScheduleSlot::default()),
                (FaultKind::LockTimeout, FaultScheduleSlot::default()),
            ],
            sites: HashMap::new(),
        }
    }

    /// True when no schedule can ever fire.
    pub fn is_empty(&self) -> bool {
        self.defaults
            .iter()
            .all(|(_, s)| s.0 == FaultSchedule::Never)
            && self.sites.values().all(|s| *s == FaultSchedule::Never)
    }

    /// Sets the schedule for one site (builder style).
    pub fn site(mut self, kind: FaultKind, site: impl Into<String>, sched: FaultSchedule) -> Self {
        self.set_site(kind, site, sched);
        self
    }

    /// Sets the schedule for one site.
    pub fn set_site(&mut self, kind: FaultKind, site: impl Into<String>, sched: FaultSchedule) {
        self.sites.insert((kind, site.into()), sched);
    }

    /// Sets the default schedule for every site of `kind` (builder style).
    pub fn kind_default(mut self, kind: FaultKind, sched: FaultSchedule) -> Self {
        for slot in &mut self.defaults {
            if slot.0 == kind {
                slot.1 = FaultScheduleSlot(sched);
            }
        }
        self
    }

    /// The schedule governing `(kind, site)`.
    pub fn schedule_for(&self, kind: FaultKind, site: &str) -> FaultSchedule {
        if let Some(s) = self.sites.get(&(kind, site.to_string())) {
            return *s;
        }
        self.defaults
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| s.0)
            .unwrap_or(FaultSchedule::Never)
    }

    /// Iterates the explicitly scheduled sites.
    pub fn scheduled_sites(&self) -> impl Iterator<Item = (FaultKind, &str, FaultSchedule)> {
        self.sites
            .iter()
            .map(|((k, s), sched)| (*k, s.as_str(), *sched))
    }
}

/// One injected fault, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The failure class.
    pub kind: FaultKind,
    /// The site that failed.
    pub site: String,
    /// Which hit (1-based) of that site failed.
    pub hit: u64,
}

/// Runtime fault-decision state: the plan plus per-site hit counters.
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    plan: FaultPlan,
    hits: HashMap<(FaultKind, String), u64>,
    injected: Vec<InjectedFault>,
}

impl FaultState {
    /// Builds state for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            hits: HashMap::new(),
            injected: Vec::new(),
        }
    }

    /// Replaces the plan and clears all counters.
    pub fn reset(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.hits.clear();
        self.injected.clear();
    }

    /// Clears counters and the injection log but keeps the plan, so its
    /// schedules replay from hit 1 (a fresh "VM boot" under the same
    /// plan).
    pub fn rearm(&mut self) {
        self.hits.clear();
        self.injected.clear();
    }

    /// The governing plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Registers one hit of `(kind, site)` and decides whether this hit
    /// fails. Handlers call this at each failable point; the counter
    /// advances regardless of the verdict so `Nth` schedules address
    /// individual dynamic occurrences.
    pub fn should_fail(&mut self, kind: FaultKind, site: &str) -> bool {
        let hit = self
            .hits
            .entry((kind, site.to_string()))
            .and_modify(|h| *h += 1)
            .or_insert(1);
        let hit = *hit;
        let sched = self.plan.schedule_for(kind, site);
        let fail = sched.decides(self.plan.seed, kind, site, hit);
        if fail {
            self.injected.push(InjectedFault {
                kind,
                site: site.to_string(),
                hit,
            });
        }
        fail
    }

    /// Hit counters, in arbitrary order: `(kind, site, hits)`.
    pub fn hit_counts(&self) -> impl Iterator<Item = (FaultKind, &str, u64)> {
        self.hits.iter().map(|((k, s), h)| (*k, s.as_str(), *h))
    }

    /// Total hits registered for `(kind, site)`.
    pub fn hits_at(&self, kind: FaultKind, site: &str) -> u64 {
        self.hits
            .get(&(kind, site.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Every fault injected so far, in injection order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fails() {
        let mut st = FaultState::new(FaultPlan::none());
        for _ in 0..1000 {
            assert!(!st.should_fail(FaultKind::AllocFail, "mm.alloc_pages"));
        }
        assert!(st.injected().is_empty());
        assert_eq!(st.hits_at(FaultKind::AllocFail, "mm.alloc_pages"), 1000);
    }

    #[test]
    fn nth_fails_exactly_once() {
        let plan = FaultPlan::new(1).site(FaultKind::IoError, "fileio.read", FaultSchedule::Nth(3));
        let mut st = FaultState::new(plan);
        let verdicts: Vec<bool> = (0..6)
            .map(|_| st.should_fail(FaultKind::IoError, "fileio.read"))
            .collect();
        assert_eq!(verdicts, [false, false, true, false, false, false]);
        assert_eq!(st.injected().len(), 1);
        assert_eq!(st.injected()[0].hit, 3);
    }

    #[test]
    fn every_nth_recurs() {
        let plan =
            FaultPlan::new(1).site(FaultKind::AllocFail, "mm.slab", FaultSchedule::EveryNth(2));
        let mut st = FaultState::new(plan);
        let verdicts: Vec<bool> = (0..6)
            .map(|_| st.should_fail(FaultKind::AllocFail, "mm.slab"))
            .collect();
        assert_eq!(verdicts, [false, true, false, true, false, true]);
    }

    #[test]
    fn prob_is_deterministic_and_seed_sensitive() {
        let run = |seed| {
            let plan = FaultPlan::new(seed).site(
                FaultKind::AllocFail,
                "mm.alloc_pages",
                FaultSchedule::ProbMilli(300),
            );
            let mut st = FaultState::new(plan);
            (0..200)
                .map(|_| st.should_fail(FaultKind::AllocFail, "mm.alloc_pages"))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7), "same seed, same verdicts");
        assert_ne!(run(7), run(8), "different seed, different verdicts");
        let fails = run(7).iter().filter(|&&f| f).count();
        assert!((20..120).contains(&fails), "p=0.3 over 200: {fails}");
    }

    #[test]
    fn kind_default_covers_unnamed_sites() {
        let plan = FaultPlan::new(2).kind_default(FaultKind::IoError, FaultSchedule::EveryNth(1));
        let mut st = FaultState::new(plan);
        assert!(st.should_fail(FaultKind::IoError, "anywhere"));
        assert!(!st.should_fail(FaultKind::AllocFail, "anywhere"));
    }

    #[test]
    fn sites_are_independent() {
        let plan = FaultPlan::new(3)
            .site(FaultKind::AllocFail, "a", FaultSchedule::Nth(1))
            .site(FaultKind::AllocFail, "b", FaultSchedule::Nth(2));
        let mut st = FaultState::new(plan.clone());
        assert!(st.should_fail(FaultKind::AllocFail, "a"));
        assert!(!st.should_fail(FaultKind::AllocFail, "b"));
        assert!(st.should_fail(FaultKind::AllocFail, "b"));

        // Interleaving hits of a *different* site does not shift b's
        // decisions: counters are per-site.
        let mut st2 = FaultState::new(plan);
        for _ in 0..50 {
            st2.should_fail(FaultKind::AllocFail, "a");
        }
        assert!(!st2.should_fail(FaultKind::AllocFail, "b"));
        assert!(st2.should_fail(FaultKind::AllocFail, "b"));
    }

    #[test]
    fn kinds_do_not_collide_on_the_same_site_name() {
        let plan = FaultPlan::new(4).site(FaultKind::AllocFail, "x", FaultSchedule::Nth(1));
        let mut st = FaultState::new(plan);
        assert!(!st.should_fail(FaultKind::IoError, "x"));
        assert!(st.should_fail(FaultKind::AllocFail, "x"));
    }
}
