//! Deterministic kernel tracing: per-core bounded event rings and
//! per-process latency-component accounting.
//!
//! This is the simulation's ftrace/lockstat/perf analogue. Two layers:
//!
//! * **Trace rings** ([`TraceRing`], one per core) hold typed
//!   [`TraceEvent`]s — scheduler wakeups/blocks, lock contention and
//!   grants *with wait durations*, RCU grace periods, IPI broadcasts,
//!   I/O submissions, timer-tick overhead, fault injections, and
//!   kernel-layer marks (syscall enter/exit, VM exits, softirq
//!   entry/exit). Rings are bounded: overflow drops the **oldest**
//!   event and bumps a drop counter, never panicking. Tracing is off by
//!   default ([`TraceConfig::disabled`]) and recording is purely
//!   observational — it draws nothing from the engine RNG and schedules
//!   no events, so enabling it cannot change any simulated timestamp
//!   (the zero-observer-effect property test pins this).
//! * **Latency accounting** ([`LatBreakdown`], always on) attributes
//!   every simulated nanosecond a process spends between two resume
//!   points to exactly one [`LatComp`] component: on-CPU work, timer
//!   ticks, run-queue wait split by who occupied the core (other user
//!   work, softirq polling, housekeeping daemons, stolen IPI-handler
//!   time), lock wait, I/O wait, IPI wait, RCU wait, sleeps, barriers
//!   and wait queues. Components tile the timeline with no gaps, so for
//!   any interval bracketed by resume points the component deltas sum
//!   **exactly** to the elapsed virtual time — the invariant the
//!   per-syscall attribution layer is built on.

use crate::cpu::CoreId;
use crate::fault::FaultKind;
use crate::lock::LockId;
use crate::process::Pid;
use crate::time::Ns;

/// What kind of work a process contributes to a core's occupancy, and
/// therefore how *other* processes' queueing behind it is attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProcKind {
    /// Application / workload process (the default).
    #[default]
    User,
    /// Softirq-context work (the NAPI poller): interference the paper's
    /// networking rows attribute to the shared stack.
    Softirq,
    /// Housekeeping daemons (flusher, kswapd, load balancer, vmstat).
    Daemon,
}

/// Latency components. Every nanosecond a process spends blocked or
/// computing is attributed to exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum LatComp {
    /// Productive compute charged to the core (includes kernel CPU work
    /// and, until the kernel layer subtracts them, VM-exit delays).
    OnCpu = 0,
    /// Timer-interrupt overhead amortized over compute.
    TickIrq,
    /// Core-occupancy wait behind other user-class work.
    RunqWait,
    /// Core-occupancy wait behind softirq-class work (NAPI polling).
    SoftirqWait,
    /// Core-occupancy wait behind housekeeping daemons.
    DaemonWait,
    /// Core-occupancy wait behind stolen IPI-handler time.
    IrqWait,
    /// Blocked acquiring a lock (enqueue → grant, handoff included).
    LockWait,
    /// Blocked on device I/O (queueing + service + jitter).
    IoWait,
    /// Blocked broadcasting an IPI until all targets acknowledged.
    IpiWait,
    /// Blocked in an RCU grace period.
    RcuWait,
    /// Voluntary sleep (timers, think time).
    Sleep,
    /// Blocked at a barrier.
    BarrierWait,
    /// Blocked on a wait queue until signalled.
    QueueWait,
}

impl LatComp {
    /// Number of components.
    pub const COUNT: usize = 13;

    /// All components, in index order.
    pub const ALL: [LatComp; Self::COUNT] = [
        LatComp::OnCpu,
        LatComp::TickIrq,
        LatComp::RunqWait,
        LatComp::SoftirqWait,
        LatComp::DaemonWait,
        LatComp::IrqWait,
        LatComp::LockWait,
        LatComp::IoWait,
        LatComp::IpiWait,
        LatComp::RcuWait,
        LatComp::Sleep,
        LatComp::BarrierWait,
        LatComp::QueueWait,
    ];

    /// Short stable name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            LatComp::OnCpu => "on_cpu",
            LatComp::TickIrq => "tick_irq",
            LatComp::RunqWait => "runq_wait",
            LatComp::SoftirqWait => "softirq_wait",
            LatComp::DaemonWait => "daemon_wait",
            LatComp::IrqWait => "irq_wait",
            LatComp::LockWait => "lock_wait",
            LatComp::IoWait => "io_wait",
            LatComp::IpiWait => "ipi_wait",
            LatComp::RcuWait => "rcu_wait",
            LatComp::Sleep => "sleep",
            LatComp::BarrierWait => "barrier_wait",
            LatComp::QueueWait => "queue_wait",
        }
    }
}

/// Per-process cumulative latency components, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatBreakdown {
    comps: [Ns; LatComp::COUNT],
}

impl LatBreakdown {
    /// Adds `ns` to one component.
    #[inline]
    pub fn add(&mut self, comp: LatComp, ns: Ns) {
        self.comps[comp as usize] += ns;
    }

    /// One component's cumulative value.
    #[inline]
    pub fn get(&self, comp: LatComp) -> Ns {
        self.comps[comp as usize]
    }

    /// Sum of all components.
    pub fn total(&self) -> Ns {
        self.comps.iter().sum()
    }

    /// Component-wise `self - earlier` (an interval's attribution from
    /// two snapshots). Panics in debug builds if `earlier` is not a
    /// prefix of `self`.
    pub fn since(&self, earlier: &LatBreakdown) -> LatBreakdown {
        let mut out = LatBreakdown::default();
        for i in 0..LatComp::COUNT {
            debug_assert!(self.comps[i] >= earlier.comps[i], "snapshot order");
            out.comps[i] = self.comps[i] - earlier.comps[i];
        }
        out
    }

    /// Iterates `(component, ns)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LatComp, Ns)> + '_ {
        LatComp::ALL
            .iter()
            .map(move |&c| (c, self.comps[c as usize]))
    }
}

/// A consistent snapshot of one process's latency accounting, taken at a
/// resume point (see [`crate::SimCtx::lat_snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct LatSnapshot {
    /// Cumulative component values.
    pub comps: LatBreakdown,
    /// Cumulative lock wait per lock label, in first-contended order.
    pub lock_waits: Vec<(&'static str, Ns)>,
}

impl LatSnapshot {
    /// Per-label lock wait accumulated between `earlier` and `self`.
    pub fn lock_waits_since(&self, earlier: &LatSnapshot) -> Vec<(&'static str, Ns)> {
        let mut out = Vec::new();
        self.for_each_lock_wait_since(earlier, |label, ns| out.push((label, ns)));
        out
    }

    /// Visits each positive per-label lock-wait delta between `earlier`
    /// and `self` without allocating (the once-per-simulated-syscall
    /// attribution path).
    #[inline]
    pub fn for_each_lock_wait_since(
        &self,
        earlier: &LatSnapshot,
        mut f: impl FnMut(&'static str, Ns),
    ) {
        for &(label, ns) in &self.lock_waits {
            let before = earlier
                .lock_waits
                .iter()
                .find(|&&(l, _)| l == label)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            if ns - before > 0 {
                f(label, ns - before);
            }
        }
    }
}

/// A typed trace event. Times are absolute virtual nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub t: Ns,
    /// The process the event concerns.
    pub pid: Pid,
    /// The core the process is bound to (ring index).
    pub core: CoreId,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The event vocabulary — the simulation's tracepoint set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The process was resumed (sched_wakeup analogue). `reason` is a
    /// stable short tag of the [`crate::WakeReason`].
    Wake {
        /// Why it was resumed ("start", "timer", "lock", ...).
        reason: &'static str,
    },
    /// The process blocked on an effect (sched_switch analogue).
    Block {
        /// The component its wait will be attributed to.
        comp: LatComp,
    },
    /// The process queued on a busy lock.
    LockContend {
        /// The contended lock.
        lock: LockId,
        /// Its label.
        label: &'static str,
    },
    /// A lock was granted (immediately or after queueing).
    LockAcquired {
        /// The granted lock.
        lock: LockId,
        /// Its label.
        label: &'static str,
        /// Enqueue → grant duration (0 for uncontended grabs).
        wait_ns: Ns,
        /// Whether the acquisition had to queue.
        contended: bool,
    },
    /// An exclusively-held lock was released.
    LockReleased {
        /// The released lock.
        lock: LockId,
        /// Its label.
        label: &'static str,
        /// Grant → release duration.
        held_ns: Ns,
    },
    /// An RCU grace-period wait started; `dur_ns` is its full length.
    RcuSync {
        /// Grace-period duration.
        dur_ns: Ns,
    },
    /// An IPI broadcast was issued.
    IpiBroadcast {
        /// Number of target cores.
        targets: u32,
        /// Handler cost charged to each target.
        handler_ns: Ns,
    },
    /// An I/O request was submitted; `dur_ns` is queue + service.
    IoSubmit {
        /// Request size.
        bytes: u64,
        /// Submission → completion duration.
        dur_ns: Ns,
    },
    /// A compute charge crossed timer ticks.
    TimerTicks {
        /// Ticks crossed.
        n: u64,
        /// Total tick overhead added.
        cost_ns: Ns,
    },
    /// The fault plan injected a failure at a site.
    FaultInjected {
        /// Fault class.
        kind: FaultKind,
        /// Site name.
        site: String,
    },
    /// Kernel-layer mark: syscall entry/exit (emitted by the executor).
    Syscall {
        /// Syscall number.
        no: u16,
        /// True on entry, false on exit.
        enter: bool,
    },
    /// Kernel-layer mark: a VM exit of the named class.
    VmExit {
        /// Exit-class tag ("io_kick", "apic", ...).
        kind: &'static str,
        /// Exit cost.
        cost_ns: Ns,
    },
    /// Generic labelled mark with two payload words.
    Mark {
        /// Mark label.
        label: &'static str,
        /// First payload word.
        a: u64,
        /// Second payload word.
        b: u64,
    },
}

impl TraceEventKind {
    /// Stable short name for exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Wake { .. } => "wake",
            TraceEventKind::Block { .. } => "block",
            TraceEventKind::LockContend { .. } => "lock_contend",
            TraceEventKind::LockAcquired { .. } => "lock_acquired",
            TraceEventKind::LockReleased { .. } => "lock_released",
            TraceEventKind::RcuSync { .. } => "rcu_sync",
            TraceEventKind::IpiBroadcast { .. } => "ipi_broadcast",
            TraceEventKind::IoSubmit { .. } => "io_submit",
            TraceEventKind::TimerTicks { .. } => "timer_ticks",
            TraceEventKind::FaultInjected { .. } => "fault_injected",
            TraceEventKind::Syscall { .. } => "syscall",
            TraceEventKind::VmExit { .. } => "vm_exit",
            TraceEventKind::Mark { .. } => "mark",
        }
    }
}

/// Tracing configuration, installed via [`crate::Engine::set_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When false, no events are recorded anywhere.
    pub enabled: bool,
    /// Capacity of each per-core ring, in events. Overflow drops the
    /// oldest event and bumps the ring's drop counter.
    pub ring_capacity: usize,
}

impl TraceConfig {
    /// Tracing off (the default): strictly no event recording.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ring_capacity: 0,
        }
    }

    /// Tracing on with the default ring capacity (64Ki events/core).
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ring_capacity: 65_536,
        }
    }

    /// Tracing on with an explicit per-core ring capacity.
    pub fn with_capacity(ring_capacity: usize) -> Self {
        Self {
            enabled: true,
            ring_capacity: ring_capacity.max(1),
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// One core's bounded event ring (the ftrace per-CPU buffer analogue).
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    cap: usize,
    buf: std::collections::VecDeque<TraceEvent>,
    /// Events dropped (oldest-first) because the ring was full.
    pub dropped: u64,
}

impl TraceRing {
    /// Creates an empty ring holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            buf: std::collections::VecDeque::with_capacity(cap.min(4096)),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full. Never panics; a
    /// zero-capacity ring drops everything.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.buf.iter()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// The full trace of one run: one ring per core.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Whether tracing was enabled for the run.
    pub enabled: bool,
    /// Per-core rings, indexed by `CoreId::index()`.
    pub rings: Vec<TraceRing>,
}

impl TraceLog {
    /// Total retained events across all rings.
    pub fn total_events(&self) -> usize {
        self.rings.iter().map(|r| r.len()).sum()
    }

    /// Total dropped events across all rings.
    pub fn total_dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped).sum()
    }

    /// All retained events merged in `(time, core)` order.
    pub fn merged(&self) -> Vec<&TraceEvent> {
        let mut all: Vec<&TraceEvent> = self.rings.iter().flat_map(|r| r.events()).collect();
        all.sort_by_key(|e| (e.t, e.core, e.pid));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Ns) -> TraceEvent {
        TraceEvent {
            t,
            pid: Pid(0),
            core: CoreId(0),
            kind: TraceEventKind::Mark {
                label: "m",
                a: t,
                b: 0,
            },
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = TraceRing::new(3);
        for t in 0..5 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped, 2);
        let kept: Vec<Ns> = r.events().map(|e| e.t).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest events evicted first");
    }

    #[test]
    fn zero_capacity_ring_never_panics() {
        let mut r = TraceRing::new(0);
        for t in 0..10 {
            r.push(ev(t));
        }
        assert!(r.is_empty());
        assert_eq!(r.dropped, 10);
    }

    #[test]
    fn breakdown_delta_is_componentwise() {
        let mut a = LatBreakdown::default();
        a.add(LatComp::OnCpu, 100);
        a.add(LatComp::LockWait, 40);
        let mut b = a;
        b.add(LatComp::OnCpu, 50);
        b.add(LatComp::IoWait, 7);
        let d = b.since(&a);
        assert_eq!(d.get(LatComp::OnCpu), 50);
        assert_eq!(d.get(LatComp::IoWait), 7);
        assert_eq!(d.get(LatComp::LockWait), 0);
        assert_eq!(d.total(), 57);
    }

    #[test]
    fn snapshot_lock_wait_delta_filters_zero() {
        let earlier = LatSnapshot {
            comps: LatBreakdown::default(),
            lock_waits: vec![("zone", 10)],
        };
        let later = LatSnapshot {
            comps: LatBreakdown::default(),
            lock_waits: vec![("zone", 10), ("journal", 5)],
        };
        let d = later.lock_waits_since(&earlier);
        assert_eq!(d, vec![("journal", 5)]);
    }
}
