//! Simulated block devices with FIFO request queues.

use crate::time::{Ns, US};

/// Identifier of a simulated device within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevId(pub u32);

impl DevId {
    /// Index into the engine's device table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Service-time model of a device. Completion time for a request of `b`
/// bytes submitted at `t` is
/// `max(t, queue_free) + base + b * per_byte + jitter`,
/// where jitter is uniform in `[0, jitter)` drawn from the engine RNG.
#[derive(Debug, Clone, Copy)]
pub struct DeviceModel {
    /// Fixed per-request latency (command setup, flash page access).
    pub base: Ns,
    /// Transfer time per byte, in femtoseconds (ns per byte × 10⁶) so the
    /// model stays in integer arithmetic. 1 GB/s ⇒ 1_000_000.
    pub fs_per_byte: u64,
    /// Uniform jitter upper bound.
    pub jitter: Ns,
    /// Internal parallelism: independent channels requests spread over
    /// (NVMe queue/flash-die parallelism). Requests pick the channel
    /// that frees up first.
    pub channels: u32,
}

impl DeviceModel {
    /// A fast NVMe-class SSD: ~20µs base, ~2 GB/s per channel, 8
    /// channels, small jitter.
    pub fn nvme_ssd() -> Self {
        Self {
            base: 20 * US,
            fs_per_byte: 500_000,
            jitter: 5 * US,
            channels: 8,
        }
    }

    /// A virtio-backed disk as seen from a guest: same media, but each
    /// request pays extra front-end cost (added by the kernel model as
    /// VM-exit ops, not here). Media-side behaviour is identical.
    pub fn virtio_backing() -> Self {
        Self::nvme_ssd()
    }

    /// Deterministic service time excluding jitter.
    pub fn service(&self, bytes: u64) -> Ns {
        self.base + bytes.saturating_mul(self.fs_per_byte) / 1_000_000
    }
}

/// Dynamic per-device state.
#[derive(Debug)]
pub struct DeviceState {
    /// The service model.
    pub model: DeviceModel,
    /// Per-channel next-free times.
    pub channel_free: Vec<Ns>,
    /// Total requests served.
    pub requests: u64,
    /// Total bytes transferred.
    pub bytes: u64,
}

impl DeviceState {
    /// Creates an idle device.
    pub fn new(model: DeviceModel) -> Self {
        Self {
            channel_free: vec![0; model.channels.max(1) as usize],
            model,
            requests: 0,
            bytes: 0,
        }
    }

    /// Enqueues a request at `now` with pre-drawn `jitter` on the
    /// earliest-free channel; returns its completion time.
    pub fn submit(&mut self, now: Ns, bytes: u64, jitter: Ns) -> Ns {
        let (ci, _) = self
            .channel_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("device has at least one channel");
        let start = self.channel_free[ci].max(now);
        let done = start + self.model.service(bytes) + jitter;
        self.channel_free[ci] = done;
        self.requests += 1;
        self.bytes += bytes;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_is_base_plus_transfer() {
        let m = DeviceModel {
            base: 1000,
            fs_per_byte: 2_000_000, // 2 ns/byte
            jitter: 0,
            channels: 1,
        };
        assert_eq!(m.service(0), 1000);
        assert_eq!(m.service(500), 2000);
    }

    #[test]
    fn requests_queue_fifo_per_channel() {
        let mut d = DeviceState::new(DeviceModel {
            base: 100,
            fs_per_byte: 0,
            jitter: 0,
            channels: 1,
        });
        assert_eq!(d.submit(0, 0, 0), 100);
        assert_eq!(d.submit(0, 0, 0), 200, "second request queues");
        assert_eq!(d.submit(500, 0, 0), 600, "idle device starts immediately");
        assert_eq!(d.requests, 3);
    }

    #[test]
    fn channels_serve_in_parallel() {
        let mut d = DeviceState::new(DeviceModel {
            base: 100,
            fs_per_byte: 0,
            jitter: 0,
            channels: 2,
        });
        assert_eq!(d.submit(0, 0, 0), 100);
        assert_eq!(d.submit(0, 0, 0), 100, "second request uses channel 2");
        assert_eq!(d.submit(0, 0, 0), 200, "third queues on channel 1");
    }

    #[test]
    fn nvme_model_is_sane() {
        let m = DeviceModel::nvme_ssd();
        // A 4 KiB read should be tens of microseconds.
        let t = m.service(4096);
        assert!(t > 20 * US && t < 100 * US, "t = {t}");
    }
}
