//! Program mutation operators.

use ksa_kernel::{Arg, Program, SysNo};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::argspec::{arg_spec, ArgSpec};
use crate::gen::{find_provider, ProgramGenerator};

/// Applies one random mutation to `prog`, returning the mutant.
pub fn mutate(gen: &mut ProgramGenerator, prog: &Program, corpus: &[Program]) -> Program {
    let choice = gen.rng().gen_range(0..4u32);
    match choice {
        0 => insert_call(gen, prog),
        1 => remove_call(gen, prog),
        2 => mutate_arg(gen, prog),
        _ => splice(gen, prog, corpus),
    }
}

/// Inserts a random call at the end (constructors added as needed).
fn insert_call(gen: &mut ProgramGenerator, prog: &Program) -> Program {
    let mut p = prog.clone();
    let no = *SysNo::ALL.choose(gen.rng()).unwrap();
    gen.push_call(&mut p, no);
    p
}

/// Removes one random call, rewiring references.
fn remove_call(gen: &mut ProgramGenerator, prog: &Program) -> Program {
    if prog.is_empty() {
        return gen.random_program();
    }
    let idx = gen.rng().gen_range(0..prog.len());
    let p = prog.remove_call(idx);
    if p.is_empty() {
        gen.random_program()
    } else {
        p
    }
}

/// Re-generates one argument of one call.
fn mutate_arg(gen: &mut ProgramGenerator, prog: &Program) -> Program {
    if prog.is_empty() {
        return gen.random_program();
    }
    let mut p = prog.clone();
    let ci = gen.rng().gen_range(0..p.len());
    let no = p.calls[ci].no;
    let specs = arg_spec(no);
    if specs.is_empty() {
        return p;
    }
    let ai = gen.rng().gen_range(0..specs.len());
    let new = match &specs[ai] {
        ArgSpec::Any => Arg::Const(gen.rng().gen()),
        ArgSpec::Range(lo, hi) => Arg::Const(gen.rng().gen_range(*lo..*hi)),
        ArgSpec::Flags(set) => Arg::Const(*set.choose(gen.rng()).unwrap()),
        ArgSpec::Len(max) => Arg::Const(gen.rng().gen_range(1..*max)),
        ArgSpec::Pages(max) => Arg::Const(gen.rng().gen_range(1..*max)),
        ArgSpec::Path => Arg::Const(gen.rng().gen_range(0..32)),
        ArgSpec::Res(r) => {
            // Re-point at a different provider among calls before ci.
            let prefix = Program {
                calls: p.calls[..ci].to_vec(),
            };
            match find_provider(&prefix, *r, gen.rng()) {
                Some(i) => Arg::Ref(i),
                None => return p, // keep as is
            }
        }
    };
    if ai < p.calls[ci].args.len() {
        p.calls[ci].args[ai] = new;
    }
    p
}

/// Concatenates a random corpus program after this one, shifting its
/// references.
fn splice(gen: &mut ProgramGenerator, prog: &Program, corpus: &[Program]) -> Program {
    let Some(other) = corpus.choose(gen.rng()) else {
        return insert_call(gen, prog);
    };
    let mut p = prog.clone();
    let offset = p.len();
    for call in &other.calls {
        let args = call
            .args
            .iter()
            .map(|a| match a {
                Arg::Ref(i) => Arg::Ref(i + offset),
                c => *c,
            })
            .collect();
        p.calls.push(ksa_kernel::Call::new(call.no, args));
    }
    // Cap program length so splices don't balloon.
    if p.len() > 24 {
        p.calls.truncate(24);
        sanitize(&mut p);
    }
    p
}

/// Drops dangling references after truncation.
fn sanitize(p: &mut Program) {
    let n = p.len();
    for (idx, call) in p.calls.iter_mut().enumerate() {
        for a in &mut call.args {
            if let Arg::Ref(i) = a {
                if *i >= idx || *i >= n {
                    *a = Arg::Const(0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutants_stay_reference_valid() {
        let mut g = ProgramGenerator::new(4);
        let corpus: Vec<Program> = (0..10).map(|_| g.random_program()).collect();
        for seed_prog in &corpus {
            let mut p = seed_prog.clone();
            for _ in 0..50 {
                p = mutate(&mut g, &p, &corpus);
                assert!(p.refs_valid(), "invalid mutant:\n{}", p.render());
                assert!(!p.is_empty());
                assert!(p.len() <= 24 + 8, "runaway growth: {}", p.len());
            }
        }
    }

    #[test]
    fn sanitize_kills_dangling_refs() {
        let mut p = Program {
            calls: vec![
                ksa_kernel::Call::new(SysNo::Open, vec![Arg::Const(1), Arg::Const(1)]),
                ksa_kernel::Call::new(SysNo::Read, vec![Arg::Ref(5), Arg::Const(100)]),
            ],
        };
        sanitize(&mut p);
        assert!(p.refs_valid());
        assert_eq!(p.calls[1].args[0], Arg::Const(0));
    }
}
