//! The coverage-guided corpus construction loop (Syzkaller's triage).

use ksa_json::Value;
use ksa_kernel::coverage::CoverageSet;
use ksa_kernel::prog::Corpus;
use ksa_kernel::Program;

use crate::gen::ProgramGenerator;
use crate::mutate::mutate;
use crate::sandbox::Sandbox;

/// Generation-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Stop after this many corpus programs.
    pub max_programs: usize,
    /// Stop after this many consecutive candidates without new coverage
    /// (coverage saturation).
    pub stall_limit: usize,
    /// Probability (percent) of mutating a corpus program vs generating
    /// a fresh one.
    pub mutate_pct: u32,
    /// Whether to minimize accepted programs.
    pub minimize: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed,
            max_programs: 120,
            stall_limit: 400,
            mutate_pct: 70,
            minimize: true,
        }
    }
}

/// Statistics from a generation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct GenStats {
    /// Candidates executed.
    pub executed: usize,
    /// Candidates accepted into the corpus.
    pub accepted: usize,
    /// Calls removed by minimization.
    pub minimized_away: usize,
    /// Distinct blocks covered by the final corpus.
    pub blocks: usize,
}

/// A corpus plus its provenance.
#[derive(Debug, Clone)]
pub struct GeneratedCorpus {
    /// The programs.
    pub corpus: Corpus,
    /// How it was generated.
    pub config: GenConfig,
    /// Loop statistics.
    pub stats: GenStats,
}

impl GenConfig {
    fn to_value(self) -> Value {
        Value::object([
            ("seed", Value::from(self.seed)),
            ("max_programs", Value::from(self.max_programs)),
            ("stall_limit", Value::from(self.stall_limit)),
            ("mutate_pct", Value::from(self.mutate_pct)),
            ("minimize", Value::from(self.minimize)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, ksa_json::Error> {
        Ok(Self {
            seed: v.get("seed")?.as_u64()?,
            max_programs: v.get("max_programs")?.as_usize()?,
            stall_limit: v.get("stall_limit")?.as_usize()?,
            mutate_pct: v.get("mutate_pct")?.as_u64()? as u32,
            minimize: v.get("minimize")?.as_bool()?,
        })
    }
}

impl GenStats {
    fn to_value(self) -> Value {
        Value::object([
            ("executed", Value::from(self.executed)),
            ("accepted", Value::from(self.accepted)),
            ("minimized_away", Value::from(self.minimized_away)),
            ("blocks", Value::from(self.blocks)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, ksa_json::Error> {
        Ok(Self {
            executed: v.get("executed")?.as_usize()?,
            accepted: v.get("accepted")?.as_usize()?,
            minimized_away: v.get("minimized_away")?.as_usize()?,
            blocks: v.get("blocks")?.as_usize()?,
        })
    }
}

/// Corpus JSON schema version. Version 2 added the networking syscalls
/// (socket..epoll_wait), which extended the `SysNo` index space; corpora
/// written before the version key existed cannot be decoded safely
/// because program call indices are only meaningful per schema.
pub const CORPUS_SCHEMA_VERSION: u64 = 2;

impl GeneratedCorpus {
    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        Value::object([
            ("version", Value::UInt(CORPUS_SCHEMA_VERSION)),
            ("corpus", self.corpus.to_value()),
            ("config", self.config.to_value()),
            ("stats", self.stats.to_value()),
        ])
        .render()
    }

    /// Deserializes from JSON. Rejects corpora from other schema
    /// versions with a structured error instead of misinterpreting (or
    /// panicking on) stale syscall indices.
    pub fn from_json(s: &str) -> Result<Self, ksa_json::Error> {
        let v = ksa_json::parse(s)?;
        match v.opt("version") {
            None => {
                return Err(ksa_json::Error::shape(
                    "corpus has no schema version (pre-networking corpus); \
                     regenerate it with this build",
                ));
            }
            Some(ver) => {
                let ver = ver.as_u64()?;
                if ver != CORPUS_SCHEMA_VERSION {
                    return Err(ksa_json::Error::shape(format!(
                        "corpus schema version {ver} unsupported \
                         (this build reads version {CORPUS_SCHEMA_VERSION}); \
                         regenerate the corpus"
                    )));
                }
            }
        }
        Ok(Self {
            corpus: Corpus::from_value(v.get("corpus")?)?,
            config: GenConfig::from_value(v.get("config")?)?,
            stats: GenStats::from_value(v.get("stats")?)?,
        })
    }
}

/// Runs the coverage-guided loop and returns the corpus.
pub fn generate(cfg: GenConfig) -> GeneratedCorpus {
    let mut gen = ProgramGenerator::new(cfg.seed);
    let mut sandbox = Sandbox::new(cfg.seed ^ 0xabcd);
    let mut global = CoverageSet::new();
    let mut corpus: Vec<Program> = Vec::new();
    let mut stats = GenStats::default();
    let mut stall = 0usize;

    while corpus.len() < cfg.max_programs && stall < cfg.stall_limit {
        use rand::seq::SliceRandom;
        use rand::Rng;
        // Candidate: mutate an existing program or make a fresh one.
        let candidate = if !corpus.is_empty() && gen.rng().gen_range(0u32..100) < cfg.mutate_pct {
            let base = corpus.choose(gen.rng()).unwrap().clone();
            mutate(&mut gen, &base, &corpus)
        } else {
            gen.random_program()
        };

        let cover = sandbox.run_fresh(&candidate);
        stats.executed += 1;
        let new = global.new_blocks(&cover);
        if new == 0 {
            stall += 1;
            continue;
        }
        stall = 0;

        // Minimize: drop calls not needed for the *new* blocks.
        let accepted = if cfg.minimize {
            let (min, removed) = minimize(&mut sandbox, &global, candidate);
            stats.minimized_away += removed;
            min
        } else {
            candidate
        };
        let cover = sandbox.run_fresh(&accepted);
        global.merge(&cover);
        corpus.push(accepted);
        stats.accepted += 1;
    }

    stats.blocks = global.len();
    GeneratedCorpus {
        corpus: Corpus { programs: corpus },
        config: cfg,
        stats,
    }
}

/// Repeatedly tries to remove calls while the program still covers
/// **all** the new blocks it contributed (Syzkaller keeps the full new
/// signal, not just any of it). Returns the minimized program and the
/// number of removed calls.
fn minimize(sandbox: &mut Sandbox, global: &CoverageSet, mut prog: Program) -> (Program, usize) {
    let full = sandbox.run_fresh(&prog);
    let target = global.new_blocks(&full);
    let mut removed = 0;
    let mut idx = prog.len();
    while idx > 0 {
        idx -= 1;
        if prog.len() <= 1 {
            break;
        }
        let candidate = prog.remove_call(idx);
        let cover = sandbox.run_fresh(&candidate);
        if global.new_blocks(&cover) >= target {
            prog = candidate;
            removed += 1;
        }
    }
    (prog, removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> GenConfig {
        GenConfig {
            seed,
            max_programs: 25,
            stall_limit: 150,
            mutate_pct: 70,
            minimize: true,
        }
    }

    #[test]
    fn generation_reaches_coverage() {
        let out = generate(small_cfg(1));
        assert!(out.corpus.len() >= 10, "got {} programs", out.corpus.len());
        assert!(out.stats.blocks >= 25, "only {} blocks", out.stats.blocks);
        assert!(out.stats.executed >= out.stats.accepted);
        for p in &out.corpus.programs {
            assert!(p.refs_valid());
        }
    }

    #[test]
    fn every_accepted_program_contributed_coverage() {
        let out = generate(small_cfg(2));
        // Replaying the corpus in order: each program must add blocks.
        let mut sb = Sandbox::new(99);
        let mut global = CoverageSet::new();
        let mut contributed = 0;
        for p in &out.corpus.programs {
            let c = sb.run_fresh(p);
            if global.new_blocks(&c) > 0 {
                contributed += 1;
            }
            global.merge(&c);
        }
        // State-dependent paths make strict per-program replay slightly
        // lossy, but the overwhelming majority must contribute.
        assert!(
            contributed * 10 >= out.corpus.len() * 8,
            "{contributed}/{} programs contributed",
            out.corpus.len()
        );
    }

    #[test]
    fn minimization_shrinks_programs() {
        let with = generate(small_cfg(3));
        let without = generate(GenConfig {
            minimize: false,
            ..small_cfg(3)
        });
        let avg = |c: &Corpus| c.total_calls() as f64 / c.len().max(1) as f64;
        assert!(
            avg(&with.corpus) <= avg(&without.corpus),
            "minimized {} vs raw {}",
            avg(&with.corpus),
            avg(&without.corpus)
        );
        assert!(with.stats.minimized_away > 0);
    }

    #[test]
    fn json_roundtrip() {
        let out = generate(small_cfg(4));
        let json = out.to_json();
        let back = GeneratedCorpus::from_json(&json).unwrap();
        assert_eq!(back.corpus.programs, out.corpus.programs);
        assert_eq!(back.stats.blocks, out.stats.blocks);
    }

    #[test]
    fn determinism() {
        let a = generate(small_cfg(5));
        let b = generate(small_cfg(5));
        assert_eq!(a.corpus.programs, b.corpus.programs);
    }

    #[test]
    fn json_carries_schema_version() {
        let out = generate(small_cfg(6));
        let v = ksa_json::parse(&out.to_json()).unwrap();
        assert_eq!(
            v.get("version").unwrap().as_u64().unwrap(),
            CORPUS_SCHEMA_VERSION
        );
    }

    #[test]
    fn unversioned_corpus_is_rejected_with_clear_error() {
        // A pre-networking corpus: structurally valid, but no version key.
        let out = generate(small_cfg(7));
        let old = Value::object([
            ("corpus", out.corpus.to_value()),
            ("config", out.config.to_value()),
            ("stats", out.stats.to_value()),
        ])
        .render();
        let err = GeneratedCorpus::from_json(&old).unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("pre-networking") && msg.contains("regenerate"),
            "error should explain the failure: {msg}"
        );
    }

    #[test]
    fn future_corpus_version_is_rejected() {
        let out = generate(small_cfg(8));
        let json = out.to_json().replace(
            &format!("\"version\":{CORPUS_SCHEMA_VERSION}"),
            "\"version\":99",
        );
        let err = GeneratedCorpus::from_json(&json).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("99"), "mentions the offending version: {msg}");
    }
}
