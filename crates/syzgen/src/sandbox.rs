//! The generation sandbox: a one-core kernel instance that executes
//! candidate programs for their coverage signal (no timing needed — the
//! handlers emit coverage when the call is compiled).

use ksa_desim::{
    CoreId, DeviceModel, Engine, EngineParams, FaultKind, FaultPlan, FaultState, InjectedFault,
};
use ksa_kernel::coverage::CoverageSet;
use ksa_kernel::dispatch::dispatch;
use ksa_kernel::instance::{InstanceConfig, KernelInstance, TenancyProfile, VirtProfile};
use ksa_kernel::params::CostModel;
use ksa_kernel::spec::SpecMask;
use ksa_kernel::state::SubsysState;
use ksa_kernel::Program;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A reusable execution sandbox.
pub struct Sandbox {
    // The engine only exists to own lock/device/RCU registrations; the
    // sandbox never runs it.
    _engine: Engine<()>,
    inst: KernelInstance,
    rng: SmallRng,
    faults: FaultState,
}

impl Sandbox {
    /// Creates a sandbox with a fresh one-core native instance.
    pub fn new(seed: u64) -> Self {
        let mut engine: Engine<()> = Engine::new((), EngineParams::default(), seed);
        let disk = engine.add_device(DeviceModel::nvme_ssd());
        let core: CoreId = engine.add_core(Default::default());
        let inst = KernelInstance::build(
            &mut engine,
            0,
            InstanceConfig {
                cores: vec![core],
                mem_mib: 512,
                virt: VirtProfile::native(),
                tenancy: TenancyProfile::none(),
                cost: CostModel::default(),
                disk,
                spec: SpecMask::full(),
            },
        );
        Self {
            _engine: engine,
            inst,
            rng: SmallRng::seed_from_u64(seed),
            faults: FaultState::default(),
        }
    }

    /// Resets the instance's logical state (like restarting the VM
    /// Syzkaller fuzzes in). Fault hit counters restart too, so a plan's
    /// schedule replays identically on the next program.
    pub fn reset(&mut self) {
        let pages = self.inst.mem_pages;
        self.inst.state = SubsysState::init(1, pages);
        self.faults.rearm();
    }

    /// Installs a fault plan for subsequent runs (Syzkaller's
    /// fault-injection mode). `FaultPlan::none()` disables injection.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultState::new(plan);
    }

    /// The currently installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// Faults injected since the last reset (in injection order).
    pub fn injected(&self) -> &[InjectedFault] {
        self.faults.injected()
    }

    /// Fault points the last runs reached: `(kind, site, hit count)` in
    /// arbitrary order. Counters advance even with an empty plan, so a
    /// plain run enumerates every injectable point of a program.
    pub fn fault_hits(&self) -> impl Iterator<Item = (FaultKind, &str, u64)> {
        self.faults.hit_counts()
    }

    /// Executes `prog`, returning the blocks it covered.
    pub fn run(&mut self, prog: &Program) -> CoverageSet {
        let mut cover = CoverageSet::new();
        let mut results: Vec<u64> = Vec::with_capacity(prog.len());
        for call in &prog.calls {
            let args: Vec<u64> = call.args.iter().map(|a| a.resolve(&results)).collect();
            let seq = dispatch(
                &mut self.inst,
                0,
                call.no,
                &args,
                &mut self.rng,
                &mut cover,
                &mut self.faults,
            );
            results.push(seq.result);
        }
        cover
    }

    /// Executes `prog` from a freshly reset state.
    pub fn run_fresh(&mut self, prog: &Program) -> CoverageSet {
        self.reset();
        self.run(prog)
    }

    /// Cumulative coverage the instance has seen.
    pub fn total_coverage(&self) -> &CoverageSet {
        &self.inst.coverage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_kernel::{Arg, Call, SysNo};

    #[test]
    fn run_collects_coverage() {
        let mut sb = Sandbox::new(1);
        let prog = Program {
            calls: vec![
                Call::new(SysNo::Open, vec![Arg::Const(3), Arg::Const(1)]),
                Call::new(SysNo::Write, vec![Arg::Ref(0), Arg::Const(8192)]),
                Call::new(SysNo::Fsync, vec![Arg::Ref(0)]),
            ],
        };
        let cov = sb.run_fresh(&prog);
        assert!(cov.len() >= 3, "covered {} blocks", cov.len());
    }

    #[test]
    fn reset_clears_state_but_not_total_coverage() {
        let mut sb = Sandbox::new(2);
        let prog = Program {
            calls: vec![Call::new(SysNo::Open, vec![Arg::Const(1), Arg::Const(1)])],
        };
        sb.run_fresh(&prog);
        let total_before = sb.total_coverage().len();
        sb.reset();
        assert_eq!(sb.inst.state.slots[0].fds.len(), 0, "state reset");
        assert_eq!(sb.total_coverage().len(), total_before);
    }

    #[test]
    fn different_programs_cover_different_blocks() {
        let mut sb = Sandbox::new(3);
        let io = Program {
            calls: vec![
                Call::new(SysNo::Open, vec![Arg::Const(1), Arg::Const(1)]),
                Call::new(SysNo::Read, vec![Arg::Ref(0), Arg::Const(4096)]),
            ],
        };
        let mm = Program {
            calls: vec![
                Call::new(SysNo::Mmap, vec![Arg::Const(32), Arg::Const(1)]),
                Call::new(SysNo::Munmap, vec![Arg::Ref(0)]),
            ],
        };
        let c_io = sb.run_fresh(&io);
        let c_mm = sb.run_fresh(&mm);
        assert!(c_io.new_blocks(&c_mm) > 0);
        assert!(c_mm.new_blocks(&c_io) > 0);
    }
}
