//! Random program generation with resource threading.

use ksa_kernel::{Arg, Call, Program, SysNo};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::argspec::{arg_spec, constructor, produces, ArgSpec, Resource};

/// Generates random, resource-correct programs.
pub struct ProgramGenerator {
    rng: SmallRng,
    /// Inclusive min and exclusive max program length (before implicit
    /// constructor insertion).
    pub len_range: (usize, usize),
}

impl ProgramGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            len_range: (2, 10),
        }
    }

    /// Direct RNG access (shared with the mutator).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Generates one value for an argument spec, given the indices of
    /// earlier calls producing each resource.
    fn gen_arg(
        &mut self,
        spec: &ArgSpec,
        providers: &dyn Fn(Resource) -> Option<usize>,
    ) -> Option<Arg> {
        Some(match spec {
            ArgSpec::Any => Arg::Const(self.rng.gen()),
            ArgSpec::Range(lo, hi) => Arg::Const(self.rng.gen_range(*lo..*hi)),
            ArgSpec::Flags(set) => Arg::Const(*set.choose(&mut self.rng).unwrap()),
            ArgSpec::Len(max) => Arg::Const(self.rng.gen_range(1..*max)),
            ArgSpec::Pages(max) => Arg::Const(self.rng.gen_range(1..*max)),
            ArgSpec::Path => Arg::Const(self.rng.gen_range(0..32)),
            ArgSpec::Res(r) => Arg::Ref(providers(*r)?),
        })
    }

    /// Appends `no` to `prog`, inserting constructor calls for missing
    /// resources first (recursively).
    pub fn push_call(&mut self, prog: &mut Program, no: SysNo) {
        // Ensure every consumed resource has a provider.
        let needed: Vec<Resource> = arg_spec(no)
            .iter()
            .filter_map(|s| match s {
                ArgSpec::Res(r) => Some(*r),
                _ => None,
            })
            .collect();
        for res in needed {
            if find_provider(prog, res, &mut self.rng).is_none() {
                let ctor = constructor(res);
                self.push_call(prog, ctor);
            }
        }
        let mut args = Vec::new();
        // Borrow dance: capture provider lookups eagerly per spec.
        for spec in arg_spec(no) {
            let arg = match spec {
                ArgSpec::Res(r) => {
                    let p = find_provider(prog, *r, &mut self.rng)
                        .expect("constructor insertion guarantees a provider");
                    Arg::Ref(p)
                }
                other => self
                    .gen_arg(other, &|_| None)
                    .expect("non-resource args always generate"),
            };
            args.push(arg);
        }
        prog.calls.push(Call::new(no, args));
    }

    /// Generates a fresh random program.
    pub fn random_program(&mut self) -> Program {
        let len = self.rng.gen_range(self.len_range.0..self.len_range.1);
        let mut prog = Program::new();
        for _ in 0..len {
            let no = *SysNo::ALL.choose(&mut self.rng).unwrap();
            self.push_call(&mut prog, no);
        }
        debug_assert!(prog.refs_valid());
        prog
    }

    /// Generates a program biased toward one syscall category (used by
    /// the ablation benches to build focused corpora).
    pub fn random_program_in(&mut self, pool: &[SysNo]) -> Program {
        assert!(!pool.is_empty());
        let len = self.rng.gen_range(self.len_range.0..self.len_range.1);
        let mut prog = Program::new();
        for _ in 0..len {
            let no = *pool.choose(&mut self.rng).unwrap();
            self.push_call(&mut prog, no);
        }
        debug_assert!(prog.refs_valid());
        prog
    }
}

/// Finds a random earlier call in `prog` producing `res`.
pub fn find_provider(prog: &Program, res: Resource, rng: &mut SmallRng) -> Option<usize> {
    let candidates: Vec<usize> = prog
        .calls
        .iter()
        .enumerate()
        .filter(|(_, c)| produces(c.no) == Some(res))
        .map(|(i, _)| i)
        .collect();
    candidates.choose(rng).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_programs_are_resource_valid() {
        let mut g = ProgramGenerator::new(1);
        for _ in 0..200 {
            let p = g.random_program();
            assert!(p.refs_valid(), "invalid refs in:\n{}", p.render());
            assert!(!p.is_empty());
            // Every Res arg must point at a producer of the right kind.
            for call in &p.calls {
                for (spec, arg) in arg_spec(call.no).iter().zip(&call.args) {
                    if let (ArgSpec::Res(r), Arg::Ref(i)) = (spec, arg) {
                        assert_eq!(produces(p.calls[*i].no), Some(*r));
                    }
                }
            }
        }
    }

    #[test]
    fn consumers_get_constructors_inserted() {
        let mut g = ProgramGenerator::new(2);
        let mut p = Program::new();
        g.push_call(&mut p, SysNo::Read);
        // The read needs an fd: program must contain a producer first.
        assert!(p.calls.len() >= 2);
        assert!(p.calls.iter().any(|c| produces(c.no) == Some(Resource::Fd)));
        assert_eq!(p.calls.last().unwrap().no, SysNo::Read);
        assert!(p.refs_valid());
    }

    #[test]
    fn category_pools_stay_in_pool_or_constructors() {
        let mut g = ProgramGenerator::new(3);
        let pool = [SysNo::Read, SysNo::Write, SysNo::Fsync];
        let p = g.random_program_in(&pool);
        for c in &p.calls {
            assert!(
                pool.contains(&c.no) || produces(c.no).is_some(),
                "{} is neither pool nor constructor",
                c.no.name()
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_programs() {
        let mut a = ProgramGenerator::new(9);
        let mut b = ProgramGenerator::new(9);
        for _ in 0..20 {
            assert_eq!(a.random_program(), b.random_program());
        }
    }
}
