//! Typed argument descriptions per system call.

use ksa_kernel::SysNo;

/// Resource kinds that calls can produce and consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// A file descriptor (open, pipe2, eventfd).
    Fd,
    /// A mapping handle (mmap, mremap, shmat).
    Vma,
    /// A SysV message-queue id.
    MsgQ,
    /// A SysV semaphore-set id.
    Sem,
    /// A SysV shared-memory id.
    Shm,
    /// A child process id (clone).
    ChildPid,
    /// A socket fd (socket, accept4).
    Sock,
    /// An epoll instance fd (epoll_create1).
    Epoll,
}

/// What one argument position means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgSpec {
    /// Any 64-bit value.
    Any,
    /// A value in `[lo, hi)`.
    Range(u64, u64),
    /// One of a fixed flag set.
    Flags(&'static [u64]),
    /// A buffer length up to `max` bytes.
    Len(u64),
    /// A page count up to `max`.
    Pages(u64),
    /// A path selector (the slot's private namespace).
    Path,
    /// A resource consumed from an earlier call.
    Res(Resource),
}

/// The argument signature of a call.
pub fn arg_spec(no: SysNo) -> &'static [ArgSpec] {
    use ArgSpec::*;
    use Resource::*;
    match no {
        SysNo::Getpid | SysNo::Getuid | SysNo::SchedGetparam | SysNo::Getrusage => &[],
        SysNo::SchedYield => &[],
        SysNo::Clone => &[Flags(&[0, 0x100, 0x8000])],
        SysNo::Wait4 => &[Res(ChildPid)],
        SysNo::Kill => &[Res(ChildPid), Range(0, 32)],
        SysNo::SchedSetaffinity => &[Range(0, 64)],
        SysNo::Setpriority => &[Range(0, 40)],
        SysNo::Nanosleep => &[Range(0, 50_000)],

        SysNo::Mmap => &[Pages(256), Flags(&[0, 1])],
        SysNo::Munmap
        | SysNo::Mprotect
        | SysNo::Mlock
        | SysNo::Munlock
        | SysNo::Msync
        | SysNo::Mincore => &[Res(Vma)],
        SysNo::Madvise => &[Res(Vma), Range(0, 16)],
        SysNo::Brk => &[Range(0, 128)],
        SysNo::Mremap => &[Res(Vma), Pages(256)],

        SysNo::Read | SysNo::Write => &[Res(Fd), Len(65_536)],
        SysNo::Pread | SysNo::Pwrite => &[Res(Fd), Len(65_536)],
        SysNo::Lseek => &[Res(Fd), Range(0, 256)],
        SysNo::Fsync | SysNo::Fdatasync => &[Res(Fd)],
        SysNo::Readv | SysNo::Writev => &[Res(Fd), Len(65_536), Range(1, 8)],
        SysNo::Fallocate => &[Res(Fd), Pages(64)],

        SysNo::Open => &[Path, Flags(&[0, 1])],
        SysNo::Close | SysNo::Fstat => &[Res(Fd)],
        SysNo::Stat | SysNo::Access | SysNo::Readlink => &[Path],
        SysNo::Getdents => &[Res(Fd)],
        SysNo::Mkdir | SysNo::Rmdir | SysNo::Unlink => &[Path],
        SysNo::Rename | SysNo::Symlink => &[Path, Path],
        SysNo::Truncate => &[Path, Pages(64)],

        SysNo::Pipe2 => &[],
        SysNo::FutexWait | SysNo::FutexWake => &[Range(0, 64), Range(0, 16)],
        SysNo::Msgget => &[],
        SysNo::Msgsnd | SysNo::Msgrcv => &[Res(MsgQ), Len(8_192)],
        SysNo::Semget => &[Range(1, 16)],
        SysNo::Semop => &[Res(Sem), Range(1, 8)],
        SysNo::Shmget => &[Pages(128)],
        SysNo::Shmat => &[Res(Shm)],
        SysNo::Shmdt => &[Res(Vma)],
        SysNo::Eventfd => &[],

        SysNo::Chmod => &[Path, Range(0, 0o777)],
        SysNo::Fchmod => &[Res(Fd), Range(0, 0o777)],
        SysNo::Chown => &[Path, Range(0, 8)],
        SysNo::Setuid => &[Range(0, 4)],
        SysNo::Capget => &[],
        SysNo::Capset => &[Any],
        SysNo::Umask => &[Range(0, 0o777)],
        SysNo::Setgroups => &[Range(1, 32)],
        SysNo::Prctl => &[Range(0, 16)],

        // Ports draw from a handful of values so generated bind/connect
        // pairs actually collide and connections form under fuzzing.
        SysNo::Socket => &[Flags(&[0, 1])],
        SysNo::Bind => &[Res(Sock), Range(0, 8)],
        SysNo::Listen => &[Res(Sock), Range(1, 64)],
        SysNo::Accept => &[Res(Sock)],
        SysNo::Connect => &[Res(Sock), Range(0, 8)],
        SysNo::Sendto => &[Res(Sock), Len(65_536), Range(0, 8)],
        SysNo::Recvfrom => &[Res(Sock), Len(65_536)],
        SysNo::ShutdownSock => &[Res(Sock)],
        SysNo::EpollCreate => &[],
        SysNo::EpollWait => &[Res(Epoll), Range(1, 64)],
    }
}

/// The resource a call produces, if any.
pub fn produces(no: SysNo) -> Option<Resource> {
    match no {
        SysNo::Open | SysNo::Pipe2 | SysNo::Eventfd => Some(Resource::Fd),
        SysNo::Mmap | SysNo::Mremap | SysNo::Shmat => Some(Resource::Vma),
        SysNo::Msgget => Some(Resource::MsgQ),
        SysNo::Semget => Some(Resource::Sem),
        SysNo::Shmget => Some(Resource::Shm),
        SysNo::Clone => Some(Resource::ChildPid),
        SysNo::Socket | SysNo::Accept => Some(Resource::Sock),
        SysNo::EpollCreate => Some(Resource::Epoll),
        _ => None,
    }
}

/// Constructor calls for each resource (used when a consumer needs a
/// resource no earlier call provides).
pub fn constructor(res: Resource) -> SysNo {
    match res {
        Resource::Fd => SysNo::Open,
        Resource::Vma => SysNo::Mmap,
        Resource::MsgQ => SysNo::Msgget,
        Resource::Sem => SysNo::Semget,
        Resource::Shm => SysNo::Shmget,
        Resource::ChildPid => SysNo::Clone,
        Resource::Sock => SysNo::Socket,
        Resource::Epoll => SysNo::EpollCreate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_syscall_has_a_spec() {
        for &no in &SysNo::ALL {
            // Must not panic; specs may be empty (no args).
            let spec = arg_spec(no);
            assert!(spec.len() <= 4, "{}: too many args", no.name());
        }
    }

    #[test]
    fn producers_construct_their_own_resource() {
        for res in [
            Resource::Fd,
            Resource::Vma,
            Resource::MsgQ,
            Resource::Sem,
            Resource::Shm,
            Resource::ChildPid,
            Resource::Sock,
            Resource::Epoll,
        ] {
            let c = constructor(res);
            assert_eq!(produces(c), Some(res), "constructor of {res:?}");
        }
    }

    #[test]
    fn consumers_reference_producible_resources() {
        for &no in &SysNo::ALL {
            for spec in arg_spec(no) {
                if let ArgSpec::Res(r) = spec {
                    // The constructor must not itself consume the same
                    // resource (no infinite construction chains).
                    let c = constructor(*r);
                    let self_consuming = arg_spec(c)
                        .iter()
                        .any(|s| matches!(s, ArgSpec::Res(rr) if rr == r));
                    assert!(!self_consuming, "constructor {} consumes {r:?}", c.name());
                }
            }
        }
    }
}
