//! # ksa-syzgen — coverage-guided system-call program generation
//!
//! The paper builds its measurement workload from a Syzkaller corpus:
//! programs (sequences of system calls with concrete arguments) kept only
//! when they reach kernel basic blocks no earlier program reached. This
//! crate reproduces that pipeline against the simulated kernel:
//!
//! 1. **Typed descriptions** ([`argspec`]) say, per syscall, what each
//!    argument means — flags, lengths, path selectors — and which
//!    arguments are *resources* (fds, mappings, IPC ids) that must come
//!    from earlier calls in the same program.
//! 2. **Generation and mutation** ([`gen`], [`mutate`]) build candidate
//!    programs: fresh random programs, argument tweaks, call
//!    insertions/removals and corpus splices — the standard fuzzer moves.
//! 3. **A sandbox** ([`sandbox`]) executes candidates on a one-core
//!    kernel instance, collecting the basic-block coverage the handlers
//!    emit.
//! 4. **The corpus loop** ([`corpus`]) keeps a candidate only if it
//!    covers new blocks, then *minimizes* it — removing calls that are
//!    not needed for the new coverage — exactly Syzkaller's triage.
//! 5. **The fault phase** ([`faultgen`]) then extends the corpus the way
//!    Syzkaller's FAULT_INJECTION mode does: it enumerates each
//!    program's fault points (allocations, device I/O, lock timeouts),
//!    fails them one occurrence at a time under a deterministic
//!    [`ksa_desim::FaultPlan`], and keeps the `(program, plan)` pairs
//!    that reach otherwise-unreachable `err.*` blocks.
//!
//! The output ([`GeneratedCorpus`]) serializes with serde so experiments
//! share one corpus across environments, as the paper shares one corpus
//! across native/KVM/Docker.

pub mod argspec;
pub mod corpus;
pub mod faultgen;
pub mod gen;
pub mod mutate;
pub mod sandbox;

pub use argspec::{arg_spec, produces, ArgSpec, Resource};
pub use corpus::{generate, GenConfig, GenStats, GeneratedCorpus};
pub use faultgen::{fault_phase, FaultCorpus, FaultEntry, FaultGenConfig, FaultGenStats};
pub use gen::ProgramGenerator;
pub use sandbox::Sandbox;
