//! The fault-injection corpus phase (Syzkaller's `fault` / `fault_nth`
//! analogue).
//!
//! The coverage-guided loop in [`crate::corpus`] can only reach blocks on
//! success paths: a no-fault execution never takes an `err.*` branch. This
//! phase extends a finished corpus with **fault plans** — deterministic
//! schedules that force one specific allocation, I/O or lock acquisition
//! to fail — and keeps the `(program, plan)` pairs that cover new blocks.
//!
//! The probe mirrors Syzkaller exactly: run a program once with an empty
//! plan to *enumerate* its fault points (the hit counters advance even
//! when nothing fails), then re-execute it once per `(kind, site, n)`
//! with an `Nth(n)` schedule — "fail the n-th occurrence of this site" —
//! and check the coverage signal. All candidate orderings are sorted, so
//! the phase is deterministic for a given seed and base corpus.

use ksa_desim::{FaultKind, FaultPlan, FaultSchedule};
use ksa_json::Value;
use ksa_kernel::coverage::CoverageSet;
use ksa_kernel::prog::Corpus;

use crate::sandbox::Sandbox;

/// Fault-phase configuration.
#[derive(Debug, Clone, Copy)]
pub struct FaultGenConfig {
    /// Seed for plan decision hashes and the sandbox.
    pub seed: u64,
    /// Cap on candidate executions (probes excluded).
    pub max_candidates: usize,
    /// Cap on the `n` probed per `(kind, site)`: sites hit thousands of
    /// times only get their first few occurrences targeted.
    pub per_site_cap: u64,
    /// Stop after this many consecutive candidates without new coverage.
    pub stall_limit: usize,
}

impl Default for FaultGenConfig {
    fn default() -> Self {
        Self {
            seed: 0xfa17,
            max_candidates: 2_000,
            per_site_cap: 4,
            stall_limit: 300,
        }
    }
}

/// Statistics from a fault phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultGenStats {
    /// Candidate `(program, plan)` executions.
    pub executed: usize,
    /// Accepted pairs.
    pub accepted: usize,
    /// Distinct fault points enumerated across the corpus.
    pub sites_probed: usize,
    /// Error blocks covered by the accepted pairs (all of them
    /// unreachable without injection).
    pub error_blocks: usize,
    /// Total new blocks the phase added over the base corpus.
    pub new_blocks: usize,
}

/// One accepted pair: replay `plan` while executing base-corpus program
/// `prog` to reproduce the error coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEntry {
    /// Index into the base corpus.
    pub prog: usize,
    /// The schedule that exposed new blocks.
    pub plan: FaultPlan,
}

/// The fault phase's output.
#[derive(Debug, Clone)]
pub struct FaultCorpus {
    /// Accepted `(program, plan)` pairs.
    pub entries: Vec<FaultEntry>,
    /// Phase statistics.
    pub stats: FaultGenStats,
}

/// Runs the fault phase over `base`, starting from the coverage a plain
/// (no-fault) replay of the base corpus reaches.
pub fn fault_phase(base: &Corpus, cfg: FaultGenConfig) -> FaultCorpus {
    let mut sandbox = Sandbox::new(cfg.seed);
    let mut global = CoverageSet::new();

    // Baseline: replay the corpus fault-free and record per-program fault
    // points. `(kind, site, hits)` tuples are sorted for determinism —
    // the hit map iterates in arbitrary order.
    let mut points: Vec<(usize, FaultKind, String, u64)> = Vec::new();
    for (pi, prog) in base.programs.iter().enumerate() {
        let cover = sandbox.run_fresh(prog);
        global.merge(&cover);
        let mut sites: Vec<(FaultKind, String, u64)> = sandbox
            .fault_hits()
            .map(|(k, s, h)| (k, s.to_string(), h))
            .collect();
        sites.sort();
        for (kind, site, hits) in sites {
            points.push((pi, kind, site, hits));
        }
    }
    let mut sites_seen: Vec<(FaultKind, &str)> =
        points.iter().map(|(_, k, s, _)| (*k, s.as_str())).collect();
    sites_seen.sort();
    sites_seen.dedup();

    let mut stats = FaultGenStats {
        sites_probed: sites_seen.len(),
        ..FaultGenStats::default()
    };
    let base_blocks = global.len();

    // Candidate sweep: fail the n-th occurrence of each point.
    let mut entries = Vec::new();
    let mut stall = 0usize;
    'sweep: for (pi, kind, site, hits) in &points {
        for n in 1..=(*hits).min(cfg.per_site_cap) {
            if stats.executed >= cfg.max_candidates || stall >= cfg.stall_limit {
                break 'sweep;
            }
            let plan = FaultPlan::new(cfg.seed).site(*kind, site.clone(), FaultSchedule::Nth(n));
            sandbox.set_fault_plan(plan.clone());
            let cover = sandbox.run_fresh(&base.programs[*pi]);
            stats.executed += 1;
            if global.new_blocks(&cover) == 0 {
                stall += 1;
                continue;
            }
            stall = 0;
            global.merge(&cover);
            entries.push(FaultEntry { prog: *pi, plan });
            stats.accepted += 1;
        }
    }
    sandbox.set_fault_plan(FaultPlan::none());

    stats.error_blocks = global.error_blocks();
    stats.new_blocks = global.len() - base_blocks;
    FaultCorpus { entries, stats }
}

// ------------------------------------------------------------ serialization

fn kind_to_str(k: FaultKind) -> &'static str {
    k.name()
}

fn kind_from_str(s: &str) -> Result<FaultKind, ksa_json::Error> {
    FaultKind::ALL
        .into_iter()
        .find(|k| k.name() == s)
        .ok_or_else(|| ksa_json::Error::shape("unknown fault kind"))
}

fn sched_to_value(s: FaultSchedule) -> Value {
    match s {
        FaultSchedule::Never => Value::object([("kind", Value::from("never"))]),
        FaultSchedule::Nth(n) => {
            Value::object([("kind", Value::from("nth")), ("n", Value::from(n))])
        }
        FaultSchedule::EveryNth(n) => {
            Value::object([("kind", Value::from("every_nth")), ("n", Value::from(n))])
        }
        FaultSchedule::ProbMilli(m) => Value::object([
            ("kind", Value::from("prob_milli")),
            ("n", Value::from(m as u64)),
        ]),
    }
}

fn sched_from_value(v: &Value) -> Result<FaultSchedule, ksa_json::Error> {
    let kind = v.get("kind")?.as_str()?;
    Ok(match kind {
        "never" => FaultSchedule::Never,
        "nth" => FaultSchedule::Nth(v.get("n")?.as_u64()?),
        "every_nth" => FaultSchedule::EveryNth(v.get("n")?.as_u64()?),
        "prob_milli" => FaultSchedule::ProbMilli(v.get("n")?.as_u64()? as u32),
        _ => return Err(ksa_json::Error::shape("unknown schedule kind")),
    })
}

/// Serializes a plan (seed plus explicitly scheduled sites; kind defaults
/// are not used by the fault phase).
pub fn plan_to_value(p: &FaultPlan) -> Value {
    let mut sites: Vec<(FaultKind, &str, FaultSchedule)> = p.scheduled_sites().collect();
    sites.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    let sites = Value::array(sites.into_iter().map(|(k, s, sched)| {
        Value::object([
            ("fault", Value::from(kind_to_str(k))),
            ("site", Value::from(s)),
            ("sched", sched_to_value(sched)),
        ])
    }));
    Value::object([("seed", Value::from(p.seed)), ("sites", sites)])
}

/// Deserializes a plan written by [`plan_to_value`].
pub fn plan_from_value(v: &Value) -> Result<FaultPlan, ksa_json::Error> {
    let mut plan = FaultPlan::new(v.get("seed")?.as_u64()?);
    for site in v.get("sites")?.as_array()? {
        plan.set_site(
            kind_from_str(site.get("fault")?.as_str()?)?,
            site.get("site")?.as_str()?.to_string(),
            sched_from_value(site.get("sched")?)?,
        );
    }
    Ok(plan)
}

impl FaultCorpus {
    /// Serializes to JSON (the base corpus is stored separately).
    pub fn to_json(&self) -> String {
        Value::object([
            (
                "entries",
                Value::array(self.entries.iter().map(|e| {
                    Value::object([
                        ("prog", Value::from(e.prog)),
                        ("plan", plan_to_value(&e.plan)),
                    ])
                })),
            ),
            (
                "stats",
                Value::object([
                    ("executed", Value::from(self.stats.executed)),
                    ("accepted", Value::from(self.stats.accepted)),
                    ("sites_probed", Value::from(self.stats.sites_probed)),
                    ("error_blocks", Value::from(self.stats.error_blocks)),
                    ("new_blocks", Value::from(self.stats.new_blocks)),
                ]),
            ),
        ])
        .render()
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Self, ksa_json::Error> {
        let v = ksa_json::parse(s)?;
        let mut entries = Vec::new();
        for e in v.get("entries")?.as_array()? {
            entries.push(FaultEntry {
                prog: e.get("prog")?.as_usize()?,
                plan: plan_from_value(e.get("plan")?)?,
            });
        }
        let st = v.get("stats")?;
        Ok(Self {
            entries,
            stats: FaultGenStats {
                executed: st.get("executed")?.as_usize()?,
                accepted: st.get("accepted")?.as_usize()?,
                sites_probed: st.get("sites_probed")?.as_usize()?,
                error_blocks: st.get("error_blocks")?.as_usize()?,
                new_blocks: st.get("new_blocks")?.as_usize()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, GenConfig};

    fn base() -> Corpus {
        generate(GenConfig {
            seed: 11,
            max_programs: 15,
            stall_limit: 120,
            mutate_pct: 70,
            minimize: false,
        })
        .corpus
    }

    #[test]
    fn fault_phase_strictly_extends_coverage() {
        let base = base();
        let out = fault_phase(&base, FaultGenConfig::default());
        assert!(
            out.stats.sites_probed > 0,
            "corpus must expose fault points"
        );
        assert!(
            out.stats.error_blocks > 0,
            "injection must reach error blocks"
        );
        assert!(out.stats.new_blocks >= out.stats.error_blocks);
        assert!(!out.entries.is_empty());
        assert!(out.stats.executed >= out.stats.accepted);
    }

    #[test]
    fn accepted_entries_replay_their_error_coverage() {
        let base = base();
        let out = fault_phase(&base, FaultGenConfig::default());
        let mut sb = Sandbox::new(7);
        // Replay base fault-free, then each accepted pair; every pair
        // must produce at least one injected fault when replayed.
        for p in &base.programs {
            sb.run_fresh(p);
        }
        for e in &out.entries {
            sb.set_fault_plan(e.plan.clone());
            let cover = sb.run_fresh(&base.programs[e.prog]);
            assert!(
                !sb.injected().is_empty(),
                "plan {:?} injected nothing on replay",
                e.plan
            );
            assert!(cover.error_blocks() > 0);
        }
    }

    #[test]
    fn fault_phase_is_deterministic() {
        let base = base();
        let a = fault_phase(&base, FaultGenConfig::default());
        let b = fault_phase(&base, FaultGenConfig::default());
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.stats.error_blocks, b.stats.error_blocks);
    }

    #[test]
    fn json_roundtrip() {
        let base = base();
        let out = fault_phase(&base, FaultGenConfig::default());
        let json = out.to_json();
        let back = FaultCorpus::from_json(&json).unwrap();
        assert_eq!(back.entries, out.entries);
        assert_eq!(back.stats.error_blocks, out.stats.error_blocks);
    }
}
