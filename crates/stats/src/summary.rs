//! Full summary statistics for one measurement site.

use crate::quantile::quantile_sorted;

/// Summary of a latency distribution, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Number of samples summarized.
    pub count: usize,
    /// Minimum observed latency.
    pub min: u64,
    /// Median (50th percentile).
    pub median: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile — the paper's primary tail metric.
    pub p99: u64,
    /// Maximum (worst case) latency.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
}

impl SummaryStats {
    /// Builds a summary from a **sorted** sample slice.
    pub fn from_sorted(sorted: &[u64]) -> Option<Self> {
        if sorted.is_empty() {
            return None;
        }
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let n = sorted.len();
        let mean = sorted.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let var = sorted
                .iter()
                .map(|&v| {
                    let d = v as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / (n - 1) as f64;
            var.sqrt()
        };
        Some(Self {
            count: n,
            min: sorted[0],
            median: quantile_sorted(sorted, 0.5)?,
            p95: quantile_sorted(sorted, 0.95)?,
            p99: quantile_sorted(sorted, 0.99)?,
            max: sorted[n - 1],
            mean,
            stddev,
        })
    }

    /// Coefficient of variation (stddev / mean) — a scale-free variability
    /// measure used when comparing subsystems at different base latencies.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }

    /// Ratio of the 99th percentile to the median: the "tail blowup" factor.
    pub fn tail_ratio(&self) -> f64 {
        if self.median == 0 {
            0.0
        } else {
            self.p99 as f64 / self.median as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sorted_rejects_empty() {
        assert!(SummaryStats::from_sorted(&[]).is_none());
    }

    #[test]
    fn basic_fields() {
        let v: Vec<u64> = (1..=100).collect();
        let s = SummaryStats::from_sorted(&v).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.median, 51); // rank 49.5 -> 50.5 rounded
        assert_eq!(s.p99, 99);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let s = SummaryStats::from_sorted(&[7, 7, 7, 7]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn single_sample_summary() {
        let s = SummaryStats::from_sorted(&[5]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 5);
        assert_eq!(s.max, 5);
    }

    #[test]
    fn tail_ratio_reflects_outliers() {
        // 99 fast samples and one huge one.
        let mut v: Vec<u64> = vec![100; 99];
        v.push(1_000_000);
        v.sort_unstable();
        let s = SummaryStats::from_sorted(&v).unwrap();
        assert!(s.tail_ratio() > 10.0, "tail ratio {}", s.tail_ratio());
    }
}
