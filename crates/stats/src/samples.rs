//! Raw sample storage with lazily sorted views.

use crate::quantile::quantile_sorted;
use crate::summary::SummaryStats;

/// A bag of latency samples (nanoseconds) for one measurement site.
///
/// Samples are appended unordered during a run; all queries operate on a
/// sorted copy that is materialized at most once (`freeze` / first query).
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<u64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sample bag with room for `cap` samples.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            values: Vec::with_capacity(cap),
            sorted: false,
        }
    }

    /// Builds a bag directly from raw values.
    pub fn from_values(values: Vec<u64>) -> Self {
        Self {
            values,
            sorted: false,
        }
    }

    /// Appends one sample. O(1); never sorts.
    #[inline]
    pub fn push(&mut self, v: u64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Appends all samples from `other`.
    pub fn extend_from(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw (possibly unsorted) view of the samples.
    pub fn raw(&self) -> &[u64] {
        &self.values
    }

    /// Sorts the underlying storage in place (idempotent).
    pub fn freeze(&mut self) {
        if !self.sorted {
            self.values.sort_unstable();
            self.sorted = true;
        }
    }

    /// Sorted view; sorts on first use.
    pub fn sorted(&mut self) -> &[u64] {
        self.freeze();
        &self.values
    }

    /// The `q`-quantile (0.0..=1.0) by linear interpolation.
    ///
    /// Returns `None` on an empty bag.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        self.freeze();
        quantile_sorted(&self.values, q)
    }

    /// Median latency.
    pub fn median(&mut self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// 99th percentile latency.
    pub fn p99(&mut self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Worst-case (maximum) latency.
    pub fn max(&self) -> Option<u64> {
        self.values.iter().copied().max()
    }

    /// Best-case (minimum) latency.
    pub fn min(&self) -> Option<u64> {
        self.values.iter().copied().min()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.iter().map(|&v| v as f64).sum::<f64>() / self.values.len() as f64)
    }

    /// Full summary (median, p95, p99, max, mean, CV, ...).
    pub fn summary(&mut self) -> Option<SummaryStats> {
        self.freeze();
        SummaryStats::from_sorted(&self.values)
    }
}

impl FromIterator<u64> for Samples {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        Samples::from_values(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bag_yields_none() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.median(), None);
        assert_eq!(s.p99(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert!(s.summary().is_none());
    }

    #[test]
    fn push_and_query() {
        let mut s = Samples::new();
        for v in [5u64, 1, 9, 3, 7] {
            s.push(v);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.median(), Some(5));
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(9));
        assert_eq!(s.sorted(), &[1, 3, 5, 7, 9]);
    }

    #[test]
    fn extend_merges_and_resorts() {
        let mut a = Samples::from_values(vec![10, 20]);
        let b = Samples::from_values(vec![5, 30]);
        a.freeze();
        a.extend_from(&b);
        assert_eq!(a.sorted(), &[5, 10, 20, 30]);
    }

    #[test]
    fn mean_matches_hand_computation() {
        let s = Samples::from_values(vec![2, 4, 6]);
        assert_eq!(s.mean(), Some(4.0));
    }

    #[test]
    fn from_iterator_collects() {
        let mut s: Samples = (1u64..=100).collect();
        assert_eq!(s.len(), 100);
        assert_eq!(s.quantile(0.0), Some(1));
        assert_eq!(s.quantile(1.0), Some(100));
    }
}
