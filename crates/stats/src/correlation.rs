//! Correlation measures for surface-area / variability analysis.

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns `None` for mismatched lengths, fewer than two points, or a
/// zero-variance series.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation: Pearson correlation of the rank vectors, with
/// average ranks for ties. Robust to the heavy-tailed latencies this
/// workspace produces.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Average ranks (1-based) with tie handling.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank over the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[5.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but nonlinear: spearman = 1, pearson < 1.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 3125.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 10.0]);
        assert_eq!(r, vec![1.5, 3.0, 1.5]);
    }
}
