//! Quantile computation on sorted data.

/// Linear-interpolation quantile of a **sorted** slice.
///
/// Uses the same definition as numpy's default (`linear` / R type-7):
/// the `q`-quantile sits at rank `q * (n - 1)` and is linearly interpolated
/// between the neighbouring order statistics. `q` is clamped to `[0, 1]`.
///
/// Returns `None` for an empty slice.
pub fn quantile_sorted(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    let a = sorted[lo] as f64;
    let b = sorted[hi] as f64;
    Some((a + (b - a) * frac).round() as u64)
}

/// Convenience wrapper: percentile (0..=100) of a sorted slice.
pub fn percentile_ns(sorted: &[u64], pct: f64) -> Option<u64> {
    quantile_sorted(sorted, pct / 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert_eq!(quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn single_element_is_constant() {
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(quantile_sorted(&[42], q), Some(42));
        }
    }

    #[test]
    fn interpolates_between_ranks() {
        let v = [0u64, 10, 20, 30];
        assert_eq!(quantile_sorted(&v, 0.5), Some(15));
        assert_eq!(quantile_sorted(&v, 0.0), Some(0));
        assert_eq!(quantile_sorted(&v, 1.0), Some(30));
        // rank 0.99 * 3 = 2.97 -> 20 + 0.97 * 10 = 29.7 -> 30 (rounded)
        assert_eq!(quantile_sorted(&v, 0.99), Some(30));
    }

    #[test]
    fn clamps_out_of_range_q() {
        let v = [1u64, 2, 3];
        assert_eq!(quantile_sorted(&v, -1.0), Some(1));
        assert_eq!(quantile_sorted(&v, 2.0), Some(3));
    }

    #[test]
    fn percentile_wrapper_matches() {
        let v = [0u64, 100];
        assert_eq!(percentile_ns(&v, 50.0), quantile_sorted(&v, 0.5));
        assert_eq!(percentile_ns(&v, 99.0), quantile_sorted(&v, 0.99));
    }
}
