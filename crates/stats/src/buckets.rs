//! Latency bucket tables (Tables 2 and 3 of the paper).
//!
//! The paper discretizes per-system-call statistics into cumulative
//! percentage columns: the share of all system calls whose median / 99th
//! percentile / worst case falls **below** 1µs, 10µs, 100µs, 1ms and 10ms,
//! plus the residual share above 10ms.

use crate::{MS, US};

/// Bucket edges used throughout the paper, in nanoseconds:
/// 1µs, 10µs, 100µs, 1ms, 10ms.
pub const LATENCY_BUCKET_EDGES_NS: [u64; 5] = [US, 10 * US, 100 * US, MS, 10 * MS];

/// Human-readable labels matching [`LATENCY_BUCKET_EDGES_NS`] plus the
/// residual `>10ms` column.
pub const LATENCY_BUCKET_LABELS: [&str; 6] = ["1us", "10us", "100us", "1ms", "10ms", ">10ms"];

/// One row of a bucket table: cumulative percentages below each edge and
/// the residual percentage above the last edge.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketRow {
    /// Row label (e.g. `"Linux median"` or a container count).
    pub label: String,
    /// Cumulative percentage of values strictly below each bucket edge.
    pub below: [f64; 5],
    /// Percentage of values at or above the last edge (`>10ms` column).
    pub above_last: f64,
    /// Number of values the percentages are computed over.
    pub count: usize,
}

impl BucketRow {
    /// Computes a row from per-site statistics (one value per system call
    /// site, e.g. its median or its max).
    pub fn from_values(label: impl Into<String>, values: &[u64]) -> Self {
        let count = values.len();
        let mut below = [0.0; 5];
        if count > 0 {
            for (i, &edge) in LATENCY_BUCKET_EDGES_NS.iter().enumerate() {
                let n = values.iter().filter(|&&v| v < edge).count();
                below[i] = 100.0 * n as f64 / count as f64;
            }
        }
        let above_last = if count == 0 { 0.0 } else { 100.0 - below[4] };
        Self {
            label: label.into(),
            below,
            above_last,
            count,
        }
    }

    /// Cumulative percentage below the i-th edge (0 ⇒ 1µs .. 4 ⇒ 10ms).
    pub fn pct_below(&self, i: usize) -> f64 {
        self.below[i]
    }
}

/// A multi-row bucket table with shared column headers.
#[derive(Debug, Clone, Default)]
pub struct BucketTable {
    /// Title printed above the table.
    pub title: String,
    /// The rows, in presentation order.
    pub rows: Vec<BucketRow>,
}

impl BucketTable {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Adds a row computed from raw per-site values.
    pub fn push_values(&mut self, label: impl Into<String>, values: &[u64]) {
        self.rows.push(BucketRow::from_values(label, values));
    }

    /// Renders the table as aligned text, matching the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&format!("{:<24}", "config"));
        for l in LATENCY_BUCKET_LABELS {
            out.push_str(&format!("{:>9}", l));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<24}", row.label));
            for v in row.below {
                out.push_str(&format!("{:>9.2}", v));
            }
            out.push_str(&format!("{:>9.2}", row.above_last));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header + one line per row).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("config,lt_1us,lt_10us,lt_100us,lt_1ms,lt_10ms,gt_10ms,count\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{}\n",
                row.label,
                row.below[0],
                row.below[1],
                row.below[2],
                row.below[3],
                row.below[4],
                row.above_last,
                row.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_values_yield_zero_row() {
        let r = BucketRow::from_values("x", &[]);
        assert_eq!(r.count, 0);
        assert_eq!(r.below, [0.0; 5]);
        assert_eq!(r.above_last, 0.0);
    }

    #[test]
    fn percentages_are_cumulative_and_monotone() {
        // 4 values: 500ns, 5us, 500us, 50ms
        let r = BucketRow::from_values("x", &[500, 5 * US, 500 * US, 50 * MS]);
        assert_eq!(r.below[0], 25.0); // < 1us
        assert_eq!(r.below[1], 50.0); // < 10us
        assert_eq!(r.below[2], 50.0); // < 100us
        assert_eq!(r.below[3], 75.0); // < 1ms
        assert_eq!(r.below[4], 75.0); // < 10ms
        assert_eq!(r.above_last, 25.0);
        for w in r.below.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn boundary_values_count_as_not_below() {
        let r = BucketRow::from_values("x", &[US]);
        assert_eq!(r.below[0], 0.0, "exactly 1us is not < 1us");
        assert_eq!(r.below[1], 100.0);
    }

    #[test]
    fn render_contains_all_labels() {
        let mut t = BucketTable::new("Table X");
        t.push_values("row-a", &[100, 2 * MS]);
        let s = t.render();
        for l in LATENCY_BUCKET_LABELS {
            assert!(s.contains(l), "missing label {l} in output:\n{s}");
        }
        assert!(s.contains("row-a"));
    }

    #[test]
    fn csv_row_count_matches() {
        let mut t = BucketTable::new("t");
        t.push_values("a", &[1]);
        t.push_values("b", &[2]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
    }
}
