//! Gaussian kernel density estimation for violin plots.

/// Evaluates a Gaussian KDE of `values` at `points` grid positions spanning
/// `[min, max]` of the data (in log10 space when `log_space` is true, which
/// matches the paper's log-scaled violins).
///
/// Bandwidth uses Silverman's rule of thumb. Returns `(grid, density)` pairs;
/// the density integrates to ~1 over the grid. Empty input yields empty
/// vectors.
pub fn kernel_density(values: &[u64], points: usize, log_space: bool) -> (Vec<f64>, Vec<f64>) {
    if values.is_empty() || points == 0 {
        return (Vec::new(), Vec::new());
    }
    let xs: Vec<f64> = values
        .iter()
        .map(|&v| {
            let v = v.max(1) as f64;
            if log_space {
                v.log10()
            } else {
                v
            }
        })
        .collect();
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    // Silverman's rule; fall back to a small fixed bandwidth for degenerate
    // (constant) data so the KDE stays finite.
    let bw = if sd > 0.0 {
        1.06 * sd * n.powf(-0.2)
    } else {
        0.05
    };
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min) - 3.0 * bw;
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 3.0 * bw;
    let step = if points > 1 {
        (hi - lo) / (points - 1) as f64
    } else {
        0.0
    };
    let norm = 1.0 / (n * bw * (2.0 * std::f64::consts::PI).sqrt());
    let mut grid = Vec::with_capacity(points);
    let mut dens = Vec::with_capacity(points);
    for i in 0..points {
        let g = lo + step * i as f64;
        let mut d = 0.0;
        for &x in &xs {
            let z = (g - x) / bw;
            d += (-0.5 * z * z).exp();
        }
        grid.push(g);
        dens.push(d * norm);
    }
    (grid, dens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_empty_output() {
        let (g, d) = kernel_density(&[], 32, true);
        assert!(g.is_empty() && d.is_empty());
    }

    #[test]
    fn density_is_nonnegative_and_roughly_normalized() {
        let vals: Vec<u64> = (1..200).map(|i| 1000 + i * 13).collect();
        let (g, d) = kernel_density(&vals, 256, false);
        assert!(d.iter().all(|&x| x >= 0.0));
        // Trapezoid integral should be close to 1.
        let mut integral = 0.0;
        for i in 1..g.len() {
            integral += 0.5 * (d[i] + d[i - 1]) * (g[i] - g[i - 1]);
        }
        assert!((integral - 1.0).abs() < 0.05, "integral = {integral}");
    }

    #[test]
    fn constant_data_does_not_blow_up() {
        let (g, d) = kernel_density(&[500; 50], 64, true);
        assert_eq!(g.len(), 64);
        assert!(d.iter().all(|x| x.is_finite()));
        // Peak should sit near log10(500).
        let (imax, _) = d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((g[imax] - 500f64.log10()).abs() < 0.1);
    }

    #[test]
    fn log_space_compresses_range() {
        let vals = vec![1_000u64, 10_000, 100_000, 1_000_000];
        let (g_log, _) = kernel_density(&vals, 16, true);
        let (g_lin, _) = kernel_density(&vals, 16, false);
        let span_log = g_log.last().unwrap() - g_log.first().unwrap();
        let span_lin = g_lin.last().unwrap() - g_lin.first().unwrap();
        assert!(span_log < span_lin);
    }
}
