//! Statistics toolkit for the kernel-surface-area reproduction.
//!
//! The paper's evaluation reduces raw per-invocation system-call latencies to
//! a small set of summary artifacts:
//!
//! * per-site **quantile summaries** (median / 99th percentile / worst case),
//! * **latency bucket tables** — the cumulative percentage of system calls
//!   whose median/p99/max falls below 1µs, 10µs, 100µs, 1ms and 10ms
//!   (Tables 2 and 3),
//! * **violin summaries** — quartiles, confidence interval and a kernel
//!   density estimate of the distribution of per-site p99s (Figure 2),
//! * **max-of-n combinators** for BSP straggler analysis (Figure 4),
//! * **log2 duration histograms** aggregating the engine's lock
//!   wait-time buckets (the lockstat view), and
//! * simple correlation measures used to relate kernel surface area to
//!   variability.
//!
//! Everything in this crate is deterministic and allocation-conscious: the
//! hot path (`Samples::push`) is a plain `Vec<u64>` append; summaries sort
//! once on demand.

pub mod buckets;
pub mod correlation;
pub mod density;
pub mod histogram;
pub mod quantile;
pub mod samples;
pub mod summary;
pub mod violin;

pub use buckets::{BucketRow, BucketTable, LATENCY_BUCKET_EDGES_NS};
pub use correlation::{pearson, spearman};
pub use density::kernel_density;
pub use histogram::{Log2Histogram, LOG2_BUCKETS};
pub use quantile::{percentile_ns, quantile_sorted};
pub use samples::Samples;
pub use summary::SummaryStats;
pub use violin::ViolinSummary;

/// One nanosecond, the base time unit used across the workspace.
pub const NS: u64 = 1;
/// Nanoseconds per microsecond.
pub const US: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const MS: u64 = 1_000_000;
/// Nanoseconds per second.
pub const SEC: u64 = 1_000_000_000;

/// Formats a nanosecond latency with an adaptive unit, e.g. `3.20us`, `14.1ms`.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= SEC {
        format!("{:.2}s", ns as f64 / SEC as f64)
    } else if ns >= MS {
        format!("{:.2}ms", ns as f64 / MS as f64)
    } else if ns >= US {
        format!("{:.2}us", ns as f64 / US as f64)
    } else {
        format!("{}ns", ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_unit() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(3_200), "3.20us");
        assert_eq!(fmt_ns(14_100_000), "14.10ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
    }

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(US, 1_000 * NS);
        assert_eq!(MS, 1_000 * US);
        assert_eq!(SEC, 1_000 * MS);
    }
}
