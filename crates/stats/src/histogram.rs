//! Log-scaled duration histograms (the lockstat wait-time view).
//!
//! The engine records lock wait durations into power-of-two buckets
//! (bucket *i* holds values in `[2^i, 2^(i+1))`, with 0 sharing bucket
//! 0). This module aggregates, merges and summarizes those buckets:
//! they survive aggregation across locks and runs losslessly, and they
//! answer "how long are the waits" questions (approximate quantiles,
//! worst-case bucket) without retaining per-event samples.

/// Number of power-of-two buckets (covers the full `u64` range).
pub const LOG2_BUCKETS: usize = 64;

/// A histogram over power-of-two buckets: bucket `i` counts values `v`
/// with `floor(log2(v)) == i` (0 lands in bucket 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Histogram {
    /// Per-bucket counts.
    pub buckets: [u64; LOG2_BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; LOG2_BUCKETS],
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps raw bucket counts (e.g. the engine's per-lock wait
    /// histogram).
    pub fn from_buckets(buckets: &[u64; LOG2_BUCKETS]) -> Self {
        Self { buckets: *buckets }
    }

    /// The bucket a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// The half-open value range `[lo, hi)` covered by bucket `i`
    /// (`hi` saturates at `u64::MAX` for the top bucket).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        let lo = if i == 0 { 0 } else { 1u64 << i };
        let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
        (lo, hi)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Total recorded count.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (0 ≤ p ≤ 100); `None` when empty. Log-bucketed data can only
    /// bound a quantile, so this reports the conservative (upper) edge.
    pub fn percentile_upper_bound(&self, p: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_range(i).1);
            }
        }
        Some(u64::MAX)
    }

    /// Index of the highest non-empty bucket; `None` when empty.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Renders the non-empty buckets as `[lo, hi) count` lines with a
    /// proportional bar, lockstat-style.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let total = self.count();
        if total == 0 {
            out.push_str("(empty)\n");
            return out;
        }
        let peak = *self.buckets.iter().max().unwrap();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = Self::bucket_range(i);
            let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
            let _ = writeln!(out, "[{lo:>12}, {hi:>12}) {c:>10} {bar}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_matches_engine_rule() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 0);
        assert_eq!(Log2Histogram::bucket_of(2), 1);
        assert_eq!(Log2Histogram::bucket_of(3), 1);
        assert_eq!(Log2Histogram::bucket_of(1024), 10);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn ranges_tile_the_u64_line() {
        for i in 0..63 {
            let (_, hi) = Log2Histogram::bucket_range(i);
            let (lo_next, _) = Log2Histogram::bucket_range(i + 1);
            assert_eq!(hi, lo_next, "bucket {i} must abut bucket {}", i + 1);
        }
        assert_eq!(Log2Histogram::bucket_range(0).0, 0);
        assert_eq!(Log2Histogram::bucket_range(63).1, u64::MAX);
    }

    #[test]
    fn record_count_and_merge() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 700, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets[0], 2, "0 and 1 share bucket 0");
        let mut other = Log2Histogram::new();
        other.record(700);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert_eq!(h.buckets[Log2Histogram::bucket_of(700)], 2);
    }

    #[test]
    fn percentile_bound_walks_buckets() {
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(1 << 30); // one huge outlier
        assert_eq!(h.percentile_upper_bound(50.0), Some(128));
        assert_eq!(h.percentile_upper_bound(99.0), Some(128));
        assert_eq!(h.percentile_upper_bound(100.0), Some(1 << 31));
        assert_eq!(Log2Histogram::new().percentile_upper_bound(50.0), None);
    }

    #[test]
    fn render_shows_only_live_buckets() {
        let mut h = Log2Histogram::new();
        h.record(100);
        h.record(100);
        let s = h.render();
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("[          64,          128)"), "{s}");
        assert!(Log2Histogram::new().render().contains("(empty)"));
    }

    #[test]
    fn empty_histogram_answers_every_query() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_bucket(), None);
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile_upper_bound(p), None, "p={p}");
        }
        let mut merged = Log2Histogram::new();
        merged.merge(&h);
        assert!(merged.is_empty(), "merging empties stays empty");
    }

    #[test]
    fn single_sample_pins_every_percentile_to_its_bucket() {
        let mut h = Log2Histogram::new();
        h.record(700); // bucket 9: [512, 1024)
        assert_eq!(h.count(), 1);
        assert!(!h.is_empty());
        let (_, hi) = Log2Histogram::bucket_range(Log2Histogram::bucket_of(700));
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile_upper_bound(p), Some(hi), "p={p}");
        }
        assert_eq!(h.max_bucket(), Some(9));
    }

    #[test]
    fn top_bucket_saturates_without_overflow() {
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1u64 << 63);
        assert_eq!(h.buckets[63], 3, "all huge values land in bucket 63");
        assert_eq!(h.max_bucket(), Some(63));
        // The top bucket's upper edge saturates at u64::MAX rather than
        // wrapping to 2^64.
        assert_eq!(h.percentile_upper_bound(100.0), Some(u64::MAX));
        assert_eq!(h.render().lines().count(), 1);
    }

    #[test]
    fn percentile_upper_bound_is_monotone_in_p() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 3, 70, 700, 7_000, 1 << 20, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let mut last = 0u64;
        for tenth in 0..=1000 {
            let p = tenth as f64 / 10.0;
            let bound = h.percentile_upper_bound(p).expect("non-empty");
            assert!(
                bound >= last,
                "p={p}: bound {bound} dropped below previous {last}"
            );
            last = bound;
        }
        assert_eq!(last, u64::MAX, "p=100 reaches the top sample's bucket");
    }

    #[test]
    fn max_bucket_tracks_worst_case() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.max_bucket(), None);
        h.record(3);
        h.record(5_000_000);
        assert_eq!(h.max_bucket(), Some(Log2Histogram::bucket_of(5_000_000)));
    }
}
