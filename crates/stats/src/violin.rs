//! Violin-plot summaries (Figure 2 of the paper).
//!
//! Each violin in the paper shows, for one VM configuration and one syscall
//! category, the distribution of per-syscall 99th percentiles: an
//! interquartile box, a 95% confidence whisker, a median dot, and a kernel
//! density outline. [`ViolinSummary`] captures exactly those elements as
//! data so the text/CSV renderers (and any external plotting tool) can
//! reproduce the figure.

use crate::density::kernel_density;
use crate::quantile::quantile_sorted;

/// Data behind one violin: quartiles, whiskers, extrema and a log-space KDE.
#[derive(Debug, Clone)]
pub struct ViolinSummary {
    /// Label for this violin (e.g. `"8 VMs"`).
    pub label: String,
    /// Number of per-site values behind the violin.
    pub count: usize,
    /// Minimum value.
    pub min: u64,
    /// 2.5th percentile (lower end of the 95% interval whisker).
    pub whisker_lo: u64,
    /// First quartile (bottom of the box).
    pub q1: u64,
    /// Median (the white dot).
    pub median: u64,
    /// Third quartile (top of the box).
    pub q3: u64,
    /// 97.5th percentile (upper end of the 95% interval whisker).
    pub whisker_hi: u64,
    /// Maximum value (top of the violin).
    pub max: u64,
    /// KDE grid positions in log10(ns).
    pub kde_grid: Vec<f64>,
    /// KDE density values aligned with `kde_grid`.
    pub kde_density: Vec<f64>,
}

impl ViolinSummary {
    /// Builds a violin from unsorted per-site values. Returns `None` when
    /// `values` is empty.
    pub fn from_values(
        label: impl Into<String>,
        values: &[u64],
        kde_points: usize,
    ) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let (kde_grid, kde_density) = kernel_density(&sorted, kde_points, true);
        Some(Self {
            label: label.into(),
            count: sorted.len(),
            min: sorted[0],
            whisker_lo: quantile_sorted(&sorted, 0.025)?,
            q1: quantile_sorted(&sorted, 0.25)?,
            median: quantile_sorted(&sorted, 0.5)?,
            q3: quantile_sorted(&sorted, 0.75)?,
            whisker_hi: quantile_sorted(&sorted, 0.975)?,
            max: sorted[sorted.len() - 1],
            kde_grid,
            kde_density,
        })
    }

    /// Interquartile range (q3 - q1).
    pub fn iqr(&self) -> u64 {
        self.q3 - self.q1
    }

    /// Fraction of KDE mass in the top decade below the max — a scalar proxy
    /// for the "thick upper tail" the paper reads off the violins.
    pub fn upper_tail_mass(&self) -> f64 {
        if self.kde_grid.is_empty() {
            return 0.0;
        }
        let top = (self.max.max(1) as f64).log10() - 1.0;
        let total: f64 = self.kde_density.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let upper: f64 = self
            .kde_grid
            .iter()
            .zip(&self.kde_density)
            .filter(|(g, _)| **g >= top)
            .map(|(_, d)| d)
            .sum();
        upper / total
    }

    /// One-line text rendering used by the fig2 experiment binary.
    pub fn render_line(&self) -> String {
        format!(
            "{:<10} n={:<5} min={:<10} q1={:<10} med={:<10} q3={:<10} p97.5={:<10} max={:<10}",
            self.label,
            self.count,
            crate::fmt_ns(self.min),
            crate::fmt_ns(self.q1),
            crate::fmt_ns(self.median),
            crate::fmt_ns(self.q3),
            crate::fmt_ns(self.whisker_hi),
            crate::fmt_ns(self.max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_values_yield_none() {
        assert!(ViolinSummary::from_values("x", &[], 16).is_none());
    }

    #[test]
    fn quartiles_are_ordered() {
        let vals: Vec<u64> = (1..=1000).map(|i| i * 37 % 7919 + 100).collect();
        let v = ViolinSummary::from_values("v", &vals, 64).unwrap();
        assert!(v.min <= v.whisker_lo);
        assert!(v.whisker_lo <= v.q1);
        assert!(v.q1 <= v.median);
        assert!(v.median <= v.q3);
        assert!(v.q3 <= v.whisker_hi);
        assert!(v.whisker_hi <= v.max);
    }

    #[test]
    fn upper_tail_mass_grows_with_outliers() {
        let base: Vec<u64> = vec![10_000; 200];
        let mut tailed = base.clone();
        // Replace a quarter of the samples with values near a high max so a
        // substantial share of mass sits in the top decade.
        for v in tailed.iter_mut().take(50) {
            *v = 90_000_000;
        }
        tailed.push(100_000_000);
        let mut spiked = base.clone();
        spiked.push(100_000_000); // same max, single outlier only
        let v_spike = ViolinSummary::from_values("spike", &spiked, 128).unwrap();
        let v_tail = ViolinSummary::from_values("tail", &tailed, 128).unwrap();
        assert!(
            v_tail.upper_tail_mass() > v_spike.upper_tail_mass(),
            "{} vs {}",
            v_tail.upper_tail_mass(),
            v_spike.upper_tail_mass()
        );
    }

    #[test]
    fn render_line_mentions_label() {
        let v = ViolinSummary::from_values("8 VMs", &[1, 2, 3], 8).unwrap();
        assert!(v.render_line().contains("8 VMs"));
    }
}
