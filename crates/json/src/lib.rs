//! # ksa-json — minimal JSON for corpus and result persistence
//!
//! The workspace needs JSON in exactly three places: sharing a generated
//! corpus across environments, round-tripping programs in tests, and the
//! harness's partial-result persistence. None of that needs derive
//! machinery — a small tree model ([`Value`]), a recursive-descent parser
//! ([`parse`]) and a compact writer ([`Value::render`]) cover it without
//! external dependencies (the build environment has no registry access).
//!
//! Numbers are kept as `f64` plus a lossless `u64` fast path: simulation
//! identifiers (seeds, block ids) exceed 2^53, so integers that fit in
//! `u64` are stored and re-rendered exactly.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits `u64`, preserved exactly.
    UInt(u64),
    /// An integer that fits `i64` (negative), preserved exactly.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` keeps rendering deterministic.
    Object(BTreeMap<String, Value>),
}

/// Parse or access error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of the error in the input (parse errors only).
    pub offset: usize,
}

impl Error {
    fn new(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset,
        }
    }

    /// An access error not tied to an input position.
    pub fn shape(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Object constructor from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Array constructor.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Array(items.into_iter().collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    // ---- typed accessors -------------------------------------------------

    /// Field of an object, or an error naming the missing key.
    pub fn get(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(m) => m
                .get(key)
                .ok_or_else(|| Error::shape(format!("missing key `{key}`"))),
            _ => Err(Error::shape(format!("expected object with key `{key}`"))),
        }
    }

    /// Optional field of an object (`None` when absent or the value is null).
    pub fn opt(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key).filter(|v| !matches!(v, Value::Null)),
            _ => None,
        }
    }

    /// The value as `u64`.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::UInt(u) => Ok(u),
            Value::Int(i) if i >= 0 => Ok(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Ok(f as u64),
            _ => Err(Error::shape(format!("expected u64, got {self:?}"))),
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::Int(i) => Ok(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Ok(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Ok(f as i64),
            _ => Err(Error::shape(format!("expected i64, got {self:?}"))),
        }
    }

    /// The value as `usize`.
    pub fn as_usize(&self) -> Result<usize, Error> {
        Ok(self.as_u64()? as usize)
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::Float(f) => Ok(f),
            Value::UInt(u) => Ok(u as f64),
            Value::Int(i) => Ok(i as f64),
            _ => Err(Error::shape(format!("expected number, got {self:?}"))),
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match *self {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::shape(format!("expected bool, got {self:?}"))),
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(Error::shape(format!("expected string, got {self:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(a) => Ok(a),
            _ => Err(Error::shape(format!("expected array, got {self:?}"))),
        }
    }

    // ---- rendering -------------------------------------------------------

    /// Compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Value {
    fn from(u: u64) -> Value {
        Value::UInt(u)
    }
}

impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::UInt(u as u64)
    }
}

impl From<u32> for Value {
    fn from(u: u32) -> Value {
        Value::UInt(u as u64)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        if i >= 0 {
            Value::UInt(i as u64)
        } else {
            Value::Int(i)
        }
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document, requiring the input be fully consumed.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after document", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(
                format!("unexpected byte `{}`", b as char),
                self.pos,
            )),
            None => Err(Error::new("unexpected end of input", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("expected `{word}`"), self.pos))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::new("unterminated string", start)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape", start))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape", start))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape", start))?;
                            // Surrogate pairs are not needed for our data
                            // (block names and syscall names are ASCII);
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape", start)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid utf-8 in string", start))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number", start))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "18446744073709551615", "-42"] {
            let v = parse(text).unwrap();
            assert_eq!(v.render(), text);
        }
        let v = parse("1.5").unwrap();
        assert_eq!(v.as_f64().unwrap(), 1.5);
    }

    #[test]
    fn roundtrip_structures() {
        let text = r#"{"a":[1,2,3],"b":{"c":"hi\n","d":null},"e":true}"#;
        let v = parse(text).unwrap();
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "hi\n"
        );
    }

    #[test]
    fn big_u64_is_lossless() {
        let n = u64::MAX - 3;
        let v = Value::from(n);
        assert_eq!(parse(&v.render()).unwrap().as_u64().unwrap(), n);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a"}"#).is_err());
        let v = parse("[1]").unwrap();
        assert!(v.get("x").is_err());
        assert!(v.as_str().is_err());
    }

    #[test]
    fn object_rendering_is_deterministic() {
        let a = Value::object([("z", Value::from(1u64)), ("a", Value::from(2u64))]);
        assert_eq!(a.render(), r#"{"a":2,"z":1}"#);
    }
}
