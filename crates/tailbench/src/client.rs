//! The open-loop client: Poisson arrivals at a target utilization,
//! optionally over a lossy link with the cluster fabric's
//! timeout/retry/backoff policy.

use ksa_desim::fault::node_decision_hash;
use ksa_desim::{Backoff, Effect, Ns, Process, QueueId, SimCtx, WakeReason};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::world::{Request, TbWorld};

/// Record keys `ITER_KEY_BASE + batch` hold per-batch durations in
/// cluster mode.
pub const ITER_KEY_BASE: u64 = 1_000_000;

/// The client-side send policy over a lossy link — the same capped
/// exponential backoff + deterministic jitter discipline the cluster
/// fabric retransmits under, so request-level p99 under partition-like
/// loss is measurable. A request's sojourn is measured from its *first*
/// send attempt, so retry delay lands in the tail where it belongs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Per-attempt send-drop probability in milli-units.
    pub drop_milli: u32,
    /// Give-up budget measured from the first attempt; a request still
    /// undelivered past this is abandoned (counted, not measured).
    pub timeout_ns: Ns,
    /// Retransmit schedule (never exceeds its cap).
    pub backoff: Backoff,
    /// Hard bound on attempts per request.
    pub max_attempts: u32,
    /// Decision seed for drop verdicts (jitter draws come from the
    /// client's own seeded RNG).
    pub seed: u64,
}

impl RetryPolicy {
    /// A lossless policy (never drops, never retries).
    pub fn lossless() -> Self {
        RetryPolicy {
            drop_milli: 0,
            timeout_ns: Ns::MAX,
            backoff: Backoff::new(50_000, 2_000_000, 250),
            max_attempts: u32::MAX,
            seed: 0,
        }
    }

    /// A lossy link dropping `drop_milli`/1000 of sends, with a default
    /// backoff and a generous give-up budget.
    pub fn lossy(drop_milli: u32, seed: u64) -> Self {
        RetryPolicy {
            drop_milli: drop_milli.min(900),
            timeout_ns: 50_000_000, // 50ms give-up budget
            backoff: Backoff::new(20_000, 500_000, 250),
            max_attempts: 64,
            seed,
        }
    }
}

/// How the client drives load.
#[derive(Debug, Clone, Copy)]
pub enum ClientMode {
    /// Figure 3: issue `total` requests open-loop, then wait for the last
    /// completion.
    OpenLoop {
        /// Requests to issue.
        total: u64,
    },
    /// Figure 4: `batches` rounds of `per_batch` requests; each round
    /// waits for all completions (the node-local part of a BSP step) and
    /// records its duration.
    Batched {
        /// Number of rounds (the paper uses 50).
        batches: u64,
        /// Requests per round.
        per_batch: u64,
    },
}

enum State {
    Issuing,
    Draining,
}

/// What one [`Client::try_send`] attempt did.
enum SendOutcome {
    /// The request reached the server queue.
    Sent,
    /// The send was dropped; sleep this long and retry.
    Backoff(Ns),
    /// The request exhausted its timeout/attempt budget and was
    /// abandoned.
    GaveUp,
}

/// The request generator for one application.
pub struct Client {
    app_id: usize,
    queue: QueueId,
    done_q: QueueId,
    /// Arrivals per nanosecond.
    rate: f64,
    mode: ClientMode,
    rng: SmallRng,
    state: State,
    issued_in_round: u64,
    batch: u64,
    batch_start: Ns,
    /// Lossy-link policy (None = perfect link, today's behavior).
    retry: Option<RetryPolicy>,
    /// Requests attempted this round (issued + abandoned).
    attempted_in_round: u64,
    /// Send attempts made for the in-flight request (0 = none yet).
    attempt: u32,
    /// First-attempt instant of the in-flight request (its arrival
    /// stamp, so sojourns include retry delay).
    first_try: Ns,
    /// Monotonic request sequence number for drop decisions.
    req_seq: u64,
}

impl Client {
    /// Creates a client issuing at `rate` requests/ns.
    pub fn new(
        app_id: usize,
        queue: QueueId,
        done_q: QueueId,
        rate: f64,
        mode: ClientMode,
        seed: u64,
    ) -> Self {
        assert!(rate > 0.0);
        Self {
            app_id,
            queue,
            done_q,
            rate,
            mode,
            rng: SmallRng::seed_from_u64(seed),
            state: State::Issuing,
            issued_in_round: 0,
            batch: 0,
            batch_start: 0,
            retry: None,
            attempted_in_round: 0,
            attempt: 0,
            first_try: 0,
            req_seq: 0,
        }
    }

    /// Sends over a lossy link under `policy` (builder style).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    fn interarrival(&mut self) -> Ns {
        let u: f64 = self.rng.gen_range(1e-12..1.0);
        ((-u.ln()) / self.rate).max(1.0) as Ns
    }

    fn round_total(&self) -> u64 {
        match self.mode {
            ClientMode::OpenLoop { total } => total,
            ClientMode::Batched { per_batch, .. } => per_batch,
        }
    }

    fn issue(&mut self, ctx: &mut SimCtx<'_, TbWorld>) {
        let now = ctx.now();
        self.issue_arrived(ctx, now);
    }

    /// Outcome of one send attempt over the (possibly lossy) link.
    fn try_send(&mut self, ctx: &mut SimCtx<'_, TbWorld>) -> SendOutcome {
        let now = ctx.now();
        if self.attempt == 0 {
            self.first_try = now;
        }
        let attempt = self.attempt + 1;
        if let Some(p) = self.retry {
            if attempt > 1 && (now - self.first_try >= p.timeout_ns || attempt > p.max_attempts) {
                // The give-up path: the request is abandoned, counted,
                // and excluded from the latency samples.
                ctx.world.client_gave_up += 1;
                self.next_request();
                return SendOutcome::GaveUp;
            }
            let dropped = p.drop_milli > 0
                && node_decision_hash(
                    p.seed,
                    "client.link",
                    self.app_id as u64,
                    self.req_seq,
                    attempt as u64,
                ) % 1000
                    < p.drop_milli as u64;
            if dropped {
                self.attempt = attempt;
                ctx.world.client_retries += 1;
                let jitter = self.rng.gen::<u64>();
                return SendOutcome::Backoff(p.backoff.delay(attempt, jitter).max(1));
            }
        }
        let arrival = self.first_try;
        self.issue_arrived(ctx, arrival);
        self.next_request();
        SendOutcome::Sent
    }

    fn next_request(&mut self) {
        self.attempted_in_round += 1;
        self.req_seq += 1;
        self.attempt = 0;
    }

    fn issue_arrived(&mut self, ctx: &mut SimCtx<'_, TbWorld>, arrival: Ns) {
        let req = Request {
            arrival,
            batch: self.batch,
        };
        ctx.world.queues[self.app_id].pending.push_back(req);
        ctx.signal(self.queue, 1);
        self.issued_in_round += 1;
    }

    fn start_drain(&mut self, ctx: &mut SimCtx<'_, TbWorld>) -> Effect {
        self.state = State::Draining;
        let q = &mut ctx.world.queues[self.app_id];
        let target = q.completed + q.pending.len() as u64 + self.in_flight_estimate();
        // Target = everything issued this run so far: completed plus
        // everything still pending or in service. Since only this client
        // issues, issued totals are exact.
        let issued_total = self.batch * self.round_total() + self.issued_in_round;
        let _ = target;
        if q.completed >= issued_total {
            // Everything already done.
            return self.round_done(ctx);
        }
        q.batch_target = issued_total;
        Effect::Wait(self.done_q)
    }

    fn in_flight_estimate(&self) -> u64 {
        0
    }

    fn round_done(&mut self, ctx: &mut SimCtx<'_, TbWorld>) -> Effect {
        ctx.world.queues[self.app_id].batch_target = u64::MAX;
        match self.mode {
            ClientMode::OpenLoop { .. } => Effect::Done,
            ClientMode::Batched { batches, .. } => {
                let dur = ctx.now() - self.batch_start;
                ctx.record(ITER_KEY_BASE + self.batch, dur);
                self.batch += 1;
                self.issued_in_round = 0;
                self.attempted_in_round = 0;
                if self.batch >= batches {
                    return Effect::Done;
                }
                self.state = State::Issuing;
                self.batch_start = ctx.now();
                self.issue_batch(ctx)
            }
        }
    }
}

impl Client {
    /// Dumps the whole round at once (BSP batch mode: iterations are
    /// work-bound, so the client hands the server its full quantum and
    /// waits for the drain).
    fn issue_batch(&mut self, ctx: &mut SimCtx<'_, TbWorld>) -> Effect {
        let total = self.round_total();
        while self.issued_in_round < total {
            self.issue(ctx);
        }
        ctx.signal(self.queue, total as usize);
        self.start_drain(ctx)
    }
}

impl Process<TbWorld> for Client {
    fn resume(&mut self, ctx: &mut SimCtx<'_, TbWorld>, wake: WakeReason) -> Effect {
        match self.state {
            State::Issuing => {
                if matches!(wake, WakeReason::Start) {
                    self.batch_start = ctx.now();
                }
                if matches!(self.mode, ClientMode::Batched { .. }) {
                    return self.issue_batch(ctx);
                }
                if self.attempted_in_round < self.round_total() {
                    match self.try_send(ctx) {
                        SendOutcome::Backoff(delay) => return Effect::Sleep(delay),
                        SendOutcome::Sent | SendOutcome::GaveUp => {
                            if self.attempted_in_round < self.round_total() {
                                return Effect::Sleep(self.interarrival());
                            }
                        }
                    }
                }
                self.start_drain(ctx)
            }
            State::Draining => self.round_done(ctx),
        }
    }

    fn label(&self) -> &str {
        "tailbench_client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interarrival_matches_rate_on_average() {
        let mut c = Client::new(
            0,
            QueueId(0),
            QueueId(1),
            1.0 / 10_000.0, // one request per 10us
            ClientMode::OpenLoop { total: 1 },
            7,
        );
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| c.interarrival()).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 10_000.0).abs() < 500.0,
            "mean interarrival {mean} != ~10000"
        );
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let _ = Client::new(
            0,
            QueueId(0),
            QueueId(1),
            0.0,
            ClientMode::OpenLoop { total: 1 },
            1,
        );
    }
}
